// Distilled fast-path surrogate planning (DESIGN.md §3.14): train a teacher
// MPNN on an analytic latency surface of the Social Network topology, distill it
// into a small dense surrogate with the solver in the loop (rollout rounds
// re-label exactly the level set the fast path lands on), then answer a
// stream of planning queries twice — through the two-tier planner
// (surrogate descent + one full-GNN verification forward, escalating on
// trust-band misses) and through the full-GNN solver — and compare wall
// clock, escalation rate, and plan quality.
//
// Re-runs the whole pipeline (distillation + every tiered solve) at 1 and
// at 8 worker threads and exits non-zero if the exact-bits digests diverge:
// distillation and tiered planning are pure functions of (teacher bits,
// config, inputs), never of the thread count.
#include <bit>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/catalog.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/tiered_planner.h"
#include "gnn/latency_model.h"
#include "gnn/surrogate_model.h"

namespace {

using namespace graf;

constexpr std::size_t kSolves = 40;

/// Analytic M/M/1-flavored latency surface (same shape as the surrogate
/// suite's fixture): quota buys capacity, latency blows up near saturation.
double truth_ms(const std::vector<double>& w, const std::vector<double>& q,
                const std::vector<double>& demand) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

gnn::LatencyModel train_teacher(const apps::Topology& topo,
                                const std::vector<double>& demand) {
  const std::size_t n = topo.service_count();
  gnn::LatencyModel teacher{apps::make_dag(topo),
                            {.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
                             .readout_hidden = 24, .message_steps = 2,
                             .dropout_p = 0.05, .use_mpnn = true},
                            7};
  Rng rng{41};
  gnn::Dataset data;
  for (int s = 0; s < 1500; ++s) {
    gnn::Sample sample;
    const double w = rng.uniform(20.0, 100.0);
    sample.workload.assign(n, w);
    sample.quota.resize(n);
    for (double& q : sample.quota) q = rng.uniform(200.0, 2000.0);
    sample.latency_ms = truth_ms(sample.workload, sample.quota, demand);
    data.push_back(std::move(sample));
  }
  teacher.fit(data, {}, {.iterations = 1200, .batch_size = 64, .lr = 3e-3,
                         .lr_decay_every = 400, .eval_every = 200, .seed = 3});
  return teacher;
}

std::uint64_t mix(std::uint64_t h, double v) {
  h ^= std::bit_cast<std::uint64_t>(v);
  h *= 1099511628211ULL;
  return h;
}

struct RunResult {
  double distill_seconds = 0.0;
  double tiered_seconds = 0.0;
  double full_seconds = 0.0;
  double fidelity_pct = 0.0;      // surrogate-vs-teacher held-out MAPE
  std::uint64_t fast_hits = 0;
  std::uint64_t escalations = 0;
  /// Mean extra total quota the tiered plans allocate vs the full plans —
  /// the resource cost of steering the descent with the surrogate (the two
  /// descents land on different-but-equivalent quota mixes; what matters
  /// downstream is the total bill, and that every accepted plan's
  /// full-model prediction meets the SLO).
  double quota_overhead_pct = 0.0;
  std::uint64_t digest = 1469598103934665603ULL;
};

RunResult run(gnn::LatencyModel& teacher, double slo_ms) {
  using clock = std::chrono::steady_clock;
  const std::size_t n = teacher.node_count();
  const std::vector<double> region(n, 100.0);
  const std::vector<Millicores> lo(n, 200.0);
  const std::vector<Millicores> hi(n, 2000.0);

  core::SolverConfig scfg;
  scfg.max_iterations = 400;

  // Solver-in-the-loop distillation at the production SLO and solver
  // config, so the rollout rounds reproduce the exact query distribution
  // the planner will put on the surrogate.
  core::SolverDistillConfig dcfg;
  dcfg.base.samples = 512 * n;
  dcfg.base.model.hidden = 96;
  dcfg.base.workload_floor = 0.2;
  dcfg.rounds = 2;
  dcfg.queries_per_round = 192;
  const auto t0 = clock::now();
  gnn::SurrogateDistiller::Result distilled =
      core::TieredPlanner::distill_for_planner(teacher, region, lo, hi, slo_ms,
                                               dcfg, scfg);

  RunResult out;
  out.distill_seconds = std::chrono::duration<double>(clock::now() - t0).count();
  out.fidelity_pct = distilled.report.val_mean_abs_pct_error;
  out.digest = mix(out.digest,
                   static_cast<double>(gnn::SurrogateModel::fingerprint(distilled.model)));

  core::ConfigurationSolver full{teacher, scfg};
  core::TieredPlanner planner{
      std::make_shared<gnn::SurrogateModel>(std::move(distilled.model)),
      {.solver = scfg, .trust_band_pct = 10.0}};

  // The same frontend-driven workload ray both arms plan for.
  std::vector<std::vector<double>> queries;
  Rng wdraw{17};
  for (std::size_t s = 0; s < kSolves; ++s)
    queries.emplace_back(n, wdraw.uniform(30.0, 90.0));

  std::vector<core::SolverResult> tiered_plans;
  const auto t1 = clock::now();
  for (const auto& w : queries)
    tiered_plans.push_back(planner.solve(teacher, full, w, slo_ms, lo, hi));
  out.tiered_seconds = std::chrono::duration<double>(clock::now() - t1).count();
  out.fast_hits = planner.fast_hits();
  out.escalations = planner.escalations();

  core::ConfigurationSolver reference{teacher, scfg};
  std::vector<core::SolverResult> full_plans;
  const auto t2 = clock::now();
  for (const auto& w : queries)
    full_plans.push_back(reference.solve(w, slo_ms, lo, hi));
  out.full_seconds = std::chrono::duration<double>(clock::now() - t2).count();

  for (std::size_t s = 0; s < kSolves; ++s) {
    double tiered_total = 0.0;
    double full_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      tiered_total += tiered_plans[s].quota[i];
      full_total += full_plans[s].quota[i];
      out.digest = mix(out.digest, tiered_plans[s].quota[i]);
    }
    out.quota_overhead_pct += 100.0 * (tiered_total - full_total) / full_total;
    out.digest = mix(out.digest, tiered_plans[s].predicted_ms);
  }
  out.quota_overhead_pct /= static_cast<double>(kSolves);
  out.digest = mix(out.digest, static_cast<double>(out.fast_hits));
  out.digest = mix(out.digest, static_cast<double>(out.escalations));
  return out;
}

}  // namespace

int main() {
  const apps::Topology topo = apps::social_network();
  const std::size_t n = topo.service_count();
  std::vector<double> demand(n);
  for (std::size_t i = 0; i < n; ++i) demand[i] = topo.services[i].demand_mean_ms;
  // Generous-but-real SLO: 1.5x the analytic latency of the fully
  // provisioned system at the top of the query workload range.
  const double slo_ms =
      1.5 * truth_ms(std::vector<double>(n, 90.0), std::vector<double>(n, 2000.0),
                     demand);

  std::cerr << "surrogate_fastpath: training the teacher MPNN (" << topo.name
            << ", " << n << " services)...\n";
  gnn::LatencyModel teacher = train_teacher(topo, demand);

  std::cerr << "surrogate_fastpath: distilling + planning at 1 thread...\n";
  set_global_threads(1);
  const RunResult single = run(teacher, slo_ms);
  std::cerr << "surrogate_fastpath: distilling + planning at 8 threads...\n";
  set_global_threads(8);
  const RunResult eight = run(teacher, slo_ms);
  set_global_threads(0);

  Table table{"Two-tier surrogate planning vs full-GNN solve (" + topo.name +
              ", SLO " + Table::num(slo_ms, 0) + " ms, " +
              Table::integer(static_cast<long long>(kSolves)) + " plans)"};
  table.header({"arm", "wall s", "plans/s", "fast hits", "escalations"});
  table.row({"tiered (surrogate+verify)", Table::num(eight.tiered_seconds, 2),
             Table::num(static_cast<double>(kSolves) / eight.tiered_seconds, 1),
             Table::integer(static_cast<long long>(eight.fast_hits)),
             Table::integer(static_cast<long long>(eight.escalations))});
  table.row({"full-GNN solve", Table::num(eight.full_seconds, 2),
             Table::num(static_cast<double>(kSolves) / eight.full_seconds, 1),
             "-", "-"});
  table.print(std::cout);
  std::cout << "Speedup " << Table::num(eight.full_seconds / eight.tiered_seconds, 1)
            << "x; surrogate-vs-teacher fidelity "
            << Table::num(eight.fidelity_pct, 2) << "% MAPE; mean total-quota "
            << "overhead vs the full plans "
            << Table::num(eight.quota_overhead_pct, 1) << "%.\n"
            << "Distillation cost " << Table::num(eight.distill_seconds, 1)
            << " s up front — earned back after "
            << Table::integer(static_cast<long long>(
                   eight.distill_seconds /
                       ((eight.full_seconds - eight.tiered_seconds) /
                        static_cast<double>(kSolves)) + 1.0))
            << " plans at this rate.\n";

  const bool replay_ok = single.digest == eight.digest;
  std::cout << "Determinism: distillation + tiered replay at 1 vs 8 threads "
            << (replay_ok ? "bit-identical" : "DIVERGED") << ".\n";
  return replay_ok ? 0 : 1;
}
