// Capacity planning: "how much CPU will I need at 2x/4x/8x today's traffic,
// and what will it cost?" — the configuration solver as a what-if tool.
//
// Uses a quickly-trained latency model for Robot Shop, then sweeps expected
// workloads, printing the minimal SLO-feasible quota plan and its monthly
// EC2 cost (per the paper's Table 3 pricing).
#include <cmath>
#include <iostream>

#include "apps/catalog.h"
#include "common/table.h"
#include "core/configuration_solver.h"
#include "core/cost_model.h"
#include "core/latency_predictor.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"

int main() {
  using namespace graf;

  apps::Topology topo = apps::robot_shop();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 29});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};

  const std::vector<Qps> today{20.0, 8.0, 12.0};  // catalogue/login/cart mix
  const double slo_ms = 250.0;

  std::cout << "Building the latency model (small budget, ~1 minute)...\n";
  core::SampleCollectorConfig scfg;
  scfg.window = 8.0;
  core::SampleCollector collector{cluster, analyzer, scfg};
  const auto space = collector.reduce_search_space(today, slo_ms);
  const auto dataset = collector.collect(1500, space, today, 0.5, 1.2);

  core::LatencyPredictor predictor{apps::make_dag(topo), gnn::MpnnConfig{}, 31};
  gnn::TrainConfig tcfg;
  tcfg.iterations = 4000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1000;
  tcfg.eval_every = 500;
  predictor.train(dataset, tcfg);

  core::ConfigurationSolver solver{predictor.model()};

  Table plan{"Capacity plan for SLO " + Table::num(slo_ms, 0) + " ms (Robot Shop)"};
  std::vector<std::string> hdr{"traffic", "total quota (mc)"};
  for (const auto& svc : topo.services) hdr.push_back(svc.name + " (mc)");
  hdr.push_back("monthly cost ($)");
  plan.header(hdr);

  const core::AwsPricing pricing{};
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<Qps> expected = today;
    for (auto& q : expected) q *= factor;
    // Scale the workload into the trained region, solve, scale back
    // (the resource controller's §3.6 trick, done by hand here).
    const double k = std::max(1.0, factor / 1.2);
    std::vector<double> node_w = analyzer.distribute(expected);
    for (auto& w : node_w) w /= k;
    auto res = solver.solve(node_w, slo_ms, space.lo, space.hi);
    double total = 0.0;
    std::vector<std::string> row{Table::num(factor, 0) + "x"};
    std::vector<std::string> cells;
    for (double q : res.quota) {
      const double scaled = q * k;
      cells.push_back(Table::num(scaled, 0));
      total += scaled;
    }
    row.push_back(Table::num(total, 0));
    row.insert(row.end(), cells.begin(), cells.end());
    // Instances of 1000 mc at the paper's per-instance price, 30 days.
    const double instances = std::ceil(total / 1000.0);
    row.push_back(Table::num(instances * pricing.per_instance * 24.0 * 30.0, 0));
    plan.row(row);
  }
  plan.print(std::cout);

  std::cout << "Quota grows sub-linearly in spots where queueing headroom\n"
               "amortizes (statistical multiplexing), and the split across\n"
               "services follows their latency curves — catalogue first.\n";
  return 0;
}
