// Online serving, end to end: checkpointing, drift detection, fine-tuning,
// and hot-swap on Bookinfo.
//
//   1. Train the GNN latency model offline (the slo_autoscaling pipeline),
//      publish it to a ModelRegistry as version 1 — persisted as a .grafck
//      binary checkpoint — and promote it behind a ServingHandle.
//   2. Plan + deploy through the ResourceController; the measured p99 meets
//      the SLO.
//   3. Inject drift: a "rollout" makes every service's CPU demand 80% more
//      expensive. The same allocation now misses the SLO, and the promoted
//      model's live prediction error climbs.
//   4. Keep collecting samples with the OnlineTrainer subscribed to the
//      collector's sink. It detects the drift (error EWMA crosses the
//      threshold), fine-tunes a clone on its sliding window, validates it
//      on a holdout, and promotes version 2 — hot-swapping the handle
//      without ever pausing the allocation loop.
//   5. The very next plan() solves through version 2 and the redeployed
//      configuration brings p99 back under the SLO.
#include <filesystem>
#include <iostream>

#include "apps/catalog.h"
#include "common/table.h"
#include "core/configuration_solver.h"
#include "core/latency_predictor.h"
#include "core/resource_controller.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"
#include "serve/model_registry.h"
#include "serve/online_trainer.h"
#include "serve/serving_handle.h"

int main() {
  using namespace graf;

  apps::Topology topo = apps::bookinfo();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 7});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};

  const std::vector<Qps> workload{45.0};  // product-page requests/s
  const double slo_ms = 120.0;

  // -- 1: offline training, then publish v1 to the registry ------------------
  core::SampleCollectorConfig scfg;
  scfg.window = 8.0;
  core::SampleCollector collector{cluster, analyzer, scfg};
  std::cout << "Reducing search space (Algorithm 1)...\n";
  const auto space = collector.reduce_search_space(workload, slo_ms);

  std::cout << "Collecting offline samples...\n";
  const auto dataset = collector.collect(1200, space, workload, 0.5, 1.1);
  std::cout << "  " << dataset.size() << " samples\n";

  core::LatencyPredictor predictor{apps::make_dag(topo), gnn::MpnnConfig{}, 11};
  gnn::TrainConfig tcfg;
  tcfg.iterations = 3500;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 800;
  tcfg.eval_every = 300;
  std::cout << "Training the GNN latency model...\n";
  predictor.train(dataset, tcfg);
  const double val_err = predictor.validation_error_pct();
  std::cout << "  validation MAPE " << Table::num(val_err, 1) << "%\n";

  const std::string store_dir = "graf_ckpts";
  std::filesystem::create_directories(store_dir);
  serve::ModelRegistry registry{store_dir};
  serve::ServingHandle handle;
  const serve::ModelKey key{.application = "bookinfo", .slo_ms = slo_ms};
  serve::CheckpointMeta meta;
  meta.train_samples = dataset.size();
  meta.val_error_pct = val_err;
  meta.created_sim_time = cluster.now();
  const auto v1 = registry.publish(key, predictor.model(), meta);
  registry.attach_handle(key, &handle);
  registry.promote(key, v1);
  std::cout << "Published + promoted v" << v1 << " ("
            << registry.checkpoint_path(key, v1) << ")\n";

  // -- 2: plan and deploy through the serving handle -------------------------
  core::ConfigurationSolver solver{predictor.model()};
  std::vector<Millicores> units(topo.service_count(), 1000.0);
  core::ResourceController rc{predictor.model(), solver, analyzer,
                              space.lo, space.hi, units};
  rc.set_training_reference(predictor.train_set());
  rc.set_serving_handle(&handle);

  auto deploy = [&](const char* tag) {
    const auto plan = rc.plan(workload, slo_ms);
    // Sample collection leaves per-sample unit quotas behind; apply() maps
    // quota -> replicas assuming the configured 1000 mc units, so restore
    // them first.
    for (std::size_t s = 0; s < topo.service_count(); ++s)
      cluster.service(static_cast<int>(s)).set_unit_quota(units[s]);
    core::ResourceController::apply(cluster, plan);
    double total = 0.0;
    for (double q : plan.quota) total += q;
    // First window runs load while the deployment pipeline finishes creating
    // instances (Fig. 1: creation takes time); measure the second window.
    collector.measure_tail(workload, 40.0, 99.0);
    const double p99 = collector.measure_tail(workload, 20.0, 99.0);
    std::cout << tag << ": total " << Table::num(total, 0) << " mc, measured p99 "
              << Table::num(p99, 0) << " ms ("
              << (p99 >= 0.0 && p99 <= slo_ms ? "meets" : "misses")
              << " the " << Table::num(slo_ms, 0) << " ms SLO)\n";
    return p99;
  };
  deploy("Initial deployment");

  // -- 3: drift — a rollout makes every service 50% more expensive -----------
  std::cout << "\nInjecting drift: demand scale x1.8\n";
  cluster.set_demand_scale(1.8);
  const double drifted_p99 = collector.measure_tail(workload, 20.0, 99.0);
  std::cout << "Same allocation after drift: p99 "
            << Table::num(drifted_p99, 0) << " ms\n";

  // -- 4: the online trainer absorbs the drift -------------------------------
  serve::OnlineTrainerConfig ocfg;
  ocfg.window_capacity = 320;
  ocfg.min_samples = 200;
  ocfg.cooldown = 50;
  ocfg.ewma_alpha = 0.1;
  // Live error is noisier than holdout error; keep the demo's watchdog from
  // unwinding a good promotion (serve_test exercises the rollback path).
  ocfg.regress_factor = 2.5;
  ocfg.watch_samples = 50;
  ocfg.fine_tune.iterations = 1200;
  ocfg.fine_tune.batch_size = 64;
  ocfg.fine_tune.lr = 1e-3;
  ocfg.fine_tune.lr_decay_every = 300;
  ocfg.fine_tune.eval_every = 100;
  serve::OnlineTrainer trainer{registry, handle, key, ocfg};

  collector.set_sample_sink([&](const gnn::Sample& s, Seconds now) {
    if (trainer.ingest(s, now))
      std::cout << "  [swap] v" << registry.active_version(key) << " promoted at t="
                << Table::num(now, 0) << " s (live error EWMA was "
                << Table::num(trainer.stats().error_ewma_pct, 1) << "%)\n";
  });
  std::cout << "Streaming post-drift samples through the online trainer...\n";
  collector.collect(320, space, workload, 0.5, 1.1);

  const auto& st = trainer.stats();
  Table summary{"Online trainer"};
  summary.header({"metric", "value"});
  summary.row({"samples seen", std::to_string(st.samples_seen)});
  summary.row({"drift events", std::to_string(st.drift_events)});
  summary.row({"fine-tunes", std::to_string(st.fine_tunes)});
  summary.row({"promotions", std::to_string(st.promotions)});
  summary.row({"rejects", std::to_string(st.rejects)});
  summary.row({"rollbacks", std::to_string(st.rollbacks)});
  summary.row({"error EWMA (%)", Table::num(st.error_ewma_pct, 1)});
  summary.row({"handle swaps", std::to_string(handle.swap_count())});
  summary.print(std::cout);
  std::cout << "Registry now serves v" << registry.active_version(key) << " of "
            << registry.versions(key).size() << " versions\n";

  // -- 5: the next plan() picks up the promoted model automatically ----------
  std::cout << "\nRe-planning through the hot-swapped model:\n";
  deploy("Post-drift deployment");
  return 0;
}
