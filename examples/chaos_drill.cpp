// Chaos drill: run the full GRAF control loop through every fault class the
// simulator can inject — instance crashes, Deployment creation outages, CPU
// throttles, telemetry blackouts — and watch it degrade gracefully instead
// of falling over. Also the determinism demo: the same seed replays the
// same faulted run bit-for-bit at 1 and at 8 worker threads.
//
// Trains a tiny 2-service model inline (a few seconds); no cached
// artifacts needed. Exits non-zero if the control loop threw, never
// degraded/recovered, or the thread-count replay diverged.
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/k8s_hpa.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "telemetry/metrics.h"
#include "workload/open_loop.h"

namespace {

using namespace graf;

constexpr double kSlo = 220.0;
constexpr double kSurgeAt = 120.0;
constexpr double kEnd = 300.0;

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("frontend");
  d.add_node("backend");
  d.add_edge(0, 1);
  return d;
}

/// Tiny model trained on the analytic latency surface of the 2-service
/// chain below — enough for the solver to make sensible trade-offs.
gnn::LatencyModel train_model() {
  gnn::MpnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.mpnn_hidden = 8;
  cfg.readout_hidden = 24;
  cfg.dropout_p = 0.0;
  gnn::LatencyModel m{chain2(), cfg, 13};
  Rng rng{17};
  gnn::Dataset data;
  for (int i = 0; i < 2500; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 80.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = 40.0 * 1000.0 / s.quota[0] + 80.0 * 1000.0 / s.quota[1] +
                   0.8 * w;
    data.push_back(std::move(s));
  }
  gnn::TrainConfig tc;
  tc.iterations = 2500;
  tc.batch_size = 64;
  tc.lr = 2e-3;
  tc.lr_decay_every = 800;
  tc.eval_every = 0;
  m.fit(data, {}, tc);
  return m;
}

sim::Cluster make_cluster() {
  std::vector<sim::ServiceConfig> svcs{
      {.name = "frontend", .unit_quota = 1000, .initial_instances = 2,
       .max_concurrency = 8, .demand_mean_ms = 10.0, .demand_sigma = 1.0},
      {.name = "backend", .unit_quota = 1000, .initial_instances = 2,
       .max_concurrency = 8, .demand_mean_ms = 20.0, .demand_sigma = 2.0},
  };
  sim::CallNode root{.service = 0, .stages = {{sim::CallNode{.service = 1}}}};
  return sim::Cluster{svcs, {sim::Api{"chain", root}}, {.seed = 29}};
}

/// The chaos weather for this drill — one deterministic schedule, reused
/// verbatim by every arm and every replay.
sim::FaultScheduleConfig fault_schedule() {
  sim::FaultScheduleConfig cfg;
  cfg.seed = 47;
  cfg.from = 60.0;
  cfg.until = 260.0;
  cfg.crash_per_min = 1.5;
  cfg.creation_outage_per_min = 0.4;
  cfg.creation_outage_duration = 25.0;
  cfg.creation_fail_after = 3.0;
  cfg.throttle_per_min = 0.8;
  cfg.throttle_duration = 30.0;
  cfg.blackout_per_min = 0.5;
  cfg.blackout_duration = 15.0;
  return cfg;
}

struct DrillResult {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t violations = 0;  // ok but e2e > SLO
  std::size_t faults_fired = 0;
  int degraded_episodes = 0;   // gauge raised...
  int recoveries = 0;          // ...and cleared again
  double p99_ms = 0.0;
  std::uint64_t plan_failures = 0;

  double violation_pct() const {
    const double total = static_cast<double>(completed + failed);
    return total == 0.0
               ? 0.0
               : 100.0 * static_cast<double>(violations + failed) / total;
  }
};

/// One faulted surge run with the GRAF loop attached. Deterministic.
DrillResult run_graf() {
  sim::Cluster cluster = make_cluster();
  telemetry::MetricsRegistry registry;
  cluster.set_metrics(&registry);

  gnn::LatencyModel model = train_model();
  core::ConfigurationSolver solver{model, {}};
  core::WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  // lo bounds > unit_quota keep at least two replicas per service, so a
  // single crash during a creation outage never zeroes a tier.
  core::ResourceController rc{model,            solver,           analyzer,
                              {1100.0, 1600.0}, {2000.0, 2000.0}, {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  core::GrafController graf{
      rc, {.slo_ms = kSlo, .control_interval = 2.0, .rate_window = 4.0}};
  graf.set_metrics(&registry);

  sim::FaultInjector injector{cluster};
  injector.set_metrics(&registry);
  injector.add(sim::FaultInjector::generate(fault_schedule(),
                                            cluster.service_count()));
  injector.arm();

  graf.attach(cluster, kEnd);

  DrillResult out;
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(20.0, 40.0, kSurgeAt);
  g.on_complete = [&](const trace::RequestTrace& t) {
    if (t.ok && t.e2e_ms() > kSlo) ++out.violations;
  };
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  // Poll the shared degraded gauge each second to count raise/clear edges.
  const telemetry::Gauge& degraded = registry.gauge("core.degraded");
  bool was_degraded = false;
  for (double t = 1.0; t <= kEnd; t += 1.0) {
    cluster.run_until(t);
    const bool now_degraded = degraded.value() > 0.5;
    if (now_degraded && !was_degraded) ++out.degraded_episodes;
    if (!now_degraded && was_degraded) ++out.recoveries;
    was_degraded = now_degraded;
  }
  out.completed = cluster.completed();
  out.failed = cluster.failed();
  out.faults_fired = injector.fired();
  out.p99_ms = cluster.e2e_latency_all().percentile(99.0);
  out.plan_failures = graf.plan_failures();
  return out;
}

/// The reactive baseline under the identical schedule.
DrillResult run_hpa() {
  sim::Cluster cluster = make_cluster();
  sim::FaultInjector injector{cluster};
  injector.add(sim::FaultInjector::generate(fault_schedule(),
                                            cluster.service_count()));
  injector.arm();
  autoscalers::K8sHpa hpa{
      {.target_utilization = 0.5, .stabilization_window = 60.0}};
  hpa.attach(cluster, kEnd);

  DrillResult out;
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(20.0, 40.0, kSurgeAt);
  g.on_complete = [&](const trace::RequestTrace& t) {
    if (t.ok && t.e2e_ms() > kSlo) ++out.violations;
  };
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(kEnd);
  cluster.run_until(kEnd);
  out.completed = cluster.completed();
  out.failed = cluster.failed();
  out.faults_fired = injector.fired();
  out.p99_ms = cluster.e2e_latency_all().percentile(99.0);
  return out;
}

}  // namespace

int main() {
  std::cerr << "chaos drill: training the model and running the GRAF arm...\n";
  const DrillResult graf_arm = run_graf();
  std::cerr << "chaos drill: running the reactive HPA arm...\n";
  const DrillResult hpa_arm = run_hpa();

  Table table{"Chaos drill: 20 -> 40 qps surge at t=120s, faults over [60, 260)s"};
  table.header({"arm", "SLO violation (%)", "failures", "completed",
                "p99 (ms)", "faults", "degraded/recovered"});
  table.row({"GRAF", Table::num(graf_arm.violation_pct(), 2),
             Table::integer(static_cast<long long>(graf_arm.failed)),
             Table::integer(static_cast<long long>(graf_arm.completed)),
             Table::num(graf_arm.p99_ms, 1),
             Table::integer(static_cast<long long>(graf_arm.faults_fired)),
             Table::integer(graf_arm.degraded_episodes) + "/" +
                 Table::integer(graf_arm.recoveries)});
  table.row({"K8s HPA (50%)", Table::num(hpa_arm.violation_pct(), 2),
             Table::integer(static_cast<long long>(hpa_arm.failed)),
             Table::integer(static_cast<long long>(hpa_arm.completed)),
             Table::num(hpa_arm.p99_ms, 1),
             Table::integer(static_cast<long long>(hpa_arm.faults_fired)),
             "-"});
  table.print(std::cout);

  // Determinism demo: the exact same faulted run at 1 and 8 worker threads.
  std::cerr << "chaos drill: replaying the GRAF arm at 1 and 8 threads...\n";
  set_global_threads(1);
  const DrillResult single = run_graf();
  set_global_threads(8);
  const DrillResult eight = run_graf();
  set_global_threads(0);  // restore the configured default
  const bool replay_ok = single.completed == eight.completed &&
                         single.failed == eight.failed &&
                         single.violations == eight.violations &&
                         single.faults_fired == eight.faults_fired &&
                         single.p99_ms == eight.p99_ms;  // bit-identical

  std::cout << "\nControl loop: " << graf_arm.plan_failures
            << " uncaught plan failures; degraded " << graf_arm.degraded_episodes
            << "x, recovered " << graf_arm.recoveries << "x.\n";
  std::cout << "Replay at 1 vs 8 threads: "
            << (replay_ok ? "bit-identical" : "DIVERGED") << " (p99 "
            << Table::num(single.p99_ms, 6) << " vs "
            << Table::num(eight.p99_ms, 6) << " ms).\n";

  const bool ok = replay_ok && graf_arm.plan_failures == 0 &&
                  graf_arm.degraded_episodes > 0 &&
                  graf_arm.recoveries == graf_arm.degraded_episodes;
  if (!ok) {
    std::cerr << "chaos drill: FAILED acceptance checks\n";
    return 1;
  }
  std::cout << "Chaos drill passed: no exceptions, degraded mode engaged and\n"
               "cleared, and the faulted run replays deterministically.\n";
  return 0;
}
