// Forecast-driven pre-warming (DESIGN.md §3.11): an Azure-functions style
// trace with a doubling surge spliced in, planned twice — once with the
// ForecastGate live (plan for max(observed, predicted-at-horizon)) and once
// plan-alone. The forecast arm starts paying for the surge before the
// reactive arm can see it, which is the whole point: the simulator's ~5.5 s
// instance-creation delay means capacity ordered at detection time arrives
// late.
//
// Replays the forecast scenario at 1 and at 8 worker threads and exits
// non-zero if the exact-bits digests diverge — forecasts are pure functions
// of (config, seed, observed series), never of the thread count.
#include <bit>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "forecast/gate.h"
#include "gnn/latency_model.h"
#include "workload/azure_trace.h"
#include "workload/open_loop.h"

namespace {

using namespace graf;

constexpr double kEnd = 420.0;
constexpr double kSurgeAt = 300.0;  // trace minutes 0-4, then the doubling

/// Train a small model on a utilization-shaped latency surface of the
/// topology (same inline-training idiom as examples/fleet_server.cpp, but
/// with an M/M/1-flavored label): per service, quota buys request capacity
/// and latency blows up as workload approaches it. That coupling is what
/// makes planning *workload-sensitive* — a boosted (forecast-adjusted)
/// demand genuinely needs more quota, so pre-warming is visible in the
/// instance trajectory.
gnn::LatencyModel train_model(const apps::Topology& topo, std::uint64_t seed) {
  const auto fanout = core::expected_fanout(topo);
  const std::size_t services = topo.service_count();
  gnn::MpnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.mpnn_hidden = 8;
  cfg.readout_hidden = 24;
  cfg.dropout_p = 0.0;
  gnn::LatencyModel m{apps::make_dag(topo), cfg, seed};

  Rng rng{seed + 100};
  gnn::Dataset data;
  for (int i = 0; i < 1500; ++i) {
    gnn::Sample s;
    std::vector<double> api_w(topo.apis.size());
    for (double& w : api_w) w = rng.uniform(20.0, 240.0);
    s.workload.assign(services, 0.0);
    for (std::size_t a = 0; a < api_w.size(); ++a)
      for (std::size_t sv = 0; sv < services; ++sv)
        s.workload[sv] += api_w[a] * fanout[a][sv];
    s.quota.resize(services);
    double latency = 0.0;
    for (std::size_t sv = 0; sv < services; ++sv) {
      const double unit = topo.services[sv].unit_quota;
      const double d = topo.services[sv].demand_mean_ms;
      s.quota[sv] = rng.uniform(0.8 * unit, 6.0 * unit);
      // Requests/s this quota can absorb, then the M/M/1 blow-up.
      const double capacity = (s.quota[sv] / unit) * (1000.0 / d);
      const double util = std::min(s.workload[sv] / capacity, 0.95);
      latency += d / (1.0 - util);
    }
    s.latency_ms = latency;
    data.push_back(std::move(s));
  }
  gnn::TrainConfig tc;
  tc.iterations = 1200;
  tc.batch_size = 64;
  tc.lr = 2e-3;
  tc.lr_decay_every = 500;
  tc.eval_every = 0;
  tc.seed = seed;
  m.fit(data, {}, tc);
  return m;
}

/// Azure trace minutes rescaled to open-loop qps, then the doubling surge:
/// the first 5 trace minutes verbatim, then 2x the minute-4 rate.
workload::Schedule surge_trace() {
  workload::AzureTraceConfig cfg;
  cfg.minutes = 5;
  const auto qps = workload::rescale_series(workload::azure_invocation_series(cfg),
                                            60.0, 100.0);
  std::vector<std::pair<Seconds, double>> points;
  for (std::size_t m = 0; m < qps.size(); ++m)
    points.emplace_back(60.0 * static_cast<double>(m), qps[m]);
  points.emplace_back(kSurgeAt, 2.0 * qps.back());
  return workload::Schedule::piecewise(std::move(points));
}

struct RunResult {
  std::uint64_t prewarms = 0;
  std::uint64_t fallbacks = 0;
  int instances_pre_surge = 0;      // fleet size just before the surge hits
  int instances_after_surge = 0;    // 15 s in: did capacity arrive yet?
  int instances_at_end = 0;
  std::size_t violations = 0;  // e2e > SLO inside the convergence window
  std::size_t completed = 0;
  /// Exact-bits stream of every control tick's planned instance vector and
  /// the forecast boost in force; two replays agree iff it matches.
  std::string digest;
};

RunResult run(gnn::LatencyModel& model, bool with_forecast,
              double slo_ms) {
  const auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 21});

  core::WorkloadAnalyzer analyzer{topo.apis.size(), topo.service_count()};
  analyzer.set_fanout(core::expected_fanout(topo));
  core::ConfigurationSolver solver{model, {.max_iterations = 400}};
  std::vector<Millicores> lo, hi, unit;
  for (const sim::ServiceConfig& svc : topo.services) {
    lo.push_back(1.1 * svc.unit_quota);
    hi.push_back(6.0 * svc.unit_quota);
    unit.push_back(svc.unit_quota);
  }
  core::ResourceController controller{model, solver, analyzer, lo, hi, unit};
  core::GrafController autoscaler{controller, {.slo_ms = slo_ms}};
  if (with_forecast) {
    forecast::ForecastSpec spec;
    spec.enabled = true;
    spec.gate.horizon_steps = 2;  // 10 s lookahead > 5.5 s creation delay
    autoscaler.enable_forecast(spec);
  }
  autoscaler.attach(cluster, kEnd);

  RunResult out;
  workload::OpenLoopConfig g;
  g.rate = surge_trace();
  g.api_weights = topo.api_weights;
  g.seed = 9;
  g.on_complete = [&](const trace::RequestTrace& t) {
    // Measure the convergence window: the 90 s after the surge hits is
    // where pre-warmed capacity pays (afterwards both arms have caught up).
    if (cluster.now() < kSurgeAt || cluster.now() > kSurgeAt + 90.0 || !t.ok)
      return;
    ++out.completed;
    if (t.e2e_ms() > slo_ms) ++out.violations;
  };
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  std::ostringstream digest;
  digest << std::hex;
  for (double t = 5.0; t <= kEnd; t += 5.0) {
    cluster.run_until(t);
    if (t == kSurgeAt - 5.0)
      out.instances_pre_surge = cluster.total_target_instances();
    if (t == kSurgeAt + 15.0)
      out.instances_after_surge = cluster.total_target_instances();
    digest << cluster.total_target_instances() << ',';
    if (const forecast::ForecastGate* gate = autoscaler.forecast_gate())
      digest << std::bit_cast<std::uint64_t>(gate->last_boost()) << ';';
  }
  out.instances_at_end = cluster.total_target_instances();
  if (const forecast::ForecastGate* gate = autoscaler.forecast_gate()) {
    out.prewarms = gate->prewarms();
    out.fallbacks = gate->fallbacks();
  }
  out.digest = digest.str();
  return out;
}

}  // namespace

int main() {
  const auto topo = apps::online_boutique();
  // Loose enough that the pre-surge load is comfortably feasible, tight
  // enough that serving the doubled load needs real extra quota.
  double demand_sum = 0.0;
  for (const sim::ServiceConfig& svc : topo.services)
    demand_sum += svc.demand_mean_ms;
  const double slo_ms = 2.5 * demand_sum;
  std::cerr << "forecast_prewarm: training the latency model...\n";
  gnn::LatencyModel model = train_model(topo, 13);

  std::cerr << "forecast_prewarm: planning the trace, forecast on/off...\n";
  const RunResult forecast_run = run(model, true, slo_ms);
  const RunResult plan_alone = run(model, false, slo_ms);

  Table table{"Azure trace + doubling surge at t=300 s (Online Boutique, SLO " +
              Table::num(slo_ms, 0) + " ms)"};
  table.header({"arm", "pre-warm ticks", "instances at surge-5s",
                "instances at surge+15s", "instances at end",
                "violations (surge+90s)", "completions"});
  table.row({"forecast+plan",
             Table::integer(static_cast<long long>(forecast_run.prewarms)),
             Table::integer(forecast_run.instances_pre_surge),
             Table::integer(forecast_run.instances_after_surge),
             Table::integer(forecast_run.instances_at_end),
             Table::integer(static_cast<long long>(forecast_run.violations)),
             Table::integer(static_cast<long long>(forecast_run.completed))});
  table.row({"plan-alone", "0", Table::integer(plan_alone.instances_pre_surge),
             Table::integer(plan_alone.instances_after_surge),
             Table::integer(plan_alone.instances_at_end),
             Table::integer(static_cast<long long>(plan_alone.violations)),
             Table::integer(static_cast<long long>(plan_alone.completed))});
  table.print(std::cout);
  std::cout << "The gate fell back " << forecast_run.fallbacks
            << " tick(s) (forecaster warm-up) and pre-warmed "
            << forecast_run.prewarms << " tick(s): capacity for the predicted\n"
            << "load is ordered before the observation catches up to it.\n";

  std::cerr << "forecast_prewarm: replaying at 1 and 8 threads...\n";
  set_global_threads(1);
  const RunResult single = run(model, true, slo_ms);
  set_global_threads(8);
  const RunResult eight = run(model, true, slo_ms);
  set_global_threads(0);

  const bool replay_ok = single.digest == eight.digest && !single.digest.empty();
  std::cout << "Determinism: forecast replay at 1 vs 8 threads "
            << (replay_ok ? "bit-identical" : "DIVERGED") << " ("
            << single.digest.size() << "-byte digest).\n";
  return replay_ok ? 0 : 1;
}
