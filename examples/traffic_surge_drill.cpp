// Traffic-surge drill: what happens when your user population doubles in an
// instant? Compares a reactive Kubernetes HPA against proactive whole-chain
// scaling on Online Boutique — the cascading effect of paper §2.1, live.
#include <iostream>

#include "apps/catalog.h"
#include "autoscalers/k8s_hpa.h"
#include "common/stats.h"
#include "autoscalers/proactive_oracle.h"
#include "common/table.h"
#include "core/workload_analyzer.h"
#include "workload/closed_loop.h"

namespace {

struct DrillResult {
  double p99_during_surge_ms = 0.0;
  int peak_instances = 0;
  std::size_t timeouts = 0;
};

DrillResult drill(graf::autoscalers::Autoscaler& scaler, std::uint64_t seed) {
  using namespace graf;
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = seed});
  scaler.attach(cluster, 400.0);

  std::vector<double> latencies;
  std::size_t timeouts = 0;
  workload::ClosedLoopConfig load;
  load.users = workload::Schedule::step(150.0, 450.0, 120.0);  // 3x surge
  load.api_weights = topo.api_weights;
  load.on_complete = [&](const trace::RequestTrace& t) {
    if (cluster.now() < 120.0) return;  // only measure the surge window
    if (t.ok) {
      latencies.push_back(t.e2e_ms());
    } else {
      ++timeouts;
    }
  };
  workload::ClosedLoopGenerator gen{cluster, load};
  gen.start(400.0);

  DrillResult out;
  for (double t = 10.0; t <= 400.0; t += 10.0) {
    cluster.run_until(t);
    out.peak_instances = std::max(out.peak_instances, cluster.total_target_instances());
  }
  out.p99_during_surge_ms =
      latencies.empty() ? 0.0 : graf::percentile(latencies, 99.0);
  out.timeouts = timeouts;
  return out;
}

}  // namespace

int main() {
  using namespace graf;
  const auto topo = apps::online_boutique();

  autoscalers::K8sHpa hpa{{.target_utilization = 0.5}};
  const DrillResult reactive = drill(hpa, 19);

  std::vector<double> demands;
  for (const auto& svc : topo.services) demands.push_back(svc.demand_mean_ms);
  autoscalers::ProactiveOracle oracle{{.headroom = 0.5, .sync_period = 2.0},
                                      core::expected_fanout(topo), demands};
  const DrillResult proactive = drill(oracle, 19);

  Table table{"Surge drill: 150 -> 450 users at t=120s (Online Boutique)"};
  table.header({"strategy", "p99 during surge (ms)", "peak instances", "timeouts"});
  table.row({"K8s HPA (50%)", Table::num(reactive.p99_during_surge_ms, 0),
             Table::integer(reactive.peak_instances),
             Table::integer(static_cast<long long>(reactive.timeouts))});
  table.row({"proactive whole-chain", Table::num(proactive.p99_during_surge_ms, 0),
             Table::integer(proactive.peak_instances),
             Table::integer(static_cast<long long>(proactive.timeouts))});
  table.print(std::cout);

  std::cout << "The reactive HPA discovers the surge one service at a time (the\n"
               "cascading effect); scaling the whole chain from the front-end\n"
               "signal avoids the pile-up. GRAF automates the proactive column\n"
               "without needing the oracle's demand knowledge — see\n"
               "examples/slo_autoscaling.cpp.\n";
  return 0;
}
