// Fleet mode: one FleetServer daemon planning for four benchmark
// applications at once — Online Boutique, Social Network, Robot Shop, and
// Bookinfo, each a live simulated cluster pushing telemetry through the
// lock-free ingest ring. Subscribers apply allocation decisions to the
// clusters *only when a plan changes*; the Robot Shop tenant additionally
// runs under a fault schedule (instance crashes + telemetry blackouts), and
// its degradation never stalls its siblings.
//
// Trains one tiny model per application inline (each on the analytic
// latency surface of its topology), then replays the identical scripted
// fleet scenario at 1 and at 8 worker threads — the §3.10 determinism
// claim. Exits non-zero if the replay diverges, a healthy tenant degrades,
// the faulted tenant never does, or notifications aren't change-only.
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "apps/topology.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "fleet/fleet_server.h"
#include "gnn/latency_model.h"
#include "sim/fault_injector.h"
#include "workload/open_loop.h"

namespace {

using namespace graf;

constexpr double kEnd = 180.0;        // simulated seconds per scenario run
constexpr double kTick = 2.0;         // telemetry push + fleet step cadence
constexpr double kSurgeAt = 90.0;     // all apps: 15 -> 28 qps step
constexpr int kFaulted = 2;           // Robot Shop rides the fault schedule

/// Train a small model on the analytic latency surface of a topology:
/// latency = sum_i demand_i * 1000 / quota_i + 0.6 * mean node workload,
/// with node workloads derived from per-API rates through the expected
/// fan-out — the same shape the solver will navigate at fleet runtime.
gnn::LatencyModel train_model(const apps::Topology& topo, std::uint64_t seed) {
  const auto fanout = core::expected_fanout(topo);
  const std::size_t services = topo.service_count();
  gnn::MpnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.mpnn_hidden = 8;
  cfg.readout_hidden = 24;
  cfg.dropout_p = 0.0;
  gnn::LatencyModel m{apps::make_dag(topo), cfg, seed};

  Rng rng{seed + 100};
  gnn::Dataset data;
  for (int i = 0; i < 1500; ++i) {
    gnn::Sample s;
    std::vector<double> api_w(topo.apis.size());
    for (double& w : api_w) w = rng.uniform(5.0, 40.0);
    s.workload.assign(services, 0.0);
    for (std::size_t a = 0; a < api_w.size(); ++a)
      for (std::size_t sv = 0; sv < services; ++sv)
        s.workload[sv] += api_w[a] * fanout[a][sv];
    s.quota.resize(services);
    double latency = 0.0, mean_w = 0.0;
    for (std::size_t sv = 0; sv < services; ++sv) {
      const double unit = topo.services[sv].unit_quota;
      s.quota[sv] = rng.uniform(0.8 * unit, 4.0 * unit);
      latency += topo.services[sv].demand_mean_ms * 1000.0 / s.quota[sv];
      mean_w += s.workload[sv] / static_cast<double>(services);
    }
    s.latency_ms = latency + 0.6 * mean_w;
    data.push_back(std::move(s));
  }
  gnn::TrainConfig tc;
  tc.iterations = 1200;
  tc.batch_size = 64;
  tc.lr = 2e-3;
  tc.lr_decay_every = 500;
  tc.eval_every = 0;
  tc.seed = seed;
  m.fit(data, {}, tc);
  return m;
}

/// The faulted tenant's weather: Poisson crashes plus two scripted
/// telemetry blackouts (so the signal-loss path fires on every run).
void arm_faults(sim::FaultInjector& injector, std::size_t service_count) {
  sim::FaultScheduleConfig cfg;
  cfg.seed = 47;
  cfg.from = 40.0;
  cfg.until = 150.0;
  cfg.crash_per_min = 1.0;
  injector.add(sim::FaultInjector::generate(cfg, static_cast<int>(service_count)));
  injector.blackout_telemetry(60.0, 12.0);
  injector.blackout_telemetry(120.0, 12.0);
  injector.arm();
}

struct TenantReport {
  std::string app;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double p99_ms = 0.0;
  std::uint64_t plans = 0;
  std::uint64_t changes = 0;
  std::uint64_t failures = 0;
  std::uint64_t signal_losses = 0;
  int degraded_episodes = 0;
};

struct ScenarioResult {
  std::vector<TenantReport> tenants;
  std::size_t steps = 0;
  std::size_t notifications = 0;
  std::uint64_t ring_dropped = 0;
  /// Exact-bits stream of every delivered PlanUpdate; two replays agree
  /// iff this string matches byte for byte.
  std::string digest;
};

ScenarioResult run_fleet(const std::vector<apps::Topology>& topos,
                         std::vector<gnn::LatencyModel>& models) {
  fleet::FleetServer server{{.ingest_capacity = 256}};

  std::vector<std::unique_ptr<sim::Cluster>> clusters;
  std::vector<fleet::TenantId> ids;
  for (std::size_t i = 0; i < topos.size(); ++i) {
    clusters.push_back(
        apps::make_cluster_factory(topos[i], {.seed = 29 + i})());

    const apps::Topology& topo = topos[i];
    fleet::TenantSpec spec;
    spec.application = topo.name;
    spec.slo_ms = 150.0 + 30.0 * static_cast<double>(i);
    spec.model = &models[i];
    spec.fanout = core::expected_fanout(topo);
    for (const sim::ServiceConfig& svc : topo.services) {
      // Floor above one unit keeps >= 2 replicas per tier (crash headroom,
      // as in the chaos drill); ceiling matches the trained quota region.
      spec.lo.push_back(1.1 * svc.unit_quota);
      spec.hi.push_back(4.0 * svc.unit_quota);
      spec.unit.push_back(svc.unit_quota);
      spec.max_instances.push_back(svc.max_instances);
    }
    spec.solver.max_iterations = 600;
    ids.push_back(server.add_tenant(spec));
  }

  // The faulted arm: crashes + scripted telemetry blackouts on one tenant.
  sim::FaultInjector injector{*clusters[kFaulted]};
  arm_faults(injector, topos[kFaulted].service_count());

  ScenarioResult out;
  std::ostringstream digest;
  // One subscription drives actuation for the whole fleet: updates arrive
  // only on plan change, and each is applied to its tenant's cluster.
  auto token = server.subscribe([&](const fleet::PlanUpdate& u) {
    core::ResourceController::apply(*clusters[u.tenant.slot], u.plan);
    ++out.notifications;
    digest << u.application << '#' << u.seq << ':';
    for (int inst : u.plan.instances) digest << inst << ',';
    digest << (u.degraded ? "D" : "-") << ';';
  });

  std::vector<workload::OpenLoopGenerator> gens;
  gens.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::step(15.0, 28.0, kSurgeAt);
    g.api_weights = topos[i].api_weights;
    g.seed = 7 + i;
    gens.emplace_back(*clusters[i], g);
    gens.back().start(kEnd);
  }

  std::vector<bool> was_degraded(clusters.size(), false);
  std::vector<int> episodes(clusters.size(), 0);
  for (double t = kTick; t <= kEnd; t += kTick) {
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      clusters[i]->run_until(t);
      fleet::TelemetryUpdate u;
      u.tenant = ids[i];
      u.now = t;
      for (std::size_t a = 0; a < clusters[i]->api_count(); ++a)
        u.api_qps.push_back(
            clusters[i]->api_qps(static_cast<int>(a), 2.0 * kTick));
      server.push(std::move(u));
    }
    server.step();
    ++out.steps;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      const bool now = server.tenant(ids[i])->degraded();
      if (now && !was_degraded[i]) ++episodes[i];
      was_degraded[i] = now;
    }
  }

  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const fleet::Tenant* t = server.tenant(ids[i]);
    out.tenants.push_back({topos[i].name, clusters[i]->completed(),
                           clusters[i]->failed(),
                           clusters[i]->e2e_latency_all().percentile(99.0),
                           t->plans(), t->plan_changes(), t->failures(),
                           t->signal_losses(), episodes[i]});
  }
  out.ring_dropped = static_cast<std::uint64_t>(
      server.metrics().counter("fleet.ingest.dropped").value());
  out.digest = digest.str();
  return out;
}

}  // namespace

int main() {
  std::vector<apps::Topology> topos{apps::online_boutique(),
                                    apps::social_network(), apps::robot_shop(),
                                    apps::bookinfo()};
  std::vector<gnn::LatencyModel> models;
  models.reserve(topos.size());
  for (std::size_t i = 0; i < topos.size(); ++i) {
    std::cerr << "fleet: training " << topos[i].name << " model ("
              << topos[i].service_count() << " services)...\n";
    models.push_back(train_model(topos[i], 13 + i));
  }

  std::cerr << "fleet: running the 4-tenant scenario...\n";
  const ScenarioResult fleet_run = run_fleet(topos, models);

  Table table{"Fleet mode: 4 tenants, one daemon, " +
              std::to_string(fleet_run.steps) + " control cycles (" +
              topos[kFaulted].name + " under crashes + blackouts)"};
  table.header({"tenant", "completed", "failed", "p99 (ms)", "plans",
                "changes", "signal loss", "degraded eps"});
  for (const TenantReport& r : fleet_run.tenants) {
    table.row({r.app, Table::integer(static_cast<long long>(r.completed)),
               Table::integer(static_cast<long long>(r.failed)),
               Table::num(r.p99_ms, 1),
               Table::integer(static_cast<long long>(r.plans)),
               Table::integer(static_cast<long long>(r.changes)),
               Table::integer(static_cast<long long>(r.signal_losses)),
               Table::integer(r.degraded_episodes)});
  }
  table.print(std::cout);

  const std::size_t ticks = fleet_run.steps * fleet_run.tenants.size();
  std::cout << "\nChange-only notification: " << fleet_run.notifications
            << " updates across " << ticks << " tenant-ticks ("
            << fleet_run.ring_dropped << " ring drops).\n";

  std::cerr << "fleet: replaying at 1 and 8 threads...\n";
  set_global_threads(1);
  const ScenarioResult single = run_fleet(topos, models);
  set_global_threads(8);
  const ScenarioResult eight = run_fleet(topos, models);
  set_global_threads(0);
  const bool replay_ok =
      single.digest == eight.digest && !single.digest.empty();
  std::cout << "Replay at 1 vs 8 threads: "
            << (replay_ok ? "bit-identical" : "DIVERGED") << " ("
            << single.notifications << " vs " << eight.notifications
            << " notifications).\n";

  bool healthy_clean = true;
  for (std::size_t i = 0; i < fleet_run.tenants.size(); ++i) {
    const TenantReport& r = fleet_run.tenants[i];
    if (static_cast<int>(i) != kFaulted &&
        (r.failures != 0 || r.degraded_episodes != 0))
      healthy_clean = false;
  }
  const TenantReport& faulted = fleet_run.tenants[kFaulted];
  const bool faulted_degraded =
      faulted.signal_losses > 0 && faulted.degraded_episodes > 0;
  const bool change_only = fleet_run.notifications < ticks;

  if (!replay_ok || !healthy_clean || !faulted_degraded || !change_only) {
    std::cerr << "fleet server demo: FAILED acceptance checks (replay="
              << replay_ok << " healthy=" << healthy_clean
              << " faulted=" << faulted_degraded
              << " change_only=" << change_only << ")\n";
    return 1;
  }
  std::cout << "Fleet demo passed: tenants planned independently, the "
               "faulted tenant\ndegraded and recovered alone, subscribers "
               "heard only plan changes, and\nthe scenario replays "
               "deterministically at any thread count.\n";
  return 0;
}
