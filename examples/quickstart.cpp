// Quickstart: stand up a simulated microservice application, drive it with
// an open-loop load generator, and read latency/utilization telemetry.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the substrate every GRAF experiment runs on:
// apps::* provides the paper's benchmark topologies, sim::Cluster executes
// their call trees on processor-sharing replicas, and the trace/metric
// surfaces expose what Jaeger/Prometheus would show.
#include <iostream>

#include "apps/catalog.h"
#include "common/table.h"
#include "workload/open_loop.h"

int main() {
  using namespace graf;

  // 1. Pick an application (Bookinfo: ProductPage -> {Details || Reviews ->
  //    Ratings}) and create a cluster for it.
  apps::Topology topo = apps::bookinfo();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 42});

  // 2. Provision each service: 1500 millicores total, split into instances
  //    of at most 1000 mc (Kubernetes-style replicas).
  for (int s = 0; s < static_cast<int>(cluster.service_count()); ++s)
    cluster.apply_total_quota(s, 1500.0, 1000.0);

  // 3. Drive it: 40 requests/s, Poisson arrivals, for 60 simulated seconds.
  workload::OpenLoopConfig load;
  load.rate = workload::Schedule::constant(40.0);
  workload::OpenLoopGenerator generator{cluster, load};
  generator.start(60.0);
  cluster.run_until(60.0);

  // 4. Read the telemetry.
  std::cout << "Requests: " << cluster.completed() << " completed, "
            << cluster.failed() << " failed\n\n";

  Table e2e{"End-to-end latency (product API)"};
  e2e.header({"percentile", "latency (ms)"});
  for (double rank : {50.0, 90.0, 95.0, 99.0})
    e2e.row({Table::num(rank, 0) + "%",
             Table::num(cluster.e2e_latency_all().percentile(rank), 1)});
  e2e.print(std::cout);

  Table per_service{"Per-service view"};
  per_service.header({"service", "p95 local (ms)", "utilization", "replicas"});
  for (int s = 0; s < static_cast<int>(cluster.service_count()); ++s) {
    per_service.row({cluster.service(s).name(),
                     Table::num(cluster.service_latency(s).percentile(95.0), 1),
                     Table::num(cluster.utilization_avg(s, 30.0), 2),
                     Table::integer(cluster.service(s).ready_count())});
  }
  per_service.print(std::cout);

  std::cout << "Note how 'details' is idle-cheap while the reviews->ratings\n"
               "branch dominates the end-to-end tail (paper §2.2).\n";
  return 0;
}
