// Telemetry tour: the observability subsystem end to end on Bookinfo.
//
// A quickly-trained GRAF stack autoscales a cluster through a traffic step
// while every layer publishes into one MetricsRegistry:
//
//   sim.*   per-service gauges (utilization, queue depth, instances),
//           counters (creations, drops), and the mergeable e2e latency
//           histogram,
//   core.*  plan() wall time, solver iterations, predicted vs measured p99,
//   profile/gnn timings via scoped timers.
//
// A Scraper attached to the simulation clock snapshots the registry every
// 15 s (the paper's metric sync period) and the run ends by exporting the
// scraped series to JSON + CSV — the artifact a Grafana-style frontend (or
// the plots in bench/) would consume.
#include <iostream>
#include <sstream>

#include "apps/catalog.h"
#include "common/table.h"
#include "core/graf_controller.h"
#include "core/latency_predictor.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"
#include "telemetry/exporter.h"
#include "telemetry/scraper.h"
#include "workload/open_loop.h"

int main() {
  using namespace graf;

  apps::Topology topo = apps::bookinfo();
  const std::vector<Qps> workload{45.0};
  const double slo_ms = 120.0;

  // -- train a small GRAF stack (see slo_autoscaling.cpp for the long form) --
  sim::Cluster train_cluster = apps::make_cluster(topo, {.seed = 7});
  core::WorkloadAnalyzer analyzer{train_cluster.api_count(),
                                  train_cluster.service_count()};
  core::SampleCollectorConfig scfg;
  scfg.window = 8.0;
  core::SampleCollector collector{train_cluster, analyzer, scfg};
  std::cout << "Reducing search space + collecting samples...\n";
  const auto space = collector.reduce_search_space(workload, slo_ms);
  const auto dataset = collector.collect(1000, space, workload, 0.5, 1.1);

  core::LatencyPredictor predictor{apps::make_dag(topo), gnn::MpnnConfig{}, 11};
  gnn::TrainConfig tcfg;
  tcfg.iterations = 3000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1000;
  tcfg.eval_every = 500;
  std::cout << "Training the GNN latency model...\n";
  predictor.train(dataset, tcfg);

  std::vector<Millicores> unit_mc;
  for (const auto& svc : topo.services) unit_mc.push_back(svc.unit_quota);
  core::ConfigurationSolver solver{predictor.model()};
  core::ResourceController controller{predictor.model(), solver, analyzer,
                                      space.lo, space.hi, unit_mc};
  controller.set_training_reference(dataset);
  core::GrafController autoscaler{controller, {.slo_ms = slo_ms}};

  // -- instrumented run: everything publishes into one registry -------------
  telemetry::MetricsRegistry registry;
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 13});
  cluster.set_metrics(&registry);

  // Telemetry-based p99 polling: core.measured_p99_ms comes from interval
  // deltas of the cluster's e2e log-histogram, not a copy-and-sort.
  autoscaler.set_metrics(&registry);

  telemetry::Scraper scraper{registry, {.period = 15.0}};
  const Seconds horizon = 600.0;
  scraper.attach(cluster.events(), horizon);
  autoscaler.attach(cluster, horizon);

  // Traffic step halfway through: 45 -> 75 qps.
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(45.0, 75.0, horizon / 2.0);
  g.api_weights = topo.api_weights;
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(horizon);

  std::cout << "Simulating " << horizon << " s with a 15 s scrape period...\n";
  cluster.run_until(horizon);

  // -- what came out ---------------------------------------------------------
  const auto& store = scraper.store();
  std::cout << scraper.scrapes() << " scrapes, " << store.size()
            << " series collected.\n\n";

  Table tail{"e2e p99 per scrape interval (sim.e2e_latency_ms.p99)"};
  tail.header({"t (s)", "p99 (ms)", "plan() p99 (us)", "frontend util"});
  const auto* p99 = store.find("sim.e2e_latency_ms.p99");
  const auto* plan_us = store.find("core.plan_us.p99");
  const auto* util = store.find("sim.utilization{service=\"" +
                                topo.services[0].name + "\"}");
  for (std::size_t i = 0; p99 != nullptr && i < p99->size(); i += 5) {
    const auto& pt = (*p99)[i];
    const double pl = plan_us != nullptr && i < plan_us->size()
                          ? (*plan_us)[i].value : 0.0;
    const double ut = util != nullptr && i < util->size() ? (*util)[i].value : 0.0;
    tail.row({Table::num(pt.time, 0), Table::num(pt.value, 1),
              Table::num(pl, 0), Table::num(ut, 2)});
  }
  tail.print(std::cout);

  const char* json_path = "telemetry_tour_series.json";
  const char* csv_path = "telemetry_tour_series.csv";
  if (telemetry::export_series_json(json_path, store))
    std::cout << "Wrote " << json_path << "\n";
  if (telemetry::export_series_csv(csv_path, store))
    std::cout << "Wrote " << csv_path << "\n";

  std::ostringstream snap_os;
  telemetry::write_snapshot_json(snap_os, registry.snapshot());
  std::cout << "Final snapshot: " << registry.size() << " metrics ("
            << snap_os.str().size() << " bytes of JSON)\n";
  return 0;
}
