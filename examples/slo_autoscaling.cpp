// SLO-driven autoscaling, end to end: the full GRAF pipeline on Bookinfo.
//
//   1. Algorithm 1 reduces the quota search space,
//   2. the state-aware collector gathers (workload, quota, p99) samples,
//   3. the GNN latency model trains on them,
//   4. the configuration solver finds the minimal quota meeting the SLO,
//   5. the resource controller deploys it, and we verify the measured p99.
//
// Deliberately small (a few thousand samples, a couple of minutes on one
// core) — see bench/ for the paper-scale experiments.
#include <iostream>

#include "apps/catalog.h"
#include "common/table.h"
#include "core/configuration_solver.h"
#include "core/latency_predictor.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"

int main() {
  using namespace graf;

  apps::Topology topo = apps::bookinfo();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 7});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};

  const std::vector<Qps> workload{45.0};  // product-page requests/s
  const double slo_ms = 120.0;

  // -- 1+2: search-space reduction and sample collection ---------------------
  core::SampleCollectorConfig scfg;
  scfg.window = 8.0;
  core::SampleCollector collector{cluster, analyzer, scfg};
  std::cout << "Reducing search space (Algorithm 1)...\n";
  const auto space = collector.reduce_search_space(workload, slo_ms);
  for (std::size_t s = 0; s < topo.service_count(); ++s)
    std::cout << "  " << topo.services[s].name << ": [" << space.lo[s] << ", "
              << space.hi[s] << "] mc\n";

  std::cout << "Collecting samples...\n";
  const auto dataset = collector.collect(1500, space, workload, 0.5, 1.1);
  std::cout << "  " << dataset.size() << " samples ("
            << collector.simulated_seconds() / 60.0 << " simulated minutes)\n";

  // -- 3: train the latency prediction model ---------------------------------
  core::LatencyPredictor predictor{apps::make_dag(topo), gnn::MpnnConfig{}, 11};
  gnn::TrainConfig tcfg;
  tcfg.iterations = 4000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1000;
  tcfg.eval_every = 400;
  std::cout << "Training the GNN latency model...\n";
  predictor.train(dataset, tcfg);
  const auto acc = predictor.model().evaluate_accuracy(predictor.test_set());
  std::cout << "  test MAPE " << Table::num(acc.mean_abs_pct_error, 1)
            << "%, signed " << Table::num(acc.mean_pct_error, 1) << "%\n";

  // -- 4: solve for the minimal SLO-feasible configuration -------------------
  core::ConfigurationSolver solver{predictor.model()};
  const auto node_workload = analyzer.distribute(workload);
  const auto result = solver.solve(node_workload, slo_ms, space.lo, space.hi);

  Table plan{"Solved configuration (SLO " + Table::num(slo_ms, 0) + " ms)"};
  plan.header({"service", "quota (mc)"});
  double total = 0.0;
  for (std::size_t s = 0; s < topo.service_count(); ++s) {
    plan.row({topo.services[s].name, Table::num(result.quota[s], 0)});
    total += result.quota[s];
  }
  plan.print(std::cout);
  std::cout << "Total " << Table::num(total, 0) << " mc, predicted p99 "
            << Table::num(result.predicted_ms, 0) << " ms (solved in "
            << result.iterations << " iterations / "
            << Table::num(result.solve_seconds * 1000.0, 1) << " ms)\n";

  // -- 5: deploy and verify ---------------------------------------------------
  for (std::size_t s = 0; s < result.quota.size(); ++s)
    cluster.apply_total_quota(static_cast<int>(s), result.quota[s], 1000.0);
  const double measured = collector.measure_tail(workload, 20.0, 99.0);
  std::cout << "Measured p99 after deployment: " << Table::num(measured, 0)
            << " ms (" << (measured <= slo_ms ? "meets" : "misses")
            << " the SLO)\n";
  return 0;
}
