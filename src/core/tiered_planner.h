// Two-tier surrogate-verified planning (DESIGN.md §3.14).
//
// The planner solves on the distilled surrogate first — the same batched
// multi-start descent the full solver runs (identical start draws, loss
// terms, ADAM trajectory, convergence bookkeeping, winner rule), but
// through a tape orders of magnitude smaller — then *verifies* the winning
// candidate with exactly one full-GNN forward. If the full model's
// prediction at the candidate disagrees with the surrogate's beyond a
// trust band (or predicts an SLO breach), the planner escalates to the
// full-GNN solve and feeds the miss back as a distillation sample; enough
// accumulated misses trigger an online surrogate refresh that rides the
// OnlineTrainer/ModelRegistry semantics (fine-tune a clone, adopt only if
// it beats the incumbent on the miss window, publish/promote through a
// SurrogateRegistry when one is attached).
//
// Accepted fast-path plans report the *full model's* prediction as
// predicted_ms — truth flows downstream (feasibility checks, telemetry,
// k-scaling), the surrogate only steers the descent.
//
// Determinism contract: a solve is a pure function of (surrogate bits,
// solver config, trust band, full model bits, inputs). The fleet stacks
// fingerprint-equal tenants' surrogate descents into one tape via
// solve_items(); item t's result is bit-identical to the tenant's own
// solo solve, the same §3.13 property the full-GNN batch path proves.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/units.h"
#include "core/configuration_solver.h"
#include "gnn/latency_model.h"
#include "gnn/surrogate_model.h"
#include "serve/surrogate_store.h"
#include "telemetry/metrics.h"

namespace graf::core {

struct TieredPlannerConfig {
  /// Surrogate-tier descent shape. Shares SolverConfig so the fast path
  /// inherits multi-start, decay, and termination semantics unchanged.
  SolverConfig solver;
  /// Accept the surrogate candidate when |surrogate - full| / full * 100
  /// stays within this band AND the full model deems the candidate within
  /// SLO; otherwise escalate.
  double trust_band_pct = 10.0;
  /// Retained escalation-miss samples (teacher-labelled) for refresh.
  std::size_t refresh_window = 256;
  /// Escalations per automatic refresh attempt (0 = manual refresh_now()
  /// only — the fleet default, where admission distillation is fresh).
  std::size_t refresh_after = 0;
  /// Minimum window fill before any refresh attempt.
  std::size_t refresh_min_samples = 32;
  /// Short fine-tune schedule for the refresh clone. Symmetric thetas for
  /// the same reason as DistillConfig::train: the trust band is symmetric.
  gnn::TrainConfig refresh_train{.iterations = 400,
                                 .batch_size = 64,
                                 .lr = 1e-3,
                                 .lr_decay_every = 150,
                                 .lr_decay_factor = 0.5,
                                 .theta_under = 0.1,
                                 .theta_over = 0.1,
                                 .eval_every = 100,
                                 .seed = 29,
                                 .select_best = true,
                                 .shard_rows = 32};
};

/// Solver-in-the-loop distillation (TieredPlanner::distill_for_planner).
/// A plain SurrogateDistiller::distill() pass fits the operating region
/// uniformly, but the fast path then *optimizes against* the surrogate and
/// lands on the thin level set `predicted == slo_margin * slo` — exactly
/// where uniform coverage is thinnest, with an adversarial bias toward
/// wherever the surrogate under-predicts. Each refinement round rolls the
/// surrogate descent out over fresh region workloads, labels the winning
/// candidates with the teacher, folds them into the training set, and
/// fine-tunes — so by the last round the surrogate is accurate precisely
/// where the planner will query it.
struct SolverDistillConfig {
  /// The plain offline pass (phase 1).
  gnn::DistillConfig base;
  /// Rollout-label-refit rounds (0 = plain distillation only).
  std::size_t rounds = 2;
  /// Surrogate-descent rollouts per round, batched as one stacked tape.
  std::size_t queries_per_round = 256;
  /// Extra teacher labels per rollout at jittered quotas around the winner
  /// (each coordinate scaled by uniform(1 - jitter_pct, 1 + jitter_pct),
  /// clamped to [lo, hi]). The fine-tune shifts the model — and with it the
  /// next descent's landing spot — so labeling a neighborhood instead of a
  /// point keeps the drifted queries on trained terrain.
  std::size_t jitter_per_query = 2;
  double jitter_pct = 0.10;
  /// Seed for the rollout workload draws (derive_seed(seed, round, query)).
  std::uint64_t seed = 4099;
  /// Short fine-tune schedule applied after each round's fold-in
  /// (symmetric thetas — see gnn::DistillConfig::train).
  gnn::TrainConfig refine{.iterations = 1200,
                          .batch_size = 128,
                          .lr = 1e-3,
                          .lr_decay_every = 400,
                          .lr_decay_factor = 0.6,
                          .theta_under = 0.1,
                          .theta_over = 0.1,
                          .eval_every = 200,
                          .seed = 13,
                          .select_best = false,
                          .shard_rows = 32};
};

/// Per-tenant two-tier planning spec (fleet admission, fleet/tenant.h):
/// when enabled, the tenant distills its model into a surrogate at
/// admission (solver-in-the-loop, against the tenant's own SLO) and routes
/// every solve through a TieredPlanner.
struct TieredSpec {
  bool enabled = false;
  SolverDistillConfig distill;
  TieredPlannerConfig planner;
};

class TieredPlanner {
 public:
  /// The planner serves `surrogate` until a handle/registry swap or an
  /// adopted refresh replaces it.
  TieredPlanner(std::shared_ptr<gnn::SurrogateModel> surrogate,
                TieredPlannerConfig cfg);

  const TieredPlannerConfig& config() const { return cfg_; }

  /// Serve the surrogate through a hot-swappable handle: every solve (and
  /// surrogate_generation()) re-acquires, so registry promotes/rollbacks
  /// land between control ticks. A swap to a different instance bumps the
  /// generation — plan-cache entries keyed on it can never go stale.
  void set_handle(serve::SurrogateHandle* handle);
  /// Adopted refreshes publish+promote through `registry` (checkpointing
  /// to its store dir); attach the planner's handle to the same key so the
  /// promoted version comes back through set_handle's path.
  void set_registry(serve::SurrogateRegistry* registry, serve::ModelKey key);

  /// The surrogate a solve would descend right now (refreshes from the
  /// handle first). Single-writer like the rest of the planner.
  gnn::SurrogateModel& active_surrogate();
  /// Monotone counter bumped whenever the served surrogate instance
  /// changes (handle swap or adopted refresh) — the plan-cache key
  /// component (ResourceController planner_bits).
  std::uint64_t surrogate_generation();

  /// Two-tier solve: surrogate multi-start descent, one full-GNN verify,
  /// escalate to full_solver.solve() on a trust-band miss. Bit-identical
  /// to a fleet-batched solve_items() over fingerprint-equal surrogates.
  SolverResult solve(gnn::LatencyModel& verifier, ConfigurationSolver& full_solver,
                     std::span<const double> workload, double slo_ms,
                     std::span<const Millicores> lo, std::span<const Millicores> hi);

  /// One tenant's request inside a stacked surrogate batch. Spans alias
  /// caller storage for the duration of solve_items; planner/verifier/
  /// full_solver are the *tenant's own* (counters, escalated solves, and
  /// miss windows stay per-tenant).
  struct Item {
    TieredPlanner* planner = nullptr;
    gnn::LatencyModel* verifier = nullptr;
    ConfigurationSolver* full_solver = nullptr;
    std::span<const double> workload;
    double slo_ms = 0.0;
    std::span<const Millicores> lo;
    std::span<const Millicores> hi;
  };

  /// Descend every item's surrogate multi-starts as rows of ONE tape
  /// through `surrogate` (which must be fingerprint-equal to each item
  /// planner's active surrogate), then verify/escalate per item. Item t's
  /// result is bit-identical to items[t].planner->solve(...) alone —
  /// same start rows, per-row constant qnorm/target columns (mul vs scale,
  /// §3.13), frozen-row bookkeeping, winner rule, verification forward,
  /// and escalation path. Static because the batch spans tenants.
  static std::vector<SolverResult> solve_items(gnn::SurrogateModel& surrogate,
                                               const SolverConfig& cfg,
                                               std::span<const Item> items);

  /// Fine-tune a clone on the miss window and adopt it if it beats the
  /// incumbent there (holdout-gate semantics, serve/online_trainer.h).
  /// Returns true when the refreshed surrogate was adopted.
  bool refresh_now();

  /// Solver-in-the-loop distillation (see SolverDistillConfig): plain
  /// distill, then `rounds` x { batched surrogate-descent rollout over
  /// region workloads at `slo_ms`, teacher-label the winners, fold in,
  /// fine-tune }. `solver` should be the config the planner will descend
  /// with (TieredPlannerConfig::solver) so the rollouts reproduce the
  /// production query distribution. Deterministic at any GRAF_THREADS:
  /// rollout draws are per-(round, query) derived streams and the descent
  /// is the same single-tape path solve() runs.
  static gnn::SurrogateDistiller::Result distill_for_planner(
      gnn::LatencyModel& teacher, std::span<const double> workload_hi,
      std::span<const Millicores> lo, std::span<const Millicores> hi,
      double slo_ms, const SolverDistillConfig& cfg, const SolverConfig& solver);

  /// Intern core.surrogate.* instruments (nullptr detaches):
  /// fast_hits / escalations / distill_samples / refreshes counters,
  /// trust_band_pct and last disagreement gauges.
  void set_metrics(telemetry::MetricsRegistry* registry);

  std::uint64_t fast_hits() const { return fast_hits_; }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t distill_samples() const { return distill_samples_; }
  std::uint64_t refreshes() const { return refreshes_; }
  std::size_t miss_window_size() const { return window_.size(); }

 private:
  /// One row-block of a stacked surrogate descent (no verification tier).
  struct DescentRequest {
    std::span<const double> workload;
    double slo_ms = 0.0;
    std::span<const Millicores> lo;
    std::span<const Millicores> hi;
  };
  struct Descent {
    SolverResult winner;                    ///< predicted_ms is the surrogate's
    std::size_t surrogate_iterations = 0;   ///< summed over this item's starts
    double seconds = 0.0;                   ///< shared stacked-descent wall time
  };
  /// The pure surrogate tier: every request's multi-starts descend as rows
  /// of one tape (identical start rows / loss terms / winner rule as the
  /// full solver, §3.13). Shared by solve_items() and the distillation
  /// rollouts, so both see the exact same query distribution.
  static std::vector<Descent> descend(gnn::SurrogateModel& surrogate,
                                      const SolverConfig& cfg,
                                      std::span<const DescentRequest> requests);

  void note_fast_hit(double disagreement_pct);
  void note_escalation(double disagreement_pct);
  /// Record a teacher-labelled miss sample and maybe auto-refresh.
  void note_miss_sample(std::span<const double> workload,
                        std::span<const Millicores> quota, double teacher_ms);
  void maybe_auto_refresh();
  void adopt(gnn::SurrogateModel&& candidate);

  TieredPlannerConfig cfg_;
  std::shared_ptr<gnn::SurrogateModel> served_;
  std::uint64_t generation_ = 1;

  serve::SurrogateHandle* handle_ = nullptr;
  serve::SurrogateRegistry* registry_ = nullptr;
  serve::ModelKey registry_key_{};

  gnn::Dataset window_;  // bounded FIFO of escalation-miss samples
  std::size_t misses_since_refresh_ = 0;

  std::uint64_t fast_hits_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t distill_samples_ = 0;
  std::uint64_t refreshes_ = 0;

  telemetry::Counter* fast_hits_counter_ = nullptr;
  telemetry::Counter* escalations_counter_ = nullptr;
  telemetry::Counter* distill_samples_counter_ = nullptr;
  telemetry::Counter* refreshes_counter_ = nullptr;
  telemetry::Gauge* trust_band_gauge_ = nullptr;
  telemetry::Gauge* disagreement_gauge_ = nullptr;
};

}  // namespace graf::core
