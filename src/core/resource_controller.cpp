#include "core/resource_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "serve/serving_handle.h"
#include "telemetry/profiler.h"

namespace graf::core {

ResourceController::ResourceController(gnn::LatencyModel& model,
                                       ConfigurationSolver& solver,
                                       WorkloadAnalyzer& analyzer,
                                       std::vector<Millicores> lo,
                                       std::vector<Millicores> hi,
                                       std::vector<Millicores> unit_mc)
    : model_{&model}, solver_{solver}, analyzer_{analyzer}, lo_{std::move(lo)},
      hi_{std::move(hi)}, unit_{std::move(unit_mc)} {
  const std::size_t n = model_->node_count();
  if (lo_.size() != n || hi_.size() != n || unit_.size() != n)
    throw std::invalid_argument{"ResourceController: bound/unit dimension mismatch"};
  train_max_workload_.assign(n, 0.0);
}

void ResourceController::set_metrics(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    plan_timer_ = nullptr;
    plans_total_ = nullptr;
    solver_iterations_ = predicted_p99_ = scale_factor_ = planned_quota_ = nullptr;
  } else {
    plan_timer_ = &registry->histogram("core.plan_us");
    plans_total_ = &registry->counter("core.plans_total");
    solver_iterations_ = &registry->gauge("core.solver_iterations");
    predicted_p99_ = &registry->gauge("core.predicted_p99_ms");
    scale_factor_ = &registry->gauge("core.scale_factor");
    planned_quota_ = &registry->gauge("core.planned_quota_mc");
  }
  solver_.set_metrics(registry);
}

void ResourceController::set_serving_handle(serve::ServingHandle* handle) {
  handle_ = handle;
  refresh_model();
}

void ResourceController::refresh_model() {
  if (handle_ == nullptr) return;
  std::shared_ptr<gnn::LatencyModel> current = handle_->acquire();
  if (current == nullptr || current.get() == model_) return;
  if (current->node_count() != lo_.size())
    throw std::invalid_argument{
        "ResourceController: served model node count mismatch"};
  pinned_ = std::move(current);
  model_ = pinned_.get();
  solver_.rebind(*model_);
}

gnn::LatencyModel& ResourceController::active_model() {
  refresh_model();
  return *model_;
}

void ResourceController::set_training_reference(const gnn::Dataset& train) {
  const std::size_t n = model_->node_count();
  train_max_workload_.assign(n, 0.0);
  for (const auto& s : train)
    for (std::size_t i = 0; i < n; ++i)
      train_max_workload_[i] = std::max(train_max_workload_[i], s.workload[i]);
}

AllocationPlan ResourceController::plan(std::span<const Qps> api_qps, double slo_ms) {
  telemetry::ScopedTimer plan_timer{plan_timer_};
  refresh_model();  // pick up any model hot-swapped since the last decision
  const std::size_t n = model_->node_count();
  std::vector<double> node_workload = analyzer_.distribute(api_qps);

  // Workload scaling (§3.6): shrink into the trained region by a common
  // factor; quotas are scaled back up by the same factor afterwards.
  double k = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (train_max_workload_[i] > 0.0)
      k = std::max(k, node_workload[i] / train_max_workload_[i]);
  }
  std::vector<double> scaled = node_workload;
  for (double& w : scaled) w /= k;

  AllocationPlan plan;
  plan.scale_factor = k;
  plan.solver = solver_.solve(scaled, slo_ms, lo_, hi_);
  plan.predicted_ms = plan.solver.predicted_ms;
  plan.quota.assign(n, 0.0);
  plan.instances.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    plan.quota[i] = plan.solver.quota[i] * k;
    // Eq. 7: round the continuous quota up to whole instance units.
    plan.instances[i] =
        std::max(1, static_cast<int>(std::ceil(plan.quota[i] / unit_[i])));
  }
  if (plans_total_ != nullptr) {
    plans_total_->add();
    solver_iterations_->set(static_cast<double>(plan.solver.iterations));
    predicted_p99_->set(plan.predicted_ms);
    scale_factor_->set(plan.scale_factor);
    double total_mc = 0.0;
    for (double q : plan.quota) total_mc += q;
    planned_quota_->set(total_mc);
  }
  return plan;
}

void ResourceController::apply(sim::Cluster& cluster, const AllocationPlan& plan) {
  if (plan.instances.size() != cluster.service_count())
    throw std::invalid_argument{"ResourceController::apply: plan/cluster mismatch"};
  for (std::size_t s = 0; s < plan.instances.size(); ++s) {
    sim::Service& svc = cluster.service(static_cast<int>(s));
    if (plan.instances[s] != svc.target_count()) svc.scale_to(plan.instances[s]);
  }
}

}  // namespace graf::core
