#include "core/resource_controller.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/tiered_planner.h"
#include "serve/serving_handle.h"
#include "telemetry/profiler.h"

namespace graf::core {
namespace {

/// ~2% relative quantization: workloads within a bucket share a cached plan.
/// log1p keeps zero workloads in a bucket of their own.
std::int32_t workload_bucket(double w) {
  return static_cast<std::int32_t>(std::llround(std::log1p(w) * 50.0));
}

}  // namespace

ResourceController::ResourceController(gnn::LatencyModel& model,
                                       ConfigurationSolver& solver,
                                       WorkloadAnalyzer& analyzer,
                                       std::vector<Millicores> lo,
                                       std::vector<Millicores> hi,
                                       std::vector<Millicores> unit_mc)
    : model_{&model}, solver_{solver}, analyzer_{analyzer}, lo_{std::move(lo)},
      hi_{std::move(hi)}, unit_{std::move(unit_mc)} {
  const std::size_t n = model_->node_count();
  if (lo_.size() != n || hi_.size() != n || unit_.size() != n)
    throw std::invalid_argument{"ResourceController: bound/unit dimension mismatch"};
  train_max_workload_.assign(n, 0.0);
}

void ResourceController::set_metrics(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    plan_timer_ = nullptr;
    plans_total_ = nullptr;
    solver_iterations_ = predicted_p99_ = scale_factor_ = planned_quota_ = nullptr;
    degraded_gauge_ = saturated_gauge_ = nullptr;
    fault_model_mismatch_ = fault_analyzer_ = fault_nan_ = fault_infeasible_ = nullptr;
    cache_hits_counter_ = cache_misses_counter_ = cache_evictions_counter_ = nullptr;
    cache_saved_us_ = nullptr;
  } else {
    plan_timer_ = &registry->histogram("core.plan_us");
    plans_total_ = &registry->counter("core.plans_total");
    solver_iterations_ = &registry->gauge("core.solver_iterations");
    predicted_p99_ = &registry->gauge("core.predicted_p99_ms");
    scale_factor_ = &registry->gauge("core.scale_factor");
    planned_quota_ = &registry->gauge("core.planned_quota_mc");
    // Interned by name: GrafController's signal-loss path sets the same
    // gauge instance, so "the control plane is degraded" is one signal.
    degraded_gauge_ = &registry->gauge("core.degraded");
    saturated_gauge_ = &registry->gauge("core.plan_saturated");
    fault_model_mismatch_ = &registry->counter("faults.model_shape_mismatch");
    fault_analyzer_ = &registry->counter("faults.analyzer_not_ready");
    fault_nan_ = &registry->counter("faults.solver_nan");
    fault_infeasible_ = &registry->counter("faults.solver_infeasible");
    cache_hits_counter_ = &registry->counter("core.plan_cache.hits");
    cache_misses_counter_ = &registry->counter("core.plan_cache.misses");
    cache_evictions_counter_ = &registry->counter("core.plan_cache.evictions");
    cache_saved_us_ = &registry->counter("core.plan_cache.saved_us");
  }
  solver_.set_metrics(registry);
  metrics_registry_ = registry;
  if (tiered_ != nullptr) tiered_->set_metrics(registry);
}

void ResourceController::set_tiered_planner(TieredPlanner* planner) {
  tiered_ = planner;
  planner_mode_ = planner != nullptr ? PlannerMode::kSurrogateVerified
                                     : PlannerMode::kFull;
  if (tiered_ != nullptr) tiered_->set_metrics(metrics_registry_);
  // No cache clear needed: planner_bits diverge, so entries written by the
  // other mode simply stop matching (and become valid again if it returns).
}

void ResourceController::set_serving_handle(serve::ServingHandle* handle) {
  handle_ = handle;
  refresh_model();
}

void ResourceController::refresh_model() {
  if (handle_ == nullptr) return;
  std::shared_ptr<gnn::LatencyModel> current = handle_->acquire();
  if (current == nullptr || current.get() == model_) return;
  if (current->node_count() != lo_.size()) {
    // A registry published a model for a different topology. Throwing here
    // used to take the whole control loop down mid-tick; instead keep the
    // previously pinned (correct-shape) model and answer from the degraded
    // path until a compatible model is served.
    model_mismatch_ = true;
    if (fault_model_mismatch_ != nullptr) fault_model_mismatch_->add();
    return;
  }
  model_mismatch_ = false;
  // Rebind before dropping the old pin: rebind() sanity-checks the new
  // model's node count against the solver's current one, and if this
  // controller holds the last reference (the handle already swapped the
  // old model out), reassigning pinned_ first would free what that check
  // reads. Rebind also leaves the controller untouched if it throws.
  solver_.rebind(*current);
  pinned_ = std::move(current);
  model_ = pinned_.get();
  // New weights mean cached plans no longer describe what the solver would
  // produce; the generation bump also poisons any key already handed out.
  invalidate_plan_cache();
}

void ResourceController::invalidate_plan_cache() {
  plan_cache_.clear();
  ++model_generation_;
}

void ResourceController::set_plan_cache_capacity(std::size_t capacity) {
  plan_cache_capacity_ = capacity;
  invalidate_plan_cache();
}

gnn::LatencyModel& ResourceController::active_model() {
  refresh_model();
  return *model_;
}

void ResourceController::set_training_reference(const gnn::Dataset& train) {
  const std::size_t n = model_->node_count();
  train_max_workload_.assign(n, 0.0);
  for (const auto& s : train)
    for (std::size_t i = 0; i < n; ++i)
      train_max_workload_[i] = std::max(train_max_workload_[i], s.workload[i]);
  invalidate_plan_cache();  // the scale factor k changes with the reference
}

void ResourceController::set_max_instances(std::vector<int> max_instances) {
  if (!max_instances.empty() && max_instances.size() != unit_.size())
    throw std::invalid_argument{"ResourceController: max_instances dimension mismatch"};
  for (int m : max_instances)
    if (m < 1) throw std::invalid_argument{"ResourceController: max_instances must be >= 1"};
  max_instances_ = std::move(max_instances);
  invalidate_plan_cache();  // clamping rules are part of the cached result
}

AllocationPlan ResourceController::degraded_plan(telemetry::Counter* cause) {
  ++degraded_plans_;
  if (cause != nullptr) cause->add();
  // Entering degraded mode signals the solve pipeline can't be trusted
  // (model mismatch, analyzer blackout, NaN, infeasible) — stop serving
  // cached products of that same pipeline until a clean solve lands.
  invalidate_plan_cache();
  AllocationPlan plan;
  if (have_last_good_) {
    plan = last_good_;
  } else {
    // No feasible plan yet (fault before the first clean solve): provision
    // at the hi bounds — the most conservative allocation inside the
    // trained region, close to what a best-effort solve would land on.
    const std::size_t n = lo_.size();
    plan.quota = hi_;
    plan.instances.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      plan.instances[i] =
          std::max(1, static_cast<int>(std::ceil(plan.quota[i] / unit_[i])));
      if (!max_instances_.empty())
        plan.instances[i] = std::min(plan.instances[i], max_instances_[i]);
    }
    plan.feasible = false;
  }
  plan.degraded = true;
  publish_plan(plan);
  return plan;
}

void ResourceController::publish_plan(const AllocationPlan& plan) {
  if (plans_total_ == nullptr) return;
  plans_total_->add();
  solver_iterations_->set(static_cast<double>(plan.solver.iterations));
  predicted_p99_->set(plan.predicted_ms);
  scale_factor_->set(plan.scale_factor);
  double total_mc = 0.0;
  for (double q : plan.quota) total_mc += q;
  planned_quota_->set(total_mc);
  degraded_gauge_->set(plan.degraded ? 1.0 : 0.0);
  saturated_gauge_->set(plan.saturated ? 1.0 : 0.0);
}

AllocationPlan ResourceController::plan(std::span<const Qps> api_qps, double slo_ms) {
  telemetry::ScopedTimer plan_timer{plan_timer_};
  PlanPrep prep = begin_plan(api_qps, slo_ms);
  if (prep.done) return std::move(prep.plan);
  SolverResult solved = solve_prepared(prep);
  return finish_plan(std::move(prep), std::move(solved));
}

PlanPrep ResourceController::begin_plan(std::span<const Qps> api_qps, double slo_ms) {
  PlanPrep prep;
  prep.slo_ms = slo_ms;
  refresh_model();  // pick up any model hot-swapped since the last decision
  if (model_mismatch_) {
    prep.plan = degraded_plan(fault_model_mismatch_);
    prep.done = true;
    return prep;
  }
  if (!analyzer_.ready()) {
    // No fan-out observed (tracing blackout since attach, or cold start):
    // distribute() would place zero workload everywhere and the solve would
    // starve every service.
    prep.plan = degraded_plan(fault_analyzer_);
    prep.done = true;
    return prep;
  }
  const std::size_t n = model_->node_count();
  std::vector<double> node_workload = analyzer_.distribute(api_qps);

  // Plan-cache lookup: post-distribute workloads fold fan-out/topology
  // effects into the key, so two ticks that quantize alike would solve
  // alike. A hit skips the solver outright (sub-millisecond tick).
  prep.key.resize(n);
  for (std::size_t i = 0; i < n; ++i) prep.key[i] = workload_bucket(node_workload[i]);
  prep.slo_bits = std::bit_cast<std::uint64_t>(slo_ms);
  prep.planner_bits = planner_bits();
  for (CachedPlan& entry : plan_cache_) {
    if (entry.generation != model_generation_ || entry.slo_bits != prep.slo_bits ||
        entry.planner_bits != prep.planner_bits ||
        entry.workload_buckets != prep.key)
      continue;
    entry.last_used = ++cache_tick_;
    ++cache_hits_;
    if (cache_hits_counter_ != nullptr) cache_hits_counter_->add();
    if (cache_saved_us_ != nullptr) cache_saved_us_->add(entry.solve_seconds * 1e6);
    last_good_ = entry.plan;  // cached plans are feasible by construction
    have_last_good_ = true;
    publish_plan(entry.plan);
    prep.plan = entry.plan;
    prep.done = true;
    return prep;
  }
  ++cache_misses_;
  if (cache_misses_counter_ != nullptr) cache_misses_counter_->add();

  // Workload scaling (§3.6): shrink into the trained region by a common
  // factor; quotas are scaled back up by the same factor afterwards.
  for (std::size_t i = 0; i < n; ++i) {
    if (train_max_workload_[i] > 0.0)
      prep.k = std::max(prep.k, node_workload[i] / train_max_workload_[i]);
  }
  prep.scaled = std::move(node_workload);
  for (double& w : prep.scaled) w /= prep.k;
  return prep;
}

std::uint64_t ResourceController::planner_bits() {
  if (planner_mode_ != PlannerMode::kSurrogateVerified || tiered_ == nullptr)
    return 0;
  // surrogate_generation() re-acquires the serving handle, so a registry
  // promote/rollback lands here — before the cache is consulted.
  return (std::uint64_t{1} << 63) |
         (tiered_->surrogate_generation() & ~(std::uint64_t{1} << 63));
}

SolverResult ResourceController::solve_prepared(const PlanPrep& prep) {
  if (planner_mode_ == PlannerMode::kSurrogateVerified && tiered_ != nullptr)
    return tiered_->solve(*model_, solver_, prep.scaled, prep.slo_ms, lo_, hi_);
  return solver_.solve(prep.scaled, prep.slo_ms, lo_, hi_);
}

AllocationPlan ResourceController::finish_plan(PlanPrep prep, SolverResult solved) {
  const std::size_t n = model_->node_count();
  const double k = prep.k;
  AllocationPlan plan;
  plan.scale_factor = k;
  plan.solver = std::move(solved);
  plan.predicted_ms = plan.solver.predicted_ms;

  // A corrupted model (mid-fine-tune swap, numerical blowup) can hand back
  // NaN/inf quotas or predictions; applying them would wreck the cluster.
  bool finite = std::isfinite(plan.predicted_ms);
  for (double q : plan.solver.quota) finite = finite && std::isfinite(q);
  if (!finite) return degraded_plan(fault_nan_);

  plan.quota.assign(n, 0.0);
  plan.instances.assign(n, 0);
  std::vector<double> clamped_scaled_quota(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    plan.quota[i] = plan.solver.quota[i] * k;
    // Eq. 7: round the continuous quota up to whole instance units.
    plan.instances[i] =
        std::max(1, static_cast<int>(std::ceil(plan.quota[i] / unit_[i])));
    // Clamp to the replica cap here, where the prediction can follow, rather
    // than letting Service::scale_to clamp silently after the fact.
    if (!max_instances_.empty() && plan.instances[i] > max_instances_[i]) {
      plan.instances[i] = max_instances_[i];
      plan.quota[i] =
          std::min(plan.quota[i], unit_[i] * static_cast<double>(max_instances_[i]));
      plan.saturated = true;
    }
    clamped_scaled_quota[i] = plan.quota[i] / k;
  }
  if (plan.saturated) {
    // predicted_ms must describe the allocation that actually lands.
    plan.predicted_ms = model_->predict(prep.scaled, clamped_scaled_quota);
    if (!std::isfinite(plan.predicted_ms)) return degraded_plan(fault_nan_);
  }

  plan.feasible = plan.predicted_ms <= prep.slo_ms;
  if (!plan.feasible) {
    // The solver itself reports this point misses the SLO: don't walk the
    // cluster onto it when a feasible allocation is still in hand.
    if (have_last_good_) return degraded_plan(fault_infeasible_);
    if (fault_infeasible_ != nullptr) fault_infeasible_->add();
    // Nothing to fall back on: apply the best effort, flagged infeasible.
  } else {
    last_good_ = plan;
    have_last_good_ = true;
    // Only clean, feasible plans are worth replaying. LRU-evict at capacity.
    if (plan_cache_capacity_ > 0) {
      if (plan_cache_.size() >= plan_cache_capacity_) {
        std::size_t victim = 0;
        for (std::size_t e = 1; e < plan_cache_.size(); ++e)
          if (plan_cache_[e].last_used < plan_cache_[victim].last_used) victim = e;
        plan_cache_[victim] = plan_cache_.back();
        plan_cache_.pop_back();
        ++cache_evictions_;
        if (cache_evictions_counter_ != nullptr) cache_evictions_counter_->add();
      }
      CachedPlan entry;
      entry.workload_buckets = std::move(prep.key);
      entry.slo_bits = prep.slo_bits;
      entry.generation = model_generation_;
      entry.planner_bits = prep.planner_bits;
      entry.plan = plan;
      entry.solve_seconds = plan.solver.solve_seconds;
      entry.last_used = ++cache_tick_;
      plan_cache_.push_back(std::move(entry));
    }
  }
  publish_plan(plan);
  return plan;
}

void ResourceController::apply(sim::Cluster& cluster, const AllocationPlan& plan) {
  if (plan.instances.size() != cluster.service_count())
    throw std::invalid_argument{"ResourceController::apply: plan/cluster mismatch"};
  for (std::size_t s = 0; s < plan.instances.size(); ++s) {
    sim::Service& svc = cluster.service(static_cast<int>(s));
    if (plan.instances[s] != svc.target_count()) svc.scale_to(plan.instances[s]);
  }
}

}  // namespace graf::core
