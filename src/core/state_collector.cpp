#include "core/state_collector.h"

namespace graf::core {

StateCollector::StateCollector(sim::Cluster& cluster, Seconds window)
    : cluster_{cluster}, window_{window} {}

std::vector<Qps> StateCollector::frontend_workload() const {
  std::vector<Qps> w(cluster_.api_count());
  for (std::size_t a = 0; a < w.size(); ++a)
    w[a] = cluster_.api_qps(static_cast<int>(a), window_);
  return w;
}

ClusterState StateCollector::collect() const {
  ClusterState st;
  st.time = cluster_.now();
  st.api_qps = frontend_workload();
  const std::size_t n = cluster_.service_count();
  st.quota.reserve(n);
  st.utilization.reserve(n);
  st.ready.reserve(n);
  st.creating.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto& svc = cluster_.service(static_cast<int>(s));
    st.quota.push_back(svc.total_quota());
    st.utilization.push_back(cluster_.utilization_avg(static_cast<int>(s), window_));
    st.ready.push_back(svc.ready_count());
    st.creating.push_back(svc.creating_count());
  }
  return st;
}

}  // namespace graf::core
