// Integer instance-count refinement (paper §6 "Integer Optimization for
// instances scaling").
//
// GRAF's solver works in continuous quota space and Eq. 7 rounds *up* to
// whole instances, so every service carries up to one instance-unit of
// slack. The paper notes "there is slight improvement room" if one performs
// integer optimization; this module implements the natural greedy variant:
// starting from the Eq. 7 plan, repeatedly remove the single instance whose
// removal keeps the model's latency estimate within the SLO and frees the
// most CPU, until no removal is feasible. The model evaluation keeps it a
// pure prediction-time optimization — no cluster interaction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"
#include "gnn/latency_model.h"

namespace graf::core {

struct IntegerRefinerConfig {
  /// Keep the refined plan's predicted latency below margin * SLO.
  double slo_margin = 0.95;
  /// Safety cap on refinement rounds (each round removes one instance).
  std::size_t max_rounds = 256;
};

struct RefinedPlan {
  std::vector<int> instances;
  std::vector<Millicores> quota;   ///< instances * unit
  double predicted_ms = 0.0;
  std::size_t removed = 0;         ///< instances shaved off the Eq. 7 plan
  Millicores saved_mc = 0.0;
};

class IntegerRefiner {
 public:
  IntegerRefiner(gnn::LatencyModel& model, IntegerRefinerConfig cfg = {});

  /// Refine an Eq. 7 plan. `workload` is per-node qps (same space the model
  /// was trained in), `unit_mc` the per-service instance size, `min_lo` the
  /// Algorithm-1 lower bounds (never refine below them).
  RefinedPlan refine(std::span<const double> workload, double slo_ms,
                     std::span<const int> instances,
                     std::span<const Millicores> unit_mc,
                     std::span<const Millicores> min_lo);

 private:
  gnn::LatencyModel& model_;
  IntegerRefinerConfig cfg_;
};

}  // namespace graf::core
