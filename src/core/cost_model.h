// Cost-benefit analysis (paper Table 3 + Fig. 19): what does it cost to
// collect the training samples and train the model on AWS EC2, and after
// how long does GRAF's instance saving pay it back?
#pragma once

#include <cstddef>

namespace graf::core {

/// AWS EC2 on-demand prices used by the paper's Table 3 ($/hour).
struct AwsPricing {
  double load_generator = 0.10;  ///< c4.large
  double worker_node = 0.398;    ///< c4.2xlarge
  double gpu_training = 0.526;   ///< g4dn.xlarge
  /// Price attributed to one microservice instance (fraction of a worker
  /// hosting several instances) for the savings computation.
  double per_instance = 0.05;
};

struct CostBreakdown {
  double load_gen_hours = 0.0;
  double worker_hours = 0.0;
  double gpu_hours = 0.0;
  double load_gen_usd = 0.0;
  double worker_usd = 0.0;
  double gpu_usd = 0.0;
  double total_usd = 0.0;
};

/// Table 3: cost of collecting `samples` at `seconds_per_sample` plus
/// `training_hours` of GPU time.
CostBreakdown training_cost(std::size_t samples, double seconds_per_sample = 15.0,
                            double training_hours = 16.0, AwsPricing prices = {});

/// $ saved per day by running `saved_instances` fewer instances.
double daily_saving_usd(double saved_instances, AwsPricing prices = {});

/// Net profit of adopting GRAF given a saving rate and a redeployment
/// (microservice update) period: savings accrue for `update_period_days`,
/// then collection + training must be repaid.
double net_profit_usd(double saved_instances, double update_period_days,
                      const CostBreakdown& cost, AwsPricing prices = {});

/// Fig. 19 frontier: the update period (days) at which GRAF breaks even for
/// a given instance saving. Infinite when nothing is saved.
double breakeven_days(double saved_instances, const CostBreakdown& cost,
                      AwsPricing prices = {});

}  // namespace graf::core
