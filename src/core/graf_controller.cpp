#include "core/graf_controller.h"

#include <algorithm>
#include <cmath>
#include <exception>

namespace graf::core {

GrafController::GrafController(ResourceController& controller, GrafControllerConfig cfg)
    : controller_{controller}, cfg_{cfg} {}

void GrafController::set_slo(double slo_ms) {
  cfg_.slo_ms = slo_ms;
  slo_dirty_ = true;
}

void GrafController::set_serving_handle(serve::ServingHandle* handle) {
  controller_.set_serving_handle(handle);
}

void GrafController::set_tiered_planner(TieredPlanner* planner) {
  controller_.set_tiered_planner(planner);
}

void GrafController::enable_forecast(const forecast::ForecastSpec& spec) {
  gate_ = std::make_unique<forecast::ForecastGate>(spec);
  gate_->set_metrics(metrics_);
  gate_->set_handle(forecast_handle_);
}

void GrafController::set_forecast_handle(serve::ForecastHandle* handle) {
  forecast_handle_ = handle;
  if (gate_ != nullptr) gate_->set_handle(handle);
}

void GrafController::set_metrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (gate_ != nullptr) gate_->set_metrics(registry);
  if (registry == nullptr) {
    solves_total_ = fault_exceptions_ = fault_signal_loss_ = nullptr;
    slo_gauge_ = measured_p99_ = degraded_gauge_ = nullptr;
  } else {
    solves_total_ = &registry->counter("core.solves_total");
    fault_exceptions_ = &registry->counter("faults.controller_exceptions");
    fault_signal_loss_ = &registry->counter("faults.signal_loss");
    slo_gauge_ = &registry->gauge("core.slo_ms");
    measured_p99_ = &registry->gauge("core.measured_p99_ms");
    // Same interned instance as ResourceController's — one degraded signal
    // for the whole control plane.
    degraded_gauge_ = &registry->gauge("core.degraded");
  }
  // Re-baseline against whatever the cluster's histogram holds right now, so
  // the next tick publishes a true interval percentile.
  seed_tail_baseline();
  controller_.set_metrics(registry);
}

void GrafController::seed_tail_baseline() {
  have_last_e2e_ = false;
  if (cluster_ == nullptr) return;
  telemetry::LogHistogram* hist = cluster_->e2e_histogram();
  if (hist == nullptr) return;
  last_e2e_ = hist->snapshot();
  have_last_e2e_ = true;
}

void GrafController::record_measured_tail() {
  if (measured_p99_ == nullptr || cluster_ == nullptr) return;
  telemetry::LogHistogram* hist = cluster_->e2e_histogram();
  if (hist == nullptr) return;
  // Interval p99 from bucket-count deltas: O(buckets), no copy, no sort.
  // The baseline snapshot is seeded at attach(), so even the first tick
  // reports only its own interval — never the cluster's cumulative history
  // from before this controller was attached.
  telemetry::HistogramSnapshot now = hist->snapshot();
  if (have_last_e2e_) {
    const telemetry::HistogramSnapshot interval = now.delta_since(last_e2e_);
    if (!interval.empty()) measured_p99_->set(interval.percentile(99.0));
  }
  last_e2e_ = std::move(now);
  have_last_e2e_ = true;
}

void GrafController::attach(sim::Cluster& cluster, Seconds until) {
  cluster_ = &cluster;
  until_ = until;
  last_applied_qps_.assign(cluster.api_count(), 0.0);
  slo_dirty_ = true;
  signal_lost_ = false;
  set_degraded(false);
  // Kill any tick chain from a previous attach() (stale lambdas in the old
  // event queue must not keep double-solving against the new cluster), and
  // baseline the tail-latency snapshot at the moment of attachment.
  const std::uint64_t generation = ++generation_;
  ticks_ = 0;
  seed_tail_baseline();
  cluster.events().schedule_in(cfg_.control_interval,
                               [this, generation] { tick(generation); });
}

void GrafController::set_degraded(bool on) {
  degraded_ = on;
  if (degraded_gauge_ != nullptr) degraded_gauge_->set(on ? 1.0 : 0.0);
}

void GrafController::tick(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer attach()
  if (cluster_->now() > until_) return;
  ++ticks_;
  std::vector<Qps> qps(cluster_->api_count());
  bool had_signal = false;
  for (std::size_t a = 0; a < qps.size(); ++a) {
    qps[a] = cluster_->api_qps(static_cast<int>(a), cfg_.rate_window);
    had_signal = had_signal || last_applied_qps_[a] > 0.0;
  }
  double total = 0.0;
  for (double q : qps) total += q;
  if (total <= 0.0 && had_signal && solves_ > 0) {
    // The workload signal vanished after we had one (telemetry blackout, not
    // a quiet cluster that never spoke): hold the last plan rather than
    // scale to a phantom zero, and say so.
    if (!signal_lost_) {
      signal_lost_ = true;
      if (fault_signal_loss_ != nullptr) fault_signal_loss_->add();
      set_degraded(true);
    }
    // Keep last_applied_qps_: when the signal returns near its old level the
    // hysteresis band sees no spurious "change" and the loop just resumes.
  } else {
    if (signal_lost_) {
      // Signal is back; the plan in force is whatever we last applied.
      signal_lost_ = false;
      set_degraded(last_plan_.degraded);
    }
    // Forecast mode: the vector handed to the hysteresis band and the
    // planner is max(observed, predicted_at_horizon) — which also keys the
    // plan cache on the planned-for workload, never the raw observation.
    // plan_qps() never throws; on forecaster failure it returns `qps`.
    const std::vector<Qps> planned =
        (gate_ != nullptr && total > 0.0) ? gate_->plan_qps(qps) : qps;
    bool changed = slo_dirty_;
    for (std::size_t a = 0; a < planned.size() && !changed; ++a) {
      const double denom = std::max(last_applied_qps_[a], 1e-9);
      changed = std::abs(planned[a] - last_applied_qps_[a]) / denom >
                cfg_.change_threshold;
    }
    if (changed && total > 0.0) {
      // A fault anywhere under plan/apply (solver blowup, shape race,
      // cluster apply) must not unwind through the event loop and kill the
      // autoscaler: a dead control loop is strictly worse than one more
      // interval on the previous plan.
      try {
        last_plan_ = controller_.plan(planned, cfg_.slo_ms);
        ResourceController::apply(*cluster_, last_plan_);
        last_applied_qps_ = planned;
        slo_dirty_ = false;
        ++solves_;
        if (solves_total_ != nullptr) solves_total_->add();
        set_degraded(last_plan_.degraded);
      } catch (const std::exception&) {
        ++plan_failures_;
        if (fault_exceptions_ != nullptr) fault_exceptions_->add();
        set_degraded(true);  // retry on the next tick, on the old plan
      }
    }
  }
  if (slo_gauge_ != nullptr) slo_gauge_->set(cfg_.slo_ms);
  record_measured_tail();
  cluster_->events().schedule_in(cfg_.control_interval,
                                 [this, generation] { tick(generation); });
}

}  // namespace graf::core
