#include "core/graf_controller.h"

#include <algorithm>
#include <cmath>

namespace graf::core {

GrafController::GrafController(ResourceController& controller, GrafControllerConfig cfg)
    : controller_{controller}, cfg_{cfg} {}

void GrafController::set_slo(double slo_ms) {
  cfg_.slo_ms = slo_ms;
  slo_dirty_ = true;
}

void GrafController::set_serving_handle(serve::ServingHandle* handle) {
  controller_.set_serving_handle(handle);
}

void GrafController::attach(sim::Cluster& cluster, Seconds until) {
  cluster_ = &cluster;
  until_ = until;
  last_applied_qps_.assign(cluster.api_count(), 0.0);
  slo_dirty_ = true;
  cluster.events().schedule_in(cfg_.control_interval, [this] { tick(); });
}

void GrafController::tick() {
  if (cluster_->now() > until_) return;
  std::vector<Qps> qps(cluster_->api_count());
  bool changed = slo_dirty_;
  for (std::size_t a = 0; a < qps.size(); ++a) {
    qps[a] = cluster_->api_qps(static_cast<int>(a), cfg_.rate_window);
    const double denom = std::max(last_applied_qps_[a], 1e-9);
    if (std::abs(qps[a] - last_applied_qps_[a]) / denom > cfg_.change_threshold)
      changed = true;
  }
  double total = 0.0;
  for (double q : qps) total += q;
  if (changed && total > 0.0) {
    last_plan_ = controller_.plan(qps, cfg_.slo_ms);
    ResourceController::apply(*cluster_, last_plan_);
    last_applied_qps_ = qps;
    slo_dirty_ = false;
    ++solves_;
  }
  cluster_->events().schedule_in(cfg_.control_interval, [this] { tick(); });
}

}  // namespace graf::core
