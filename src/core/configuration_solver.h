// Configuration solver (paper §3.5): gradient-descent (ADAM) optimization
// of per-service CPU quotas through the trained latency prediction model.
//
//   Loss(r, SLO) = sum(r)  +  rho * max(0, L(w, r) - SLO)        (Eq. 5/6)
//
// Both terms are normalized to O(1) (total quota by the upper bounds, the
// penalty by the SLO) so one penalty coefficient works across applications.
// The solver descends r on a fresh autodiff tape each iteration, projecting
// back into the per-service bounds from Algorithm 1, and stops when the
// loss change stays below `tolerance` for `patience` consecutive steps —
// the paper's termination rule.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"
#include "gnn/latency_model.h"
#include "telemetry/metrics.h"

namespace graf::core {

struct SolverConfig {
  double rho = 50.0;              ///< penalty coefficient (Eq. 5)
  double lr_mc = 15.0;            ///< ADAM step, in millicores
  std::size_t max_iterations = 2500;
  double tolerance = 1e-4;        ///< |loss_t - loss_{t-1}| threshold
  std::size_t patience = 10;      ///< consecutive small deltas to converge
  /// Halve-style step decay so the descent settles at the SLO boundary
  /// instead of oscillating around it (0 disables).
  std::size_t lr_decay_every = 400;
  double lr_decay_factor = 0.6;
  /// The solver targets slo_margin * SLO internally. The paper relies on
  /// the model's ~+5% over-estimation for the same safety effect; an
  /// explicit margin makes it robust to an unbiased model (set to 1.0 for
  /// the paper's exact objective).
  double slo_margin = 0.93;
  /// Independent descents run concurrently on the global thread pool; the
  /// feasible minimum-quota result wins (ties broken by start index, so the
  /// outcome is identical at any GRAF_THREADS). Start 0 descends from the
  /// caller's init (or the upper bounds); starts k >= 1 from uniform draws
  /// in [lo, hi] seeded by derive_seed(multi_start_seed, k). 1 keeps the
  /// sequential single-descent behavior.
  std::size_t multi_starts = 1;
  std::uint64_t multi_start_seed = 17;
  /// Evaluate all starts as one K-row batched descent (K× fewer, K× wider
  /// GEMMs) instead of K concurrent tapes. Bit-identical to the concurrent
  /// path: rows never mix in the forward/backward (DESIGN.md §3.9), ADAM is
  /// elementwise with a shared step counter, converged rows are frozen at
  /// their final projected value, and the winner rule is unchanged. `false`
  /// keeps the PR-3 thread-pool fan-out (the equivalence property test and
  /// the scaling bench compare the two).
  bool batched_multi_start = true;
};

struct SolverResult {
  std::vector<Millicores> quota;  ///< per-service CPU quota
  double predicted_ms = 0.0;      ///< model's latency estimate at `quota`
  double loss = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  double solve_seconds = 0.0;     ///< wall-clock solve time
};

class ConfigurationSolver {
 public:
  ConfigurationSolver(gnn::LatencyModel& model, SolverConfig cfg = {});

  /// Minimize total quota for per-*node* workloads `workload` subject to
  /// predicted latency <= slo_ms, within [lo, hi] per service. `init`
  /// optionally seeds the descent (defaults to the upper bounds — start
  /// feasible, descend toward minimal).
  SolverResult solve(std::span<const double> workload, double slo_ms,
                     std::span<const Millicores> lo, std::span<const Millicores> hi,
                     std::span<const Millicores> init = {});

  /// Eq. 5 value at a specific configuration (Fig. 12 loss landscape).
  /// Applies the same slo_margin as solve(), so the landscape matches the
  /// objective the descent actually minimizes.
  double loss_at(std::span<const double> workload, double slo_ms,
                 std::span<const Millicores> quota,
                 std::span<const Millicores> hi) const;

  const SolverConfig& config() const { return cfg_; }

  /// Swap the model the solver descends through (hot-swap path, src/serve).
  /// The new model must predict over the same node count.
  void rebind(gnn::LatencyModel& model);

  /// Profile each descent iteration into `core.solver_iter_us` and count
  /// them in `core.solver_iterations_total`. nullptr detaches (default).
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  /// One gradient descent from `r0`. When `instrumented` is false the run
  /// touches no telemetry instruments and freezes model params on its tape,
  /// so any number of descents may execute concurrently over the shared
  /// model (the coordinator aggregates iteration counts after the join).
  SolverResult descend(std::span<const double> workload, double slo_ms,
                       std::span<const Millicores> lo,
                       std::span<const Millicores> hi, const nn::Tensor& r0,
                       bool instrumented);

  /// All multi_starts descents as one K x n batched tape; returns per-start
  /// results in start order (same values the concurrent path produces).
  std::vector<SolverResult> descend_batched(std::span<const double> workload,
                                            double slo_ms,
                                            std::span<const Millicores> lo,
                                            std::span<const Millicores> hi,
                                            const nn::Tensor& r0);

  gnn::LatencyModel* model_;
  SolverConfig cfg_;
  telemetry::LogHistogram* iter_timer_ = nullptr;
  telemetry::Counter* iter_counter_ = nullptr;
};

}  // namespace graf::core
