// Configuration solver (paper §3.5): gradient-descent (ADAM) optimization
// of per-service CPU quotas through the trained latency prediction model.
//
//   Loss(r, SLO) = sum(r)  +  rho * max(0, L(w, r) - SLO)        (Eq. 5/6)
//
// Both terms are normalized to O(1) (total quota by the upper bounds, the
// penalty by the SLO) so one penalty coefficient works across applications.
// The solver descends r on a fresh autodiff tape each iteration, projecting
// back into the per-service bounds from Algorithm 1, and stops when the
// loss change stays below `tolerance` for `patience` consecutive steps —
// the paper's termination rule.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"
#include "gnn/batched_latency_model.h"
#include "gnn/latency_model.h"
#include "telemetry/metrics.h"

namespace graf::core {

struct SolverConfig {
  double rho = 50.0;              ///< penalty coefficient (Eq. 5)
  double lr_mc = 15.0;            ///< ADAM step, in millicores
  std::size_t max_iterations = 2500;
  double tolerance = 1e-4;        ///< |loss_t - loss_{t-1}| threshold
  std::size_t patience = 10;      ///< consecutive small deltas to converge
  /// Halve-style step decay so the descent settles at the SLO boundary
  /// instead of oscillating around it (0 disables).
  std::size_t lr_decay_every = 400;
  double lr_decay_factor = 0.6;
  /// The solver targets slo_margin * SLO internally. The paper relies on
  /// the model's ~+5% over-estimation for the same safety effect; an
  /// explicit margin makes it robust to an unbiased model (set to 1.0 for
  /// the paper's exact objective).
  double slo_margin = 0.93;
  /// Independent descents run concurrently on the global thread pool; the
  /// feasible minimum-quota result wins (ties broken by start index, so the
  /// outcome is identical at any GRAF_THREADS). Start 0 descends from the
  /// caller's init (or the upper bounds); starts k >= 1 from uniform draws
  /// in [lo, hi] seeded by derive_seed(multi_start_seed, k). 1 keeps the
  /// sequential single-descent behavior.
  std::size_t multi_starts = 1;
  std::uint64_t multi_start_seed = 17;
  /// Evaluate all starts as one K-row batched descent (K× fewer, K× wider
  /// GEMMs) instead of K concurrent tapes. Bit-identical to the concurrent
  /// path: rows never mix in the forward/backward (DESIGN.md §3.9), ADAM is
  /// elementwise with a shared step counter, converged rows are frozen at
  /// their final projected value, and the winner rule is unchanged. `false`
  /// keeps the PR-3 thread-pool fan-out (the equivalence property test and
  /// the scaling bench compare the two).
  bool batched_multi_start = true;
};

struct SolverResult {
  std::vector<Millicores> quota;  ///< per-service CPU quota
  double predicted_ms = 0.0;      ///< model's latency estimate at `quota`
  double loss = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  double solve_seconds = 0.0;     ///< wall-clock solve time
};

/// One tenant's solve request inside a fleet batch (DESIGN.md §3.13). The
/// spans alias caller storage and must stay valid for the solve_batch call.
struct BatchItem {
  std::span<const double> workload;
  double slo_ms = 0.0;
  std::span<const Millicores> lo;
  std::span<const Millicores> hi;
  std::span<const Millicores> init = {};  ///< empty = start from hi
};

struct BatchItemResult {
  SolverResult result;  ///< the winning start, exactly as solve() returns it
  /// Iterations summed over the item's starts — what the per-tenant path
  /// adds to core.solver_iterations_total (callers mirror it through
  /// note_external_iterations on the tenant's own solver).
  std::size_t total_iterations = 0;
};

class ConfigurationSolver {
 public:
  ConfigurationSolver(gnn::LatencyModel& model, SolverConfig cfg = {});

  /// Minimize total quota for per-*node* workloads `workload` subject to
  /// predicted latency <= slo_ms, within [lo, hi] per service. `init`
  /// optionally seeds the descent (defaults to the upper bounds — start
  /// feasible, descend toward minimal).
  SolverResult solve(std::span<const double> workload, double slo_ms,
                     std::span<const Millicores> lo, std::span<const Millicores> hi,
                     std::span<const Millicores> init = {});

  /// Descend every item's multi-starts as rows of ONE tape through the
  /// shared block-diagonal batched model (fleet fan-in, DESIGN.md §3.13).
  /// `batched` must be freshly constructed over the shared model with
  /// rows_per_graph == max(1, cfg.multi_starts); the items' graphs are
  /// added here in item order. Item t's result is bit-identical to what
  /// `ConfigurationSolver{model, cfg}.solve(items[t]...)` returns — the
  /// per-row start points, loss terms, ADAM trajectory, convergence
  /// bookkeeping, final-prediction form (predict() for a single start, a
  /// frozen stacked forward for multi-start), and winner rule all replicate
  /// the per-tenant path exactly; only solve_seconds (shared batch wall
  /// time) and telemetry (none is touched here) differ. Static because the
  /// batch spans tenants: no single solver instance owns it.
  static std::vector<BatchItemResult> solve_batch(gnn::BatchedLatencyModel& batched,
                                                  const SolverConfig& cfg,
                                                  std::span<const BatchItem> items);

  /// Winner rule shared by every multi-start path (concurrent, batched,
  /// fleet-stacked, and the surrogate tier in core/tiered_planner.cpp):
  /// feasible minimum total quota; if no start is feasible,
  /// least-infeasible (lowest predicted latency). Strict comparisons keep
  /// the first (lowest index) winner on ties.
  static std::size_t pick_winner(const std::vector<SolverResult>& runs,
                                 double target_ms);

  /// True when two configs shape descent trajectories identically — every
  /// field that feeds start points, loss values, step sizes, or termination.
  /// batched_multi_start is deliberately excluded: the batched and fan-out
  /// paths are bit-identical (the PR-5 equivalence property), so tenants
  /// differing only there may share a fleet batch.
  static bool descent_equivalent(const SolverConfig& a, const SolverConfig& b);

  /// Mirror iterations a fleet batch executed on this tenant's behalf into
  /// core.solver_iterations_total, so the counter reads the same whether
  /// the tenant solved alone or inside a batch.
  void note_external_iterations(std::size_t iterations);

  /// Eq. 5 value at a specific configuration (Fig. 12 loss landscape).
  /// Applies the same slo_margin as solve(), so the landscape matches the
  /// objective the descent actually minimizes.
  double loss_at(std::span<const double> workload, double slo_ms,
                 std::span<const Millicores> quota,
                 std::span<const Millicores> hi) const;

  const SolverConfig& config() const { return cfg_; }

  /// Swap the model the solver descends through (hot-swap path, src/serve).
  /// The new model must predict over the same node count.
  void rebind(gnn::LatencyModel& model);

  /// Profile each descent iteration into `core.solver_iter_us` and count
  /// them in `core.solver_iterations_total`. nullptr detaches (default).
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  /// One gradient descent from `r0`. When `instrumented` is false the run
  /// touches no telemetry instruments and freezes model params on its tape,
  /// so any number of descents may execute concurrently over the shared
  /// model (the coordinator aggregates iteration counts after the join).
  SolverResult descend(std::span<const double> workload, double slo_ms,
                       std::span<const Millicores> lo,
                       std::span<const Millicores> hi, const nn::Tensor& r0,
                       bool instrumented);

  /// All multi_starts descents as one K x n batched tape; returns per-start
  /// results in start order (same values the concurrent path produces).
  std::vector<SolverResult> descend_batched(std::span<const double> workload,
                                            double slo_ms,
                                            std::span<const Millicores> lo,
                                            std::span<const Millicores> hi,
                                            const nn::Tensor& r0);

  gnn::LatencyModel* model_;
  SolverConfig cfg_;
  telemetry::LogHistogram* iter_timer_ = nullptr;
  telemetry::Counter* iter_counter_ = nullptr;
};

}  // namespace graf::core
