// Workload analyzer (paper §3.3): converts front-end per-API workloads into
// per-microservice workloads using the per-API fan-out observed in traces.
//
// For each API a and service i the tracer yields the distribution of "how
// many requests does service i handle per front-end request of a"; the
// paper takes the 90%-ile of that history as c_{a,i}, then distributes
//   l_i = sum_a w_a * c_{a,i}.
// An analytic fan-out (probability-weighted expected visits from the call
// tree) is provided for cold starts and for oracle baselines.
#pragma once

#include <span>
#include <vector>

#include "apps/topology.h"
#include "trace/tracer.h"

namespace graf::core {

class WorkloadAnalyzer {
 public:
  WorkloadAnalyzer(std::size_t api_count, std::size_t service_count,
                   double fanout_rank = 90.0);

  /// Refresh the fan-out matrix from traced history.
  void update(const trace::Tracer& tracer);

  /// Install a fan-out matrix directly ([api][service]).
  void set_fanout(std::vector<std::vector<double>> fanout);

  /// l_i = sum_a w_a * c_{a,i}.
  std::vector<double> distribute(std::span<const Qps> api_workload) const;

  const std::vector<std::vector<double>>& fanout() const { return fanout_; }

  /// True once any fan-out entry is non-zero.
  bool ready() const;

 private:
  std::size_t api_count_;
  std::size_t service_count_;
  double rank_;
  std::vector<std::vector<double>> fanout_;
};

/// Probability-weighted expected visits per service for each API of a
/// topology ([api][service]); the analytic counterpart of traced fan-out.
std::vector<std::vector<double>> expected_fanout(const apps::Topology& topo);

}  // namespace graf::core
