// State-aware sample collector (paper §3.7 + Algorithm 1).
//
// Training the latency model needs (workload, quota, tail-latency) triples
// measured on the cluster. Naive exploration of the quota space is
// hopeless; Algorithm 1 first finds, per service, an upper bound H_i (more
// CPU no longer reduces that service's tail latency) and a lower bound L_i
// (the single service alone would break the end-to-end SLO), then random
// configurations are drawn inside [L, H]. Each sample follows the paper's
// cadence: apply configuration -> generate load -> collect latencies over a
// measurement window -> flush.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"
#include "telemetry/metrics.h"

namespace graf::core {

struct SampleCollectorConfig {
  Seconds warmup = 2.0;          ///< settle time before measuring
  Seconds window = 10.0;         ///< measurement window (paper: 10 s)
  Seconds flush = 5.0;           ///< inter-sample flush (paper: 5 s)
  double tail_rank = 99.0;       ///< label percentile
  Millicores quota_hi = 2500.0;  ///< Algorithm 1 "sufficient CPU"
  Millicores quota_floor = 100.0;
  Millicores step = 100.0;       ///< Algorithm 1 reduction step
  Millicores max_per_instance = 1000.0;  ///< even-split deployment unit
  Seconds probe_window = 4.0;    ///< Algorithm 1 measurement window
  double probe_rank = 95.0;      ///< per-service tail used in Algorithm 1
  double upper_tolerance = 1.20; ///< "longer latency" = > tol * baseline
  std::size_t min_completions = 20;  ///< discard windows with fewer samples
  /// Exponent biasing quota draws toward the lower bound (u^bias): the
  /// latency cliff lives near L, and the model must see it densely for the
  /// solver not to fall off it.
  double low_quota_bias = 1.4;
  /// Generate load with closed-loop users (Locust) instead of open-loop
  /// arrivals (Vegeta) — the paper uses Locust for Online Boutique and
  /// Vegeta for Social Network. Closed-loop samples record the *measured*
  /// front-end rate as the workload feature.
  bool closed_loop = false;
  /// Users spawned per 1 qps of requested rate in closed-loop mode
  /// (mean think time 2.5 s + typical response time).
  double users_per_qps = 2.6;
  std::uint64_t seed = 5;
};

struct SearchSpace {
  std::vector<Millicores> lo;
  std::vector<Millicores> hi;

  double volume_ratio(Millicores full_lo, Millicores full_hi) const;
};

class SampleCollector {
 public:
  /// The analyzer provides the per-node workload features recorded with
  /// each sample (the same features GRAF uses at allocation time).
  SampleCollector(sim::Cluster& cluster, WorkloadAnalyzer& analyzer,
                  SampleCollectorConfig cfg);

  /// Algorithm 1, verbatim: per-service upper/lower quota bounds for the
  /// reference workload and SLO.
  SearchSpace reduce_search_space(const std::vector<Qps>& api_qps, double slo_ms);

  /// Collect `n` samples: workload drawn as a uniform scale in
  /// [scale_lo, scale_hi] applied to `api_qps_base`, quotas uniform in the
  /// search space. Also refreshes the analyzer's fan-out from traces.
  gnn::Dataset collect(std::size_t n, const SearchSpace& space,
                       const std::vector<Qps>& api_qps_base, double scale_lo,
                       double scale_hi);

  /// Produces an independent cluster replica of the same topology; must be
  /// callable concurrently (each call builds a brand-new cluster).
  using ClusterFactory = std::function<std::unique_ptr<sim::Cluster>()>;

  /// Parallel variant of collect(): every sample is measured on its own
  /// fresh replica from `make_cluster`, driven by random streams derived
  /// from (cfg.seed, sample index, attempt) — the returned dataset is
  /// bit-identical regardless of GRAF_THREADS (DESIGN.md §3.7). The
  /// analyzer fan-out is calibrated once up front and then read-only across
  /// shards. Per-replica telemetry is snapshot per sample and merged in
  /// sample order into `telemetry_out` when non-null; the sample sink fires
  /// on the calling thread, also in sample order.
  gnn::Dataset collect_sharded(std::size_t n, const SearchSpace& space,
                               const std::vector<Qps>& api_qps_base,
                               double scale_lo, double scale_hi,
                               const ClusterFactory& make_cluster,
                               telemetry::RegistrySnapshot* telemetry_out = nullptr);

  /// One measurement at a fixed configuration: returns the e2e tail
  /// latency (ms), or a negative value when too few requests completed.
  double measure_tail(const std::vector<Qps>& api_qps, Seconds window, double rank);

  /// Total simulated seconds spent collecting (cost accounting, Table 3).
  Seconds simulated_seconds() const { return simulated_seconds_; }

  /// Streaming consumer invoked for every accepted sample, with the
  /// simulation time it was measured at. The online trainer (src/serve)
  /// subscribes here to monitor drift and fine-tune while collection runs.
  using SampleSink = std::function<void(const gnn::Sample&, Seconds)>;
  void set_sample_sink(SampleSink sink) { sink_ = std::move(sink); }

 private:
  void apply_quota(const std::vector<Millicores>& quota);
  void run_load(const std::vector<Qps>& api_qps, Seconds duration);
  /// Drive `duration` seconds of load on an arbitrary cluster with an
  /// explicit generator seed — the replica-safe core of run_load (no
  /// collector state is touched, so shards may call it concurrently).
  void run_load_on(sim::Cluster& cluster, const std::vector<Qps>& api_qps,
                   Seconds duration, std::uint64_t gen_seed) const;
  double service_tail(int service, Seconds since, double rank) const;

  sim::Cluster& cluster_;
  WorkloadAnalyzer& analyzer_;
  SampleCollectorConfig cfg_;
  Rng rng_;
  Seconds simulated_seconds_ = 0.0;
  SampleSink sink_;
};

}  // namespace graf::core
