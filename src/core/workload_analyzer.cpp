#include "core/workload_analyzer.h"

#include <stdexcept>

namespace graf::core {
namespace {

void accumulate_expected(const sim::CallNode& node, double p,
                         std::vector<double>& out) {
  out[static_cast<std::size_t>(node.service)] += p;
  for (const auto& stage : node.stages)
    for (const auto& child : stage)
      accumulate_expected(child, p * child.probability, out);
}

}  // namespace

WorkloadAnalyzer::WorkloadAnalyzer(std::size_t api_count, std::size_t service_count,
                                   double fanout_rank)
    : api_count_{api_count}, service_count_{service_count}, rank_{fanout_rank},
      fanout_(api_count, std::vector<double>(service_count, 0.0)) {}

void WorkloadAnalyzer::update(const trace::Tracer& tracer) {
  if (tracer.api_count() != api_count_ || tracer.service_count() != service_count_)
    throw std::invalid_argument{"WorkloadAnalyzer::update: shape mismatch"};
  for (std::size_t a = 0; a < api_count_; ++a) {
    if (tracer.history_size(static_cast<int>(a)) == 0) continue;  // keep previous
    fanout_[a] = tracer.fanout(static_cast<int>(a), rank_);
  }
}

void WorkloadAnalyzer::set_fanout(std::vector<std::vector<double>> fanout) {
  if (fanout.size() != api_count_)
    throw std::invalid_argument{"WorkloadAnalyzer::set_fanout: api count"};
  for (const auto& row : fanout)
    if (row.size() != service_count_)
      throw std::invalid_argument{"WorkloadAnalyzer::set_fanout: service count"};
  fanout_ = std::move(fanout);
}

std::vector<double> WorkloadAnalyzer::distribute(std::span<const Qps> api_workload) const {
  if (api_workload.size() != api_count_)
    throw std::invalid_argument{"WorkloadAnalyzer::distribute: api count"};
  std::vector<double> l(service_count_, 0.0);
  for (std::size_t a = 0; a < api_count_; ++a)
    for (std::size_t s = 0; s < service_count_; ++s)
      l[s] += api_workload[a] * fanout_[a][s];
  return l;
}

bool WorkloadAnalyzer::ready() const {
  for (const auto& row : fanout_)
    for (double v : row)
      if (v > 0.0) return true;
  return false;
}

std::vector<std::vector<double>> expected_fanout(const apps::Topology& topo) {
  std::vector<std::vector<double>> out;
  out.reserve(topo.apis.size());
  for (const auto& api : topo.apis) {
    std::vector<double> row(topo.service_count(), 0.0);
    accumulate_expected(api.root, 1.0, row);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace graf::core
