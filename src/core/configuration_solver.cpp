#include "core/configuration_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "nn/optim.h"
#include "telemetry/profiler.h"

namespace graf::core {

std::size_t ConfigurationSolver::pick_winner(const std::vector<SolverResult>& runs,
                                             double target_ms) {
  auto total_quota = [](const SolverResult& r) {
    double t = 0.0;
    for (double q : r.quota) t += q;
    return t;
  };
  std::size_t best = 0;
  for (std::size_t k = 1; k < runs.size(); ++k) {
    const bool best_ok = runs[best].predicted_ms <= target_ms;
    const bool k_ok = runs[k].predicted_ms <= target_ms;
    if (k_ok != best_ok) {
      if (k_ok) best = k;
      continue;
    }
    if (k_ok ? total_quota(runs[k]) < total_quota(runs[best])
             : runs[k].predicted_ms < runs[best].predicted_ms)
      best = k;
  }
  return best;
}

ConfigurationSolver::ConfigurationSolver(gnn::LatencyModel& model, SolverConfig cfg)
    : model_{&model}, cfg_{cfg} {
  if (cfg_.rho <= 0.0) throw std::invalid_argument{"SolverConfig: rho must be > 0"};
}

void ConfigurationSolver::set_metrics(telemetry::MetricsRegistry* registry) {
  iter_timer_ = registry != nullptr ? &registry->histogram("core.solver_iter_us") : nullptr;
  iter_counter_ =
      registry != nullptr ? &registry->counter("core.solver_iterations_total") : nullptr;
}

void ConfigurationSolver::rebind(gnn::LatencyModel& model) {
  if (model.node_count() != model_->node_count())
    throw std::invalid_argument{"ConfigurationSolver::rebind: node count mismatch"};
  model_ = &model;
}

SolverResult ConfigurationSolver::solve(std::span<const double> workload,
                                        double slo_ms,
                                        std::span<const Millicores> lo,
                                        std::span<const Millicores> hi,
                                        std::span<const Millicores> init) {
  const std::size_t n = model_->node_count();
  if (workload.size() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument{"ConfigurationSolver::solve: dimension mismatch"};
  if (slo_ms <= 0.0) throw std::invalid_argument{"solve: slo must be > 0"};
  for (std::size_t i = 0; i < n; ++i)
    if (!(lo[i] > 0.0) || lo[i] > hi[i])
      throw std::invalid_argument{"solve: need 0 < lo <= hi"};

  const auto t0 = std::chrono::steady_clock::now();

  nn::Tensor r0{1, n};
  for (std::size_t i = 0; i < n; ++i)
    r0(0, i) = init.empty() ? hi[i] : std::clamp(init[i], lo[i], hi[i]);

  if (cfg_.multi_starts <= 1) {
    SolverResult res = descend(workload, slo_ms, lo, hi, r0, /*instrumented=*/true);
    res.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return res;
  }

  // Multi-start: K independent descents over the shared (frozen) model. The
  // start points depend only on (multi_start_seed, k), each descent is
  // deterministic, and the winner is picked in start order — the result is
  // identical at any thread count. The batched path runs the K descents as
  // rows of one tape (the default); the concurrent path fans them out over
  // the thread pool. Both produce the same per-start values bit for bit.
  const std::size_t starts = cfg_.multi_starts;
  std::vector<SolverResult> runs;
  if (cfg_.batched_multi_start) {
    runs = descend_batched(workload, slo_ms, lo, hi, r0);
  } else {
    runs.resize(starts);
    global_pool().parallel_for(starts, [&](std::size_t k) {
      nn::Tensor rk = r0;
      if (k > 0) {
        Rng start_rng{derive_seed(cfg_.multi_start_seed, k)};
        for (std::size_t i = 0; i < n; ++i) rk(0, i) = start_rng.uniform(lo[i], hi[i]);
      }
      runs[k] = descend(workload, slo_ms, lo, hi, rk, /*instrumented=*/false);
    });
  }
  if (iter_counter_ != nullptr)
    for (const SolverResult& r : runs)
      iter_counter_->add(static_cast<double>(r.iterations));

  const double target_ms = slo_ms * cfg_.slo_margin;
  SolverResult res = std::move(runs[pick_winner(runs, target_ms)]);
  res.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

SolverResult ConfigurationSolver::descend(std::span<const double> workload,
                                          double slo_ms,
                                          std::span<const Millicores> lo,
                                          std::span<const Millicores> hi,
                                          const nn::Tensor& r0, bool instrumented) {
  const std::size_t n = model_->node_count();
  const double target_ms = slo_ms * cfg_.slo_margin;

  double hi_total = 0.0;
  for (double h : hi) hi_total += h;
  const double quota_norm = 1.0 / hi_total;

  nn::Param r{r0};
  nn::Adam adam{{&r}, {.lr = cfg_.lr_mc}};

  SolverResult res;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::size_t calm = 0;
  nn::Tape tape;
  for (std::size_t it = 1; it <= cfg_.max_iterations; ++it) {
    telemetry::ScopedTimer iter_timer{instrumented ? iter_timer_ : nullptr};
    if (instrumented && iter_counter_ != nullptr) iter_counter_->add();
    tape.reset();
    // The descent variable is a live param (Adam steps it); the model's
    // weights are recorded frozen so concurrent descents never write into
    // the shared Param::grad buffers.
    tape.set_freeze_params(false);
    nn::Var rv = tape.param(r);
    tape.set_freeze_params(!instrumented);
    nn::Var pred = model_->predict_var(tape, workload, rv);
    // sum(r)/sum(hi) + rho * max(0, pred/target - 1)
    nn::Var quota_term = nn::scale(nn::sum_all(rv), quota_norm);
    nn::Var violation =
        nn::relu(nn::add_scalar(nn::scale(pred, 1.0 / target_ms), -1.0));
    nn::Var loss = nn::add(quota_term, nn::scale(violation, cfg_.rho));

    const double loss_val = tape.value(loss).item();
    r.zero_grad();
    tape.backward(loss);
    adam.step();
    if (cfg_.lr_decay_every > 0 && it % cfg_.lr_decay_every == 0)
      adam.set_learning_rate(adam.learning_rate() * cfg_.lr_decay_factor);
    // Project into the Algorithm-1 bounds.
    for (std::size_t i = 0; i < n; ++i)
      r.value(0, i) = std::clamp(r.value(0, i), lo[i], hi[i]);

    res.iterations = it;
    res.loss = loss_val;
    if (std::abs(loss_val - prev_loss) < cfg_.tolerance) {
      if (++calm >= cfg_.patience) {
        res.converged = true;
        break;
      }
    } else {
      calm = 0;
    }
    prev_loss = loss_val;
  }
  tape.set_freeze_params(false);

  res.quota.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) res.quota[i] = r.value(0, i);
  if (instrumented) {
    res.predicted_ms = model_->predict(workload, res.quota);
  } else {
    // Worker-thread path: predict() profiles into a shared histogram, so
    // evaluate through a private frozen tape instead.
    tape.reset();
    tape.set_freeze_params(true);
    nn::Var quota_var = tape.constant_ref(r.value);
    nn::Var pred = model_->predict_var(tape, workload, quota_var);
    res.predicted_ms = tape.value(pred).item();
  }
  return res;
}

std::vector<SolverResult> ConfigurationSolver::descend_batched(
    std::span<const double> workload, double slo_ms, std::span<const Millicores> lo,
    std::span<const Millicores> hi, const nn::Tensor& r0) {
  const std::size_t n = model_->node_count();
  const std::size_t starts = cfg_.multi_starts;
  const double target_ms = slo_ms * cfg_.slo_margin;

  double hi_total = 0.0;
  for (double h : hi) hi_total += h;
  const double quota_norm = 1.0 / hi_total;

  // Row k is start k: row 0 the caller's init, rows k >= 1 the same
  // derive_seed(multi_start_seed, k) uniform draws the concurrent path uses.
  nn::Tensor starts_mat{starts, n};
  for (std::size_t i = 0; i < n; ++i) starts_mat(0, i) = r0(0, i);
  for (std::size_t k = 1; k < starts; ++k) {
    Rng start_rng{derive_seed(cfg_.multi_start_seed, k)};
    for (std::size_t i = 0; i < n; ++i) starts_mat(k, i) = start_rng.uniform(lo[i], hi[i]);
  }

  nn::Param r{std::move(starts_mat)};
  nn::Adam adam{{&r}, {.lr = cfg_.lr_mc}};

  // Why one ADAM over the K x n block equals K independent ADAMs: the update
  // is elementwise, the moments never mix entries, and the bias-correction
  // counter t equals the iteration index for every still-active start (all
  // rows step every iteration; finished rows are overwritten with their
  // frozen value right after, so extra steps can't change their outcome).
  std::vector<SolverResult> runs(starts);
  std::vector<double> prev_loss(starts, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> calm(starts, 0);
  std::vector<char> done(starts, 0);
  nn::Tensor frozen{starts, n};
  std::size_t active = starts;

  nn::Tape tape;
  for (std::size_t it = 1; it <= cfg_.max_iterations && active > 0; ++it) {
    tape.reset();
    tape.set_freeze_params(false);
    nn::Var rv = tape.param(r);
    tape.set_freeze_params(true);
    nn::Var pred = model_->predict_var(tape, workload, rv);  // K x 1
    // Per-row Eq. 5: sum(r_k)/sum(hi) + rho * max(0, pred_k/target - 1).
    // Rows never mix, so the summed scalar backpropagates each row exactly
    // the gradient its serial descent would see (sum_all seeds every row
    // with 1, and a NaN row cannot poison its siblings).
    nn::Var quota_term = nn::scale(nn::sum_rows(rv), quota_norm);
    nn::Var violation =
        nn::relu(nn::add_scalar(nn::scale(pred, 1.0 / target_ms), -1.0));
    nn::Var loss_rows = nn::add(quota_term, nn::scale(violation, cfg_.rho));
    nn::Var total = nn::sum_all(loss_rows);

    const nn::Tensor& loss_vals = tape.value(loss_rows);  // pre-step, per row
    r.zero_grad();
    tape.backward(total);
    adam.step();
    if (cfg_.lr_decay_every > 0 && it % cfg_.lr_decay_every == 0)
      adam.set_learning_rate(adam.learning_rate() * cfg_.lr_decay_factor);
    for (std::size_t k = 0; k < starts; ++k)
      for (std::size_t i = 0; i < n; ++i)
        r.value(k, i) = std::clamp(r.value(k, i), lo[i], hi[i]);
    // A start that converged keeps its final projected value (its serial
    // descent would have exited the loop there).
    for (std::size_t k = 0; k < starts; ++k)
      if (done[k])
        for (std::size_t i = 0; i < n; ++i) r.value(k, i) = frozen(k, i);

    for (std::size_t k = 0; k < starts; ++k) {
      if (done[k]) continue;
      const double loss_val = loss_vals(k, 0);
      runs[k].iterations = it;
      runs[k].loss = loss_val;
      if (std::abs(loss_val - prev_loss[k]) < cfg_.tolerance) {
        if (++calm[k] >= cfg_.patience) {
          runs[k].converged = true;
          done[k] = 1;
          --active;
          for (std::size_t i = 0; i < n; ++i) frozen(k, i) = r.value(k, i);
          continue;
        }
      } else {
        calm[k] = 0;
      }
      prev_loss[k] = loss_val;
    }
  }

  for (std::size_t k = 0; k < starts; ++k) {
    runs[k].quota.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) runs[k].quota[i] = r.value(k, i);
  }
  // One batched frozen forward scores every start (row k bitwise equal to
  // the 1-row predict the concurrent path runs).
  tape.reset();
  tape.set_freeze_params(true);
  nn::Var quota_var = tape.constant_ref(r.value);
  nn::Var pred = model_->predict_var(tape, workload, quota_var);
  const nn::Tensor& pred_vals = tape.value(pred);
  for (std::size_t k = 0; k < starts; ++k) runs[k].predicted_ms = pred_vals(k, 0);
  return runs;
}

bool ConfigurationSolver::descent_equivalent(const SolverConfig& a,
                                             const SolverConfig& b) {
  return a.rho == b.rho && a.lr_mc == b.lr_mc &&
         a.max_iterations == b.max_iterations && a.tolerance == b.tolerance &&
         a.patience == b.patience && a.lr_decay_every == b.lr_decay_every &&
         a.lr_decay_factor == b.lr_decay_factor && a.slo_margin == b.slo_margin &&
         a.multi_starts == b.multi_starts &&
         a.multi_start_seed == b.multi_start_seed;
}

void ConfigurationSolver::note_external_iterations(std::size_t iterations) {
  if (iter_counter_ != nullptr) iter_counter_->add(static_cast<double>(iterations));
}

std::vector<BatchItemResult> ConfigurationSolver::solve_batch(
    gnn::BatchedLatencyModel& batched, const SolverConfig& cfg,
    std::span<const BatchItem> items) {
  if (cfg.rho <= 0.0) throw std::invalid_argument{"SolverConfig: rho must be > 0"};
  const std::size_t n = batched.node_count();
  const std::size_t starts = std::max<std::size_t>(1, cfg.multi_starts);
  if (batched.rows_per_graph() != starts)
    throw std::invalid_argument{
        "solve_batch: batched model rows_per_graph must equal the start count"};
  if (batched.graph_count() != 0)
    throw std::invalid_argument{"solve_batch: batched model must start empty"};
  if (items.empty()) return {};

  const auto t0 = std::chrono::steady_clock::now();

  for (const BatchItem& item : items) {
    if (item.workload.size() != n || item.lo.size() != n || item.hi.size() != n)
      throw std::invalid_argument{"solve_batch: dimension mismatch"};
    if (item.slo_ms <= 0.0)
      throw std::invalid_argument{"solve_batch: slo must be > 0"};
    for (std::size_t i = 0; i < n; ++i)
      if (!(item.lo[i] > 0.0) || item.lo[i] > item.hi[i])
        throw std::invalid_argument{"solve_batch: need 0 < lo <= hi"};
    batched.add_graph(item.workload);
  }

  const std::size_t tenants = items.size();
  const std::size_t rows = tenants * starts;

  // Row t*K+k is item t's start k: k == 0 the caller's init (clamped into
  // the bounds) or the hi bounds, k >= 1 the exact derive_seed(seed, k)
  // uniform draws the item's own solve() would take — the stream depends
  // only on k, the draws on the item's bounds.
  nn::Tensor starts_mat{rows, n};
  for (std::size_t t = 0; t < tenants; ++t) {
    const BatchItem& item = items[t];
    for (std::size_t i = 0; i < n; ++i)
      starts_mat(t * starts, i) =
          item.init.empty() ? item.hi[i]
                            : std::clamp(item.init[i], item.lo[i], item.hi[i]);
    for (std::size_t k = 1; k < starts; ++k) {
      Rng start_rng{derive_seed(cfg.multi_start_seed, k)};
      for (std::size_t i = 0; i < n; ++i)
        starts_mat(t * starts + k, i) = start_rng.uniform(item.lo[i], item.hi[i]);
    }
  }

  // Per-row constant columns — each item's quota normalizer and inverse
  // margined target, computed by the same expressions solve() evaluates.
  // The loss applies them with mul() against these columns where the
  // single-tenant path uses scale(); IEEE multiplication is commutative,
  // so forward and backward bits match (the gradient is s*g either way).
  nn::Tensor qnorm{rows, 1};
  nn::Tensor inv_target{rows, 1};
  std::vector<double> target(tenants, 0.0);
  for (std::size_t t = 0; t < tenants; ++t) {
    double hi_total = 0.0;
    for (double h : items[t].hi) hi_total += h;
    const double quota_norm = 1.0 / hi_total;
    target[t] = items[t].slo_ms * cfg.slo_margin;
    const double inv = 1.0 / target[t];
    for (std::size_t k = 0; k < starts; ++k) {
      qnorm(t * starts + k, 0) = quota_norm;
      inv_target(t * starts + k, 0) = inv;
    }
  }

  nn::Param r{std::move(starts_mat)};
  nn::Adam adam{{&r}, {.lr = cfg.lr_mc}};

  // One ADAM over the whole stacked block equals every item running its own
  // (descend_batched's argument, across tenants): updates are elementwise,
  // moments never mix entries, and the shared bias-correction counter t
  // equals each row's own iteration index — every row steps every
  // iteration, and finished rows are re-pinned to their frozen value right
  // after, so extra steps can't change their outcome.
  std::vector<SolverResult> runs(rows);
  std::vector<double> prev_loss(rows, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> calm(rows, 0);
  std::vector<char> done(rows, 0);
  nn::Tensor frozen{rows, n};
  std::size_t active = rows;

  nn::Tape tape;
  for (std::size_t it = 1; it <= cfg.max_iterations && active > 0; ++it) {
    tape.reset();
    tape.set_freeze_params(false);
    nn::Var rv = tape.param(r);
    tape.set_freeze_params(true);
    nn::Var pred = batched.predict_var(tape, rv);  // rows x 1
    nn::Var quota_term = nn::mul(nn::sum_rows(rv), tape.constant_ref(qnorm));
    nn::Var violation = nn::relu(
        nn::add_scalar(nn::mul(pred, tape.constant_ref(inv_target)), -1.0));
    nn::Var loss_rows = nn::add(quota_term, nn::scale(violation, cfg.rho));
    nn::Var total = nn::sum_all(loss_rows);

    const nn::Tensor& loss_vals = tape.value(loss_rows);  // pre-step, per row
    r.zero_grad();
    tape.backward(total);
    adam.step();
    if (cfg.lr_decay_every > 0 && it % cfg.lr_decay_every == 0)
      adam.set_learning_rate(adam.learning_rate() * cfg.lr_decay_factor);
    for (std::size_t t = 0; t < tenants; ++t)
      for (std::size_t k = 0; k < starts; ++k) {
        const std::size_t row = t * starts + k;
        for (std::size_t i = 0; i < n; ++i)
          r.value(row, i) = std::clamp(r.value(row, i), items[t].lo[i], items[t].hi[i]);
      }
    for (std::size_t row = 0; row < rows; ++row)
      if (done[row])
        for (std::size_t i = 0; i < n; ++i) r.value(row, i) = frozen(row, i);

    for (std::size_t row = 0; row < rows; ++row) {
      if (done[row]) continue;
      const double loss_val = loss_vals(row, 0);
      runs[row].iterations = it;
      runs[row].loss = loss_val;
      if (std::abs(loss_val - prev_loss[row]) < cfg.tolerance) {
        if (++calm[row] >= cfg.patience) {
          runs[row].converged = true;
          done[row] = 1;
          --active;
          for (std::size_t i = 0; i < n; ++i) frozen(row, i) = r.value(row, i);
          continue;
        }
      } else {
        calm[row] = 0;
      }
      prev_loss[row] = loss_val;
    }
  }
  tape.set_freeze_params(false);

  for (std::size_t row = 0; row < rows; ++row) {
    runs[row].quota.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) runs[row].quota[i] = r.value(row, i);
  }
  if (starts == 1) {
    // A single-start solve() reports predict() — the division-form feature
    // path of the instrumented descend — as its final prediction; replicate
    // it per item so batched results match that path bit for bit.
    for (std::size_t t = 0; t < tenants; ++t)
      runs[t].predicted_ms = batched.predict(t, runs[t].quota);
  } else {
    // Multi-start solve() scores all K starts with one frozen batched
    // forward; one stacked frozen forward scores every item's K at once
    // (row t*K+k bitwise equal to row k of item t's own forward).
    tape.reset();
    tape.set_freeze_params(true);
    nn::Var quota_var = tape.constant_ref(r.value);
    nn::Var pred = batched.predict_var(tape, quota_var);
    const nn::Tensor& pred_vals = tape.value(pred);
    for (std::size_t row = 0; row < rows; ++row)
      runs[row].predicted_ms = pred_vals(row, 0);
    tape.set_freeze_params(false);
  }

  const double solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::vector<BatchItemResult> out(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    std::vector<SolverResult> item_runs(
        std::make_move_iterator(runs.begin() + static_cast<std::ptrdiff_t>(t * starts)),
        std::make_move_iterator(runs.begin() + static_cast<std::ptrdiff_t>((t + 1) * starts)));
    for (const SolverResult& run : item_runs)
      out[t].total_iterations += run.iterations;
    out[t].result = std::move(item_runs[pick_winner(item_runs, target[t])]);
    out[t].result.solve_seconds = solve_seconds;
  }
  return out;
}

double ConfigurationSolver::loss_at(std::span<const double> workload, double slo_ms,
                                    std::span<const Millicores> quota,
                                    std::span<const Millicores> hi) const {
  double hi_total = 0.0;
  for (double h : hi) hi_total += h;
  double total = 0.0;
  for (double q : quota) total += q;
  const double pred = model_->predict(workload, quota);
  // Same margined target as solve(): the reported landscape must be the
  // objective the descent actually minimizes, or loss_at() shows a flat
  // penalty region exactly where solve() still sees a gradient.
  const double target_ms = slo_ms * cfg_.slo_margin;
  return total / hi_total + cfg_.rho * std::max(0.0, pred / target_ms - 1.0);
}

}  // namespace graf::core
