// GRAF's end-to-end control loop (paper §3.1 / §3.8), packaged as an
// Autoscaler so benchmarks can swap it against the K8s HPA and FIRM-like
// baselines. Every control tick it reads *only the front-end workload* —
// nothing downstream — and, when the workload (or the SLO) has moved
// beyond a hysteresis band, re-solves and pushes replica counts for every
// service at once. That is the proactive behaviour that defeats the
// cascading effect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"
#include "core/resource_controller.h"

namespace graf::core {

struct GrafControllerConfig {
  double slo_ms = 200.0;
  Seconds control_interval = 5.0;
  Seconds rate_window = 5.0;
  /// Relative front-end workload change that triggers a re-solve.
  double change_threshold = 0.10;
};

class GrafController : public autoscalers::Autoscaler {
 public:
  GrafController(ResourceController& controller, GrafControllerConfig cfg);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override { return "graf"; }

  void set_slo(double slo_ms);

  /// Delegate to ResourceController::set_serving_handle: allocation
  /// decisions follow the hot-swapped model published via src/serve.
  void set_serving_handle(serve::ServingHandle* handle);

  std::uint64_t solves() const { return solves_; }
  const AllocationPlan& last_plan() const { return last_plan_; }

 private:
  void tick();

  ResourceController& controller_;
  GrafControllerConfig cfg_;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  std::vector<Qps> last_applied_qps_;
  AllocationPlan last_plan_;
  std::uint64_t solves_ = 0;
  bool slo_dirty_ = true;
};

}  // namespace graf::core
