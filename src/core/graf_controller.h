// GRAF's end-to-end control loop (paper §3.1 / §3.8), packaged as an
// Autoscaler so benchmarks can swap it against the K8s HPA and FIRM-like
// baselines. Every control tick it reads *only the front-end workload* —
// nothing downstream — and, when the workload (or the SLO) has moved
// beyond a hysteresis band, re-solves and pushes replica counts for every
// service at once. That is the proactive behaviour that defeats the
// cascading effect.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"
#include "core/resource_controller.h"
#include "forecast/gate.h"

namespace graf::core {

struct GrafControllerConfig {
  double slo_ms = 200.0;
  Seconds control_interval = 5.0;
  Seconds rate_window = 5.0;
  /// Relative front-end workload change that triggers a re-solve.
  double change_threshold = 0.10;
};

class GrafController : public autoscalers::Autoscaler {
 public:
  GrafController(ResourceController& controller, GrafControllerConfig cfg);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override { return "graf"; }

  void set_slo(double slo_ms);

  /// Delegate to ResourceController::set_serving_handle: allocation
  /// decisions follow the hot-swapped model published via src/serve.
  void set_serving_handle(serve::ServingHandle* handle);

  /// Delegate to ResourceController::set_tiered_planner: route solves
  /// through the two-tier surrogate-verified planner (DESIGN.md §3.14);
  /// nullptr reverts to full-GNN solves.
  void set_tiered_planner(TieredPlanner* planner);

  /// Switch the loop to forecast mode: every tick plans for
  /// max(observed, predicted_at_horizon) via a ForecastGate built from
  /// `spec` (spec.enabled is ignored here — calling this *is* the opt-in).
  /// The horizon covers the simulator's ~5.5 s instance-creation delay, so
  /// capacity for a predicted surge is warm before the surge arrives.
  /// Forecaster failure degrades to plan-alone (forecast.* counters).
  void enable_forecast(const forecast::ForecastSpec& spec);
  /// The live gate (nullptr until enable_forecast); tests/benches read its
  /// prewarm/fallback counters.
  forecast::ForecastGate* forecast_gate() { return gate_.get(); }
  /// Serve the forecaster published through `handle` (ForecastRegistry
  /// promote/rollback), once forecast mode is on. nullptr detaches.
  void set_forecast_handle(serve::ForecastHandle* handle);

  /// Publish control-loop telemetry (forwards to the resource controller
  /// and solver too): `core.solves_total`, `core.slo_ms`, and — when the
  /// attached cluster also has telemetry — `core.measured_p99_ms`, the
  /// per-control-interval e2e p99 derived from the cluster's mergeable
  /// log-histogram via snapshot deltas (the Prometheus
  /// histogram_quantile(rate(...)) idiom) instead of LatencyWindow's exact
  /// copy-and-sort, which stays available for tests.
  void set_metrics(telemetry::MetricsRegistry* registry);

  std::uint64_t solves() const { return solves_; }
  /// Control ticks executed since the last attach() (observability / tests:
  /// exactly one tick chain may be live per attachment).
  std::uint64_t ticks() const { return ticks_; }
  const AllocationPlan& last_plan() const { return last_plan_; }

  /// The loop is currently coasting on a stale plan: the last plan was a
  /// fallback, a tick threw, or the workload signal vanished mid-run
  /// (telemetry blackout). Clears on the next clean solve.
  bool degraded() const { return degraded_; }
  /// Ticks whose plan/apply step threw (swallowed; loop kept alive).
  std::uint64_t plan_failures() const { return plan_failures_; }

 private:
  void tick(std::uint64_t generation);
  void record_measured_tail();
  /// Snapshot the cluster's e2e histogram as the interval baseline (no
  /// publish): the first tick after attach()/set_metrics() must report its
  /// own interval, not the cluster's cumulative history.
  void seed_tail_baseline();

  ResourceController& controller_;
  GrafControllerConfig cfg_;
  std::unique_ptr<forecast::ForecastGate> gate_;
  serve::ForecastHandle* forecast_handle_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  /// Bumped by every attach(); stale scheduled ticks check it and die.
  std::uint64_t generation_ = 0;
  void set_degraded(bool on);

  std::vector<Qps> last_applied_qps_;
  AllocationPlan last_plan_;
  std::uint64_t solves_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t plan_failures_ = 0;
  bool slo_dirty_ = true;
  bool degraded_ = false;
  bool signal_lost_ = false;  // degraded specifically because qps went dark
  telemetry::Counter* solves_total_ = nullptr;
  telemetry::Counter* fault_exceptions_ = nullptr;
  telemetry::Counter* fault_signal_loss_ = nullptr;
  telemetry::Gauge* slo_gauge_ = nullptr;
  telemetry::Gauge* measured_p99_ = nullptr;
  telemetry::Gauge* degraded_gauge_ = nullptr;
  /// e2e histogram state at the previous tick, for interval percentiles.
  telemetry::HistogramSnapshot last_e2e_;
  bool have_last_e2e_ = false;
};

}  // namespace graf::core
