#include "core/sample_collector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.h"
#include "workload/closed_loop.h"
#include "workload/open_loop.h"

namespace graf::core {

double SearchSpace::volume_ratio(Millicores full_lo, Millicores full_hi) const {
  double ratio = 1.0;
  const double full = full_hi - full_lo;
  for (std::size_t i = 0; i < lo.size(); ++i) ratio *= (hi[i] - lo[i]) / full;
  return ratio;
}

SampleCollector::SampleCollector(sim::Cluster& cluster, WorkloadAnalyzer& analyzer,
                                 SampleCollectorConfig cfg)
    : cluster_{cluster}, analyzer_{analyzer}, cfg_{cfg}, rng_{cfg.seed} {}

void SampleCollector::apply_quota(const std::vector<Millicores>& quota) {
  for (std::size_t s = 0; s < quota.size(); ++s)
    cluster_.apply_total_quota(static_cast<int>(s), quota[s], cfg_.max_per_instance);
}

void SampleCollector::run_load(const std::vector<Qps>& api_qps, Seconds duration) {
  run_load_on(cluster_, api_qps, duration, rng_.next_u64());
  simulated_seconds_ += duration;
}

void SampleCollector::run_load_on(sim::Cluster& cluster,
                                  const std::vector<Qps>& api_qps, Seconds duration,
                                  std::uint64_t gen_seed) const {
  double total = 0.0;
  for (double q : api_qps) total += q;
  if (cfg_.closed_loop) {
    workload::ClosedLoopConfig gen_cfg;
    gen_cfg.users = workload::Schedule::constant(total * cfg_.users_per_qps);
    gen_cfg.api_weights = api_qps;
    gen_cfg.seed = gen_seed;
    workload::ClosedLoopGenerator gen{cluster, gen_cfg};
    gen.start(cluster.now() + duration);
    cluster.run_for(duration);
    gen.stop();
  } else {
    workload::OpenLoopConfig gen_cfg;
    gen_cfg.rate = workload::Schedule::constant(total);
    gen_cfg.api_weights = api_qps;
    gen_cfg.seed = gen_seed;
    workload::OpenLoopGenerator gen{cluster, gen_cfg};
    gen.start(cluster.now() + duration);
    cluster.run_for(duration);
  }
}

double SampleCollector::service_tail(int service, Seconds since, double rank) const {
  auto& win = const_cast<sim::Cluster&>(cluster_).service_latency(service);
  if (win.count_since(since) < cfg_.min_completions) return -1.0;
  return win.percentile_since(since, rank);
}

double SampleCollector::measure_tail(const std::vector<Qps>& api_qps, Seconds window,
                                     double rank) {
  cluster_.hard_reset_load();
  cluster_.clear_windows();
  run_load(api_qps, cfg_.warmup);
  const Seconds measure_from = cluster_.now();
  run_load(api_qps, window);
  auto& e2e = cluster_.e2e_latency_all();
  if (e2e.count_since(measure_from) < cfg_.min_completions) return -1.0;
  const double tail = e2e.percentile_since(measure_from, rank);
  cluster_.hard_reset_load();
  cluster_.run_for(cfg_.flush);
  simulated_seconds_ += cfg_.flush;
  return tail;
}

SearchSpace SampleCollector::reduce_search_space(const std::vector<Qps>& api_qps,
                                                 double slo_ms) {
  const std::size_t n = cluster_.service_count();
  SearchSpace space;
  space.lo.assign(n, cfg_.quota_floor);
  space.hi.assign(n, cfg_.quota_hi);

  // Baseline: every service at sufficient CPU.
  std::vector<Millicores> quota(n, cfg_.quota_hi);
  apply_quota(quota);
  cluster_.hard_reset_load();
  cluster_.clear_windows();
  run_load(api_qps, cfg_.warmup);
  Seconds since = cluster_.now();
  run_load(api_qps, cfg_.probe_window);
  std::vector<double> baseline(n, -1.0);
  for (std::size_t i = 0; i < n; ++i)
    baseline[i] = service_tail(static_cast<int>(i), since, cfg_.probe_rank);

  for (std::size_t i = 0; i < n; ++i) {
    if (baseline[i] < 0.0) continue;  // service unexercised by this workload
    // Reset everyone to sufficient CPU, then walk service i's quota down.
    std::fill(quota.begin(), quota.end(), cfg_.quota_hi);
    bool upper_found = false;
    Millicores q = cfg_.quota_hi;
    while (q - cfg_.step >= cfg_.quota_floor) {
      q -= cfg_.step;
      quota[i] = q;
      apply_quota(quota);
      cluster_.hard_reset_load();
      cluster_.clear_windows();
      run_load(api_qps, cfg_.warmup * 0.5);
      since = cluster_.now();
      run_load(api_qps, cfg_.probe_window);
      const double tail = service_tail(static_cast<int>(i), since, cfg_.probe_rank);
      if (!upper_found) {
        if (tail < 0.0 || tail > baseline[i] * cfg_.upper_tolerance) {
          space.hi[i] = std::min(q + cfg_.step, cfg_.quota_hi);  // last harmless quota
          upper_found = true;
        }
      }
      if (tail < 0.0 || tail > slo_ms) {
        space.lo[i] = q;  // this single service alone would break the SLO
        break;
      }
    }
    if (!upper_found) space.hi[i] = std::max(space.lo[i] + cfg_.step, cfg_.quota_floor + cfg_.step);
    if (space.lo[i] >= space.hi[i]) space.hi[i] = space.lo[i] + cfg_.step;
  }

  cluster_.hard_reset_load();
  cluster_.clear_windows();
  return space;
}

gnn::Dataset SampleCollector::collect(std::size_t n, const SearchSpace& space,
                                      const std::vector<Qps>& api_qps_base,
                                      double scale_lo, double scale_hi) {
  if (api_qps_base.size() != cluster_.api_count())
    throw std::invalid_argument{"SampleCollector::collect: api count mismatch"};
  const std::size_t services = cluster_.service_count();

  // Calibration pass: generous quotas, base workload, so the tracer holds
  // representative per-API fan-outs before feature extraction.
  std::vector<Millicores> quota(services, cfg_.quota_hi);
  apply_quota(quota);
  cluster_.hard_reset_load();
  run_load(api_qps_base, 5.0);
  analyzer_.update(cluster_.tracer());

  gnn::Dataset out;
  out.reserve(n);
  std::size_t attempts = 0;
  const std::size_t max_attempts = n * 4 + 100;
  while (out.size() < n && attempts < max_attempts) {
    ++attempts;
    const double scale = rng_.uniform(scale_lo, scale_hi);
    std::vector<Qps> api_qps = api_qps_base;
    for (auto& q : api_qps) q *= scale;
    for (std::size_t s = 0; s < services; ++s) {
      const double u = std::pow(rng_.uniform(), cfg_.low_quota_bias);
      quota[s] = space.lo[s] + u * (space.hi[s] - space.lo[s]);
    }

    apply_quota(quota);
    cluster_.hard_reset_load();
    cluster_.clear_windows();
    run_load(api_qps, cfg_.warmup);
    const Seconds since = cluster_.now();
    run_load(api_qps, cfg_.window);

    auto& e2e = cluster_.e2e_latency_all();
    if (e2e.count_since(since) < cfg_.min_completions) {
      // Hopelessly overloaded configuration: flush and redraw. The flush
      // still consumes cluster time, so it counts toward the simulated-time
      // budget exactly as on the accepted path.
      cluster_.hard_reset_load();
      cluster_.run_for(cfg_.flush);
      simulated_seconds_ += cfg_.flush;
      continue;
    }
    gnn::Sample s;
    if (cfg_.closed_loop) {
      // Closed-loop users self-throttle: record the *achieved* front-end
      // rate, which is what the controller will observe at runtime.
      std::vector<Qps> measured(api_qps.size(), 0.0);
      for (std::size_t a = 0; a < measured.size(); ++a)
        measured[a] = cluster_.api_qps(static_cast<int>(a), cfg_.window);
      s.workload = analyzer_.distribute(measured);
    } else {
      s.workload = analyzer_.distribute(api_qps);
    }
    s.quota = quota;
    s.latency_ms = e2e.percentile_since(since, cfg_.tail_rank);
    if (sink_) sink_(s, cluster_.now());
    out.push_back(std::move(s));

    analyzer_.update(cluster_.tracer());
    cluster_.hard_reset_load();
    cluster_.run_for(cfg_.flush);
    simulated_seconds_ += cfg_.flush;
  }
  return out;
}

gnn::Dataset SampleCollector::collect_sharded(
    std::size_t n, const SearchSpace& space, const std::vector<Qps>& api_qps_base,
    double scale_lo, double scale_hi, const ClusterFactory& make_cluster,
    telemetry::RegistrySnapshot* telemetry_out) {
  if (!make_cluster)
    throw std::invalid_argument{"SampleCollector::collect_sharded: null factory"};
  if (api_qps_base.size() != cluster_.api_count())
    throw std::invalid_argument{"SampleCollector::collect_sharded: api count mismatch"};
  const std::size_t services = cluster_.service_count();

  // Mirrors the sequential budget of max_attempts ~= 4 * n.
  constexpr std::size_t kAttemptsPerSample = 4;
  // Stream ids far outside [0, n) so the calibration replica never shares a
  // random stream with a sample shard.
  constexpr std::uint64_t kCalibrationStream = 0xca11b8a7e0000000ULL;

  // Calibration pass on a private replica: generous quotas, base workload,
  // then freeze the analyzer's fan-out. After this point the analyzer is
  // shared strictly read-only (distribute() is const) across all shards.
  {
    auto cal = make_cluster();
    if (cal == nullptr || cal->service_count() != services ||
        cal->api_count() != cluster_.api_count())
      throw std::invalid_argument{
          "SampleCollector::collect_sharded: factory topology mismatch"};
    cal->rng() = Rng{derive_seed(cfg_.seed, kCalibrationStream)};
    for (std::size_t s = 0; s < services; ++s)
      cal->apply_total_quota(static_cast<int>(s), cfg_.quota_hi, cfg_.max_per_instance);
    run_load_on(*cal, api_qps_base, 5.0, derive_seed(cfg_.seed, kCalibrationStream + 1));
    analyzer_.update(cal->tracer());
    simulated_seconds_ += 5.0;
  }

  struct PerSample {
    gnn::Sample sample;
    bool ok = false;
    Seconds seconds = 0.0;      ///< simulated time consumed by all attempts
    Seconds measured_at = 0.0;  ///< replica clock when the sample was taken
    telemetry::RegistrySnapshot telemetry;
  };
  std::vector<PerSample> results(n);
  const bool want_telemetry = telemetry_out != nullptr;

  global_pool().parallel_for(n, [&](std::size_t i) {
    PerSample& r = results[i];
    const std::uint64_t sample_seed = derive_seed(cfg_.seed, i);
    for (std::size_t attempt = 0; attempt < kAttemptsPerSample; ++attempt) {
      // Every random stream below is a pure function of
      // (cfg.seed, sample index, attempt): the dataset cannot depend on the
      // thread count or on which worker ran which sample.
      const std::uint64_t s0 = derive_seed(sample_seed, attempt);
      telemetry::MetricsRegistry replica_metrics;
      auto cl = make_cluster();
      cl->rng() = Rng{derive_seed(s0, 0)};
      if (want_telemetry) cl->set_metrics(&replica_metrics);
      Rng draw{derive_seed(s0, 1)};

      const double scale = draw.uniform(scale_lo, scale_hi);
      std::vector<Qps> api_qps = api_qps_base;
      for (auto& q : api_qps) q *= scale;
      std::vector<Millicores> quota(services, 0.0);
      for (std::size_t s = 0; s < services; ++s) {
        const double u = std::pow(draw.uniform(), cfg_.low_quota_bias);
        quota[s] = space.lo[s] + u * (space.hi[s] - space.lo[s]);
      }
      for (std::size_t s = 0; s < services; ++s)
        cl->apply_total_quota(static_cast<int>(s), quota[s], cfg_.max_per_instance);

      run_load_on(*cl, api_qps, cfg_.warmup, derive_seed(s0, 2));
      const Seconds since = cl->now();
      run_load_on(*cl, api_qps, cfg_.window, derive_seed(s0, 3));
      r.seconds += cfg_.warmup + cfg_.window;

      auto& e2e = cl->e2e_latency_all();
      // Replicas are discarded between attempts, so no flush is needed (or
      // billed) on this path — the redraw starts from a clean cluster.
      if (e2e.count_since(since) < cfg_.min_completions) continue;

      if (cfg_.closed_loop) {
        std::vector<Qps> measured(api_qps.size(), 0.0);
        for (std::size_t a = 0; a < measured.size(); ++a)
          measured[a] = cl->api_qps(static_cast<int>(a), cfg_.window);
        r.sample.workload = analyzer_.distribute(measured);
      } else {
        r.sample.workload = analyzer_.distribute(api_qps);
      }
      r.sample.quota = std::move(quota);
      r.sample.latency_ms = e2e.percentile_since(since, cfg_.tail_rank);
      r.measured_at = cl->now();
      if (want_telemetry) r.telemetry = replica_metrics.snapshot();
      r.ok = true;
      break;
    }
  });

  // Coordinator-side reduction in sample-index order: time accounting,
  // telemetry merge, and sink delivery are all deterministic.
  gnn::Dataset out;
  out.reserve(n);
  for (PerSample& r : results) {
    simulated_seconds_ += r.seconds;
    if (!r.ok) continue;
    if (want_telemetry) telemetry_out->merge(r.telemetry);
    if (sink_) sink_(r.sample, r.measured_at);
    out.push_back(std::move(r.sample));
  }
  return out;
}

}  // namespace graf::core
