// Latency Prediction Model orchestration (paper §3.4 + §5.1): dataset
// splitting, training, Table-2 style accuracy reporting, and dataset /
// model persistence so expensive sample collection and training can be
// shared across benchmark binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gnn/graph.h"
#include "gnn/latency_model.h"

namespace graf::core {

struct DatasetSplit {
  gnn::Dataset train;
  gnn::Dataset val;
  gnn::Dataset test;
};

/// Shuffle deterministically and split (1 - val - test | val | test).
DatasetSplit split_dataset(gnn::Dataset all, double val_fraction,
                           double test_fraction, std::uint64_t seed);

/// Plain-text dataset persistence.
void save_dataset(const std::string& path, const gnn::Dataset& data);
gnn::Dataset load_dataset(const std::string& path);

class LatencyPredictor {
 public:
  LatencyPredictor(const gnn::Dag& graph, const gnn::MpnnConfig& cfg,
                   std::uint64_t seed);

  /// Split + fit; keeps the test set for accuracy reporting.
  gnn::TrainHistory train(gnn::Dataset all, const gnn::TrainConfig& cfg,
                          double val_fraction = 0.15, double test_fraction = 0.15);

  gnn::LatencyModel& model() { return model_; }
  const gnn::Dataset& test_set() const { return split_.test; }
  const gnn::Dataset& train_set() const { return split_.train; }
  const gnn::Dataset& val_set() const { return split_.val; }

  /// Mean |%error| on the validation split (0 when no split is installed).
  /// This is the number recorded as CheckpointMeta::val_error_pct when the
  /// trained model is published to a serve::ModelRegistry — the online
  /// trainer's drift baseline.
  double validation_error_pct();

  /// Table 2: mean absolute percentage error per latency region, plus the
  /// overall signed error (the "over-estimate" column).
  struct RegionAccuracy {
    std::string region;
    double mean_abs_pct_error;
    std::size_t count;
  };
  std::vector<RegionAccuracy> accuracy_by_region(
      const std::vector<std::pair<double, double>>& regions_ms);
  double overall_signed_error();

  /// Model persistence (weights + scalers; construct identically first).
  void save_model(const std::string& path);
  bool load_model(const std::string& path);

  /// Install a dataset split without training (used when the model itself
  /// was loaded from disk but accuracy reports still need a test set).
  void set_split(DatasetSplit split) { split_ = std::move(split); }

 private:
  gnn::LatencyModel model_;
  DatasetSplit split_;
};

}  // namespace graf::core
