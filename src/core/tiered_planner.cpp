#include "core/tiered_planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

#include "nn/optim.h"

namespace graf::core {

TieredPlanner::TieredPlanner(std::shared_ptr<gnn::SurrogateModel> surrogate,
                             TieredPlannerConfig cfg)
    : cfg_{cfg}, served_{std::move(surrogate)} {
  if (served_ == nullptr)
    throw std::invalid_argument{"TieredPlanner: surrogate must not be null"};
  if (cfg_.trust_band_pct <= 0.0)
    throw std::invalid_argument{"TieredPlanner: trust_band_pct must be > 0"};
  if (cfg_.solver.rho <= 0.0)
    throw std::invalid_argument{"SolverConfig: rho must be > 0"};
}

void TieredPlanner::set_handle(serve::SurrogateHandle* handle) {
  handle_ = handle;
  active_surrogate();  // pick up whatever the handle already serves
}

void TieredPlanner::set_registry(serve::SurrogateRegistry* registry,
                                 serve::ModelKey key) {
  registry_ = registry;
  registry_key_ = std::move(key);
}

gnn::SurrogateModel& TieredPlanner::active_surrogate() {
  if (handle_ != nullptr) {
    serve::SurrogateHandle::Ptr cur = handle_->acquire();
    // An empty handle or a topology mismatch keeps the last good surrogate
    // serving (never-throw degradation, same stance as refresh_model()).
    if (cur != nullptr && cur.get() != served_.get() &&
        cur->node_count() == served_->node_count()) {
      served_ = std::move(cur);
      ++generation_;
    }
  }
  return *served_;
}

std::uint64_t TieredPlanner::surrogate_generation() {
  active_surrogate();
  return generation_;
}

void TieredPlanner::set_metrics(telemetry::MetricsRegistry* registry) {
  fast_hits_counter_ =
      registry != nullptr ? &registry->counter("core.surrogate.fast_hits") : nullptr;
  escalations_counter_ =
      registry != nullptr ? &registry->counter("core.surrogate.escalations") : nullptr;
  distill_samples_counter_ =
      registry != nullptr ? &registry->counter("core.surrogate.distill_samples")
                          : nullptr;
  refreshes_counter_ =
      registry != nullptr ? &registry->counter("core.surrogate.refreshes") : nullptr;
  trust_band_gauge_ =
      registry != nullptr ? &registry->gauge("core.surrogate.trust_band_pct") : nullptr;
  disagreement_gauge_ =
      registry != nullptr ? &registry->gauge("core.surrogate.disagreement_pct")
                          : nullptr;
  if (trust_band_gauge_ != nullptr) trust_band_gauge_->set(cfg_.trust_band_pct);
}

void TieredPlanner::note_fast_hit(double disagreement_pct) {
  ++fast_hits_;
  if (fast_hits_counter_ != nullptr) fast_hits_counter_->add();
  if (disagreement_gauge_ != nullptr) disagreement_gauge_->set(disagreement_pct);
}

void TieredPlanner::note_escalation(double disagreement_pct) {
  ++escalations_;
  if (escalations_counter_ != nullptr) escalations_counter_->add();
  if (disagreement_gauge_ != nullptr) disagreement_gauge_->set(disagreement_pct);
}

void TieredPlanner::note_miss_sample(std::span<const double> workload,
                                     std::span<const Millicores> quota,
                                     double teacher_ms) {
  gnn::Sample s;
  s.workload.assign(workload.begin(), workload.end());
  s.quota.assign(quota.begin(), quota.end());
  s.latency_ms = teacher_ms;
  window_.push_back(std::move(s));
  while (window_.size() > cfg_.refresh_window)
    window_.erase(window_.begin());
  ++distill_samples_;
  if (distill_samples_counter_ != nullptr) distill_samples_counter_->add();
}

void TieredPlanner::maybe_auto_refresh() {
  ++misses_since_refresh_;
  if (cfg_.refresh_after == 0) return;
  if (misses_since_refresh_ < cfg_.refresh_after) return;
  if (window_.size() < cfg_.refresh_min_samples) return;
  refresh_now();
}

bool TieredPlanner::refresh_now() {
  misses_since_refresh_ = 0;
  if (window_.empty()) return false;
  // Fine-tune a clone on the miss window; the incumbent keeps serving
  // until the candidate proves itself on the very samples it missed
  // (holdout-gate semantics, serve/online_trainer.h).
  gnn::SurrogateModel candidate = active_surrogate().clone();
  gnn::TrainConfig train = cfg_.refresh_train;
  train.batch_size = std::min(train.batch_size, window_.size());
  if (train.batch_size == 0) return false;
  candidate.fit(window_, window_, train);
  const double incumbent_err =
      active_surrogate().evaluate_accuracy(window_).mean_abs_pct_error;
  const double candidate_err = candidate.evaluate_accuracy(window_).mean_abs_pct_error;
  if (candidate_err > incumbent_err) return false;
  adopt(std::move(candidate));
  return true;
}

void TieredPlanner::adopt(gnn::SurrogateModel&& candidate) {
  if (registry_ != nullptr) {
    serve::SurrogateMeta meta;
    meta.distill_samples = window_.size();
    meta.val_error_pct = candidate.evaluate_accuracy(window_).mean_abs_pct_error;
    const std::uint64_t version = registry_->publish(registry_key_, candidate, meta);
    registry_->promote(registry_key_, version);
    if (handle_ != nullptr) {
      // The promote swapped any attached handle; pick it up (and bump the
      // generation) through the normal acquire path.
      active_surrogate();
      ++refreshes_;
      if (refreshes_counter_ != nullptr) refreshes_counter_->add();
      return;
    }
    served_ = registry_->active(registry_key_);
    if (served_ == nullptr)
      served_ = std::make_shared<gnn::SurrogateModel>(std::move(candidate));
  } else if (handle_ != nullptr) {
    handle_->swap(std::make_shared<gnn::SurrogateModel>(std::move(candidate)));
    active_surrogate();
    ++refreshes_;
    if (refreshes_counter_ != nullptr) refreshes_counter_->add();
    return;
  } else {
    served_ = std::make_shared<gnn::SurrogateModel>(std::move(candidate));
  }
  ++generation_;
  ++refreshes_;
  if (refreshes_counter_ != nullptr) refreshes_counter_->add();
}

SolverResult TieredPlanner::solve(gnn::LatencyModel& verifier,
                                  ConfigurationSolver& full_solver,
                                  std::span<const double> workload, double slo_ms,
                                  std::span<const Millicores> lo,
                                  std::span<const Millicores> hi) {
  Item item{this, &verifier, &full_solver, workload, slo_ms, lo, hi};
  std::vector<SolverResult> out = solve_items(active_surrogate(), cfg_.solver, {&item, 1});
  return std::move(out.front());
}

std::vector<TieredPlanner::Descent> TieredPlanner::descend(
    gnn::SurrogateModel& surrogate, const SolverConfig& cfg,
    std::span<const DescentRequest> requests) {
  if (cfg.rho <= 0.0) throw std::invalid_argument{"SolverConfig: rho must be > 0"};
  const std::size_t n = surrogate.node_count();
  const std::size_t starts = std::max<std::size_t>(1, cfg.multi_starts);
  if (requests.empty()) return {};

  const auto t0 = std::chrono::steady_clock::now();

  for (const DescentRequest& item : requests) {
    if (item.workload.size() != n || item.lo.size() != n || item.hi.size() != n)
      throw std::invalid_argument{"solve_items: dimension mismatch"};
    if (item.slo_ms <= 0.0)
      throw std::invalid_argument{"solve_items: slo must be > 0"};
    for (std::size_t i = 0; i < n; ++i)
      if (!(item.lo[i] > 0.0) || item.lo[i] > item.hi[i])
        throw std::invalid_argument{"solve_items: need 0 < lo <= hi"};
  }

  const std::size_t tenants = requests.size();
  const std::size_t rows = tenants * starts;

  // Row t*K+k is item t's start k — the identical start rows solve_batch
  // builds (row 0 from the hi bounds, rows k >= 1 from the per-k
  // derive_seed streams), so the surrogate tier inherits the full path's
  // start-point determinism wholesale.
  nn::Tensor starts_mat{rows, n};
  nn::Tensor workload_rows{rows, n};
  for (std::size_t t = 0; t < tenants; ++t) {
    const DescentRequest& item = requests[t];
    for (std::size_t i = 0; i < n; ++i) {
      starts_mat(t * starts, i) = item.hi[i];
      for (std::size_t k = 0; k < starts; ++k)
        workload_rows(t * starts + k, i) = item.workload[i];
    }
    for (std::size_t k = 1; k < starts; ++k) {
      Rng start_rng{derive_seed(cfg.multi_start_seed, k)};
      for (std::size_t i = 0; i < n; ++i)
        starts_mat(t * starts + k, i) = start_rng.uniform(item.lo[i], item.hi[i]);
    }
  }

  // Per-row constant columns: quota normalizer and inverse margined target
  // (solve_batch's mul-vs-scale equivalence, DESIGN.md §3.13).
  nn::Tensor qnorm{rows, 1};
  nn::Tensor inv_target{rows, 1};
  std::vector<double> target(tenants, 0.0);
  for (std::size_t t = 0; t < tenants; ++t) {
    double hi_total = 0.0;
    for (double h : requests[t].hi) hi_total += h;
    const double quota_norm = 1.0 / hi_total;
    target[t] = requests[t].slo_ms * cfg.slo_margin;
    const double inv = 1.0 / target[t];
    for (std::size_t k = 0; k < starts; ++k) {
      qnorm(t * starts + k, 0) = quota_norm;
      inv_target(t * starts + k, 0) = inv;
    }
  }

  nn::Param r{std::move(starts_mat)};
  nn::Adam adam{{&r}, {.lr = cfg.lr_mc}};

  // One ADAM over the stacked block equals every row running its own
  // (solve_batch's argument): elementwise updates, unmixed moments, shared
  // step counter, finished rows re-pinned to their frozen value.
  std::vector<SolverResult> runs(rows);
  std::vector<double> prev_loss(rows, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> calm(rows, 0);
  std::vector<char> done(rows, 0);
  nn::Tensor frozen{rows, n};
  std::size_t active = rows;

  nn::Tape tape;
  for (std::size_t it = 1; it <= cfg.max_iterations && active > 0; ++it) {
    tape.reset();
    tape.set_freeze_params(false);
    nn::Var rv = tape.param(r);
    tape.set_freeze_params(true);
    nn::Var pred = surrogate.predict_var_rows(tape, workload_rows, rv);  // rows x 1
    nn::Var quota_term = nn::mul(nn::sum_rows(rv), tape.constant_ref(qnorm));
    nn::Var violation = nn::relu(
        nn::add_scalar(nn::mul(pred, tape.constant_ref(inv_target)), -1.0));
    nn::Var loss_rows = nn::add(quota_term, nn::scale(violation, cfg.rho));
    nn::Var total = nn::sum_all(loss_rows);

    const nn::Tensor& loss_vals = tape.value(loss_rows);  // pre-step, per row
    r.zero_grad();
    tape.backward(total);
    adam.step();
    if (cfg.lr_decay_every > 0 && it % cfg.lr_decay_every == 0)
      adam.set_learning_rate(adam.learning_rate() * cfg.lr_decay_factor);
    for (std::size_t t = 0; t < tenants; ++t)
      for (std::size_t k = 0; k < starts; ++k) {
        const std::size_t row = t * starts + k;
        for (std::size_t i = 0; i < n; ++i)
          r.value(row, i) =
              std::clamp(r.value(row, i), requests[t].lo[i], requests[t].hi[i]);
      }
    for (std::size_t row = 0; row < rows; ++row)
      if (done[row])
        for (std::size_t i = 0; i < n; ++i) r.value(row, i) = frozen(row, i);

    for (std::size_t row = 0; row < rows; ++row) {
      if (done[row]) continue;
      const double loss_val = loss_vals(row, 0);
      runs[row].iterations = it;
      runs[row].loss = loss_val;
      if (std::abs(loss_val - prev_loss[row]) < cfg.tolerance) {
        if (++calm[row] >= cfg.patience) {
          runs[row].converged = true;
          done[row] = 1;
          --active;
          for (std::size_t i = 0; i < n; ++i) frozen(row, i) = r.value(row, i);
          continue;
        }
      } else {
        calm[row] = 0;
      }
      prev_loss[row] = loss_val;
    }
  }
  tape.set_freeze_params(false);

  for (std::size_t row = 0; row < rows; ++row) {
    runs[row].quota.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) runs[row].quota[i] = r.value(row, i);
  }
  // One stacked frozen forward scores every row — a single code path for
  // any (tenants, starts), so the solo and fleet-batched tiers match.
  tape.reset();
  tape.set_freeze_params(true);
  nn::Var quota_var = tape.constant_ref(r.value);
  nn::Var pred = surrogate.predict_var_rows(tape, workload_rows, quota_var);
  const nn::Tensor& pred_vals = tape.value(pred);
  for (std::size_t row = 0; row < rows; ++row)
    runs[row].predicted_ms = pred_vals(row, 0);
  tape.set_freeze_params(false);

  const double surrogate_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<Descent> out;
  out.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    std::vector<SolverResult> item_runs(
        std::make_move_iterator(runs.begin() + static_cast<std::ptrdiff_t>(t * starts)),
        std::make_move_iterator(
            runs.begin() + static_cast<std::ptrdiff_t>((t + 1) * starts)));
    Descent d;
    for (const SolverResult& run : item_runs) d.surrogate_iterations += run.iterations;
    d.winner =
        std::move(item_runs[ConfigurationSolver::pick_winner(item_runs, target[t])]);
    d.seconds = surrogate_seconds;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<SolverResult> TieredPlanner::solve_items(gnn::SurrogateModel& surrogate,
                                                     const SolverConfig& cfg,
                                                     std::span<const Item> items) {
  for (const Item& item : items)
    if (item.planner == nullptr || item.verifier == nullptr ||
        item.full_solver == nullptr)
      throw std::invalid_argument{"solve_items: null item member"};

  std::vector<DescentRequest> requests;
  requests.reserve(items.size());
  for (const Item& item : items)
    requests.push_back({item.workload, item.slo_ms, item.lo, item.hi});
  std::vector<Descent> descents = descend(surrogate, cfg, requests);

  std::vector<SolverResult> out;
  out.reserve(items.size());
  for (std::size_t t = 0; t < items.size(); ++t) {
    const Item& item = items[t];
    SolverResult winner = std::move(descents[t].winner);
    const double surrogate_ms = winner.predicted_ms;

    // The verification tier: exactly one full-GNN forward at the candidate.
    const double full_ms = item.verifier->predict(item.workload, winner.quota);
    const double disagreement_pct = std::abs(surrogate_ms - full_ms) /
                                    std::max(std::abs(full_ms), 1e-9) * 100.0;
    const bool trusted = disagreement_pct <= item.planner->cfg_.trust_band_pct &&
                         full_ms <= item.slo_ms;
    item.full_solver->note_external_iterations(descents[t].surrogate_iterations);
    if (trusted) {
      // Truth flows downstream: the accepted plan reports the full model's
      // prediction, so finish_plan's feasibility/saturation logic behaves
      // exactly as in full mode.
      winner.predicted_ms = full_ms;
      winner.solve_seconds = descents[t].seconds;
      item.planner->note_fast_hit(disagreement_pct);
      out.push_back(std::move(winner));
      continue;
    }

    // Trust-band miss: the candidate (with its teacher label) feeds the
    // refresh window, then the full solver takes over.
    item.planner->note_escalation(disagreement_pct);
    item.planner->note_miss_sample(item.workload, winner.quota, full_ms);
    SolverResult full =
        item.full_solver->solve(item.workload, item.slo_ms, item.lo, item.hi);
    item.planner->note_miss_sample(item.workload, full.quota, full.predicted_ms);
    item.planner->maybe_auto_refresh();
    out.push_back(std::move(full));
  }
  return out;
}

gnn::SurrogateDistiller::Result TieredPlanner::distill_for_planner(
    gnn::LatencyModel& teacher, std::span<const double> workload_hi,
    std::span<const Millicores> lo, std::span<const Millicores> hi, double slo_ms,
    const SolverDistillConfig& cfg, const SolverConfig& solver) {
  if (slo_ms <= 0.0)
    throw std::invalid_argument{"distill_for_planner: slo must be > 0"};
  if (cfg.rounds > 0 && cfg.queries_per_round == 0)
    throw std::invalid_argument{
        "distill_for_planner: queries_per_round must be > 0 with rounds > 0"};
  if (cfg.jitter_pct < 0.0 || cfg.jitter_pct >= 1.0)
    throw std::invalid_argument{"distill_for_planner: jitter_pct must be in [0, 1)"};

  // Phase 1 — the plain operating-region pass (same split rule as
  // SurrogateDistiller::distill, kept here so the rollout rounds can fold
  // fresh samples into the live training set).
  gnn::Dataset train = gnn::SurrogateDistiller::sample_teacher(
      teacher, workload_hi, lo, hi, cfg.base.samples, cfg.base.seed,
      cfg.base.workload_floor, cfg.base.correlated_fraction, cfg.base.low_quota_bias);
  const std::size_t val_count =
      std::min(train.size() - 1,
               static_cast<std::size_t>(std::llround(
                   cfg.base.val_fraction * static_cast<double>(train.size()))));
  gnn::Dataset val{train.end() - static_cast<std::ptrdiff_t>(val_count), train.end()};
  train.resize(train.size() - val_count);

  gnn::SurrogateModel model{teacher.node_count(), cfg.base.model,
                            derive_seed(cfg.base.seed, 1)};
  model.set_scalers(teacher.scalers());

  gnn::DistillReport report;
  report.samples = cfg.base.samples;
  report.history = model.fit(train, val, cfg.base.train);

  // Phase 2 — rollout, label, fold in, fine-tune. Each round's queries
  // descend as one stacked tape through the *current* surrogate, so round
  // k covers the level set the round-(k-1) model steers to; the teacher
  // labels land exactly where the planner's verification forward will look.
  const std::size_t n = teacher.node_count();
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    std::vector<std::vector<double>> queries(cfg.queries_per_round);
    for (std::size_t qi = 0; qi < cfg.queries_per_round; ++qi) {
      Rng rng{derive_seed(derive_seed(cfg.seed, round), qi)};
      std::vector<double>& w = queries[qi];
      w.resize(n);
      if (rng.uniform(0.0, 1.0) < cfg.base.correlated_fraction) {
        const double t = rng.uniform(cfg.base.workload_floor, 1.0);
        for (std::size_t k = 0; k < n; ++k) w[k] = t * workload_hi[k];
      } else {
        for (std::size_t k = 0; k < n; ++k)
          w[k] = rng.uniform(cfg.base.workload_floor * workload_hi[k],
                             workload_hi[k]);
      }
    }
    std::vector<DescentRequest> requests;
    requests.reserve(queries.size());
    for (const std::vector<double>& w : queries)
      requests.push_back({w, slo_ms, lo, hi});
    std::vector<Descent> descents = descend(model, solver, requests);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      gnn::Sample s;
      s.workload = queries[qi];
      s.quota = std::move(descents[qi].winner.quota);
      s.latency_ms = teacher.predict(s.workload, s.quota);
      // Jittered neighbors first (they read s.quota), then the winner.
      for (std::size_t j = 0; j < cfg.jitter_per_query; ++j) {
        Rng jrng{derive_seed(derive_seed(derive_seed(cfg.seed, round), qi), j + 1)};
        gnn::Sample neighbor;
        neighbor.workload = s.workload;
        neighbor.quota.resize(n);
        for (std::size_t k = 0; k < n; ++k)
          neighbor.quota[k] = std::clamp(
              s.quota[k] * jrng.uniform(1.0 - cfg.jitter_pct, 1.0 + cfg.jitter_pct),
              lo[k], hi[k]);
        neighbor.latency_ms = teacher.predict(neighbor.workload, neighbor.quota);
        train.push_back(std::move(neighbor));
      }
      train.push_back(std::move(s));
    }
    report.samples += queries.size() * (1 + cfg.jitter_per_query);
    gnn::TrainConfig refine = cfg.refine;
    refine.seed = derive_seed(cfg.refine.seed, round);
    model.fit(train, val, refine);
  }

  if (!val.empty())
    report.val_mean_abs_pct_error = model.evaluate_accuracy(val).mean_abs_pct_error;
  return {std::move(model), std::move(report)};
}

}  // namespace graf::core
