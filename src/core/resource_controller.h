// Resource controller (paper §3.6): bridges the continuous world of the
// solver and the discrete world of the cluster.
//
//  1. Scales the observed workload down into the region the GNN was
//     trained on (factor k = max_i l_i / l_i^train-max, floored at 1),
//  2. runs the configuration solver on the scaled workload,
//  3. scales the resulting quotas back up by k (even-distribution
//     assumption), and
//  4. converts quotas to replica counts: instances = ceil(quota/unit)
//     (Eq. 7), applied through the normal deployment pipeline.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/units.h"
#include "core/configuration_solver.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"

namespace graf::serve {
class ServingHandle;
}

namespace graf::core {

struct AllocationPlan {
  std::vector<Millicores> quota;   ///< per-service CPU quota (post-rescale)
  std::vector<int> instances;      ///< Eq. 7 replica counts
  double predicted_ms = 0.0;       ///< model estimate at the *scaled* point
  double scale_factor = 1.0;       ///< k applied to workload and quota
  SolverResult solver;             ///< raw solver diagnostics
};

class ResourceController {
 public:
  /// `lo`/`hi` are the Algorithm-1 per-service bounds the model was trained
  /// within; `unit_mc` the per-service instance CPU units (Eq. 7).
  ResourceController(gnn::LatencyModel& model, ConfigurationSolver& solver,
                     WorkloadAnalyzer& analyzer, std::vector<Millicores> lo,
                     std::vector<Millicores> hi, std::vector<Millicores> unit_mc);

  /// Record the per-node workload maxima of the training set (the "region
  /// where GNN is trained" that observed workloads are scaled into).
  void set_training_reference(const gnn::Dataset& train);

  /// Produce the allocation plan for observed per-API workloads and an SLO.
  AllocationPlan plan(std::span<const Qps> api_qps, double slo_ms);

  /// Push a plan to the cluster (scale_to via the deployment pipeline).
  static void apply(sim::Cluster& cluster, const AllocationPlan& plan);

  const std::vector<Millicores>& lower_bounds() const { return lo_; }
  const std::vector<Millicores>& upper_bounds() const { return hi_; }

  /// Serve the model published through `handle` instead of the constructor
  /// model: every plan() starts by acquiring the handle's current model, so
  /// the online trainer can hot-swap between allocation decisions without
  /// pausing the control loop. Pass nullptr to detach.
  void set_serving_handle(serve::ServingHandle* handle);

  /// The model the next plan() will solve through.
  gnn::LatencyModel& active_model();

  /// Publish planning telemetry: `core.plan_us` (wall time per plan()),
  /// `core.plans_total`, and gauges for the last plan's solver iterations,
  /// predicted p99, scale factor, and total quota. Also forwards to the
  /// solver's per-iteration profiling. nullptr detaches (default).
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  void refresh_model();

  gnn::LatencyModel* model_;
  ConfigurationSolver& solver_;
  WorkloadAnalyzer& analyzer_;
  serve::ServingHandle* handle_ = nullptr;
  /// Keeps the hot-swapped model alive while plans reference it.
  std::shared_ptr<gnn::LatencyModel> pinned_;
  std::vector<Millicores> lo_;
  std::vector<Millicores> hi_;
  std::vector<Millicores> unit_;
  std::vector<double> train_max_workload_;
  telemetry::LogHistogram* plan_timer_ = nullptr;
  telemetry::Counter* plans_total_ = nullptr;
  telemetry::Gauge* solver_iterations_ = nullptr;
  telemetry::Gauge* predicted_p99_ = nullptr;
  telemetry::Gauge* scale_factor_ = nullptr;
  telemetry::Gauge* planned_quota_ = nullptr;
};

}  // namespace graf::core
