// Resource controller (paper §3.6): bridges the continuous world of the
// solver and the discrete world of the cluster.
//
//  1. Scales the observed workload down into the region the GNN was
//     trained on (factor k = max_i l_i / l_i^train-max, floored at 1),
//  2. runs the configuration solver on the scaled workload,
//  3. scales the resulting quotas back up by k (even-distribution
//     assumption), and
//  4. converts quotas to replica counts: instances = ceil(quota/unit)
//     (Eq. 7), applied through the normal deployment pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/units.h"
#include "core/configuration_solver.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"

namespace graf::serve {
class ServingHandle;
}

namespace graf::core {

class TieredPlanner;

/// How solve_prepared reaches a plan (DESIGN.md §3.14).
enum class PlannerMode {
  kFull = 0,               ///< every solve runs the full-GNN descent
  kSurrogateVerified = 1,  ///< surrogate fast path + one full-GNN verify
};

struct AllocationPlan {
  std::vector<Millicores> quota;   ///< per-service CPU quota (post-rescale)
  std::vector<int> instances;      ///< Eq. 7 replica counts
  double predicted_ms = 0.0;       ///< model estimate at the *scaled* point
  double scale_factor = 1.0;       ///< k applied to workload and quota
  SolverResult solver;             ///< raw solver diagnostics
  /// predicted_ms meets the SLO (at the clamped point when saturated).
  bool feasible = true;
  /// Some quota/replica count hit a cap (hi bound x k, or max_instances);
  /// predicted_ms was re-evaluated at the clamped allocation.
  bool saturated = false;
  /// Fallback plan: the solve could not be trusted (NaN/infeasible result,
  /// analyzer not ready, served-model shape mismatch) and the controller
  /// reused its last feasible plan (or the hi-bound default) instead.
  bool degraded = false;
};

/// The front half of a plan() in flight (DESIGN.md §3.13): everything
/// plan() decides *before* the solver runs. When `done` is set the plan is
/// already final (cache hit or degraded fallback) and `plan` holds it;
/// otherwise `scaled`/`slo_ms` are the solve inputs and key/slo_bits/k the
/// state finish_plan needs to complete the decision. Produced by
/// begin_plan(), consumed exactly once by finish_plan().
struct PlanPrep {
  bool done = false;
  AllocationPlan plan;
  double slo_ms = 0.0;
  double k = 1.0;                  ///< §3.6 workload scale factor
  std::vector<double> scaled;      ///< node workload / k — the solver input
  std::vector<std::int32_t> key;   ///< plan-cache key (quantized workload)
  std::uint64_t slo_bits = 0;
  /// Planner mode + surrogate generation folded into the cache key — a
  /// mode switch or surrogate promote/rollback/refresh can never serve a
  /// plan the other planner produced (high bit = surrogate-verified mode,
  /// low bits = the tiered planner's surrogate generation; 0 = full mode).
  std::uint64_t planner_bits = 0;
};

class ResourceController {
 public:
  /// `lo`/`hi` are the Algorithm-1 per-service bounds the model was trained
  /// within; `unit_mc` the per-service instance CPU units (Eq. 7).
  ResourceController(gnn::LatencyModel& model, ConfigurationSolver& solver,
                     WorkloadAnalyzer& analyzer, std::vector<Millicores> lo,
                     std::vector<Millicores> hi, std::vector<Millicores> unit_mc);

  /// Record the per-node workload maxima of the training set (the "region
  /// where GNN is trained" that observed workloads are scaled into).
  void set_training_reference(const gnn::Dataset& train);

  /// Per-service replica caps (the cluster's ServiceConfig::max_instances).
  /// plan() clamps to these and re-predicts at the clamped point instead of
  /// letting Service::scale_to silently clamp later — the published
  /// predicted_ms must describe the allocation that actually lands. Empty
  /// (the default) means uncapped.
  void set_max_instances(std::vector<int> max_instances);

  /// Produce the allocation plan for observed per-API workloads and an SLO.
  /// Exactly begin_plan + solve_prepared + finish_plan, in that order.
  AllocationPlan plan(std::span<const Qps> api_qps, double slo_ms);

  // The split plan pipeline (fleet-batched solving, DESIGN.md §3.13): the
  // fleet runs begin_plan on the fan-out, coalesces same-model tenants'
  // prepared solves into one ConfigurationSolver::solve_batch call, then
  // finishes each with finish_plan. begin + solve_prepared + finish is
  // operation-for-operation the body of plan(), so the two paths produce
  // bit-identical plans, cache state, and counters.

  /// Model refresh, degraded checks, workload distribution, cache lookup,
  /// and §3.6 scaling. On a cache hit or degraded fallback the returned
  /// prep is `done` (counters and publish already applied).
  PlanPrep begin_plan(std::span<const Qps> api_qps, double slo_ms);
  /// The solver call plan() would make for a prepared (not-done) plan.
  SolverResult solve_prepared(const PlanPrep& prep);
  /// Eq. 7 discretization, saturation re-predict, feasibility bookkeeping,
  /// cache insert, publish — the back half of plan().
  AllocationPlan finish_plan(PlanPrep prep, SolverResult solved);

  /// Bumped whenever cached plans stop describing what the solver would
  /// produce (hot-swap, reference/caps/capacity changes, degraded entry).
  /// The fleet keys per-tenant model fingerprints on it.
  std::uint64_t model_generation() const { return model_generation_; }
  /// The model plan() last refreshed to — no handle refresh, unlike
  /// active_model(). Valid only after a begin_plan/plan on this tick.
  gnn::LatencyModel& current_model() { return *model_; }

  /// Push a plan to the cluster (scale_to via the deployment pipeline).
  static void apply(sim::Cluster& cluster, const AllocationPlan& plan);

  const std::vector<Millicores>& lower_bounds() const { return lo_; }
  const std::vector<Millicores>& upper_bounds() const { return hi_; }

  /// Serve the model published through `handle` instead of the constructor
  /// model: every plan() starts by acquiring the handle's current model, so
  /// the online trainer can hot-swap between allocation decisions without
  /// pausing the control loop. Pass nullptr to detach.
  void set_serving_handle(serve::ServingHandle* handle);

  /// The model the next plan() will solve through.
  gnn::LatencyModel& active_model();

  /// Attach the two-tier surrogate planner (DESIGN.md §3.14) and switch to
  /// surrogate-verified mode; nullptr detaches and reverts to full mode.
  /// The planner's generation joins the plan-cache key (planner_bits), so
  /// no invalidation race exists around attach/detach or surrogate swaps.
  /// Forwards the current metrics registry to the planner.
  void set_tiered_planner(TieredPlanner* planner);
  PlannerMode planner_mode() const { return planner_mode_; }
  TieredPlanner* tiered_planner() { return tiered_; }

  /// Publish planning telemetry: `core.plan_us` (wall time per plan()),
  /// `core.plans_total`, and gauges for the last plan's solver iterations,
  /// predicted p99, scale factor, and total quota; degraded-mode visibility
  /// via the `core.degraded` / `core.plan_saturated` gauges and the
  /// `faults.model_shape_mismatch` / `faults.analyzer_not_ready` /
  /// `faults.solver_nan` / `faults.solver_infeasible` counters. Also
  /// forwards to the solver's per-iteration profiling. nullptr detaches
  /// (default).
  void set_metrics(telemetry::MetricsRegistry* registry);

  /// Plans answered from the fallback path since construction.
  std::uint64_t degraded_plans() const { return degraded_plans_; }
  /// A feasible (non-degraded) plan exists to fall back on.
  bool has_last_good() const { return have_last_good_; }

  // ---- Plan cache ----------------------------------------------------------
  //
  // plan() memoizes feasible, non-degraded results keyed by (the observed
  // node workload quantized into ~2% log buckets, the SLO bits, the model
  // generation). A repeat of a recent workload answers from the cache and
  // skips the solve entirely — the expected steady state, where the
  // controller re-plans every sync period but traffic only drifts. The
  // generation counter bumps (and the cache clears) on model hot-swap,
  // set_training_reference, set_max_instances, and every degraded-plan
  // transition, so a stale model or topology can never serve a cached plan.

  /// Max cached plans, LRU-evicted (0 disables caching; clears the cache).
  void set_plan_cache_capacity(std::size_t capacity);
  std::uint64_t plan_cache_hits() const { return cache_hits_; }
  std::uint64_t plan_cache_misses() const { return cache_misses_; }
  std::uint64_t plan_cache_evictions() const { return cache_evictions_; }

 private:
  struct CachedPlan {
    std::vector<std::int32_t> workload_buckets;
    std::uint64_t slo_bits = 0;
    std::uint64_t generation = 0;
    std::uint64_t planner_bits = 0;  ///< see PlanPrep::planner_bits
    AllocationPlan plan;
    double solve_seconds = 0.0;  ///< what a hit saves (telemetry)
    std::uint64_t last_used = 0;
  };

  void refresh_model();
  void invalidate_plan_cache();
  /// The PlanPrep/CachedPlan planner_bits for the next solve (refreshes
  /// the tiered planner's served surrogate first in surrogate mode).
  std::uint64_t planner_bits();
  /// Fallback: last feasible plan if one exists, else the hi-bound default
  /// (quota = hi — the most conservative allocation inside the trained
  /// region, approximating what a best-effort solve would reach).
  AllocationPlan degraded_plan(telemetry::Counter* cause);
  void publish_plan(const AllocationPlan& plan);

  gnn::LatencyModel* model_;
  ConfigurationSolver& solver_;
  WorkloadAnalyzer& analyzer_;
  serve::ServingHandle* handle_ = nullptr;
  /// Keeps the hot-swapped model alive while plans reference it.
  std::shared_ptr<gnn::LatencyModel> pinned_;
  std::vector<Millicores> lo_;
  std::vector<Millicores> hi_;
  std::vector<Millicores> unit_;
  std::vector<int> max_instances_;  // empty = uncapped
  TieredPlanner* tiered_ = nullptr;
  PlannerMode planner_mode_ = PlannerMode::kFull;
  /// Remembered so a planner attached after set_metrics still gets wired.
  telemetry::MetricsRegistry* metrics_registry_ = nullptr;
  std::vector<double> train_max_workload_;
  /// True while the served model's shape doesn't match this controller's
  /// topology: plans degrade instead of solving through the wrong graph.
  bool model_mismatch_ = false;
  AllocationPlan last_good_;
  bool have_last_good_ = false;
  std::uint64_t degraded_plans_ = 0;
  telemetry::LogHistogram* plan_timer_ = nullptr;
  telemetry::Counter* plans_total_ = nullptr;
  telemetry::Gauge* solver_iterations_ = nullptr;
  telemetry::Gauge* predicted_p99_ = nullptr;
  telemetry::Gauge* scale_factor_ = nullptr;
  telemetry::Gauge* planned_quota_ = nullptr;
  telemetry::Gauge* degraded_gauge_ = nullptr;
  telemetry::Gauge* saturated_gauge_ = nullptr;
  telemetry::Counter* fault_model_mismatch_ = nullptr;
  telemetry::Counter* fault_analyzer_ = nullptr;
  telemetry::Counter* fault_nan_ = nullptr;
  telemetry::Counter* fault_infeasible_ = nullptr;

  std::vector<CachedPlan> plan_cache_;
  std::size_t plan_cache_capacity_ = 64;
  std::uint64_t model_generation_ = 0;
  std::uint64_t cache_tick_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  telemetry::Counter* cache_hits_counter_ = nullptr;
  telemetry::Counter* cache_misses_counter_ = nullptr;
  telemetry::Counter* cache_evictions_counter_ = nullptr;
  /// Solve time skipped by cache hits, microseconds.
  telemetry::Counter* cache_saved_us_ = nullptr;
};

}  // namespace graf::core
