// State and trace collector (paper §3.2): the façade through which GRAF
// observes the cluster — front-end workload per API, current quotas,
// utilizations, and replica counts. GRAF's *allocation* path deliberately
// consumes only the front-end workload (proactivity, §3.8); the richer
// fields feed the sample collector and reporting.
#pragma once

#include <vector>

#include "common/units.h"
#include "sim/cluster.h"

namespace graf::core {

struct ClusterState {
  Seconds time = 0.0;
  std::vector<Qps> api_qps;            ///< front-end workload per API
  std::vector<Millicores> quota;       ///< total CPU quota per service
  std::vector<double> utilization;     ///< per service, last window
  std::vector<int> ready;              ///< ready replicas
  std::vector<int> creating;           ///< replicas still starting
};

class StateCollector {
 public:
  explicit StateCollector(sim::Cluster& cluster, Seconds window = 5.0);

  /// Front-end workload per API over the observation window.
  std::vector<Qps> frontend_workload() const;

  /// Full snapshot.
  ClusterState collect() const;

  Seconds window() const { return window_; }

 private:
  sim::Cluster& cluster_;
  Seconds window_;
};

}  // namespace graf::core
