#include "core/integer_refiner.h"

#include <stdexcept>

namespace graf::core {

IntegerRefiner::IntegerRefiner(gnn::LatencyModel& model, IntegerRefinerConfig cfg)
    : model_{model}, cfg_{cfg} {}

RefinedPlan IntegerRefiner::refine(std::span<const double> workload, double slo_ms,
                                   std::span<const int> instances,
                                   std::span<const Millicores> unit_mc,
                                   std::span<const Millicores> min_lo) {
  const std::size_t n = model_.node_count();
  if (workload.size() != n || instances.size() != n || unit_mc.size() != n ||
      min_lo.size() != n)
    throw std::invalid_argument{"IntegerRefiner::refine: dimension mismatch"};

  RefinedPlan plan;
  plan.instances.assign(instances.begin(), instances.end());
  plan.quota.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    plan.quota[i] = unit_mc[i] * static_cast<double>(plan.instances[i]);

  const double budget_ms = slo_ms * cfg_.slo_margin;
  plan.predicted_ms = model_.predict(workload, plan.quota);

  for (std::size_t round = 0; round < cfg_.max_rounds; ++round) {
    // Candidate: the feasible single-instance removal freeing the most CPU.
    std::size_t best = n;
    double best_saving = 0.0;
    double best_pred = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (plan.instances[i] <= 1) continue;
      const double new_quota = plan.quota[i] - unit_mc[i];
      if (new_quota < min_lo[i]) continue;
      auto trial = plan.quota;
      trial[i] = new_quota;
      const double pred = model_.predict(workload, trial);
      if (pred > budget_ms) continue;
      if (unit_mc[i] > best_saving) {
        best = i;
        best_saving = unit_mc[i];
        best_pred = pred;
      }
    }
    if (best == n) break;  // nothing removable
    plan.instances[best] -= 1;
    plan.quota[best] -= unit_mc[best];
    plan.predicted_ms = best_pred;
    plan.saved_mc += best_saving;
    ++plan.removed;
  }
  return plan;
}

}  // namespace graf::core
