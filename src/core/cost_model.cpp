#include "core/cost_model.h"

#include <limits>

namespace graf::core {

CostBreakdown training_cost(std::size_t samples, double seconds_per_sample,
                            double training_hours, AwsPricing prices) {
  CostBreakdown c;
  const double collection_hours =
      static_cast<double>(samples) * seconds_per_sample / 3600.0;
  c.load_gen_hours = collection_hours;
  c.worker_hours = collection_hours;
  c.gpu_hours = training_hours;
  c.load_gen_usd = c.load_gen_hours * prices.load_generator;
  c.worker_usd = c.worker_hours * prices.worker_node;
  c.gpu_usd = c.gpu_hours * prices.gpu_training;
  c.total_usd = c.load_gen_usd + c.worker_usd + c.gpu_usd;
  return c;
}

double daily_saving_usd(double saved_instances, AwsPricing prices) {
  return saved_instances * prices.per_instance * 24.0;
}

double net_profit_usd(double saved_instances, double update_period_days,
                      const CostBreakdown& cost, AwsPricing prices) {
  return daily_saving_usd(saved_instances, prices) * update_period_days - cost.total_usd;
}

double breakeven_days(double saved_instances, const CostBreakdown& cost,
                      AwsPricing prices) {
  const double daily = daily_saving_usd(saved_instances, prices);
  if (daily <= 0.0) return std::numeric_limits<double>::infinity();
  return cost.total_usd / daily;
}

}  // namespace graf::core
