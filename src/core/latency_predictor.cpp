#include "core/latency_predictor.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace graf::core {

DatasetSplit split_dataset(gnn::Dataset all, double val_fraction,
                           double test_fraction, std::uint64_t seed) {
  if (val_fraction < 0.0 || test_fraction < 0.0 || val_fraction + test_fraction >= 1.0)
    throw std::invalid_argument{"split_dataset: bad fractions"};
  Rng rng{seed};
  for (std::size_t i = all.size(); i > 1; --i)
    std::swap(all[i - 1],
              all[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  const auto n = all.size();
  const auto n_val = static_cast<std::size_t>(static_cast<double>(n) * val_fraction);
  const auto n_test = static_cast<std::size_t>(static_cast<double>(n) * test_fraction);
  DatasetSplit out;
  out.test.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n_test));
  out.val.assign(all.begin() + static_cast<std::ptrdiff_t>(n_test),
                 all.begin() + static_cast<std::ptrdiff_t>(n_test + n_val));
  out.train.assign(all.begin() + static_cast<std::ptrdiff_t>(n_test + n_val), all.end());
  return out;
}

void save_dataset(const std::string& path, const gnn::Dataset& data) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"save_dataset: cannot open " + path};
  os.precision(17);
  const std::size_t dim = data.empty() ? 0 : data.front().workload.size();
  os << data.size() << ' ' << dim << '\n';
  for (const auto& s : data) {
    for (double w : s.workload) os << w << ' ';
    for (double q : s.quota) os << q << ' ';
    os << s.latency_ms << '\n';
  }
}

gnn::Dataset load_dataset(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"load_dataset: cannot open " + path};
  std::size_t n = 0;
  std::size_t dim = 0;
  if (!(is >> n >> dim)) throw std::runtime_error{"load_dataset: bad header"};
  gnn::Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    s.workload.resize(dim);
    s.quota.resize(dim);
    for (auto& w : s.workload)
      if (!(is >> w)) throw std::runtime_error{"load_dataset: truncated"};
    for (auto& q : s.quota)
      if (!(is >> q)) throw std::runtime_error{"load_dataset: truncated"};
    if (!(is >> s.latency_ms)) throw std::runtime_error{"load_dataset: truncated"};
    out.push_back(std::move(s));
  }
  return out;
}

LatencyPredictor::LatencyPredictor(const gnn::Dag& graph, const gnn::MpnnConfig& cfg,
                                   std::uint64_t seed)
    : model_{graph, cfg, seed} {}

gnn::TrainHistory LatencyPredictor::train(gnn::Dataset all, const gnn::TrainConfig& cfg,
                                          double val_fraction, double test_fraction) {
  split_ = split_dataset(std::move(all), val_fraction, test_fraction, cfg.seed);
  return model_.fit(split_.train, split_.val, cfg);
}

std::vector<LatencyPredictor::RegionAccuracy> LatencyPredictor::accuracy_by_region(
    const std::vector<std::pair<double, double>>& regions_ms) {
  std::vector<RegionAccuracy> out;
  for (const auto& [lo, hi] : regions_ms) {
    const auto rep = model_.evaluate_accuracy(split_.test, lo, hi);
    std::ostringstream name;
    name << static_cast<int>(lo) << "-" << static_cast<int>(hi) << "ms";
    out.push_back({name.str(), rep.mean_abs_pct_error, rep.count});
  }
  return out;
}

double LatencyPredictor::overall_signed_error() {
  return model_.evaluate_accuracy(split_.test).mean_pct_error;
}

double LatencyPredictor::validation_error_pct() {
  if (split_.val.empty()) return 0.0;
  return model_.evaluate_accuracy(split_.val).mean_abs_pct_error;
}

void LatencyPredictor::save_model(const std::string& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"save_model: cannot open " + path};
  model_.save(os);
}

bool LatencyPredictor::load_model(const std::string& path) {
  std::ifstream is{path};
  if (!is) return false;
  model_.load(is);
  return true;
}

}  // namespace graf::core
