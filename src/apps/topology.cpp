#include "apps/topology.h"

#include <algorithm>

namespace graf::apps {
namespace {

void collect_edges(const sim::CallNode& node,
                   std::vector<std::pair<int, int>>& edges) {
  for (const auto& stage : node.stages) {
    for (const auto& child : stage) {
      edges.emplace_back(node.service, child.service);
      collect_edges(child, edges);
    }
  }
}

}  // namespace

int Topology::service_index(const std::string& svc_name) const {
  for (std::size_t i = 0; i < services.size(); ++i)
    if (services[i].name == svc_name) return static_cast<int>(i);
  return -1;
}

gnn::Dag make_dag(const Topology& topo) {
  gnn::Dag dag;
  for (const auto& svc : topo.services) dag.add_node(svc.name);
  std::vector<std::pair<int, int>> edges;
  for (const auto& api : topo.apis) collect_edges(api.root, edges);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [p, c] : edges) dag.add_edge(p, c);
  return dag;
}

sim::Cluster make_cluster(const Topology& topo, sim::ClusterConfig cfg) {
  return sim::Cluster{topo.services, topo.apis, cfg};
}

std::function<std::unique_ptr<sim::Cluster>()> make_cluster_factory(
    Topology topo, sim::ClusterConfig cfg) {
  return [topo = std::move(topo), cfg] {
    return std::make_unique<sim::Cluster>(topo.services, topo.apis, cfg);
  };
}

}  // namespace graf::apps
