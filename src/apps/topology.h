// Application topology: the bundle a benchmark application is made of —
// service configurations, API call trees, and the derived microservice DAG
// that GRAF's GNN runs on.
#pragma once

#include <string>
#include <vector>

#include "gnn/graph.h"
#include "sim/cluster.h"
#include "sim/request.h"
#include "sim/service.h"

namespace graf::apps {

struct Topology {
  std::string name;
  std::vector<sim::ServiceConfig> services;
  std::vector<sim::Api> apis;
  /// Index of the front-end service (where user requests arrive).
  int frontend = 0;
  /// Default per-API workload mix used by closed-loop generators
  /// (weights; need not sum to 1).
  std::vector<double> api_weights;

  std::size_t service_count() const { return services.size(); }
  int service_index(const std::string& svc_name) const;
};

/// Build the microservice DAG (nodes = services, parent -> child edges from
/// every API call tree, deduplicated).
gnn::Dag make_dag(const Topology& topo);

/// Convenience: spin up a simulated cluster for the topology.
sim::Cluster make_cluster(const Topology& topo, sim::ClusterConfig cfg = {});

/// Factory of independent replicas of the topology, built in place on the
/// heap (a Cluster must never be moved: its scheduled events capture
/// `this`). Suitable for SampleCollector::collect_sharded.
std::function<std::unique_ptr<sim::Cluster>()> make_cluster_factory(
    Topology topo, sim::ClusterConfig cfg = {});

}  // namespace graf::apps
