// The four open-source benchmark applications the paper uses, reproduced as
// simulator topologies:
//  * Online Boutique (Fig. 4)   — 6 controlled services, 3-API Locust mix
//  * Social Network  (Fig. 10)  — 10 services, post-compose request
//  * Robot Shop      (Fig. 5 L) — Web -> Catalogue chain (Fig. 6 curves)
//  * Bookinfo        (Fig. 5 R) — parallel Details vs Reviews -> Ratings
//
// Per-service CPU demands (core-ms per visit) are chosen heterogeneous so
// the latency-vs-quota curves differ in sharpness across services, which is
// the property GRAF exploits when it shifts CPU toward latency-sensitive
// services (paper §2.2, Fig. 15/16).
#pragma once

#include "apps/topology.h"

namespace graf::apps {

/// Online Boutique [25]: Frontend, Currency, Cart, ProductCatalog,
/// Recommendation, Shipping; APIs cart-page / product-page / home-page.
Topology online_boutique();

/// Social Network [40]: NGINX front door fanning out to text/media/user/
/// unique-id (text -> url + user-mention), then compose-post ->
/// post-storage + user-timeline. Single post-compose API (Vegeta-style).
Topology social_network();

/// Robot Shop [6]: Web -> Catalogue/User/Cart; Catalogue has the sharp
/// latency curve of the paper's Fig. 6.
Topology robot_shop();

/// Bookinfo [16]: ProductPage -> {Details || Reviews -> Ratings}.
Topology bookinfo();

/// All four, for parameterized tests.
std::vector<Topology> all_applications();

}  // namespace graf::apps
