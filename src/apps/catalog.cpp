#include "apps/catalog.h"

namespace graf::apps {

using sim::Api;
using sim::CallNode;
using sim::ServiceConfig;

Topology online_boutique() {
  Topology t;
  t.name = "online-boutique";
  // MS1..MS6 in the paper's Fig. 15 ordering.
  t.services = {
      {.name = "frontend", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 6.0, .demand_sigma = 0.30},
      {.name = "currency", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 3.0, .demand_sigma = 0.30},
      {.name = "cart", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 8.0, .demand_sigma = 0.30},
      {.name = "product", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 4.0, .demand_sigma = 0.30},
      {.name = "recommendation", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 16.0, .demand_sigma = 0.30},
      {.name = "shipping", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 14.0, .demand_sigma = 0.30},
  };
  const int fe = 0, cur = 1, cart = 2, prod = 3, rec = 4, ship = 5;

  // §2.1's cart-page chain: Frontend -> Currency -> Cart ->
  // {Recommendation(->Product) || Shipping}. The real application issues
  // the recommendation and shipping lookups in parallel; parallel stages
  // are what give some services latency slack (§2.2) that GRAF can
  // harvest and a uniform-threshold HPA cannot.
  CallNode cart_page{.service = fe};
  cart_page.stages = {
      {CallNode{.service = cur}},
      {CallNode{.service = cart}},
      {CallNode{.service = rec, .stages = {{CallNode{.service = prod}}}},
       CallNode{.service = ship}},
  };

  CallNode product_page{.service = fe};
  product_page.stages = {
      {CallNode{.service = cur},
       CallNode{.service = prod}},
      {CallNode{.service = rec, .probability = 0.8,
                .stages = {{CallNode{.service = prod}}}}},
  };

  CallNode home_page{.service = fe};
  home_page.stages = {
      {CallNode{.service = cur},
       CallNode{.service = prod},
       CallNode{.service = cart, .probability = 0.6}},
  };

  t.apis = {Api{"cart-page", cart_page}, Api{"product-page", product_page},
            Api{"home-page", home_page}};
  t.api_weights = {0.35, 0.45, 0.20};
  t.frontend = fe;
  return t;
}

Topology social_network() {
  Topology t;
  t.name = "social-network";
  t.services = {
      {.name = "nginx", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 5.0, .demand_sigma = 0.30},
      {.name = "text", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 6.0, .demand_sigma = 0.30},
      {.name = "media", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 4.0, .demand_sigma = 0.30},
      {.name = "user", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 4.0, .demand_sigma = 0.30},
      {.name = "unique-id", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 3.0, .demand_sigma = 0.30},
      {.name = "url-shorten", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 5.0, .demand_sigma = 0.30},
      {.name = "user-mention", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 5.0, .demand_sigma = 0.30},
      {.name = "compose-post", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 10.0, .demand_sigma = 0.30},
      {.name = "post-storage", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 8.0, .demand_sigma = 0.30},
      {.name = "user-timeline", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 8.0, .demand_sigma = 0.30},
  };
  const int ng = 0, text = 1, media = 2, user = 3, uid = 4, url = 5, um = 6,
            cp = 7, ps = 8, ut = 9;

  CallNode compose{.service = ng};
  compose.stages = {
      // The four upload paths fan out in parallel; text additionally
      // resolves urls and user mentions in parallel.
      {CallNode{.service = text,
                .stages = {{CallNode{.service = url}, CallNode{.service = um}}}},
       CallNode{.service = media}, CallNode{.service = user},
       CallNode{.service = uid}},
      // Then the post is composed and persisted.
      {CallNode{.service = cp,
                .stages = {{CallNode{.service = ps}, CallNode{.service = ut}}}}},
  };

  t.apis = {Api{"compose-post", compose}};
  t.api_weights = {1.0};
  t.frontend = ng;
  return t;
}

Topology robot_shop() {
  Topology t;
  t.name = "robot-shop";
  t.services = {
      {.name = "web", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 8.0, .demand_sigma = 0.30},
      {.name = "catalogue", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 28.0, .demand_sigma = 0.30},
      {.name = "user", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 6.0, .demand_sigma = 0.30},
      {.name = "cart", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 10.0, .demand_sigma = 0.30},
  };
  const int web = 0, cat = 1, user = 2, cart = 3;

  CallNode get_catalogue{.service = web,
                         .stages = {{CallNode{.service = cat}}}};
  CallNode login{.service = web, .stages = {{CallNode{.service = user}}}};
  CallNode view_cart{.service = web};
  view_cart.stages = {
      {CallNode{.service = user}},
      {CallNode{.service = cart}},
      {CallNode{.service = cat, .probability = 0.5}},
  };

  t.apis = {Api{"get-catalogue", get_catalogue}, Api{"login", login},
            Api{"view-cart", view_cart}};
  t.api_weights = {0.5, 0.2, 0.3};
  t.frontend = web;
  return t;
}

Topology bookinfo() {
  Topology t;
  t.name = "bookinfo";
  t.services = {
      {.name = "productpage", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 10.0, .demand_sigma = 0.30},
      {.name = "details", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 6.0, .demand_sigma = 0.30},
      {.name = "reviews", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 12.0, .demand_sigma = 0.30},
      {.name = "ratings", .unit_quota = 1000, .initial_instances = 2,
       .demand_mean_ms = 8.0, .demand_sigma = 0.30},
  };
  const int pp = 0, det = 1, rev = 2, rat = 3;

  // ProductPage queries Details and Reviews in parallel; end-to-end latency
  // is the max of the branches (§2.2).
  CallNode product{.service = pp};
  product.stages = {
      {CallNode{.service = det},
       CallNode{.service = rev, .stages = {{CallNode{.service = rat}}}}},
  };

  t.apis = {Api{"product", product}};
  t.api_weights = {1.0};
  t.frontend = pp;
  return t;
}

std::vector<Topology> all_applications() {
  return {online_boutique(), social_network(), robot_shop(), bookinfo()};
}

}  // namespace graf::apps
