#include "sim/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace graf::sim {

Service::Service(int id, ServiceConfig cfg, EventQueue& events, Deployment& deployment)
    : id_{id}, cfg_{std::move(cfg)}, events_{events}, deployment_{deployment} {
  if (cfg_.unit_quota <= 0.0) throw std::invalid_argument{"Service: unit_quota must be > 0"};
  if (cfg_.max_concurrency <= 0) throw std::invalid_argument{"Service: max_concurrency must be > 0"};
  bootstrap(cfg_.initial_instances);
}

void Service::bootstrap(int n) {
  for (int i = 0; i < n; ++i) {
    auto inst = std::make_unique<Instance>(next_instance_id_++, cores(cfg_.unit_quota), events_);
    inst->set_ready();
    if (cpu_throttle_ != 1.0) inst->set_throttle(cpu_throttle_);
    instances_.push_back(std::move(inst));
  }
  target_ = ready_count() + creating_count();
}

int Service::ready_count() const { return static_cast<int>(instances_.size()); }

Millicores Service::total_quota() const {
  return cfg_.unit_quota * static_cast<double>(instances_.size());
}

Millicores Service::retiring_quota() const {
  return cfg_.unit_quota * static_cast<double>(retiring_.size());
}

std::size_t Service::active_jobs() const {
  std::size_t n = 0;
  for (const auto& i : instances_) n += i->active_jobs();
  for (const auto& i : retiring_) n += i->active_jobs();
  return n;
}

Instance* Service::pick_instance() {
  Instance* best = nullptr;
  for (const auto& inst : instances_) {
    if (inst->active_jobs() >= static_cast<std::size_t>(cfg_.max_concurrency)) continue;
    if (best == nullptr || inst->active_jobs() < best->active_jobs()) best = inst.get();
  }
  return best;
}

void Service::submit(double work_core_ms, std::function<void(double)> on_done,
                     std::function<void()> on_drop, Seconds deadline) {
  ++arrivals_;
  const Seconds admitted = events_.now();
  if (Instance* inst = pick_instance()) {
    // The job's drop path doubles as its crash-abort path once dispatched.
    start_job(*inst, work_core_ms, admitted, std::move(on_done), std::move(on_drop));
  } else {
    queue_.push_back(Pending{work_core_ms, admitted, deadline, std::move(on_done),
                             std::move(on_drop), {}});
  }
}

void Service::start_job(Instance& inst, double work_core_ms, Seconds admitted,
                        std::function<void(double)> on_done,
                        std::function<void()> on_abort) {
  auto done = std::move(on_done);
  inst.add_job(
      work_core_ms / 1000.0,
      [this, admitted, cb = std::move(done)] {
        ++completions_;
        const double latency_ms = (events_.now() - admitted) * 1000.0;
        // Free the worker slot for queued jobs before surfacing completion.
        pump();
        reap_retired();
        cb(latency_ms);
      },
      std::move(on_abort));
}

void Service::pump() {
  while (!queue_.empty()) {
    // Shed queued work whose client has given up: per-hop queue timeout or
    // the request's end-to-end deadline, whichever comes first.
    if (events_.now() - queue_.front().enqueued > cfg_.queue_timeout ||
        events_.now() > queue_.front().deadline) {
      Pending expired = std::move(queue_.front());
      queue_.pop_front();
      ++drops_;
      if (expired.on_drop) expired.on_drop();
      continue;
    }
    Instance* inst = pick_instance();
    if (inst == nullptr) return;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.resume_done) {
      // Crash-requeued job: its original completion wrapper rides along.
      inst->add_job(p.work_core_ms / 1000.0, std::move(p.resume_done),
                    std::move(p.on_drop));
    } else {
      start_job(*inst, p.work_core_ms, p.enqueued, std::move(p.on_done),
                std::move(p.on_drop));
    }
  }
}

void Service::reap_retired() {
  std::erase_if(retiring_, [](const std::unique_ptr<Instance>& i) { return i->idle(); });
}

void Service::request_one_creation(int attempt) {
  // Tickets can fire out of FIFO order across Deployment node pipelines, so
  // the callbacks must name the exact ticket they belong to. The ticket id is
  // only known after request_creation returns, but events can't fire during
  // the call — a shared box filled in right after is race-free.
  auto ticket_box = std::make_shared<std::uint64_t>(0);
  const std::uint64_t ticket = deployment_.request_creation(
      [this, ticket_box] { on_creation_ready(*ticket_box); },
      [this, ticket_box, attempt] { on_creation_failed(*ticket_box, attempt); });
  *ticket_box = ticket;
  creations_.push_back(ticket);
  ++creations_started_;
}

void Service::on_creation_ready(std::uint64_t ticket) {
  auto it = std::find(creations_.begin(), creations_.end(), ticket);
  if (it != creations_.end()) creations_.erase(it);
  auto inst = std::make_unique<Instance>(next_instance_id_++, cores(cfg_.unit_quota), events_);
  inst->set_ready();
  if (cpu_throttle_ != 1.0) inst->set_throttle(cpu_throttle_);
  instances_.push_back(std::move(inst));
  pump();
}

void Service::on_creation_failed(std::uint64_t ticket, int attempt) {
  auto it = std::find(creations_.begin(), creations_.end(), ticket);
  if (it != creations_.end()) creations_.erase(it);
  ++creation_failures_;
  if (attempt >= cfg_.creation_max_retries) return;  // give up; next plan re-reconciles
  if (ready_count() + creating_count() >= target_) return;  // scaled down meanwhile
  const Seconds delay = std::min(
      cfg_.creation_retry_backoff * std::pow(2.0, static_cast<double>(attempt)),
      cfg_.creation_retry_backoff_cap);
  events_.schedule_in(delay, [this, next = attempt + 1] {
    // Re-check at fire time: a scale-down may have landed during the backoff.
    if (ready_count() + creating_count() >= target_) return;
    ++creation_retries_;
    request_one_creation(next);
  });
}

void Service::crash_one(std::uint64_t pick, CrashMode mode) {
  if (instances_.empty()) return;
  const std::size_t idx = static_cast<std::size_t>(pick % instances_.size());
  auto victim = std::move(instances_[idx]);
  instances_.erase(instances_.begin() + static_cast<std::ptrdiff_t>(idx));
  ++crashes_;
  auto jobs = victim->take_jobs();
  victim.reset();  // pod gone; its liveness token no-ops queued events
  if (mode == CrashMode::kAbort) {
    for (auto& j : jobs) {
      ++aborted_jobs_;
      if (j.on_abort) j.on_abort();
    }
  } else {
    // Push to the queue front in reverse so the original dispatch order is
    // preserved. Remaining work is kept; the fresh enqueue time restarts the
    // queue-timeout clock (the client is still waiting either way — its
    // end-to-end deadline, if any, already fired through on_drop upstream).
    const Seconds now = events_.now();
    for (auto jt = jobs.rbegin(); jt != jobs.rend(); ++jt) {
      ++requeued_jobs_;
      queue_.push_front(Pending{jt->remaining * 1000.0, now,
                                std::numeric_limits<double>::infinity(),
                                {}, std::move(jt->on_abort), std::move(jt->on_done)});
    }
  }
  // ReplicaSet self-heal: replace crashed capacity up to the declared target.
  while (ready_count() + creating_count() < target_) request_one_creation();
  pump();
}

void Service::set_cpu_throttle(double factor) {
  if (factor <= 0.0 || factor > 1.0)
    throw std::invalid_argument{"Service: cpu throttle must be in (0, 1]"};
  cpu_throttle_ = factor;
  for (auto& inst : instances_) inst->set_throttle(factor);
  for (auto& inst : retiring_) inst->set_throttle(factor);
}

void Service::scale_to(int target) {
  target = std::clamp(target, 1, cfg_.max_instances);
  target_ = target;
  int have = ready_count() + creating_count();

  // Scale down: cancel not-yet-ready creations first (cheapest), then
  // retire ready instances, least-loaded first.
  while (have > target && creating_count() > 0) {
    deployment_.cancel(creations_.back());
    creations_.pop_back();
    --have;
  }
  while (have > target && ready_count() > 1) {
    auto victim = std::min_element(
        instances_.begin(), instances_.end(),
        [](const auto& a, const auto& b) { return a->active_jobs() < b->active_jobs(); });
    (*victim)->retire();
    if ((*victim)->idle()) {
      instances_.erase(victim);
    } else {
      retiring_.push_back(std::move(*victim));
      instances_.erase(victim);
    }
    --have;
  }

  // Scale up through the deployment pipeline.
  while (have < target) {
    request_one_creation();
    ++have;
  }
}

void Service::force_scale(int target) {
  target = std::clamp(target, 1, cfg_.max_instances);
  for (std::uint64_t ticket : creations_) deployment_.cancel(ticket);
  creations_.clear();
  if (ready_count() < target) {
    bootstrap(target - ready_count());
    pump();
  } else {
    scale_to(target);
  }
  target_ = target;
}

void Service::set_unit_quota(Millicores mc) {
  if (mc <= 0.0) throw std::invalid_argument{"Service: unit_quota must be > 0"};
  cfg_.unit_quota = mc;
  for (auto& inst : instances_) inst->set_quota_cores(cores(mc));
  for (auto& inst : retiring_) inst->set_quota_cores(cores(mc));
}

void Service::abort_all() {
  queue_.clear();
  for (auto& inst : instances_) inst->clear_jobs();
  for (auto& inst : retiring_) inst->clear_jobs();
  reap_retired();
}

double Service::drain_cpu_core_seconds() {
  double total = 0.0;
  for (auto& inst : instances_) total += inst->drain_cpu_usage();
  for (auto& inst : retiring_) total += inst->drain_cpu_usage();
  return total;
}

}  // namespace graf::sim
