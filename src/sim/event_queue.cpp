#include "sim/event_queue.h"

#include <utility>

#include "telemetry/profiler.h"

namespace graf::sim {

void EventQueue::sift_up(std::size_t i) {
  Event ev = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(ev, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(ev);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Event ev = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], ev)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(ev);
}

void EventQueue::push(Seconds t, std::uint64_t key, std::uint32_t owner,
                      EventFn fn) {
  if (t < now_) t = now_;
  heap_.push_back(Event{t, key, std::move(fn), owner});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_at(Seconds t, EventFn fn) {
  if (lp_counters_ == nullptr) {
    // Single-queue mode: key = insertion sequence, the historical ordering.
    push(t, seq_++, current_lp_, std::move(fn));
  } else {
    push(t, mint_key(), current_lp_, std::move(fn));
  }
}

void EventQueue::schedule_in(Seconds dt, EventFn fn) {
  schedule_at(now_ + (dt > 0.0 ? dt : 0.0), std::move(fn));
}

void EventQueue::schedule_keyed(Seconds t, std::uint64_t key, std::uint32_t owner,
                                EventFn fn) {
  push(t, key, owner, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  telemetry::ScopedTimer timer{pop_timer_};
  // Move the event out of the root before running it: handlers may schedule
  // new events (or re-enter step()), so the heap must be consistent first.
  Event ev = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  now_ = ev.time;
  ++processed_;
  if (lp_counters_ != nullptr) current_lp_ = ev.owner;
  ev.fn();
  return true;
}

void EventQueue::run_until(Seconds t) {
  while (!heap_.empty() && heap_.front().time <= t) step();
  if (now_ < t) now_ = t;
}

void EventQueue::run_until_before(Seconds t) {
  while (!heap_.empty() && heap_.front().time < t) step();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace graf::sim
