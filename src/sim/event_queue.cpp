#include "sim/event_queue.h"

#include <utility>

#include "telemetry/profiler.h"

namespace graf::sim {

void EventQueue::schedule_at(Seconds t, EventFn fn) {
  if (t < now_) t = now_;
  heap_.push(Event{t, seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Seconds dt, EventFn fn) {
  schedule_at(now_ + (dt > 0.0 ? dt : 0.0), std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  telemetry::ScopedTimer timer{pop_timer_};
  // priority_queue::top is const; the event is copied out, then popped,
  // before running: handlers may schedule new events.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void EventQueue::run_until(Seconds t) {
  while (!heap_.empty() && heap_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace graf::sim
