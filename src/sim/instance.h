// A single microservice instance (container replica).
//
// Modeled as a processor-sharing server with a per-job speed cap: the
// instance owns `quota` cores; k resident jobs each progress at
// min(quota/k, 1.0) cores (a request handler is single-threaded, so one job
// can never consume more than one core). This produces exactly the latency
// characteristics the paper exploits (Fig. 6): latency decreases
// monotonically in quota and flattens once quota exceeds the concurrency —
// the "upper bound" region of Algorithm 1 — while queueing supplies the
// sharp knee near saturation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace graf::sim {

class Instance {
 public:
  struct Job {
    double remaining;  // core-seconds
    std::function<void()> on_done;
    /// Failure path: fired when the job is killed by an instance crash in
    /// abort mode (or shed after a crash re-queue). Never fired by
    /// clear_jobs(), which is experiment hygiene, not a fault.
    std::function<void()> on_abort;
  };

  /// on_job_done(instance) lets the owning Service dispatch queued work.
  Instance(std::uint64_t id, double quota_cores, EventQueue& events);

  std::uint64_t id() const { return id_; }

  bool ready() const { return ready_; }
  void set_ready() { ready_ = true; }

  bool retiring() const { return retiring_; }
  /// Stop accepting new jobs; resident jobs drain normally.
  void retire() { retiring_ = true; }

  std::size_t active_jobs() const { return jobs_.size(); }
  bool idle() const { return jobs_.empty(); }

  double quota_cores() const { return quota_; }
  /// Change quota (vertical scaling); resident jobs re-share immediately.
  void set_quota_cores(double cores);

  /// Fault injection: scale the effective CPU capacity by `factor` in
  /// (0, 1] — a node-level cgroup throttle the instance cannot see in its
  /// own quota (utilization metrics keep the unthrottled denominator,
  /// exactly as cAdvisor would). Resident jobs re-share immediately.
  void set_throttle(double factor);
  double throttle() const { return throttle_; }

  /// Enqueue `work` core-seconds of CPU; `on_done` fires at completion.
  /// The caller (Service) is responsible for concurrency admission.
  /// `on_abort` (optional) fires instead if the job dies with the instance.
  void add_job(double work_core_seconds, std::function<void()> on_done,
               std::function<void()> on_abort = {});

  /// Crash support: strip all resident jobs (with their callbacks intact)
  /// so the owning Service can abort or re-queue them. Scheduled completion
  /// checks are invalidated; CPU accounting up to now is kept.
  std::vector<Job> take_jobs();

  /// Core-seconds consumed since the last drain (for utilization metrics).
  double drain_cpu_usage();

  /// Drop all resident jobs without firing their callbacks (experiment
  /// hygiene between sample-collection runs).
  void clear_jobs();

  /// Current per-job progress rate in cores.
  double job_rate() const;

 private:
  /// Advance resident jobs' remaining work to the current clock.
  void advance();
  /// (Re)schedule the completion check for the earliest-finishing job.
  void schedule_next_completion();
  void on_completion_check(std::uint64_t epoch);

  std::uint64_t id_;
  double quota_;
  double throttle_ = 1.0;  // fault-injected capacity factor, (0, 1]
  EventQueue& events_;
  bool ready_ = false;
  bool retiring_ = false;
  std::vector<Job> jobs_;
  Seconds last_update_ = 0.0;
  std::uint64_t epoch_ = 0;  // invalidates stale completion events
  /// Liveness token: scheduled completion checks hold a weak_ptr and bail
  /// out if the instance was destroyed (reaped while retiring) before the
  /// event fired — the epoch guard alone would still read freed memory.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
  double cpu_used_ = 0.0;    // core-seconds since last drain
};

}  // namespace graf::sim
