#include "sim/sharded_cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace graf::sim {

ShardedCluster::ShardedCluster(std::vector<ServiceConfig> service_cfgs,
                               std::vector<Api> apis, ShardedClusterConfig cfg,
                               std::vector<std::uint32_t> shard_of)
    : cfg_{cfg}, apis_{std::move(apis)} {
  const std::size_t n = service_cfgs.size();
  if (n == 0) throw std::invalid_argument{"ShardedCluster: no services"};
  if (apis_.empty()) throw std::invalid_argument{"ShardedCluster: no APIs"};
  if (cfg_.rpc_latency <= 0.0)
    throw std::invalid_argument{"ShardedCluster: rpc_latency must be > 0"};
  if (cfg_.shards == 0)
    throw std::invalid_argument{"ShardedCluster: need >= 1 shard"};
  if (!shard_of.empty() && shard_of.size() != n)
    throw std::invalid_argument{"ShardedCluster: shard_of size mismatch"};
  for (std::uint32_t s : shard_of)
    if (s >= cfg_.shards)
      throw std::invalid_argument{"ShardedCluster: shard_of value out of range"};

  key_counters_.assign(n + 1, 0);
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->tracer = std::make_unique<trace::Tracer>(apis_.size(), n, cfg_.trace_capacity);
    sh->queue.set_lp_counters(key_counters_.data());
    sh->queue.set_current_lp(static_cast<std::uint32_t>(n));  // coordinator
    shards_.push_back(std::move(sh));
  }

  lps_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Balanced contiguous partition unless the caller chose one. Grouping is
    // a performance decision only: the origin-key ordering makes results
    // identical under any assignment.
    const std::uint32_t s = shard_of.empty()
        ? static_cast<std::uint32_t>(i * cfg_.shards / n)
        : shard_of[i];
    auto lp = std::make_unique<Lp>(cfg_.latency_horizon);
    lp->shard = s;
    lp->rng = Rng{derive_seed(cfg_.seed, i)};
    Shard& sh = *shards_[s];
    // Construction (bootstrap instances) is charged to the LP itself, so
    // anything it schedules carries the LP's own keys.
    sh.queue.set_current_lp(static_cast<std::uint32_t>(i));
    lp->deployment = std::make_unique<Deployment>(sh.queue, cfg_.creation);
    lp->service = std::make_unique<Service>(static_cast<int>(i),
                                            std::move(service_cfgs[i]), sh.queue,
                                            *lp->deployment);
    const std::uint32_t lp32 = static_cast<std::uint32_t>(i);
    sh.queue.schedule_in(cfg_.metrics_interval,
                         [this, lp32] { lp_metrics_tick(lp32); });
    sh.queue.set_current_lp(coordinator_lp());
    sh.lps.push_back(lp32);
    lps_.push_back(std::move(lp));
  }

  api_state_.reserve(apis_.size());
  for (const Api& api : apis_) {
    validate_api(api.root);
    ApiState as{cfg_.latency_horizon};
    as.root_lp = static_cast<std::uint32_t>(api.root.service);
    api_state_.push_back(std::move(as));
  }
}

void ShardedCluster::validate_api(const CallNode& node) const {
  if (node.service < 0 || static_cast<std::size_t>(node.service) >= lps_.size())
    throw std::invalid_argument{"ShardedCluster: API references unknown service"};
  if (node.probability <= 0.0 || node.probability > 1.0)
    throw std::invalid_argument{"ShardedCluster: call probability must be in (0,1]"};
  for (const auto& stage : node.stages)
    for (const auto& child : stage) validate_api(child);
}

int ShardedCluster::service_index(const std::string& name) const {
  for (std::size_t i = 0; i < lps_.size(); ++i)
    if (lps_[i]->service->name() == name) return static_cast<int>(i);
  return -1;
}

int ShardedCluster::api_index(const std::string& name) const {
  for (std::size_t i = 0; i < apis_.size(); ++i)
    if (apis_[i].name == name) return static_cast<int>(i);
  return -1;
}

void ShardedCluster::with_lp(std::uint32_t lp, const std::function<void()>& fn) {
  EventQueue& q = shards_[lps_[lp]->shard]->queue;
  const std::uint32_t prev = q.current_lp();
  q.set_current_lp(lp);
  fn();
  q.set_current_lp(prev);
}

// -- window loop ---------------------------------------------------------------

void ShardedCluster::run_until(Seconds t) {
  ThreadPool& pool = global_pool();
  const Seconds lookahead = cfg_.rpc_latency;
  while (now_ < t) {
    const Seconds w_end = std::min(t, now_ + lookahead);
    // One conservative window: each shard runs every event with time
    // strictly < w_end. No message created in this window can be due before
    // w_end (delivery = send + rpc_latency >= window start + lookahead), so
    // shards never need to hear from each other mid-window.
    if (shards_.size() == 1) {
      shards_[0]->queue.run_until_before(w_end);
    } else {
      pool.parallel_for(shards_.size(), [this, w_end](std::size_t s) {
        shards_[s]->queue.run_until_before(w_end);
      });
    }
    exchange_outboxes();
    now_ = w_end;
  }
}

void ShardedCluster::exchange_outboxes() {
  // Coordinator-side barrier: drain outboxes in shard order. Delivery order
  // into the destination heap is irrelevant — ordering is (time, origin
  // key), which the sender minted — but the fixed order keeps the walk
  // deterministic and cheap to reason about.
  for (auto& src : shards_) {
    for (OutMsg& out : src->outbox) {
      Shard& dst = *shards_[out.dst_shard];
      const std::uint32_t slot = park_msg(dst, std::move(out.msg));
      const std::uint32_t ds = out.dst_shard;
      dst.queue.schedule_keyed(out.at, out.key, out.owner,
                               [this, ds, slot] { process_msg(ds, slot); });
    }
    src->outbox.clear();
  }
}

// -- arenas ----------------------------------------------------------------------

std::uint32_t ShardedCluster::alloc_frame(Shard& sh) {
  if (sh.free_frame != kNoLp) {
    const std::uint32_t idx = sh.free_frame;
    sh.free_frame = sh.frames[idx].next_free;
    return idx;
  }
  sh.frames.emplace_back();
  return static_cast<std::uint32_t>(sh.frames.size() - 1);
}

void ShardedCluster::free_frame(Shard& sh, std::uint32_t idx) {
  Frame& f = sh.frames[idx];
  f.node = nullptr;
  f.next_free = sh.free_frame;
  sh.free_frame = idx;
}

std::uint32_t ShardedCluster::park_msg(Shard& sh, Msg&& msg) {
  if (sh.free_msg != kNoLp) {
    const std::uint32_t idx = sh.free_msg;
    sh.free_msg = sh.mailbox[idx].next_free;
    sh.mailbox[idx] = std::move(msg);
    return idx;
  }
  sh.mailbox.push_back(std::move(msg));
  return static_cast<std::uint32_t>(sh.mailbox.size() - 1);
}

std::vector<std::uint32_t> ShardedCluster::alloc_visits(Shard& sh) {
  if (!sh.visit_pool.empty()) {
    std::vector<std::uint32_t> v = std::move(sh.visit_pool.back());
    sh.visit_pool.pop_back();
    v.assign(lps_.size(), 0);
    return v;
  }
  return std::vector<std::uint32_t>(lps_.size(), 0);
}

void ShardedCluster::recycle_visits(Shard& sh, std::vector<std::uint32_t>&& v) {
  if (v.capacity() >= lps_.size()) sh.visit_pool.push_back(std::move(v));
}

// -- request execution -------------------------------------------------------------

void ShardedCluster::schedule_arrival(Seconds at, int api) {
  if (api < 0 || static_cast<std::size_t>(api) >= apis_.size())
    throw std::out_of_range{"ShardedCluster::schedule_arrival: bad api"};
  if (at < now_)
    throw std::invalid_argument{"ShardedCluster::schedule_arrival: past arrival"};
  ApiState& as = api_state_[static_cast<std::size_t>(api)];
  Shard& sh = *shards_[lps_[as.root_lp]->shard];
  const std::uint32_t a = static_cast<std::uint32_t>(api);
  sh.queue.schedule_keyed(at, coord_key(), as.root_lp,
                          [this, a] { handle_arrival(a); });
}

void ShardedCluster::handle_arrival(std::uint32_t api) {
  ApiState& as = api_state_[api];
  Lp& root = *lps_[as.root_lp];
  Shard& sh = *shards_[root.shard];
  EventQueue& q = sh.queue;
  ++as.submitted;
  ++as.inflight;
  // Ground truth above; everything observability-plane below goes dark
  // under a blackout, exactly like the single-queue Cluster.
  if (!sh.blackout) as.arrivals.add(q.now(), 1.0);
  Msg call;
  call.kind = Msg::Kind::kCall;
  call.dst_lp = as.root_lp;
  call.api = api;
  call.node = &apis_[api].root;
  call.start = q.now();
  call.deadline = q.now() + cfg_.request_timeout;
  exec_call(root.shard, call);  // client -> frontend is local, like Cluster
}

void ShardedCluster::exec_call(std::uint32_t shard, Msg& msg) {
  Shard& sh = *shards_[shard];
  Lp& lp = *lps_[msg.dst_lp];
  const std::uint32_t fi = alloc_frame(sh);
  Frame& f = sh.frames[fi];
  f.node = msg.node;
  f.start = msg.start;
  f.deadline = msg.deadline;
  f.api = msg.api;
  f.parent_lp = msg.parent_lp;
  f.parent_frame = msg.parent_frame;
  f.stage = 0;
  f.outstanding = 0;
  f.ok = true;
  f.visits = alloc_visits(sh);
  f.visits[static_cast<std::size_t>(msg.node->service)] = 1;
  const double work = sample_demand(*msg.node, lp);
  // Exactly one of on_done / on_drop fires per submission (Service's
  // contract), so the frame handle is released exactly once. Captures stay
  // within std::function's 16-byte inline buffer: no per-call allocation.
  lp.service->submit(
      work, [this, shard, fi](double ms) { on_local_done(shard, fi, ms); },
      [this, shard, fi] { finish_frame(shard, fi, false); }, msg.deadline);
}

double ShardedCluster::sample_demand(const CallNode& node, Lp& lp) {
  const double mean = demand_scale_ *
      (node.demand_ms >= 0.0 ? node.demand_ms
                             : lp.service->config().demand_mean_ms);
  const double sigma = lp.service->config().demand_sigma;
  if (sigma <= 0.0) return mean;
  // Mean-preserving lognormal, drawn from the executing LP's own stream so
  // the draw sequence is independent of every other service's activity.
  return mean * lp.rng.lognormal(-0.5 * sigma * sigma, sigma);
}

void ShardedCluster::on_local_done(std::uint32_t shard, std::uint32_t frame,
                                   double local_ms) {
  Shard& sh = *shards_[shard];
  Frame& f = sh.frames[frame];
  Lp& lp = *lps_[static_cast<std::size_t>(f.node->service)];
  if (!sh.blackout) lp.local_latency.add(sh.queue.now(), local_ms);
  run_frame_stages(shard, frame);
}

void ShardedCluster::run_frame_stages(std::uint32_t shard, std::uint32_t frame) {
  Shard& sh = *shards_[shard];
  Frame& f = sh.frames[frame];
  const CallNode& node = *f.node;
  Lp& lp = *lps_[static_cast<std::size_t>(node.service)];
  while (f.stage < node.stages.size()) {
    const Seconds deliver = sh.queue.now() + cfg_.rpc_latency;
    std::uint32_t launched = 0;
    for (const CallNode& child : node.stages[f.stage]) {
      // Branch probabilities are drawn at the parent, from the parent LP's
      // stream — same placement as the single-queue Cluster.
      if (child.probability >= 1.0 || lp.rng.bernoulli(child.probability)) {
        Msg m;
        m.kind = Msg::Kind::kCall;
        m.dst_lp = static_cast<std::uint32_t>(child.service);
        m.parent_lp = static_cast<std::uint32_t>(node.service);
        m.parent_frame = frame;
        m.api = f.api;
        m.node = &child;
        m.start = f.start;
        m.deadline = f.deadline;
        send_msg(shard, deliver, std::move(m));
        ++launched;
      }
    }
    if (launched == 0) {
      ++f.stage;  // everything in this stage was probabilistically skipped
      continue;
    }
    f.outstanding = launched;
    return;  // resumed by exec_reply when the stage's replies are all in
  }
  finish_frame(shard, frame, f.ok);
}

void ShardedCluster::exec_reply(std::uint32_t shard, Msg& msg) {
  Shard& sh = *shards_[shard];
  const std::uint32_t fi = msg.parent_frame;
  Frame& pf = sh.frames[fi];
  for (std::size_t i = 0; i < pf.visits.size(); ++i) pf.visits[i] += msg.visits[i];
  recycle_visits(sh, std::move(msg.visits));
  pf.ok = pf.ok && msg.ok;
  if (--pf.outstanding == 0) {
    if (!pf.ok) {
      finish_frame(shard, fi, false);
    } else {
      ++pf.stage;
      run_frame_stages(shard, fi);
    }
  }
}

void ShardedCluster::process_msg(std::uint32_t shard, std::uint32_t slot) {
  Shard& sh = *shards_[shard];
  Msg msg = std::move(sh.mailbox[slot]);
  sh.mailbox[slot].next_free = sh.free_msg;
  sh.free_msg = slot;
  if (msg.kind == Msg::Kind::kCall) {
    exec_call(shard, msg);
  } else {
    exec_reply(shard, msg);
  }
}

void ShardedCluster::finish_frame(std::uint32_t shard, std::uint32_t frame,
                                  bool ok) {
  Shard& sh = *shards_[shard];
  Frame& f = sh.frames[frame];
  if (f.parent_lp == kNoLp) {
    ApiState& as = api_state_[f.api];
    EventQueue& q = sh.queue;
    // A response after the client timeout is a failure too.
    const bool success = ok && q.now() <= f.deadline;
    if (as.inflight > 0) --as.inflight;
    if (success) {
      ++as.completed;
      trace::RequestTrace t{static_cast<int>(f.api), f.start, q.now(), true,
                            std::move(f.visits)};
      // Exact e2e windows are ground truth — they see through blackouts.
      as.e2e.add(q.now(), t.e2e_ms());
      if (!sh.blackout) sh.tracer->record(std::move(t));
    } else {
      ++as.failed;
      recycle_visits(sh, std::move(f.visits));
    }
  } else {
    Msg r;
    r.kind = Msg::Kind::kReply;
    r.ok = ok;
    r.dst_lp = f.parent_lp;
    r.parent_frame = f.parent_frame;
    r.api = f.api;
    r.visits = std::move(f.visits);
    send_msg(shard, sh.queue.now() + cfg_.rpc_latency, std::move(r));
  }
  free_frame(sh, frame);
}

void ShardedCluster::send_msg(std::uint32_t src_shard, Seconds at, Msg&& msg) {
  Shard& src = *shards_[src_shard];
  // The key is minted by the *sender* (the LP whose event is executing), so
  // the receiver orders this delivery the same way under any grouping.
  const std::uint64_t key = src.queue.mint_key();
  const std::uint32_t owner = msg.dst_lp;
  const std::uint32_t dst_shard = lps_[msg.dst_lp]->shard;
  if (dst_shard == src_shard) {
    const std::uint32_t slot = park_msg(src, std::move(msg));
    src.queue.schedule_keyed(at, key, owner,
                             [this, dst_shard, slot] { process_msg(dst_shard, slot); });
  } else {
    src.outbox.push_back(OutMsg{dst_shard, owner, at, key, std::move(msg)});
  }
}

// -- metrics ticker -------------------------------------------------------------

void ShardedCluster::lp_metrics_tick(std::uint32_t lp_idx) {
  Lp& lp = *lps_[lp_idx];
  Shard& sh = *shards_[lp.shard];
  EventQueue& q = sh.queue;
  const double dt = cfg_.metrics_interval;
  if (sh.blackout) {
    // Scrape lost: publish nothing, keep the ticker alive.
    q.schedule_in(dt, [this, lp_idx] { lp_metrics_tick(lp_idx); });
    return;
  }
  if (lp.blackout_resync) {
    // First tick after a blackout: discard the dark interval's usage and
    // deltas instead of misattributing them to one dt-sized sample.
    lp.blackout_resync = false;
    lp.service->drain_cpu_core_seconds();
    lp.last_arrivals = lp.service->arrivals();
    q.schedule_in(dt, [this, lp_idx] { lp_metrics_tick(lp_idx); });
    return;
  }
  Service& svc = *lp.service;
  ServicePoint p;
  p.time = q.now();
  p.qps = static_cast<double>(svc.arrivals() - lp.last_arrivals) / dt;
  lp.last_arrivals = svc.arrivals();
  p.cpu_cores = svc.drain_cpu_core_seconds() / dt;
  const double requested =
      cores(svc.total_quota() + svc.retiring_quota()) * svc.config().request_factor;
  p.utilization = requested > 0.0 ? p.cpu_cores / requested : 0.0;
  p.ready = svc.ready_count();
  p.creating = svc.creating_count();
  p.queue_len = svc.queue_length();
  lp.series.push_back(p);
  if (lp.series.size() > cfg_.series_capacity) lp.series.pop_front();
  q.schedule_in(dt, [this, lp_idx] { lp_metrics_tick(lp_idx); });
}

// -- faults ----------------------------------------------------------------------

void ShardedCluster::inject(const std::vector<FaultEvent>& schedule) {
  std::vector<FaultEvent> evs = schedule;
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  for (const FaultEvent& ev : evs) {
    if (ev.at < now_) continue;  // history; can't injure the past
    switch (ev.kind) {
      case FaultEvent::Kind::kInstanceCrash:
      case FaultEvent::Kind::kCpuThrottle: {
        if (ev.service < 0 || static_cast<std::size_t>(ev.service) >= lps_.size())
          throw std::invalid_argument{"ShardedCluster::inject: bad target service"};
        const std::uint32_t target = static_cast<std::uint32_t>(ev.service);
        EventQueue& q = shards_[lps_[target]->shard]->queue;
        // Owner = target LP: anything the fault cascades into (requeue
        // pumps, rescheduled completions) carries the target's own keys.
        q.schedule_keyed(ev.at, coord_key(), target,
                         [this, ev] { fire_service_fault(ev); });
        if (ev.kind == FaultEvent::Kind::kCpuThrottle && ev.duration > 0.0)
          q.schedule_keyed(ev.at + ev.duration, coord_key(), target,
                           [this, ev] { expire_throttle(ev); });
        break;
      }
      case FaultEvent::Kind::kCreationOutage: {
        // Cluster-wide window, replicated to every shard with identical
        // (time, key): each LP sees the toggle at the same point of its own
        // order whatever the grouping. Handlers schedule nothing, so the
        // coordinator owner never mints keys during a window.
        const std::uint64_t kf = coord_key();
        const std::uint64_t ke = coord_key();
        for (std::uint32_t s = 0; s < shards_.size(); ++s) {
          Shard& sh = *shards_[s];
          sh.queue.schedule_keyed(ev.at, kf, coordinator_lp(), [this, s, ev] {
            Shard& here = *shards_[s];
            if (s != 0) ++here.replica_pops;
            ++here.active_outages;
            // Overlapping outages: most recent shape wins; the pipelines
            // heal only when the last window ends.
            for (std::uint32_t l : here.lps)
              lps_[l]->deployment->set_creation_fault(CreationFault{
                  ev.creation_fail, ev.creation_fail_after, ev.creation_extra_delay});
          });
          if (ev.duration > 0.0)
            sh.queue.schedule_keyed(ev.at + ev.duration, ke, coordinator_lp(),
                                    [this, s] {
                                      Shard& here = *shards_[s];
                                      if (s != 0) ++here.replica_pops;
                                      if (--here.active_outages == 0)
                                        for (std::uint32_t l : here.lps)
                                          lps_[l]->deployment->clear_creation_fault();
                                    });
        }
        break;
      }
      case FaultEvent::Kind::kTelemetryBlackout: {
        const std::uint64_t kf = coord_key();
        const std::uint64_t ke = coord_key();
        for (std::uint32_t s = 0; s < shards_.size(); ++s) {
          Shard& sh = *shards_[s];
          sh.queue.schedule_keyed(ev.at, kf, coordinator_lp(), [this, s] {
            Shard& here = *shards_[s];
            if (s != 0) ++here.replica_pops;
            if (++here.active_blackouts == 1) here.blackout = true;
          });
          if (ev.duration > 0.0)
            sh.queue.schedule_keyed(ev.at + ev.duration, ke, coordinator_lp(),
                                    [this, s] {
                                      Shard& here = *shards_[s];
                                      if (s != 0) ++here.replica_pops;
                                      if (--here.active_blackouts == 0) {
                                        here.blackout = false;
                                        for (std::uint32_t l : here.lps)
                                          lps_[l]->blackout_resync = true;
                                      }
                                    });
        }
        break;
      }
    }
  }
}

void ShardedCluster::fire_service_fault(const FaultEvent& ev) {
  Lp& lp = *lps_[static_cast<std::size_t>(ev.service)];
  if (ev.kind == FaultEvent::Kind::kInstanceCrash) {
    lp.service->crash_one(ev.pick, ev.crash_mode);
  } else {
    lp.throttles.push_back(ev.factor);
    apply_throttle(lp);
  }
}

void ShardedCluster::expire_throttle(const FaultEvent& ev) {
  Lp& lp = *lps_[static_cast<std::size_t>(ev.service)];
  auto it = std::find(lp.throttles.begin(), lp.throttles.end(), ev.factor);
  if (it != lp.throttles.end()) lp.throttles.erase(it);
  apply_throttle(lp);
}

void ShardedCluster::apply_throttle(Lp& lp) {
  double factor = 1.0;
  for (double f : lp.throttles) factor *= f;
  // Empty window list multiplies out to exactly 1.0 — bit-exact restore.
  lp.service->set_cpu_throttle(factor);
}

// -- control ----------------------------------------------------------------------

void ShardedCluster::scale_to(int s, int target) {
  with_lp(static_cast<std::uint32_t>(s),
          [&] { lps_[static_cast<std::size_t>(s)]->service->scale_to(target); });
}

void ShardedCluster::apply_total_quota(int s, Millicores total,
                                       Millicores max_per_instance) {
  if (total <= 0.0 || max_per_instance <= 0.0)
    throw std::invalid_argument{"apply_total_quota: quotas must be > 0"};
  with_lp(static_cast<std::uint32_t>(s), [&] {
    Service& svc = *lps_[static_cast<std::size_t>(s)]->service;
    const int n =
        std::max(1, static_cast<int>(std::ceil(total / max_per_instance)));
    svc.force_scale(n);
    svc.set_unit_quota(total / static_cast<double>(n));
  });
}

// -- coordinator reads --------------------------------------------------------------

std::uint64_t ShardedCluster::submitted() const {
  std::uint64_t n = 0;
  for (const ApiState& a : api_state_) n += a.submitted;
  return n;
}

std::uint64_t ShardedCluster::completed() const {
  std::uint64_t n = 0;
  for (const ApiState& a : api_state_) n += a.completed;
  return n;
}

std::uint64_t ShardedCluster::failed() const {
  std::uint64_t n = 0;
  for (const ApiState& a : api_state_) n += a.failed;
  return n;
}

std::size_t ShardedCluster::inflight() const {
  std::size_t n = 0;
  for (const ApiState& a : api_state_) n += a.inflight;
  return n;
}

std::uint64_t ShardedCluster::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->queue.processed() - sh->replica_pops;
  return n;
}

Qps ShardedCluster::api_qps(int api, Seconds window) const {
  if (window <= 0.0) throw std::invalid_argument{"api_qps: window must be > 0"};
  const ApiState& as = api_state_.at(static_cast<std::size_t>(api));
  return static_cast<double>(as.arrivals.count_since(now_ - window)) / window;
}

double ShardedCluster::utilization_avg(int s, Seconds horizon) const {
  const auto& ring = lps_.at(static_cast<std::size_t>(s))->series;
  const Seconds since = now_ - horizon;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = ring.rbegin(); it != ring.rend() && it->time >= since; ++it) {
    sum += it->utilization;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double ShardedCluster::qps_avg(int s, Seconds horizon) const {
  const auto& ring = lps_.at(static_cast<std::size_t>(s))->series;
  const Seconds since = now_ - horizon;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = ring.rbegin(); it != ring.rend() && it->time >= since; ++it) {
    sum += it->qps;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::vector<double> ShardedCluster::fanout(int api, double rank) const {
  const ApiState& as = api_state_.at(static_cast<std::size_t>(api));
  return shards_[lps_[as.root_lp]->shard]->tracer->fanout(api, rank);
}

std::uint64_t ShardedCluster::traces_recorded() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->tracer->recorded();
  return n;
}

int ShardedCluster::total_ready_instances() const {
  int n = 0;
  for (const auto& lp : lps_) n += lp->service->ready_count();
  return n;
}

int ShardedCluster::total_target_instances() const {
  int n = 0;
  for (const auto& lp : lps_) n += lp->service->ready_count() + lp->service->creating_count();
  return n;
}

Millicores ShardedCluster::total_quota() const {
  Millicores q = 0.0;
  for (const auto& lp : lps_) q += lp->service->total_quota();
  return q;
}

bool ShardedCluster::telemetry_blackout() const {
  for (const auto& sh : shards_) if (sh->blackout) return true;
  return false;
}

}  // namespace graf::sim
