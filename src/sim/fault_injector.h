// Deterministic chaos engine for the simulated cluster.
//
// GRAF's value proposition is keeping the p99 SLO through the moments a
// cluster is least trustworthy (Fig. 1, Fig. 21-22) — so the simulator must
// be able to make the substrate untrustworthy on purpose. The injector
// schedules four fault classes on the cluster's own event clock:
//
//   kInstanceCrash      kill one ready instance; in-flight jobs abort or
//                       re-queue; the replica set self-heals (Service).
//   kCreationOutage     Deployment creations fail after a timeout or come up
//                       late (registry outage / kubelet pressure) for a
//                       window.
//   kCpuThrottle        a service's effective CPU is squeezed by a factor
//                       for a window (node pressure / noisy neighbor),
//                       invisible to the utilization denominator.
//   kTelemetryBlackout  the observability plane goes dark for a window
//                       (metrics ticker, tracer, api_qps all gap) while the
//                       cluster keeps serving.
//
// Determinism contract (DESIGN.md §3.7/§3.8): generate() is a pure function
// of (FaultScheduleConfig, service_count) — it never reads the cluster or
// the wall clock, and each fault class draws from its own derive_seed
// stream, so two runs at the same seed replay bit-identical fault schedules
// at any thread count. Random choices that depend on runtime state (which
// instance to crash) are pre-drawn as raw u64 picks and reduced modulo the
// live state at fire time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/cluster.h"
#include "sim/service.h"
#include "telemetry/metrics.h"

namespace graf::sim {

/// One scheduled fault. Windowed classes (outage/throttle/blackout) end at
/// `at + duration`; crashes are instantaneous.
struct FaultEvent {
  enum class Kind { kInstanceCrash, kCreationOutage, kCpuThrottle, kTelemetryBlackout };

  Kind kind = Kind::kInstanceCrash;
  Seconds at = 0.0;
  Seconds duration = 0.0;
  /// Target service (crash/throttle); -1 for cluster-wide classes.
  int service = -1;
  /// Pre-drawn raw random, reduced against live state at fire time
  /// (crash victim selection).
  std::uint64_t pick = 0;
  /// CPU capacity factor in (0, 1] while a throttle window is active.
  double factor = 1.0;
  CrashMode crash_mode = CrashMode::kRequeue;
  /// Creation-outage shape (see sim::CreationFault).
  bool creation_fail = true;
  Seconds creation_fail_after = 10.0;
  Seconds creation_extra_delay = 0.0;
};

/// Poisson-process fault mix over [from, until); rates are per minute.
/// generate() maps this to a concrete schedule, purely.
struct FaultScheduleConfig {
  std::uint64_t seed = 97;
  Seconds from = 0.0;
  Seconds until = 600.0;

  double crash_per_min = 0.0;
  /// Fraction of crashes that abort in-flight jobs (the rest re-queue).
  double crash_abort_fraction = 0.5;

  double creation_outage_per_min = 0.0;
  Seconds creation_outage_duration = 45.0;
  Seconds creation_fail_after = 10.0;
  Seconds creation_extra_delay = 0.0;

  double throttle_per_min = 0.0;
  Seconds throttle_duration = 60.0;
  double throttle_factor_lo = 0.3;
  double throttle_factor_hi = 0.7;

  double blackout_per_min = 0.0;
  Seconds blackout_duration = 30.0;
};

/// Schedules FaultEvents onto a cluster's event queue and applies/undoes
/// them at fire time, bumping `faults.*` counters and the `faults.active`
/// gauge when a registry is attached. The injector must outlive the run
/// (events hold a pointer to it).
class FaultInjector {
 public:
  explicit FaultInjector(Cluster& cluster);

  /// Pure schedule synthesis: (config, service_count) -> events, sorted by
  /// fire time. Never touches a cluster, the wall clock, or global state.
  /// Stable under topology growth: changing service_count changes only
  /// which service each event targets — event times, crash picks/modes and
  /// throttle factors are pinned by (seed, class, event index).
  static std::vector<FaultEvent> generate(const FaultScheduleConfig& cfg,
                                          std::size_t service_count);

  // -- explicit fault construction (tests, bespoke drills) ------------------
  void crash_instance(Seconds at, int service, std::uint64_t pick, CrashMode mode);
  void degrade_creations(Seconds at, Seconds duration, bool fail,
                         Seconds fail_after, Seconds extra_delay);
  void throttle_cpu(Seconds at, Seconds duration, int service, double factor);
  void blackout_telemetry(Seconds at, Seconds duration);
  void add(const FaultEvent& ev) { schedule_.push_back(ev); }
  void add(const std::vector<FaultEvent>& evs) {
    schedule_.insert(schedule_.end(), evs.begin(), evs.end());
  }

  /// Install the accumulated schedule on the cluster's event queue. Call
  /// once, before running; events in the past are dropped.
  void arm();

  /// Register `faults.*` counters and the `faults.active` gauge.
  void set_metrics(telemetry::MetricsRegistry* registry);

  const std::vector<FaultEvent>& schedule() const { return schedule_; }
  std::size_t fired() const { return fired_; }

 private:
  void fire(const FaultEvent& ev);
  void expire(const FaultEvent& ev);
  void set_active_delta(int delta);
  /// Recompute and apply a service's composite throttle factor.
  void apply_throttle(int service);

  Cluster& cluster_;
  std::vector<FaultEvent> schedule_;
  bool armed_ = false;
  std::size_t fired_ = 0;
  int active_ = 0;
  /// Overlap bookkeeping: concurrently active windows stack (throttles
  /// multiply; outages/blackouts clear when the last window ends).
  std::vector<std::vector<double>> active_throttles_;  // per service
  int active_outages_ = 0;
  int active_blackouts_ = 0;

  telemetry::Counter* crashes_ = nullptr;
  telemetry::Counter* outages_ = nullptr;
  telemetry::Counter* throttles_ = nullptr;
  telemetry::Counter* blackouts_ = nullptr;
  telemetry::Gauge* active_gauge_ = nullptr;
};

}  // namespace graf::sim
