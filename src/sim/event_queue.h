// Discrete-event engine: a time-ordered queue of callbacks.
//
// Everything in the cluster simulator (request arrivals, processor-sharing
// completions, instance readiness, autoscaler control ticks) is an event.
// Ordering is (time, key): in the default single-queue mode the key is the
// insertion sequence, so ties break by insertion order and runs are
// deterministic — byte-for-byte the historical behavior.
//
// The sharded simulator (sharded_cluster.h) runs one queue per shard and
// needs tie-breaking that is *partition-independent*: whether two services
// share a queue or not must never change the order either of them observes.
// For that, a queue can run in origin-context mode: every event is stamped
// with a key derived from the logical process (LP) that created it —
// (origin LP << kLpShift) | that LP's own monotonic counter — and popping an
// event switches the context to the event's owner LP. Two events created by
// the same LP always compare the same way in any grouping, and events from
// different LPs never touch shared state, so replay is bit-identical at any
// shard/thread count (DESIGN.md §3.12).
//
// The heap is a hand-rolled 4-ary implicit heap rather than
// std::priority_queue: the shallower tree halves the sift-down depth per
// pop, the event is *moved* out of the root (priority_queue::top is const,
// forcing a std::function copy — an allocation — per pop), and storage is
// reserved up front so steady-state scheduling never reallocates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"

namespace graf::telemetry {
class LogHistogram;
}

namespace graf::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Origin-LP bit position inside an event key (low bits: per-LP counter).
  static constexpr int kLpShift = 40;

  EventQueue() { heap_.reserve(kInitialCapacity); }

  static std::uint64_t make_key(std::uint32_t lp, std::uint64_t count) {
    return (static_cast<std::uint64_t>(lp) << kLpShift) | count;
  }

  Seconds now() const { return now_; }

  /// Schedule at absolute time t (>= now, clamped up to now otherwise).
  void schedule_at(Seconds t, EventFn fn);

  /// Schedule `dt` seconds from now (dt < 0 is clamped to 0).
  void schedule_in(Seconds dt, EventFn fn);

  /// Schedule with an explicit ordering key and owner LP (sharded engine:
  /// cross-shard message delivery, pre-drawn arrivals, fault events). Keys
  /// must be unique within a queue; ties in time break by key.
  void schedule_keyed(Seconds t, std::uint64_t key, std::uint32_t owner, EventFn fn);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run all events with time <= t, then advance the clock to t.
  void run_until(Seconds t);

  /// Run all events with time strictly < t, then advance the clock to t —
  /// one conservative sync window of the sharded engine. Events at exactly
  /// t belong to the next window (messages for time t may still be in
  /// flight from other shards).
  void run_until_before(Seconds t);

  /// Run until the queue is empty (use with care; generators that
  /// perpetually reschedule themselves never drain).
  void run_all();

  // -- origin-context mode (sharded engine) ----------------------------------

  /// Enter origin-context mode: `counters` is a table of per-LP key
  /// counters (owned by the engine, one slot per LP plus the coordinator).
  /// From now on schedule_at/in stamp key = make_key(current LP, counter++)
  /// and owner = current LP, and step() sets the current LP from the popped
  /// event's owner. Pass nullptr to return to single-queue mode.
  void set_lp_counters(std::uint64_t* counters) { lp_counters_ = counters; }

  /// Current origin LP (who gets charged for events scheduled right now).
  /// The engine sets this around coordinator-context mutations; during a
  /// run it tracks the owner of the event being executed.
  void set_current_lp(std::uint32_t lp) { current_lp_ = lp; }
  std::uint32_t current_lp() const { return current_lp_; }

  /// Mint the next key for the current LP (origin-context mode only).
  std::uint64_t mint_key() {
    return make_key(current_lp_, lp_counters_[current_lp_]++);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }
  /// Time of the earliest pending event (undefined when empty()).
  Seconds next_time() const { return heap_.front().time; }

  /// Profile each step() — heap pop + handler dispatch — into `h`
  /// (microseconds of wall time). nullptr (the default) disables the two
  /// clock reads entirely; this is the simulator's hottest loop.
  void set_pop_timer(telemetry::LogHistogram* h) { pop_timer_ = h; }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  struct Event {
    Seconds time;
    std::uint64_t key;
    EventFn fn;
    std::uint32_t owner;
  };

  /// a fires before b: time, then key (legacy mode: key == insertion seq,
  /// so this is exactly the historical (time, insertion order) rule).
  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void push(Seconds t, std::uint64_t key, std::uint32_t owner, EventFn fn);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;  // 4-ary: children of i are 4i+1 .. 4i+4
  telemetry::LogHistogram* pop_timer_ = nullptr;
  std::uint64_t* lp_counters_ = nullptr;  // non-null = origin-context mode
  std::uint32_t current_lp_ = 0;
  Seconds now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace graf::sim
