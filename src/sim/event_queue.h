// Discrete-event engine: a time-ordered queue of callbacks.
//
// Everything in the cluster simulator (request arrivals, processor-sharing
// completions, instance readiness, autoscaler control ticks) is an event.
// Ties are broken by insertion order so runs are deterministic.
//
// The heap is a hand-rolled 4-ary implicit heap rather than
// std::priority_queue: the shallower tree halves the sift-down depth per
// pop, the event is *moved* out of the root (priority_queue::top is const,
// forcing a std::function copy — an allocation — per pop), and storage is
// reserved up front so steady-state scheduling never reallocates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"

namespace graf::telemetry {
class LogHistogram;
}

namespace graf::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() { heap_.reserve(kInitialCapacity); }

  Seconds now() const { return now_; }

  /// Schedule at absolute time t (>= now, clamped up to now otherwise).
  void schedule_at(Seconds t, EventFn fn);

  /// Schedule `dt` seconds from now (dt < 0 is clamped to 0).
  void schedule_in(Seconds dt, EventFn fn);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run all events with time <= t, then advance the clock to t.
  void run_until(Seconds t);

  /// Run until the queue is empty (use with care; generators that
  /// perpetually reschedule themselves never drain).
  void run_all();

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }

  /// Profile each step() — heap pop + handler dispatch — into `h`
  /// (microseconds of wall time). nullptr (the default) disables the two
  /// clock reads entirely; this is the simulator's hottest loop.
  void set_pop_timer(telemetry::LogHistogram* h) { pop_timer_ = h; }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  struct Event {
    Seconds time;
    std::uint64_t seq;
    EventFn fn;
  };

  /// a fires before b (time, then insertion order).
  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;  // 4-ary: children of i are 4i+1 .. 4i+4
  telemetry::LogHistogram* pop_timer_ = nullptr;
  Seconds now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace graf::sim
