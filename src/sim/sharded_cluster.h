// Sharded fleet-scale simulator: the Cluster's service graph partitioned
// into per-shard event queues and run concurrently over the deterministic
// parallel layer (common/thread_pool), with bit-identical replay at any
// (shard count, thread count) combination.
//
// Model (DESIGN.md §3.12). Every service is a *logical process* (LP) with
// its own RNG stream, its own Deployment pipeline, its own metrics series
// and its own event-key counter; a shard is a grouping of LPs behind one
// EventQueue. All inter-service interaction — a parent's call into a child,
// the child's reply — is a message that pays `rpc_latency` seconds (the
// service-mesh hop the single-queue Cluster idealizes away). That latency is
// the engine's conservative lookahead: shards run concurrently inside sync
// windows of length rpc_latency, because a message sent during window k can
// only be delivered in window k+1, and cross-shard messages are exchanged at
// the window barrier. Event ordering is (time, origin key) where origin keys
// are minted per LP (EventQueue origin-context mode), so the order any LP
// observes is invariant to how LPs are grouped into shards — grouping, like
// thread count, affects only wall-clock, never results.
//
// Differences from the single-queue Cluster — this engine's spec, not an
// accident: calls pay rpc_latency per hop; per-visit demand is drawn from
// the *executing* service's RNG stream (not one shared cluster stream); each
// service has its own creation pipeline (per-nodepool scheduler) instead of
// one cluster-wide contended pipeline. Shard count 1 with 1 thread runs the
// identical event sequence as any other combination — that is the invariant
// the digest tests pin. The legacy Cluster API is untouched and remains
// byte-for-byte today's simulator.
//
// Coordinator rule: every non-const method other than run_until/run_for is
// coordinator-only — call it before running or between run_until calls,
// never from inside the simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/cluster.h"
#include "sim/deployment.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/request.h"
#include "sim/service.h"
#include "trace/latency_window.h"
#include "trace/tracer.h"

namespace graf::sim {

struct ShardedClusterConfig {
  CreationModel creation{};
  Seconds request_timeout = 30.0;
  Seconds metrics_interval = 1.0;
  Seconds latency_horizon = 120.0;     ///< retention of latency windows
  std::size_t trace_capacity = 2048;   ///< per-API trace history
  std::size_t series_capacity = 8192;  ///< per-service metric points kept
  std::uint64_t seed = 42;
  /// Per-hop RPC latency between services (call and reply each pay one hop).
  /// This is also the conservative sync lookahead: the minimum RPC-edge
  /// latency bounds how far one shard may run ahead of another, because no
  /// cross-shard effect can materialize sooner. Must be > 0.
  Seconds rpc_latency = 0.002;
  /// Number of shards the service graph is partitioned into. Shards beyond
  /// the service count run empty; 1 degenerates to a single queue (same
  /// results, no windowing benefit).
  std::size_t shards = 1;
};

class ShardedCluster {
 public:
  /// `shard_of` optionally assigns each service to a shard explicitly
  /// (values < cfg.shards); empty picks a balanced contiguous partition.
  /// Partitioning is a performance knob only — results are bit-identical
  /// under any assignment.
  ShardedCluster(std::vector<ServiceConfig> services, std::vector<Api> apis,
                 ShardedClusterConfig cfg = {},
                 std::vector<std::uint32_t> shard_of = {});

  // -- clock ------------------------------------------------------------------
  Seconds now() const { return now_; }
  Seconds lookahead() const { return cfg_.rpc_latency; }
  /// Run the simulation forward to t in conservative windows of
  /// `rpc_latency`, shards in parallel over the global pool. Events at
  /// exactly t are left pending (windows are half-open; a later run_until
  /// picks them up).
  void run_until(Seconds t);
  void run_for(Seconds dt) { run_until(now_ + dt); }

  // -- topology ---------------------------------------------------------------
  std::size_t service_count() const { return lps_.size(); }
  std::size_t shard_count() const { return shards_.size(); }
  std::uint32_t shard_of(int service) const {
    return lps_.at(static_cast<std::size_t>(service))->shard;
  }
  Service& service(int i) { return *lps_.at(static_cast<std::size_t>(i))->service; }
  const Service& service(int i) const {
    return *lps_.at(static_cast<std::size_t>(i))->service;
  }
  int service_index(const std::string& name) const;
  std::size_t api_count() const { return apis_.size(); }
  const Api& api(int i) const { return apis_.at(static_cast<std::size_t>(i)); }
  int api_index(const std::string& name) const;

  // -- load (coordinator-only) --------------------------------------------------
  /// Inject one front-end request of `api` at absolute time `at` (>= now).
  /// Arrivals are pre-drawn and injected up front (or between windows) —
  /// the sharded analogue of the open-loop generator's event chain; see
  /// workload::preload_open_loop.
  void schedule_arrival(Seconds at, int api);

  /// Install a fault schedule (see FaultInjector::generate). Shard-aware:
  /// service-targeted faults run on the owning shard under that service's
  /// origin context; cluster-wide windows (creation outages, telemetry
  /// blackouts) are replicated to every shard with identical (time, key),
  /// so every LP observes the toggle at the same point in its own order
  /// regardless of grouping. Events in the past are dropped.
  void inject(const std::vector<FaultEvent>& schedule);

  // -- control (coordinator-only) ------------------------------------------------
  void scale_to(int s, int target);
  void apply_total_quota(int s, Millicores total, Millicores max_per_instance);
  void set_demand_scale(double d) { demand_scale_ = d; }
  double demand_scale() const { return demand_scale_; }

  // -- observability (coordinator reads, deterministic merges) -------------------
  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  std::uint64_t failed() const;
  std::size_t inflight() const;
  /// Aggregate events processed across all shard queues (grouping-invariant:
  /// every LP event and every message delivery counts exactly once).
  std::uint64_t events_processed() const;

  Qps api_qps(int api, Seconds window) const;
  trace::LatencyWindow& e2e_latency(int api) {
    return api_state_.at(static_cast<std::size_t>(api)).e2e;
  }
  trace::LatencyWindow& service_latency(int s) {
    return lps_.at(static_cast<std::size_t>(s))->local_latency;
  }
  const std::deque<ServicePoint>& series(int s) const {
    return lps_.at(static_cast<std::size_t>(s))->series;
  }
  double utilization_avg(int s, Seconds horizon) const;
  double qps_avg(int s, Seconds horizon) const;
  Seconds metrics_interval() const { return cfg_.metrics_interval; }

  /// Traced per-service fan-out of `api` at `rank` percentile (the shard
  /// owning the API's root service holds its trace history).
  std::vector<double> fanout(int api, double rank = 90.0) const;
  std::uint64_t traces_recorded() const;

  int total_ready_instances() const;
  int total_target_instances() const;
  Millicores total_quota() const;
  bool telemetry_blackout() const;  ///< any shard currently dark

 private:
  static constexpr std::uint32_t kNoLp = 0xFFFFFFFFu;

  /// One service logical process. Everything mutable during a window is
  /// reachable only from this LP's events, so LPs on different shards never
  /// share state.
  struct Lp {
    std::uint32_t shard = 0;
    std::unique_ptr<Deployment> deployment;  // per-LP creation pipeline
    std::unique_ptr<Service> service;
    Rng rng{0};  ///< demand + branch-probability stream for this LP
    trace::LatencyWindow local_latency;
    std::deque<ServicePoint> series;
    std::uint64_t last_arrivals = 0;
    bool blackout_resync = false;
    std::vector<double> throttles;  ///< active throttle windows (composed)

    explicit Lp(Seconds horizon) : local_latency{horizon} {}
  };

  /// Per-API request bookkeeping, touched only by the root service's shard
  /// during windows (coordinator reads between windows).
  struct ApiState {
    trace::LatencyWindow e2e;
    trace::LatencyWindow arrivals;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::size_t inflight = 0;
    std::uint32_t root_lp = 0;

    explicit ApiState(Seconds horizon) : e2e{horizon}, arrivals{horizon} {}
  };

  /// In-flight execution state of one call-tree node (arena-pooled per
  /// shard; freed when the node's reply is sent or its drop path fires).
  struct Frame {
    const CallNode* node = nullptr;
    Seconds start = 0.0;
    Seconds deadline = 0.0;
    std::uint32_t api = 0;
    std::uint32_t parent_lp = kNoLp;  ///< kNoLp = root of the request
    std::uint32_t parent_frame = 0;
    std::uint32_t stage = 0;
    std::uint32_t outstanding = 0;
    std::uint32_t next_free = kNoLp;
    bool ok = true;
    std::vector<std::uint32_t> visits;  ///< per-service, merged up on reply
  };

  /// One inter-LP message (call down or reply up), parked in the receiving
  /// shard's mailbox arena; the scheduled delivery closure carries only
  /// (shard, slot) so it stays within std::function's inline buffer.
  struct Msg {
    enum class Kind : std::uint8_t { kCall, kReply };
    Kind kind = Kind::kCall;
    bool ok = true;
    std::uint32_t dst_lp = 0;
    std::uint32_t parent_lp = kNoLp;
    std::uint32_t parent_frame = 0;
    std::uint32_t api = 0;
    std::uint32_t next_free = kNoLp;
    const CallNode* node = nullptr;
    Seconds start = 0.0;
    Seconds deadline = 0.0;
    std::vector<std::uint32_t> visits;  ///< reply payload
  };

  struct OutMsg {
    std::uint32_t dst_shard;
    std::uint32_t owner;
    Seconds at;
    std::uint64_t key;
    Msg msg;
  };

  struct Shard {
    EventQueue queue;
    std::vector<std::uint32_t> lps;
    std::deque<Frame> frames;  ///< arena: stable addresses, freelist reuse
    std::uint32_t free_frame = kNoLp;
    std::deque<Msg> mailbox;  ///< arena for parked messages
    std::uint32_t free_msg = kNoLp;
    std::vector<OutMsg> outbox;  ///< cross-shard sends this window
    std::vector<std::vector<std::uint32_t>> visit_pool;
    std::unique_ptr<trace::Tracer> tracer;
    bool blackout = false;
    int active_outages = 0;
    int active_blackouts = 0;
    /// Pops that were replicas of a cluster-wide event already counted on
    /// shard 0 — subtracted so events_processed() is grouping-invariant.
    std::uint64_t replica_pops = 0;
  };

  std::uint32_t coordinator_lp() const {
    return static_cast<std::uint32_t>(lps_.size());
  }
  std::uint64_t coord_key() {
    return EventQueue::make_key(coordinator_lp(), coord_seq_++);
  }
  void validate_api(const CallNode& node) const;

  std::uint32_t alloc_frame(Shard& sh);
  void free_frame(Shard& sh, std::uint32_t idx);
  std::uint32_t park_msg(Shard& sh, Msg&& msg);
  std::vector<std::uint32_t> alloc_visits(Shard& sh);
  void recycle_visits(Shard& sh, std::vector<std::uint32_t>&& v);

  double sample_demand(const CallNode& node, Lp& lp);
  void handle_arrival(std::uint32_t api);
  void exec_call(std::uint32_t shard, Msg& msg);
  void exec_reply(std::uint32_t shard, Msg& msg);
  void process_msg(std::uint32_t shard, std::uint32_t slot);
  void on_local_done(std::uint32_t shard, std::uint32_t frame, double local_ms);
  void run_frame_stages(std::uint32_t shard, std::uint32_t frame);
  void finish_frame(std::uint32_t shard, std::uint32_t frame, bool ok);
  void send_msg(std::uint32_t src_shard, Seconds at, Msg&& msg);
  void exchange_outboxes();
  void lp_metrics_tick(std::uint32_t lp);
  void fire_service_fault(const FaultEvent& ev);
  void expire_throttle(const FaultEvent& ev);
  void apply_throttle(Lp& lp);
  /// Run `fn` in coordinator context charged to LP `lp` (its shard's queue
  /// mints keys for anything fn schedules).
  void with_lp(std::uint32_t lp, const std::function<void()>& fn);

  ShardedClusterConfig cfg_;
  std::vector<Api> apis_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ApiState> api_state_;
  /// Per-LP event-key counters (+1 slot for the coordinator); slot i is
  /// only ever touched by the shard currently executing LP i.
  std::vector<std::uint64_t> key_counters_;
  std::uint64_t coord_seq_ = 0;
  double demand_scale_ = 1.0;
  Seconds now_ = 0.0;
};

}  // namespace graf::sim
