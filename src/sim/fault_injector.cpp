#include "sim/fault_injector.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace graf::sim {

namespace {
// Stable per-class rng streams (derive_seed keeps them independent of each
// other and of how much randomness any other component consumes).
enum : std::uint64_t {
  kStreamCrash = 0,
  kStreamOutage = 1,
  kStreamThrottle = 2,
  kStreamBlackout = 3,
};
}  // namespace

FaultInjector::FaultInjector(Cluster& cluster)
    : cluster_{cluster}, active_throttles_(cluster.service_count()) {}

std::vector<FaultEvent> FaultInjector::generate(const FaultScheduleConfig& cfg,
                                                std::size_t service_count) {
  if (service_count == 0)
    throw std::invalid_argument{"FaultInjector::generate: need >= 1 service"};
  if (cfg.until <= cfg.from)
    throw std::invalid_argument{"FaultInjector::generate: empty window"};
  std::vector<FaultEvent> events;

  // Each class is an independent Poisson process with exponential
  // inter-arrivals. The class stream draws *times only*; every event's
  // parameters come from their own derived sub-stream. This matters because
  // uniform_int rejection-samples — it consumes a variable number of raw
  // draws depending on its range — so a service pick fed from the shared
  // class stream would shift every later draw whenever service_count
  // changes (e.g. tenants joining a shared sharded cluster). With per-event
  // sub-streams, and the range-dependent service pick ordered last within
  // its stream, changing service_count changes only which service each
  // event hits: times, picks, modes and factors stay pinned.
  auto arrivals = [&](double per_min, std::uint64_t stream, auto&& emit) {
    if (per_min <= 0.0) return;
    Rng times{derive_seed(cfg.seed, stream)};
    const double rate = per_min / 60.0;  // per second
    const std::uint64_t param_base = derive_seed(cfg.seed, stream);
    Seconds t = cfg.from;
    std::uint64_t n = 0;
    while (true) {
      t += times.exponential(rate);
      if (t >= cfg.until) break;
      Rng params{derive_seed(param_base, ++n)};
      emit(params, t);
    }
  };

  arrivals(cfg.crash_per_min, kStreamCrash, [&](Rng& rng, Seconds t) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kInstanceCrash;
    ev.at = t;
    ev.pick = rng.next_u64();
    ev.crash_mode = rng.bernoulli(cfg.crash_abort_fraction) ? CrashMode::kAbort
                                                            : CrashMode::kRequeue;
    ev.service = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(service_count) - 1));
    events.push_back(ev);
  });

  arrivals(cfg.creation_outage_per_min, kStreamOutage, [&](Rng&, Seconds t) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCreationOutage;
    ev.at = t;
    ev.duration = cfg.creation_outage_duration;
    ev.creation_fail = true;
    ev.creation_fail_after = cfg.creation_fail_after;
    ev.creation_extra_delay = cfg.creation_extra_delay;
    events.push_back(ev);
  });

  arrivals(cfg.throttle_per_min, kStreamThrottle, [&](Rng& rng, Seconds t) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCpuThrottle;
    ev.at = t;
    ev.duration = cfg.throttle_duration;
    ev.factor = rng.uniform(cfg.throttle_factor_lo, cfg.throttle_factor_hi);
    ev.service = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(service_count) - 1));
    events.push_back(ev);
  });

  arrivals(cfg.blackout_per_min, kStreamBlackout, [&](Rng&, Seconds t) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kTelemetryBlackout;
    ev.at = t;
    ev.duration = cfg.blackout_duration;
    events.push_back(ev);
  });

  // Stable: ties keep the fixed class order above, independent of anything
  // but the config.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return events;
}

void FaultInjector::crash_instance(Seconds at, int service, std::uint64_t pick,
                                   CrashMode mode) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kInstanceCrash;
  ev.at = at;
  ev.service = service;
  ev.pick = pick;
  ev.crash_mode = mode;
  schedule_.push_back(ev);
}

void FaultInjector::degrade_creations(Seconds at, Seconds duration, bool fail,
                                      Seconds fail_after, Seconds extra_delay) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kCreationOutage;
  ev.at = at;
  ev.duration = duration;
  ev.creation_fail = fail;
  ev.creation_fail_after = fail_after;
  ev.creation_extra_delay = extra_delay;
  schedule_.push_back(ev);
}

void FaultInjector::throttle_cpu(Seconds at, Seconds duration, int service,
                                 double factor) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kCpuThrottle;
  ev.at = at;
  ev.duration = duration;
  ev.service = service;
  ev.factor = factor;
  schedule_.push_back(ev);
}

void FaultInjector::blackout_telemetry(Seconds at, Seconds duration) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kTelemetryBlackout;
  ev.at = at;
  ev.duration = duration;
  schedule_.push_back(ev);
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error{"FaultInjector: arm() called twice"};
  armed_ = true;
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  EventQueue& q = cluster_.events();
  const Seconds now = q.now();
  for (const FaultEvent& ev : schedule_) {
    if (ev.at < now) continue;  // history; can't injure the past
    q.schedule_at(ev.at, [this, ev] { fire(ev); });
    if (ev.kind != FaultEvent::Kind::kInstanceCrash && ev.duration > 0.0)
      q.schedule_at(ev.at + ev.duration, [this, ev] { expire(ev); });
  }
}

void FaultInjector::set_metrics(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    crashes_ = outages_ = throttles_ = blackouts_ = nullptr;
    active_gauge_ = nullptr;
    return;
  }
  crashes_ = &registry->counter("faults.crashes");
  outages_ = &registry->counter("faults.creation_outages");
  throttles_ = &registry->counter("faults.throttles");
  blackouts_ = &registry->counter("faults.blackouts");
  active_gauge_ = &registry->gauge("faults.active");
  active_gauge_->set(static_cast<double>(active_));
}

void FaultInjector::set_active_delta(int delta) {
  active_ += delta;
  if (active_gauge_ != nullptr) active_gauge_->set(static_cast<double>(active_));
}

void FaultInjector::apply_throttle(int service) {
  double factor = 1.0;
  for (double f : active_throttles_[static_cast<std::size_t>(service)]) factor *= f;
  // Empty window list multiplies out to exactly 1.0 — full-speed restore is
  // bit-exact, not a rounding accident.
  cluster_.service(service).set_cpu_throttle(factor);
}

void FaultInjector::fire(const FaultEvent& ev) {
  ++fired_;
  switch (ev.kind) {
    case FaultEvent::Kind::kInstanceCrash:
      if (crashes_ != nullptr) crashes_->add();
      cluster_.service(ev.service).crash_one(ev.pick, ev.crash_mode);
      break;
    case FaultEvent::Kind::kCreationOutage:
      if (outages_ != nullptr) outages_->add();
      set_active_delta(+1);
      ++active_outages_;
      // Overlapping outages: the most recent shape wins; the pipeline heals
      // only when the last window ends.
      cluster_.deployment().set_creation_fault(CreationFault{
          ev.creation_fail, ev.creation_fail_after, ev.creation_extra_delay});
      break;
    case FaultEvent::Kind::kCpuThrottle:
      if (throttles_ != nullptr) throttles_->add();
      set_active_delta(+1);
      active_throttles_[static_cast<std::size_t>(ev.service)].push_back(ev.factor);
      apply_throttle(ev.service);
      break;
    case FaultEvent::Kind::kTelemetryBlackout:
      if (blackouts_ != nullptr) blackouts_->add();
      set_active_delta(+1);
      if (++active_blackouts_ == 1) cluster_.set_telemetry_blackout(true);
      break;
  }
}

void FaultInjector::expire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::kInstanceCrash:
      break;  // instantaneous; never scheduled
    case FaultEvent::Kind::kCreationOutage:
      set_active_delta(-1);
      if (--active_outages_ == 0) cluster_.deployment().clear_creation_fault();
      break;
    case FaultEvent::Kind::kCpuThrottle: {
      set_active_delta(-1);
      auto& factors = active_throttles_[static_cast<std::size_t>(ev.service)];
      auto it = std::find(factors.begin(), factors.end(), ev.factor);
      if (it != factors.end()) factors.erase(it);
      apply_throttle(ev.service);
      break;
    }
    case FaultEvent::Kind::kTelemetryBlackout:
      set_active_delta(-1);
      if (--active_blackouts_ == 0) cluster_.set_telemetry_blackout(false);
      break;
  }
}

}  // namespace graf::sim
