// The simulated Kubernetes cluster: services + deployment pipeline +
// metrics + tracing, driven by one discrete-event clock.
//
// This is the substrate every experiment runs on. Workload generators call
// submit_request(); autoscalers (and GRAF's resource controller) scale
// services; the metrics ticker samples per-service utilization/qps series
// (the simulator's Prometheus/cAdvisor); the Tracer collects request traces
// (its Jaeger).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/deployment.h"
#include "sim/event_queue.h"
#include "sim/request.h"
#include "sim/service.h"
#include "telemetry/metrics.h"
#include "trace/latency_window.h"
#include "trace/tracer.h"

namespace graf::sim {

struct ClusterConfig {
  CreationModel creation{};
  /// End-to-end client timeout (Vegeta default); requests exceeding it are
  /// dropped from queues and reported as failures, not latencies.
  Seconds request_timeout = 30.0;
  Seconds metrics_interval = 1.0;
  Seconds latency_horizon = 120.0;     ///< retention of latency windows
  std::size_t trace_capacity = 2048;   ///< per-API trace history
  std::size_t series_capacity = 8192;  ///< per-service metric points kept
  std::uint64_t seed = 42;
};

/// One metrics-ticker observation for a service.
struct ServicePoint {
  Seconds time = 0.0;
  double qps = 0.0;          ///< perceived workload (arrivals/s)
  double cpu_cores = 0.0;    ///< cores actually consumed
  double utilization = 0.0;  ///< cpu_cores / (ready * unit quota)
  int ready = 0;
  int creating = 0;
  std::size_t queue_len = 0;
};

class Cluster {
 public:
  Cluster(std::vector<ServiceConfig> services, std::vector<Api> apis,
          ClusterConfig cfg = {});

  // -- clock ----------------------------------------------------------------
  EventQueue& events() { return events_; }
  Seconds now() const { return events_.now(); }
  void run_until(Seconds t) { events_.run_until(t); }
  void run_for(Seconds dt) { events_.run_until(events_.now() + dt); }

  // -- topology -------------------------------------------------------------
  std::size_t service_count() const { return services_.size(); }
  Service& service(int i) { return *services_.at(static_cast<std::size_t>(i)); }
  const Service& service(int i) const { return *services_.at(static_cast<std::size_t>(i)); }
  int service_index(const std::string& name) const;
  std::size_t api_count() const { return apis_.size(); }
  const Api& api(int i) const { return apis_.at(static_cast<std::size_t>(i)); }
  int api_index(const std::string& name) const;

  Deployment& deployment() { return deployment_; }
  Rng& rng() { return rng_; }

  // -- load -----------------------------------------------------------------
  using CompletionFn = std::function<void(const trace::RequestTrace&)>;
  /// Inject one front-end request of `api`; optional completion callback.
  void submit_request(int api, CompletionFn on_complete = {});

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  /// Requests that failed because some call timed out in a queue.
  std::uint64_t failed() const { return failed_; }
  std::size_t inflight() const { return inflight_; }

  /// Front-end request rate of `api` over the last `window` seconds — the
  /// only workload signal GRAF's proactive path consumes (§3.8).
  Qps api_qps(int api, Seconds window) const;

  /// Deploy a total CPU quota on service `s` as evenly-split replicas of at
  /// most `max_per_instance` each (sample collection / §3.6 even-spread
  /// assumption). Applies immediately, bypassing the deployment pipeline.
  void apply_total_quota(int s, Millicores total, Millicores max_per_instance);

  /// Multiply every per-visit CPU demand by `s` from now on — drift
  /// injection (a rollout that made the services more expensive). The
  /// latency function the GNN learned no longer matches the cluster; the
  /// online serving stack (src/serve) must detect and absorb this.
  void set_demand_scale(double s) { demand_scale_ = s; }
  double demand_scale() const { return demand_scale_; }

  /// Fault injection: black out the observability plane. While active, the
  /// metrics ticker publishes nothing (series and telemetry gauges gap),
  /// traces are not recorded, api_qps() sees no new arrivals, and the e2e /
  /// per-service latency histograms stop recording. Ground-truth experiment
  /// counters (submitted/completed/failed) and the exact e2e latency windows
  /// keep running — the cluster still works; only its sensors go dark.
  /// On recovery the ticker resynchronizes its deltas so the blackout
  /// interval's backlog is discarded, not misattributed to one sample.
  void set_telemetry_blackout(bool on);
  bool telemetry_blackout() const { return blackout_; }

  // -- observability ----------------------------------------------------------

  /// Attach a telemetry registry: the metrics ticker then publishes
  /// per-service gauges (queue depth, utilization, ready/creating, qps) and
  /// counters (instance creations, queue drops), request completions feed
  /// `sim.e2e_latency_ms` log-histograms (overall + per API) and per-service
  /// `sim.service_latency_ms`, and the event queue's pop cost is profiled
  /// into `sim.event_us`. Pass nullptr to detach (the default: zero
  /// overhead). The registry must outlive the cluster or the next
  /// set_metrics call.
  void set_metrics(telemetry::MetricsRegistry* registry);
  telemetry::MetricsRegistry* metrics() const { return telemetry_; }

  /// End-to-end latency log-histogram over all APIs (O(1) mergeable tail
  /// estimates for controllers); nullptr while telemetry is detached.
  /// Exact-percentile queries stay available through e2e_latency_all().
  telemetry::LogHistogram* e2e_histogram() { return e2e_hist_; }

  trace::Tracer& tracer() { return tracer_; }
  /// Local (queue + processing, children excluded) latency per service.
  trace::LatencyWindow& service_latency(int s) {
    return local_latency_.at(static_cast<std::size_t>(s));
  }
  /// End-to-end latency per API and across all APIs.
  trace::LatencyWindow& e2e_latency(int api) {
    return e2e_latency_.at(static_cast<std::size_t>(api));
  }
  trace::LatencyWindow& e2e_latency_all() { return e2e_all_; }

  const std::deque<ServicePoint>& series(int s) const {
    return series_.at(static_cast<std::size_t>(s));
  }
  /// Mean utilization of service `s` over the last `horizon` seconds of
  /// metric points (what a Prometheus-backed HPA would query).
  double utilization_avg(int s, Seconds horizon) const;
  /// Perceived qps of service `s` over the last `horizon` seconds.
  double qps_avg(int s, Seconds horizon) const;
  /// Metric points of service `s` within the last `horizon` seconds — lets
  /// metric consumers distinguish "no data" (blackout) from "data says 0".
  std::size_t series_count_since(int s, Seconds horizon) const;
  Seconds metrics_interval() const { return cfg_.metrics_interval; }

  /// Ready instances summed over all services.
  int total_ready_instances() const;
  /// Ready + creating, summed (what Fig. 2/20/21 plot).
  int total_target_instances() const;
  /// Total CPU quota over ready instances (millicores).
  Millicores total_quota() const;

  // -- experiment hygiene -----------------------------------------------------
  /// Drop all queued and resident work without recording completions
  /// (sample-collection initialization, §5 "flushes out possible existing
  /// requests"). Latency windows and traces are kept unless cleared.
  void hard_reset_load();
  void clear_windows();
  void clear_series();

 private:
  struct Ctx {
    int api;
    Seconds start;
    Seconds deadline;
    std::vector<std::uint32_t> visits;
    CompletionFn on_complete;
  };

  void exec_node(const std::shared_ptr<Ctx>& ctx, const CallNode& node,
                 std::function<void(bool)> done);
  void run_stages(const std::shared_ptr<Ctx>& ctx, const CallNode* node,
                  std::size_t stage, std::function<void(bool)> done);
  double sample_demand(const CallNode& node, const Service& svc);
  void metrics_tick();
  void validate_api(const CallNode& node) const;

  /// Interned per-service telemetry instruments (stable pointers into the
  /// attached registry; see set_metrics).
  struct ServiceTelemetry {
    telemetry::Gauge* queue_depth = nullptr;
    telemetry::Gauge* utilization = nullptr;
    telemetry::Gauge* ready = nullptr;
    telemetry::Gauge* creating = nullptr;
    telemetry::Gauge* qps = nullptr;
    telemetry::Counter* creations = nullptr;
    telemetry::Counter* drops = nullptr;
    telemetry::Counter* creation_failures = nullptr;
    telemetry::Counter* creation_retries = nullptr;
    telemetry::LogHistogram* local_latency = nullptr;
    std::uint64_t last_creations = 0;
    std::uint64_t last_drops = 0;
    std::uint64_t last_creation_failures = 0;
    std::uint64_t last_creation_retries = 0;
  };

  /// Advance every per-service telemetry delta baseline to the current
  /// cumulative totals (registry attach, blackout recovery).
  void resync_telemetry_baselines();

  ClusterConfig cfg_;
  EventQueue events_;
  Rng rng_;
  double demand_scale_ = 1.0;
  bool blackout_ = false;
  bool blackout_resync_ = false;  // first post-blackout tick must resync deltas
  Deployment deployment_;
  std::vector<std::unique_ptr<Service>> services_;
  std::vector<Api> apis_;
  trace::Tracer tracer_;
  std::vector<trace::LatencyWindow> local_latency_;
  std::vector<trace::LatencyWindow> e2e_latency_;
  trace::LatencyWindow e2e_all_;
  std::vector<trace::LatencyWindow> api_arrivals_;
  std::vector<std::deque<ServicePoint>> series_;
  std::vector<std::uint64_t> last_arrivals_;
  telemetry::MetricsRegistry* telemetry_ = nullptr;
  std::vector<ServiceTelemetry> svc_tel_;
  telemetry::LogHistogram* e2e_hist_ = nullptr;
  std::vector<telemetry::LogHistogram*> e2e_api_hist_;
  telemetry::Counter* tel_submitted_ = nullptr;
  telemetry::Counter* tel_completed_ = nullptr;
  telemetry::Counter* tel_failed_ = nullptr;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::size_t inflight_ = 0;
};

}  // namespace graf::sim
