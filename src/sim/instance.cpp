#include "sim/instance.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace graf::sim {

namespace {
constexpr double kWorkEps = 1e-9;  // core-seconds considered "done"
}

Instance::Instance(std::uint64_t id, double quota_cores, EventQueue& events)
    : id_{id}, quota_{quota_cores}, events_{events}, last_update_{events.now()} {
  if (quota_cores <= 0.0) throw std::invalid_argument{"Instance: quota must be > 0"};
}

double Instance::job_rate() const {
  if (jobs_.empty()) return 0.0;
  return std::min(quota_ * throttle_ / static_cast<double>(jobs_.size()), 1.0);
}

void Instance::advance() {
  const Seconds now = events_.now();
  const double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0 || jobs_.empty()) return;
  const double rate = job_rate();
  const double progress = rate * elapsed;
  for (Job& j : jobs_) j.remaining -= progress;
  cpu_used_ += progress * static_cast<double>(jobs_.size());
}

void Instance::set_quota_cores(double cores) {
  if (cores <= 0.0) throw std::invalid_argument{"Instance: quota must be > 0"};
  advance();
  quota_ = cores;
  schedule_next_completion();
}

void Instance::set_throttle(double factor) {
  if (factor <= 0.0 || factor > 1.0)
    throw std::invalid_argument{"Instance: throttle factor must be in (0, 1]"};
  advance();
  throttle_ = factor;
  schedule_next_completion();
}

void Instance::add_job(double work_core_seconds, std::function<void()> on_done,
                       std::function<void()> on_abort) {
  if (work_core_seconds <= 0.0) work_core_seconds = kWorkEps;
  advance();
  jobs_.push_back(Job{work_core_seconds, std::move(on_done), std::move(on_abort)});
  schedule_next_completion();
}

std::vector<Instance::Job> Instance::take_jobs() {
  advance();
  ++epoch_;  // any scheduled completion check is now stale
  return std::exchange(jobs_, {});
}

void Instance::schedule_next_completion() {
  ++epoch_;
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Job& j : jobs_) min_remaining = std::min(min_remaining, j.remaining);
  const double dt = std::max(min_remaining, 0.0) / job_rate();
  const std::uint64_t epoch = epoch_;
  events_.schedule_in(
      dt, [this, epoch, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) return;  // instance freed before the event fired
        on_completion_check(epoch);
      });
}

void Instance::on_completion_check(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // superseded by a later arrival/departure
  advance();
  std::vector<std::function<void()>> done;
  for (std::size_t i = 0; i < jobs_.size();) {
    if (jobs_[i].remaining <= kWorkEps) {
      done.push_back(std::move(jobs_[i].on_done));
      jobs_[i] = std::move(jobs_.back());
      jobs_.pop_back();
    } else {
      ++i;
    }
  }
  schedule_next_completion();
  // Callbacks run last: they may add jobs to this very instance.
  for (auto& fn : done) fn();
}

double Instance::drain_cpu_usage() {
  advance();
  return std::exchange(cpu_used_, 0.0);
}

void Instance::clear_jobs() {
  advance();
  jobs_.clear();
  ++epoch_;  // invalidate any scheduled completion check
}

}  // namespace graf::sim
