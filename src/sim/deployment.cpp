#include "sim/deployment.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace graf::sim {

Deployment::Deployment(EventQueue& events, CreationModel model)
    : events_{events}, model_{model} {
  if (model.nodes <= 0) throw std::invalid_argument{"Deployment: need >= 1 node"};
  nodes_.resize(static_cast<std::size_t>(model.nodes));
}

std::uint64_t Deployment::request_creation(std::function<void()> on_ready) {
  const Seconds now = events_.now();
  // Place on the least-backlogged node's pipeline.
  std::size_t best = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].last_ready < nodes_[best].last_ready) best = i;
  }
  Node& node = nodes_[best];
  Seconds ready;
  if (node.pending == 0 && node.last_ready <= now) {
    ready = now + model_.base;
  } else {
    // Node busy (or a creation completed "just now" this instant):
    // serialize behind the most recent completion slot.
    ready = std::max(node.last_ready, now) + model_.per_extra;
  }
  node.last_ready = ready;
  ++node.pending;
  const std::uint64_t ticket = next_ticket_++;
  pending_.emplace(ticket, std::make_pair(std::move(on_ready), best));
  events_.schedule_at(ready, [this, ticket] {
    auto it = pending_.find(ticket);
    if (it == pending_.end()) return;  // cancelled
    auto [fn, node_idx] = std::move(it->second);
    pending_.erase(it);
    if (nodes_[node_idx].pending > 0) --nodes_[node_idx].pending;
    fn();
  });
  return ticket;
}

void Deployment::cancel(std::uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  const std::size_t node_idx = it->second.second;
  if (nodes_[node_idx].pending > 0) --nodes_[node_idx].pending;
  pending_.erase(it);
  // The pipeline slot itself stays occupied (the pull already started),
  // matching kubelet behaviour on scale-down races.
}

Seconds Deployment::batch_completion_time(int n) const {
  if (n <= 0) return 0.0;
  return model_.base + model_.per_extra * static_cast<double>(n - 1);
}

}  // namespace graf::sim
