#include "sim/deployment.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace graf::sim {

Deployment::Deployment(EventQueue& events, CreationModel model)
    : events_{events}, model_{model} {
  if (model.nodes <= 0) throw std::invalid_argument{"Deployment: need >= 1 node"};
  nodes_.resize(static_cast<std::size_t>(model.nodes));
}

std::uint64_t Deployment::request_creation(std::function<void()> on_ready,
                                           std::function<void()> on_fail) {
  const Seconds now = events_.now();
  // Place on the least-backlogged node's pipeline.
  std::size_t best = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].last_ready < nodes_[best].last_ready) best = i;
  }
  Node& node = nodes_[best];
  Seconds ready;
  if (node.pending == 0 && node.last_ready <= now) {
    ready = now + model_.base;
  } else {
    // Node busy (or a creation completed "just now" this instant):
    // serialize behind the most recent completion slot.
    ready = std::max(node.last_ready, now) + model_.per_extra;
  }
  ready += fault_.extra_delay;  // injected slow-pull latency
  node.last_ready = ready;
  ++node.pending;
  const std::uint64_t ticket = next_ticket_++;
  // Fault shape is captured at request time: pulls that started before an
  // outage clears still fail, pulls requested after it clears succeed.
  const bool fails = fault_.fail;
  pending_.emplace(ticket,
                   PendingCreation{std::move(on_ready), std::move(on_fail), best});
  const Seconds fire_at = fails ? now + fault_.fail_after : ready;
  events_.schedule_at(fire_at, [this, ticket, fails] {
    auto it = pending_.find(ticket);
    if (it == pending_.end()) return;  // cancelled
    PendingCreation pc = std::move(it->second);
    pending_.erase(it);
    if (nodes_[pc.node].pending > 0) --nodes_[pc.node].pending;
    if (fails) {
      ++failures_;
      // The doomed pull still burned its pipeline slot (last_ready stays
      // advanced), matching kubelet backoff behaviour under registry outages.
      if (pc.on_fail) pc.on_fail();
    } else {
      pc.on_ready();
    }
  });
  return ticket;
}

void Deployment::cancel(std::uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  const std::size_t node_idx = it->second.node;
  if (nodes_[node_idx].pending > 0) --nodes_[node_idx].pending;
  pending_.erase(it);
  // The pipeline slot itself stays occupied (the pull already started),
  // matching kubelet behaviour on scale-down races.
}

Seconds Deployment::batch_completion_time(int n) const {
  if (n <= 0) return 0.0;
  return model_.base + model_.per_extra * static_cast<double>(n - 1);
}

}  // namespace graf::sim
