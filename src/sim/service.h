// A microservice: a replica set of Instances behind an admission queue.
//
// Dispatch is least-outstanding-requests across ready instances, with a
// per-instance concurrency cap (worker-pool size); overflow waits FIFO.
// Horizontal scaling goes through the Deployment pipeline (startup
// latency); scale-down retires instances gracefully (they drain resident
// jobs but accept no new work), like Kubernetes pod termination.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/deployment.h"
#include "sim/event_queue.h"
#include "sim/instance.h"

namespace graf::sim {

struct ServiceConfig {
  std::string name;
  Millicores unit_quota = 500.0;  ///< per-instance CPU quota (Eq. 7's unit)
  int initial_instances = 1;
  int max_instances = 1000;
  int max_concurrency = 8;        ///< worker pool size per instance
  double demand_mean_ms = 20.0;   ///< default core-ms of CPU per visit
  double demand_sigma = 0.35;     ///< lognormal shape of per-visit demand
  /// Queued work older than this is dropped (client/request timeout, like
  /// Vegeta's default). Caps queue backlog during overload.
  Seconds queue_timeout = 30.0;
  /// Kubernetes resource *request* as a fraction of the limit (the quota).
  /// Instances may burst to the full quota, but HPA utilization is measured
  /// against the request — which is how real HPAs see >100% utilization and
  /// ramp fast under saturation.
  double request_factor = 0.5;
  /// Failed instance creations (fault-injected registry outages) are retried
  /// up to this many times with bounded exponential backoff, like a
  /// ReplicaSet controller re-reconciling after pod-start failures.
  int creation_max_retries = 3;
  Seconds creation_retry_backoff = 1.0;
  Seconds creation_retry_backoff_cap = 30.0;
};

/// What happens to a crashed instance's in-flight jobs.
enum class CrashMode {
  kAbort,    ///< jobs die with the pod; each request's failure path fires
  kRequeue,  ///< jobs re-enter the admission queue with remaining work kept
};

class Service {
 public:
  Service(int id, ServiceConfig cfg, EventQueue& events, Deployment& deployment);

  int id() const { return id_; }
  const std::string& name() const { return cfg_.name; }
  const ServiceConfig& config() const { return cfg_; }

  /// Admit a job of `work_core_ms` CPU-milliseconds; `on_done` receives the
  /// local latency in ms (queue wait + processing, children excluded). If
  /// the job times out in the queue — past the service's queue timeout or
  /// past the absolute `deadline` (the client's end-to-end timeout) —
  /// `on_drop` fires instead (when given).
  void submit(double work_core_ms, std::function<void(double latency_ms)> on_done,
              std::function<void()> on_drop = {},
              Seconds deadline = std::numeric_limits<double>::infinity());

  /// Scale the replica set to `target` instances (ready + creating).
  /// Scale-ups pay the Deployment's startup latency; scale-downs first
  /// cancel pending creations, then retire ready instances.
  void scale_to(int target);

  /// Create `n` instances ready immediately (cluster bootstrap only).
  void bootstrap(int n);

  /// Scale to `target` replicas bypassing the deployment pipeline
  /// (experiment setup / sample collection, where the paper waits out the
  /// deployment between samples anyway). Pending creations are cancelled.
  void force_scale(int target);

  /// Vertical scaling: change every instance's quota (and future ones').
  void set_unit_quota(Millicores mc);
  Millicores unit_quota() const { return cfg_.unit_quota; }

  // -- fault injection -----------------------------------------------------

  /// Kill one ready instance (chosen by `pick % ready_count()` so the
  /// injector's pre-drawn random stays valid whatever the current replica
  /// count). In-flight jobs abort or re-queue per `mode`; the replica set
  /// self-heals by requesting replacements up to target_count().
  void crash_one(std::uint64_t pick, CrashMode mode);

  /// Node-level CPU throttle applied to every current and future instance
  /// (factor in (0, 1]; 1.0 restores full speed). Invisible to the
  /// utilization denominator, like a cgroup squeeze under node pressure.
  void set_cpu_throttle(double factor);
  double cpu_throttle() const { return cpu_throttle_; }

  int ready_count() const;
  int creating_count() const { return static_cast<int>(creations_.size()); }
  int retiring_count() const { return static_cast<int>(retiring_.size()); }
  /// ready + creating: what an operator "asked for".
  int target_count() const { return target_; }
  /// Total CPU quota across ready instances (millicores).
  Millicores total_quota() const;
  /// Quota still held by retiring (draining) instances. Utilization must be
  /// measured against ready + retiring quota, since drain_cpu_core_seconds()
  /// includes retiring instances' usage.
  Millicores retiring_quota() const;

  std::size_t queue_length() const { return queue_.size(); }
  std::size_t active_jobs() const;

  // -- metrics -------------------------------------------------------------

  /// Core-seconds consumed since the last drain (all instances, incl.
  /// retiring ones — they still burn CPU while draining).
  double drain_cpu_core_seconds();

  /// Drop queued and resident work without completing it; retiring
  /// instances (now drained) are reaped. Counters are left untouched.
  void abort_all();

  /// Cumulative admission / completion / queue-timeout counters.
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t drops() const { return drops_; }
  /// Instance creations ever requested through the deployment pipeline
  /// (telemetry's `sim.instance_creations`; cancelled ones still count —
  /// the pipeline slot was consumed either way).
  std::uint64_t creations_started() const { return creations_started_; }
  /// Fault-path counters (cumulative).
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t aborted_jobs() const { return aborted_jobs_; }
  std::uint64_t requeued_jobs() const { return requeued_jobs_; }
  std::uint64_t creation_failures() const { return creation_failures_; }
  std::uint64_t creation_retries() const { return creation_retries_; }

 private:
  struct Pending {
    double work_core_ms;
    Seconds enqueued;
    Seconds deadline;
    std::function<void(double)> on_done;
    std::function<void()> on_drop;
    /// Crash-requeued jobs carry the original instance-level completion
    /// wrapper (which captured the original admit time); when set, pump
    /// dispatches it directly instead of re-wrapping through start_job —
    /// otherwise completions_ and latency would double-count.
    std::function<void()> resume_done;
  };

  Instance* pick_instance();
  void pump();
  void start_job(Instance& inst, double work_core_ms, Seconds admitted,
                 std::function<void(double)> on_done,
                 std::function<void()> on_abort = {});
  void reap_retired();
  void request_one_creation(int attempt = 0);
  void on_creation_ready(std::uint64_t ticket);
  void on_creation_failed(std::uint64_t ticket, int attempt);

  int id_;
  ServiceConfig cfg_;
  EventQueue& events_;
  Deployment& deployment_;
  int target_ = 0;
  std::uint64_t next_instance_id_ = 1;
  double cpu_throttle_ = 1.0;  // fault-injected, applied to all instances
  std::vector<std::unique_ptr<Instance>> instances_;  // ready, serving
  std::vector<std::unique_ptr<Instance>> retiring_;   // draining
  std::vector<std::uint64_t> creations_;              // deployment tickets
  std::deque<Pending> queue_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t creations_started_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t aborted_jobs_ = 0;
  std::uint64_t requeued_jobs_ = 0;
  std::uint64_t creation_failures_ = 0;
  std::uint64_t creation_retries_ = 0;
};

}  // namespace graf::sim
