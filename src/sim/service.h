// A microservice: a replica set of Instances behind an admission queue.
//
// Dispatch is least-outstanding-requests across ready instances, with a
// per-instance concurrency cap (worker-pool size); overflow waits FIFO.
// Horizontal scaling goes through the Deployment pipeline (startup
// latency); scale-down retires instances gracefully (they drain resident
// jobs but accept no new work), like Kubernetes pod termination.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/deployment.h"
#include "sim/event_queue.h"
#include "sim/instance.h"

namespace graf::sim {

struct ServiceConfig {
  std::string name;
  Millicores unit_quota = 500.0;  ///< per-instance CPU quota (Eq. 7's unit)
  int initial_instances = 1;
  int max_instances = 1000;
  int max_concurrency = 8;        ///< worker pool size per instance
  double demand_mean_ms = 20.0;   ///< default core-ms of CPU per visit
  double demand_sigma = 0.35;     ///< lognormal shape of per-visit demand
  /// Queued work older than this is dropped (client/request timeout, like
  /// Vegeta's default). Caps queue backlog during overload.
  Seconds queue_timeout = 30.0;
  /// Kubernetes resource *request* as a fraction of the limit (the quota).
  /// Instances may burst to the full quota, but HPA utilization is measured
  /// against the request — which is how real HPAs see >100% utilization and
  /// ramp fast under saturation.
  double request_factor = 0.5;
};

class Service {
 public:
  Service(int id, ServiceConfig cfg, EventQueue& events, Deployment& deployment);

  int id() const { return id_; }
  const std::string& name() const { return cfg_.name; }
  const ServiceConfig& config() const { return cfg_; }

  /// Admit a job of `work_core_ms` CPU-milliseconds; `on_done` receives the
  /// local latency in ms (queue wait + processing, children excluded). If
  /// the job times out in the queue — past the service's queue timeout or
  /// past the absolute `deadline` (the client's end-to-end timeout) —
  /// `on_drop` fires instead (when given).
  void submit(double work_core_ms, std::function<void(double latency_ms)> on_done,
              std::function<void()> on_drop = {},
              Seconds deadline = std::numeric_limits<double>::infinity());

  /// Scale the replica set to `target` instances (ready + creating).
  /// Scale-ups pay the Deployment's startup latency; scale-downs first
  /// cancel pending creations, then retire ready instances.
  void scale_to(int target);

  /// Create `n` instances ready immediately (cluster bootstrap only).
  void bootstrap(int n);

  /// Scale to `target` replicas bypassing the deployment pipeline
  /// (experiment setup / sample collection, where the paper waits out the
  /// deployment between samples anyway). Pending creations are cancelled.
  void force_scale(int target);

  /// Vertical scaling: change every instance's quota (and future ones').
  void set_unit_quota(Millicores mc);
  Millicores unit_quota() const { return cfg_.unit_quota; }

  int ready_count() const;
  int creating_count() const { return static_cast<int>(creations_.size()); }
  int retiring_count() const { return static_cast<int>(retiring_.size()); }
  /// ready + creating: what an operator "asked for".
  int target_count() const { return target_; }
  /// Total CPU quota across ready instances (millicores).
  Millicores total_quota() const;

  std::size_t queue_length() const { return queue_.size(); }
  std::size_t active_jobs() const;

  // -- metrics -------------------------------------------------------------

  /// Core-seconds consumed since the last drain (all instances, incl.
  /// retiring ones — they still burn CPU while draining).
  double drain_cpu_core_seconds();

  /// Drop queued and resident work without completing it; retiring
  /// instances (now drained) are reaped. Counters are left untouched.
  void abort_all();

  /// Cumulative admission / completion / queue-timeout counters.
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t drops() const { return drops_; }
  /// Instance creations ever requested through the deployment pipeline
  /// (telemetry's `sim.instance_creations`; cancelled ones still count —
  /// the pipeline slot was consumed either way).
  std::uint64_t creations_started() const { return creations_started_; }

 private:
  struct Pending {
    double work_core_ms;
    Seconds enqueued;
    Seconds deadline;
    std::function<void(double)> on_done;
    std::function<void()> on_drop;
  };

  Instance* pick_instance();
  void pump();
  void start_job(Instance& inst, double work_core_ms, Seconds admitted,
                 std::function<void(double)> on_done);
  void reap_retired();
  void request_one_creation();

  int id_;
  ServiceConfig cfg_;
  EventQueue& events_;
  Deployment& deployment_;
  int target_ = 0;
  std::uint64_t next_instance_id_ = 1;
  std::vector<std::unique_ptr<Instance>> instances_;  // ready, serving
  std::vector<std::unique_ptr<Instance>> retiring_;   // draining
  std::vector<std::uint64_t> creations_;              // deployment tickets
  std::deque<Pending> queue_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t creations_started_ = 0;
};

}  // namespace graf::sim
