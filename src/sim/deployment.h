// Instance-creation pipeline, modeling container startup latency.
//
// The paper's Fig. 1 measures 5.5 s to create one instance and
// 8.7/12.5/23.6/45.6 s for batches of 2/4/8/16 created at once: creations
// contend, completing staggered. We model a cluster-wide pipeline where the
// first creation of an idle pipeline becomes ready after `base` seconds and
// each creation queued behind another becomes ready `per_extra` seconds
// after its predecessor; a batch of n then takes base + per_extra*(n-1),
// which fits the measured series within ~7%. This startup delay is the
// root cause of the cascading effect (§2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace graf::sim {

struct CreationModel {
  Seconds base = 5.5;       ///< lone-instance startup time (Fig. 1)
  Seconds per_extra = 2.67; ///< extra serialization per queued creation
  /// Worker nodes creating instances in parallel. The Fig. 1 contention was
  /// measured on a single node; the paper's cluster has 6 workers, so
  /// cluster-wide creations spread across 6 independent pipelines.
  int nodes = 6;
};

/// Fault-injection shape for the creation pipeline (chaos: registry outage,
/// image-pull failure, kubelet pressure). Applied to creations *requested*
/// while a fault window is active — matching real outages, where pulls that
/// started before the outage usually finish.
struct CreationFault {
  /// When true, affected creations never become ready: after `fail_after`
  /// seconds the requester's failure callback fires instead.
  bool fail = false;
  Seconds fail_after = 10.0;
  /// Extra startup latency added on top of the pipeline model (slow pulls).
  Seconds extra_delay = 0.0;
};

class Deployment {
 public:
  Deployment(EventQueue& events, CreationModel model);

  /// Request one instance creation; `on_ready` fires when it becomes ready.
  /// `on_fail` (optional) fires instead if the creation fails under an
  /// injected fault; a ticket that failed will never fire `on_ready`.
  /// Returns a ticket usable with cancel().
  std::uint64_t request_creation(std::function<void()> on_ready,
                                 std::function<void()> on_fail = {});

  /// Cancel a pending creation. No-op when already completed. (The
  /// cancelled slot still occupies the pipeline — matching kubelet, which
  /// has already begun the pull when a scale-down arrives.)
  void cancel(std::uint64_t ticket);

  /// Fault injection: creations requested from now on are shaped by
  /// `fault` until clear_creation_fault() is called.
  void set_creation_fault(CreationFault fault) { fault_ = fault; }
  void clear_creation_fault() { fault_ = CreationFault{}; }
  const CreationFault& creation_fault() const { return fault_; }

  std::size_t in_flight() const { return pending_.size(); }
  /// Creations that fired their failure callback (lifetime total).
  std::uint64_t failures() const { return failures_; }

  /// Fig. 1 closed form: time for a batch of n requested at once *on one
  /// node* (how the paper measured it).
  Seconds batch_completion_time(int n) const;

 private:
  struct Node {
    Seconds last_ready = -1.0;
    std::size_t pending = 0;
  };
  struct PendingCreation {
    std::function<void()> on_ready;
    std::function<void()> on_fail;
    std::size_t node;
  };

  EventQueue& events_;
  CreationModel model_;
  std::vector<Node> nodes_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t failures_ = 0;
  CreationFault fault_;
  std::unordered_map<std::uint64_t, PendingCreation> pending_;
};

}  // namespace graf::sim
