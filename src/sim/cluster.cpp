#include "sim/cluster.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace graf::sim {

CallNode make_chain(const std::vector<int>& services) {
  if (services.empty()) throw std::invalid_argument{"make_chain: empty"};
  CallNode root{.service = services.front()};
  CallNode* tail = &root;
  for (std::size_t i = 1; i < services.size(); ++i) {
    tail->stages.push_back({CallNode{.service = services[i]}});
    tail = &tail->stages.back().front();
  }
  return root;
}

Cluster::Cluster(std::vector<ServiceConfig> service_cfgs, std::vector<Api> apis,
                 ClusterConfig cfg)
    : cfg_{cfg}, rng_{cfg.seed}, deployment_{events_, cfg.creation},
      apis_{std::move(apis)},
      tracer_{apis_.size(), service_cfgs.size(), cfg.trace_capacity},
      e2e_all_{cfg.latency_horizon} {
  if (service_cfgs.empty()) throw std::invalid_argument{"Cluster: no services"};
  if (apis_.empty()) throw std::invalid_argument{"Cluster: no APIs"};
  services_.reserve(service_cfgs.size());
  for (std::size_t i = 0; i < service_cfgs.size(); ++i) {
    services_.push_back(std::make_unique<Service>(static_cast<int>(i),
                                                  std::move(service_cfgs[i]), events_,
                                                  deployment_));
    local_latency_.emplace_back(cfg.latency_horizon);
    series_.emplace_back();
    last_arrivals_.push_back(0);
  }
  for (std::size_t a = 0; a < apis_.size(); ++a) {
    e2e_latency_.emplace_back(cfg.latency_horizon);
    api_arrivals_.emplace_back(cfg.latency_horizon);
    validate_api(apis_[a].root);
  }
  events_.schedule_in(cfg_.metrics_interval, [this] { metrics_tick(); });
}

void Cluster::validate_api(const CallNode& node) const {
  if (node.service < 0 || static_cast<std::size_t>(node.service) >= services_.size())
    throw std::invalid_argument{"Cluster: API references unknown service"};
  if (node.probability <= 0.0 || node.probability > 1.0)
    throw std::invalid_argument{"Cluster: call probability must be in (0,1]"};
  for (const auto& stage : node.stages)
    for (const auto& child : stage) validate_api(child);
}

int Cluster::service_index(const std::string& name) const {
  for (std::size_t i = 0; i < services_.size(); ++i)
    if (services_[i]->name() == name) return static_cast<int>(i);
  return -1;
}

int Cluster::api_index(const std::string& name) const {
  for (std::size_t i = 0; i < apis_.size(); ++i)
    if (apis_[i].name == name) return static_cast<int>(i);
  return -1;
}

void Cluster::set_metrics(telemetry::MetricsRegistry* registry) {
  telemetry_ = registry;
  svc_tel_.clear();
  e2e_api_hist_.clear();
  e2e_hist_ = nullptr;
  tel_submitted_ = tel_completed_ = tel_failed_ = nullptr;
  events_.set_pop_timer(nullptr);
  if (registry == nullptr) return;

  telemetry::MetricsRegistry& reg = *registry;
  events_.set_pop_timer(&reg.histogram("sim.event_us"));
  tel_submitted_ = &reg.counter("sim.requests_submitted");
  tel_completed_ = &reg.counter("sim.requests_completed");
  tel_failed_ = &reg.counter("sim.requests_failed");
  e2e_hist_ = &reg.histogram("sim.e2e_latency_ms");
  for (const Api& api : apis_)
    e2e_api_hist_.push_back(
        &reg.histogram("sim.e2e_latency_ms", {{"api", api.name}}));
  svc_tel_.resize(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s) {
    const telemetry::Labels labels{{"service", services_[s]->name()}};
    ServiceTelemetry& t = svc_tel_[s];
    t.queue_depth = &reg.gauge("sim.queue_depth", labels);
    t.utilization = &reg.gauge("sim.utilization", labels);
    t.ready = &reg.gauge("sim.ready_instances", labels);
    t.creating = &reg.gauge("sim.creating_instances", labels);
    t.qps = &reg.gauge("sim.qps", labels);
    t.creations = &reg.counter("sim.instance_creations", labels);
    t.drops = &reg.counter("sim.queue_drops", labels);
    t.creation_failures = &reg.counter("sim.creation_failures", labels);
    t.creation_retries = &reg.counter("sim.creation_retries", labels);
    t.local_latency = &reg.histogram("sim.service_latency_ms", labels);
  }
  // Counters pick up from the cluster's cumulative totals so a registry
  // attached mid-run only reports what happens from now on.
  resync_telemetry_baselines();
}

void Cluster::resync_telemetry_baselines() {
  for (std::size_t s = 0; s < svc_tel_.size(); ++s) {
    ServiceTelemetry& t = svc_tel_[s];
    t.last_creations = services_[s]->creations_started();
    t.last_drops = services_[s]->drops();
    t.last_creation_failures = services_[s]->creation_failures();
    t.last_creation_retries = services_[s]->creation_retries();
  }
}

void Cluster::set_telemetry_blackout(bool on) {
  if (blackout_ && !on) blackout_resync_ = true;  // recovered: next tick resyncs
  blackout_ = on;
}

double Cluster::sample_demand(const CallNode& node, const Service& svc) {
  const double mean = demand_scale_ *
      (node.demand_ms >= 0.0 ? node.demand_ms : svc.config().demand_mean_ms);
  const double sigma = svc.config().demand_sigma;
  if (sigma <= 0.0) return mean;
  // Mean-preserving lognormal: E[exp(N(-s^2/2, s))] = 1.
  return mean * rng_.lognormal(-0.5 * sigma * sigma, sigma);
}

void Cluster::exec_node(const std::shared_ptr<Ctx>& ctx, const CallNode& node,
                        std::function<void(bool)> done) {
  ++ctx->visits[static_cast<std::size_t>(node.service)];
  Service& svc = *services_[static_cast<std::size_t>(node.service)];
  const double work = sample_demand(node, svc);
  const int sid = node.service;
  const CallNode* np = &node;  // stable: apis_ is immutable after construction
  // The callbacks share `done`; exactly one of them fires per submission.
  auto shared_done = std::make_shared<std::function<void(bool)>>(std::move(done));
  svc.submit(
      work,
      [this, ctx, sid, np, shared_done](double local_ms) {
        if (!blackout_) {
          local_latency_[static_cast<std::size_t>(sid)].add(events_.now(), local_ms);
          if (!svc_tel_.empty())
            svc_tel_[static_cast<std::size_t>(sid)].local_latency->record(local_ms);
        }
        run_stages(ctx, np, 0, [shared_done](bool ok) { (*shared_done)(ok); });
      },
      [shared_done] { (*shared_done)(false); }, ctx->deadline);
}

void Cluster::run_stages(const std::shared_ptr<Ctx>& ctx, const CallNode* node,
                         std::size_t stage, std::function<void(bool)> done) {
  while (stage < node->stages.size()) {
    std::vector<const CallNode*> launch;
    for (const CallNode& child : node->stages[stage]) {
      if (child.probability >= 1.0 || rng_.bernoulli(child.probability))
        launch.push_back(&child);
    }
    if (launch.empty()) {
      ++stage;  // everything in this stage was probabilistically skipped
      continue;
    }
    auto remaining = std::make_shared<std::size_t>(launch.size());
    auto all_ok = std::make_shared<bool>(true);
    auto join = [this, ctx, node, stage, remaining, all_ok,
                 done = std::move(done)](bool ok) mutable {
      *all_ok = *all_ok && ok;
      if (--*remaining == 0) {
        if (*all_ok) {
          run_stages(ctx, node, stage + 1, std::move(done));
        } else {
          done(false);
        }
      }
    };
    for (const CallNode* child : launch) exec_node(ctx, *child, join);
    return;
  }
  done(true);
}

void Cluster::submit_request(int api, CompletionFn on_complete) {
  if (api < 0 || static_cast<std::size_t>(api) >= apis_.size())
    throw std::out_of_range{"Cluster::submit_request: bad api"};
  auto ctx = std::make_shared<Ctx>(Ctx{api, events_.now(),
                                       events_.now() + cfg_.request_timeout,
                                       std::vector<std::uint32_t>(services_.size(), 0),
                                       std::move(on_complete)});
  ++submitted_;
  ++inflight_;
  // Everything below the ground-truth counters is observability-plane:
  // a telemetry blackout starves it, while the cluster itself keeps serving.
  if (!blackout_) {
    if (tel_submitted_ != nullptr) tel_submitted_->add();
    api_arrivals_[static_cast<std::size_t>(api)].add(events_.now(), 1.0);
  }
  exec_node(ctx, apis_[static_cast<std::size_t>(api)].root, [this, ctx](bool ok) {
    // A response that arrives after the client timeout is a failure too.
    ok = ok && events_.now() <= ctx->deadline;
    trace::RequestTrace t{ctx->api, ctx->start, events_.now(), ok,
                          std::move(ctx->visits)};
    if (inflight_ > 0) --inflight_;
    if (ok) {
      // Exact e2e windows are the experiments' ground truth — they see
      // through blackouts (the harness measures reality, not Prometheus).
      e2e_all_.add(events_.now(), t.e2e_ms());
      e2e_latency_[static_cast<std::size_t>(ctx->api)].add(events_.now(), t.e2e_ms());
      ++completed_;
      if (e2e_hist_ != nullptr && !blackout_) {
        e2e_hist_->record(t.e2e_ms());
        e2e_api_hist_[static_cast<std::size_t>(ctx->api)]->record(t.e2e_ms());
        tel_completed_->add();
      }
    } else {
      ++failed_;
      if (tel_failed_ != nullptr && !blackout_) tel_failed_->add();
    }
    if (ctx->on_complete) ctx->on_complete(t);
    // Only complete executions inform the workload analyzer's fan-out.
    if (ok && !blackout_) tracer_.record(std::move(t));
  });
}

void Cluster::metrics_tick() {
  const Seconds now = events_.now();
  const double dt = cfg_.metrics_interval;
  if (blackout_) {
    // Scrape lost: publish nothing, keep the ticker alive. Deltas and CPU
    // usage accumulate in the services until the resync tick below.
    events_.schedule_in(dt, [this] { metrics_tick(); });
    return;
  }
  if (blackout_resync_) {
    // First tick after a blackout: the accumulated interval would otherwise
    // be misattributed to one dt-sized sample (a huge fake spike). Discard
    // the dark interval's usage and counter deltas; fresh points resume on
    // the next tick.
    blackout_resync_ = false;
    for (std::size_t s = 0; s < services_.size(); ++s) {
      services_[s]->drain_cpu_core_seconds();
      last_arrivals_[s] = services_[s]->arrivals();
    }
    resync_telemetry_baselines();
    events_.schedule_in(dt, [this] { metrics_tick(); });
    return;
  }
  for (std::size_t s = 0; s < services_.size(); ++s) {
    Service& svc = *services_[s];
    ServicePoint p;
    p.time = now;
    p.qps = static_cast<double>(svc.arrivals() - last_arrivals_[s]) / dt;
    last_arrivals_[s] = svc.arrivals();
    p.cpu_cores = svc.drain_cpu_core_seconds() / dt;
    // Utilization against the Kubernetes *request* (limit * request_factor):
    // bursting instances report >100%, exactly as cAdvisor/HPA see it. The
    // denominator must cover every pod that can appear in the numerator —
    // retiring (terminating-but-draining) pods still burn CPU, and cAdvisor
    // still scrapes them, so their requests count too. Excluding them made
    // utilization spike past ready capacity during scale-downs and tricked
    // the HPA into immediate re-upscale.
    const double requested =
        cores(svc.total_quota() + svc.retiring_quota()) * svc.config().request_factor;
    p.utilization = requested > 0.0 ? p.cpu_cores / requested : 0.0;
    p.ready = svc.ready_count();
    p.creating = svc.creating_count();
    p.queue_len = svc.queue_length();
    auto& ring = series_[s];
    ring.push_back(p);
    if (ring.size() > cfg_.series_capacity) ring.pop_front();
    if (!svc_tel_.empty()) {
      ServiceTelemetry& t = svc_tel_[s];
      t.queue_depth->set(static_cast<double>(p.queue_len));
      t.utilization->set(p.utilization);
      t.ready->set(static_cast<double>(p.ready));
      t.creating->set(static_cast<double>(p.creating));
      t.qps->set(p.qps);
      t.creations->add(
          static_cast<double>(svc.creations_started() - t.last_creations));
      t.last_creations = svc.creations_started();
      t.drops->add(static_cast<double>(svc.drops() - t.last_drops));
      t.last_drops = svc.drops();
      t.creation_failures->add(
          static_cast<double>(svc.creation_failures() - t.last_creation_failures));
      t.last_creation_failures = svc.creation_failures();
      t.creation_retries->add(
          static_cast<double>(svc.creation_retries() - t.last_creation_retries));
      t.last_creation_retries = svc.creation_retries();
    }
  }
  events_.schedule_in(dt, [this] { metrics_tick(); });
}

double Cluster::utilization_avg(int s, Seconds horizon) const {
  const auto& ring = series_.at(static_cast<std::size_t>(s));
  const Seconds since = events_.now() - horizon;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = ring.rbegin(); it != ring.rend() && it->time >= since; ++it) {
    sum += it->utilization;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Cluster::qps_avg(int s, Seconds horizon) const {
  const auto& ring = series_.at(static_cast<std::size_t>(s));
  const Seconds since = events_.now() - horizon;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = ring.rbegin(); it != ring.rend() && it->time >= since; ++it) {
    sum += it->qps;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::size_t Cluster::series_count_since(int s, Seconds horizon) const {
  const auto& ring = series_.at(static_cast<std::size_t>(s));
  const Seconds since = events_.now() - horizon;
  std::size_t n = 0;
  for (auto it = ring.rbegin(); it != ring.rend() && it->time >= since; ++it) ++n;
  return n;
}

int Cluster::total_ready_instances() const {
  int n = 0;
  for (const auto& s : services_) n += s->ready_count();
  return n;
}

int Cluster::total_target_instances() const {
  int n = 0;
  for (const auto& s : services_) n += s->ready_count() + s->creating_count();
  return n;
}

Millicores Cluster::total_quota() const {
  Millicores q = 0.0;
  for (const auto& s : services_) q += s->total_quota();
  return q;
}

Qps Cluster::api_qps(int api, Seconds window) const {
  if (window <= 0.0) throw std::invalid_argument{"api_qps: window must be > 0"};
  const auto& w = api_arrivals_.at(static_cast<std::size_t>(api));
  return static_cast<double>(w.count_since(events_.now() - window)) / window;
}

void Cluster::apply_total_quota(int s, Millicores total, Millicores max_per_instance) {
  if (total <= 0.0 || max_per_instance <= 0.0)
    throw std::invalid_argument{"apply_total_quota: quotas must be > 0"};
  Service& svc = service(s);
  const int n = std::max(1, static_cast<int>(std::ceil(total / max_per_instance)));
  svc.force_scale(n);
  svc.set_unit_quota(total / static_cast<double>(n));
}

void Cluster::hard_reset_load() {
  for (auto& s : services_) s->abort_all();
  inflight_ = 0;
}

void Cluster::clear_windows() {
  for (auto& w : local_latency_) w.clear();
  for (auto& w : e2e_latency_) w.clear();
  for (auto& w : api_arrivals_) w.clear();
  e2e_all_.clear();
  tracer_.clear();
}

void Cluster::clear_series() {
  for (auto& s : series_) s.clear();
}

}  // namespace graf::sim
