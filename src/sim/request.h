// Per-API execution structure.
//
// An API is a call tree over microservices: a node performs local CPU work
// at its service and then executes its child stages *sequentially*, with
// the calls inside one stage issued *in parallel* (paper §2.2 — e.g.
// Bookinfo's ProductPage calls Details and Reviews in parallel, so
// end-to-end latency takes the max of the branches). A node may carry a
// probability < 1 to model conditional calls, which is why the workload
// analyzer works from traced fan-out percentiles rather than constants.
#pragma once

#include <string>
#include <vector>

namespace graf::sim {

struct CallNode {
  int service = -1;
  /// Mean core-ms of local CPU work; negative = use the service default.
  double demand_ms = -1.0;
  /// Chance this call is made at all (conditional branches).
  double probability = 1.0;
  /// Sequential stages; each stage's calls run in parallel.
  std::vector<std::vector<CallNode>> stages;
};

struct Api {
  std::string name;
  CallNode root;
};

/// Convenience: a chain service -> child -> grandchild ... as nested
/// single-call stages rooted at `services.front()`.
CallNode make_chain(const std::vector<int>& services);

}  // namespace graf::sim
