// One (application, SLO) tenant inside the fleet server.
//
// A tenant bundles everything PR 1-5 built for a single cluster — a
// registry-backed serving model behind a hot-swappable ServingHandle, a
// ConfigurationSolver + WorkloadAnalyzer + ResourceController pipeline with
// its own plan cache, an optional drift-triggered OnlineTrainer — plus the
// fleet bookkeeping that makes many of them coexist on one daemon: a
// pending-telemetry slot the ingest path fills, a plan slot the parallel
// fan-out writes, per-tenant hysteresis / signal-loss state, and a private
// MetricsRegistry so worker threads never race on shared instruments
// (DESIGN.md §3.7: shared instruments are coordinator-only; the fleet
// server merges per-tenant registries into one snapshot).
//
// Tenants are addressed by TenantId, a (slot, generation) handle: slots
// live in a stable vector that never rehashes, and removing a tenant bumps
// the slot's generation so a stale id can never dereference a recycled
// tenant — the "dangling pointers into rehashed maps" bug class the
// exemplar's post-mortem warns about is unrepresentable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/configuration_solver.h"
#include "core/resource_controller.h"
#include "core/tiered_planner.h"
#include "core/workload_analyzer.h"
#include "forecast/gate.h"
#include "gnn/latency_model.h"
#include "serve/forecast_store.h"
#include "serve/model_registry.h"
#include "serve/online_trainer.h"
#include "serve/serving_handle.h"
#include "telemetry/metrics.h"

namespace graf::fleet {

/// Stable tenant handle: a slot index plus the slot's generation at issue
/// time. Slots are recycled after remove_tenant(); the generation mismatch
/// makes every copy of the old id inert instead of dangling.
struct TenantId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;

  bool operator==(const TenantId&) const = default;
};

/// One telemetry push from an ingest thread: the tenant's observed per-API
/// front-end rates at simulation/telemetry time `now`, plus optional live
/// (workload, quota, latency) observations for the tenant's online trainer.
struct TelemetryUpdate {
  TenantId tenant;
  Seconds now = 0.0;
  std::vector<Qps> api_qps;
  gnn::Dataset samples;
};

/// Everything needed to admit a tenant. `model` is published (deep copy)
/// into the fleet's shared ModelRegistry as version 1 under
/// (application, slo_ms) and promoted; the spec keeps no ownership.
struct TenantSpec {
  std::string application;
  double slo_ms = 200.0;
  /// Trained latency model for this tenant's topology (required).
  gnn::LatencyModel* model = nullptr;
  /// Checkpoint metadata stored with the published v1.
  serve::CheckpointMeta meta;
  /// Algorithm-1 per-service bounds and Eq.-7 instance units.
  std::vector<Millicores> lo;
  std::vector<Millicores> hi;
  std::vector<Millicores> unit;
  /// Optional per-service replica caps (empty = uncapped).
  std::vector<int> max_instances;
  /// Fan-out matrix [api][service] for the workload analyzer.
  std::vector<std::vector<double>> fanout;
  /// Optional training-region reference for §3.6 workload rescaling.
  gnn::Dataset training_reference;
  /// Relative per-API workload change that triggers a re-solve; smaller
  /// deltas coast on the current plan (GrafController's hysteresis band).
  double change_threshold = 0.10;
  /// Per-tenant plan-cache capacity (LRU entries; 0 disables caching) —
  /// small tenants can run lean while hot tenants keep a deep cache.
  std::size_t plan_cache_capacity = 64;
  core::SolverConfig solver;
  /// Two-tier surrogate planning (off by default, DESIGN.md §3.14): at
  /// admission the tenant distills its model into a fast surrogate and
  /// routes every solve through a TieredPlanner — surrogate multi-start
  /// descent, one full-GNN verification, escalation on trust-band misses.
  /// Fingerprint-equal surrogate tenants share stacked fleet batches.
  core::TieredSpec surrogate;
  /// Forecast mode (off by default): when `forecast.enabled`, the tenant
  /// plans for max(observed, predicted_at_horizon) — the pre-warm that
  /// covers the simulator's instance-creation delay. Forecaster state is
  /// per-tenant and fed only from this tenant's committed pushes, so fleet
  /// replays stay bit-identical at any thread count.
  forecast::ForecastSpec forecast;
};

class FleetServer;

class Tenant {
 public:
  /// Publishes spec.model into `registry` under (application, slo_ms),
  /// promotes it, and attaches this tenant's ServingHandle. Throws
  /// std::invalid_argument on a null model or bound dimension mismatch.
  Tenant(TenantId id, const TenantSpec& spec, serve::ModelRegistry& registry);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  TenantId id() const { return id_; }
  const serve::ModelKey& key() const { return key_; }
  const std::string& application() const { return key_.application; }
  double slo_ms() const { return slo_ms_; }
  /// Retarget the SLO; the next update re-solves regardless of hysteresis.
  /// (The registry key — the serving-model identity — is fixed at admission.)
  void set_slo(double slo_ms);

  serve::ServingHandle& handle() { return handle_; }
  core::ResourceController& controller() { return *controller_; }
  /// The tenant's two-tier planner (nullptr unless TenantSpec.surrogate
  /// was enabled at admission). Fleet-local: no serving handle/registry is
  /// attached, so refreshes stay inside the tenant and the coordinator's
  /// grouping (surrogate_fingerprint) sees every generation bump.
  core::TieredPlanner* tiered_planner() { return tiered_.get(); }

  /// Per-tenant metrics (plan cache, solver, degraded-mode counters). The
  /// fleet server merges these into its snapshot; workers touch only their
  /// own tenant's instruments during the fan-out (DESIGN.md §3.7).
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  /// Attach the drift -> fine-tune -> validate -> promote loop to this
  /// tenant. Samples arriving in TelemetryUpdate::samples feed it; a
  /// promotion hot-swaps the handle and the next plan() solves through the
  /// new model. Replaces any previous trainer.
  void enable_online_training(const serve::OnlineTrainerConfig& cfg);
  serve::OnlineTrainer* trainer() { return trainer_.get(); }

  /// The live forecast gate (nullptr unless TenantSpec.forecast.enabled);
  /// tests and the fleet snapshot read its prewarm/fallback counters.
  forecast::ForecastGate* forecast_gate() { return gate_.get(); }
  /// Hot-swap slot for a ForecastRegistry promote/rollback. A caller that
  /// attaches this handle to a registry must detach it before the tenant is
  /// removed (same lifetime rule as the serving handle).
  serve::ForecastHandle& forecast_handle() { return forecast_handle_; }

  // -- plan state (written by the fleet server's step loop) ------------------
  const core::AllocationPlan& last_plan() const { return last_plan_; }
  bool has_plan() const { return has_plan_; }
  /// Coasting on a stale plan: degraded solve, a thrown plan, or a workload
  /// signal that vanished mid-run. Clears on the next clean solve.
  bool degraded() const { return degraded_; }
  std::uint64_t plans() const { return plans_; }
  std::uint64_t plan_changes() const { return plan_changes_; }
  /// Plan computations that threw (swallowed; siblings unaffected).
  std::uint64_t failures() const { return failures_; }
  /// Ticks whose workload signal read zero (telemetry blackout).
  std::uint64_t signal_losses() const { return signal_losses_; }
  /// Monotonic per-tenant sequence, bumped on every notified plan change.
  std::uint64_t seq() const { return seq_; }

 private:
  friend class FleetServer;

  /// Outcome of one fan-out slot computation (worker thread).
  enum class Outcome { kIdle, kPlanned, kCoasted, kSignalLost, kFailed };

  /// Consume the pending update: hysteresis check, signal-loss detection,
  /// and the actual plan() — run on a pool worker during the fan-out. Only
  /// this tenant's state is touched, so tenants compute concurrently yet
  /// each is bit-identical at any thread count. Exactly prepare() followed
  /// by solve_and_finish() when a solve is still owed — the non-batched
  /// fleet path and the per-tenant fallback.
  void compute();

  /// The front half of compute(): signal-loss, hysteresis, begin_plan. When
  /// the plan resolved without a solve (idle/coast/cache hit/degraded) the
  /// outcome is final; otherwise needs_solve_ is set and prep_ holds the
  /// prepared solve the batched fan-in (or solve_and_finish) completes.
  void prepare();
  /// Complete a prepared plan with this tenant's own solver.
  void solve_and_finish();
  /// Complete a prepared plan with an externally produced solve (the
  /// fleet's batched solve_batch result for this tenant).
  void finish_solve(core::SolverResult solved);
  /// Content fingerprint of the active model, cached per controller model
  /// generation — how the fleet decides two tenants may share a batch
  /// (registry deep copies fingerprint equal; pointer identity never
  /// groups). Coordinator-only: call between fan-outs.
  std::uint64_t model_fingerprint();
  /// Content fingerprint of the active surrogate, cached per surrogate
  /// generation — the extra grouping key surrogate-mode tenants need
  /// before sharing a stacked tier-1 descent. Coordinator-only.
  std::uint64_t surrogate_fingerprint();

  TenantId id_;
  serve::ModelKey key_;
  serve::ModelRegistry* registry_;
  double slo_ms_;
  double change_threshold_;

  telemetry::MetricsRegistry metrics_;
  serve::ServingHandle handle_;
  std::shared_ptr<gnn::LatencyModel> model_;  ///< pins the promoted v1
  std::unique_ptr<core::WorkloadAnalyzer> analyzer_;
  std::unique_ptr<core::ConfigurationSolver> solver_;
  std::unique_ptr<core::ResourceController> controller_;
  std::unique_ptr<core::TieredPlanner> tiered_;
  std::unique_ptr<serve::OnlineTrainer> trainer_;
  std::unique_ptr<forecast::ForecastGate> gate_;
  serve::ForecastHandle forecast_handle_;

  // Pending-telemetry slot: filled by the step loop's drain (coalescing
  // repeated pushes, last-wins for qps, samples appended), consumed by
  // compute(). Never touched by producers directly.
  bool pending_ = false;
  std::vector<Qps> pending_qps_;
  Seconds pending_now_ = 0.0;
  gnn::Dataset pending_samples_;
  /// The vector compute() actually planned on (forecast-adjusted when the
  /// gate is live); the commit pass copies it into last_solved_qps_.
  std::vector<Qps> planned_qps_;

  // Fan-out result slot, read back by the ordered pass.
  Outcome outcome_ = Outcome::kIdle;
  core::AllocationPlan computed_;

  // Prepared-solve slot (batched planning, DESIGN.md §3.13): prepare()
  // fills these when the plan still needs a solver run.
  core::PlanPrep prep_;
  bool needs_solve_ = false;

  // Model-fingerprint cache, keyed on the controller's model generation so
  // a hot-swap re-fingerprints and anything else reuses the cached value.
  std::uint64_t fingerprint_ = 0;
  std::uint64_t fingerprint_generation_ = 0;
  bool fingerprint_valid_ = false;

  // Surrogate-fingerprint cache, keyed on the tiered planner's surrogate
  // generation (same pattern as the model fingerprint above).
  std::uint64_t surrogate_fingerprint_ = 0;
  std::uint64_t surrogate_fp_generation_ = 0;
  bool surrogate_fp_valid_ = false;

  // Hysteresis / signal-loss state (per-tenant GrafController semantics).
  std::vector<Qps> last_solved_qps_;
  bool slo_dirty_ = true;
  bool signal_lost_ = false;

  core::AllocationPlan last_plan_;
  bool has_plan_ = false;
  bool degraded_ = false;
  std::vector<int> last_notified_instances_;
  bool last_notified_degraded_ = false;
  std::uint64_t plans_ = 0;
  std::uint64_t plan_changes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t signal_losses_ = 0;

  // Plan-cache counter baselines, so the fleet can mirror per-tenant cache
  // activity into shared fleet.plan_cache.* counters as deltas.
  std::uint64_t seen_cache_hits_ = 0;
  std::uint64_t seen_cache_misses_ = 0;
  std::uint64_t seen_cache_evictions_ = 0;

  // Per-tenant instruments (interned once at admission, coordinator-set;
  // compute() only writes this tenant's own instruments).
  telemetry::Counter* tel_plans_ = nullptr;
  telemetry::Counter* tel_changes_ = nullptr;
  telemetry::Counter* tel_failures_ = nullptr;
  telemetry::Counter* tel_signal_loss_ = nullptr;
  telemetry::Gauge* tel_degraded_ = nullptr;
};

}  // namespace graf::fleet
