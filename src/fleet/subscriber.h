// Change-only plan notification with weak subscriber tokens.
//
// The failure mode designed out here is the exemplar post-mortem's listener
// use-after-free: a registry that unlocks before invoking raw listener
// pointers races unsubscription — the callback's owner dies between unlock
// and call. Mirroring the sim::Instance liveness-token fix from PR 3, the
// registry holds only weak_ptrs to Subscription tokens; subscribe() returns
// the sole shared_ptr, so dropping the token *is* unsubscription. publish()
// locks the mutex just long enough to collect locked shared_ptrs (pruning
// expired entries), then unlocks and invokes — every invoked callback is
// pinned by a strong reference for the duration of the call, and a token
// dropped concurrently simply stops receiving after the in-flight batch.
//
// Callbacks run on the fleet server's step thread in subscription order;
// they must not call back into the FleetServer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/resource_controller.h"
#include "fleet/tenant.h"

namespace graf::fleet {

/// One allocation decision delivered to subscribers — emitted only when the
/// tenant's plan actually changed (instances vector or degraded flag), not
/// every tick.
struct PlanUpdate {
  TenantId tenant;
  std::string application;
  double slo_ms = 0.0;
  /// Per-tenant change sequence (1 for the tenant's first plan).
  std::uint64_t seq = 0;
  Seconds now = 0.0;
  core::AllocationPlan plan;
  bool degraded = false;
};

using PlanCallback = std::function<void(const PlanUpdate&)>;

/// Subscription token: the only strong reference to a registered callback.
/// Destroying it (or calling cancel()) unsubscribes; the registry prunes the
/// expired weak entry on the next publish.
class Subscription {
 public:
  explicit Subscription(PlanCallback cb, std::optional<TenantId> filter)
      : callback_{std::move(cb)}, filter_{filter} {}

  void cancel() { cancelled_ = true; }
  bool cancelled() const { return cancelled_; }

 private:
  friend class SubscriberRegistry;
  PlanCallback callback_;
  std::optional<TenantId> filter_;  ///< nullopt = all tenants
  bool cancelled_ = false;
};

using SubscriptionToken = std::shared_ptr<Subscription>;

class SubscriberRegistry {
 public:
  /// Register `cb` for every tenant's plan changes (or only `filter`'s).
  SubscriptionToken subscribe(PlanCallback cb,
                              std::optional<TenantId> filter = std::nullopt);

  /// Deliver `update` to matching live subscribers. Callbacks are invoked
  /// outside the registry lock; a throwing callback is swallowed and
  /// counted in the return value's `failed` (siblings still get notified).
  struct PublishStats {
    std::size_t delivered = 0;
    std::size_t failed = 0;
  };
  PublishStats publish(const PlanUpdate& update);

  /// Live (non-expired, non-cancelled) subscriber count; prunes as a side
  /// effect.
  std::size_t size();

 private:
  std::mutex mu_;
  std::vector<std::weak_ptr<Subscription>> subs_;
};

}  // namespace graf::fleet
