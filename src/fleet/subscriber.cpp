#include "fleet/subscriber.h"

#include <algorithm>
#include <utility>

namespace graf::fleet {

SubscriptionToken SubscriberRegistry::subscribe(PlanCallback cb,
                                                std::optional<TenantId> filter) {
  auto token = std::make_shared<Subscription>(std::move(cb), filter);
  std::lock_guard lock{mu_};
  subs_.push_back(token);
  return token;
}

SubscriberRegistry::PublishStats SubscriberRegistry::publish(
    const PlanUpdate& update) {
  // Phase 1 (locked): pin matching live subscribers, prune dead entries.
  std::vector<SubscriptionToken> pinned;
  {
    std::lock_guard lock{mu_};
    std::erase_if(subs_, [&](const std::weak_ptr<Subscription>& weak) {
      auto sub = weak.lock();
      if (!sub || sub->cancelled()) return true;  // expired/cancelled: prune
      if (!sub->filter_ || *sub->filter_ == update.tenant)
        pinned.push_back(std::move(sub));
      return false;
    });
  }
  // Phase 2 (unlocked): invoke. The strong refs in `pinned` keep every
  // callback alive through its own call even if the owner drops the token
  // concurrently — no use-after-free window.
  PublishStats stats;
  for (const auto& sub : pinned) {
    if (sub->cancelled()) continue;  // cancelled between pin and invoke
    try {
      sub->callback_(update);
      ++stats.delivered;
    } catch (...) {
      ++stats.failed;
    }
  }
  return stats;
}

std::size_t SubscriberRegistry::size() {
  std::lock_guard lock{mu_};
  std::erase_if(subs_, [](const std::weak_ptr<Subscription>& weak) {
    auto sub = weak.lock();
    return !sub || sub->cancelled();
  });
  return subs_.size();
}

}  // namespace graf::fleet
