// Bounded MPSC ring buffer decoupling telemetry producers from the fleet
// step loop (the GMA_V3 dispatcher shape cited in ROADMAP.md).
//
// Vyukov bounded-queue scheme: each cell carries a sequence atomic that
// encodes whose turn it is. Producers claim a slot with one fetch_add-style
// CAS on the tail, write the payload, then publish by storing seq = pos + 1;
// the consumer reads cells whose seq says "filled", consumes, and re-arms
// the cell for the next lap with seq = pos + capacity. No locks anywhere,
// so an ingest thread can never stall the planner (and vice versa); a full
// ring rejects the push instead of blocking — the producer's fallback is
// counted by the server as `fleet.ingest.dropped`.
//
// Multi-producer / single-consumer: push() is safe from any number of
// threads concurrently; pop()/drain() must be called from one thread at a
// time (the fleet server's step loop — its single-writer coordinator).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "fleet/tenant.h"

namespace graf::fleet {

class IngestQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit IngestQueue(std::size_t capacity);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueue; returns false when the ring is full (never blocks).
  bool push(TelemetryUpdate update);

  /// Dequeue into `out`; returns false when empty. Single consumer only.
  bool pop(TelemetryUpdate& out);

  /// Updates currently buffered (approximate under concurrent pushes).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    TelemetryUpdate item;
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers contend on tail; the consumer owns head. Separate cache lines
  // keep the CAS loop from false-sharing with consumer progress.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace graf::fleet
