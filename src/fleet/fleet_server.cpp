#include "fleet/fleet_server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "gnn/batched_latency_model.h"

namespace graf::fleet {

FleetServer::FleetServer(FleetConfig cfg)
    : registry_{std::move(cfg.store_dir)}, queue_{cfg.ingest_capacity},
      batch_plans_{cfg.batch_plans} {
  tel_pushes_ = &metrics_.counter("fleet.ingest.pushes");
  tel_dropped_ = &metrics_.counter("fleet.ingest.dropped");
  tel_stale_ = &metrics_.counter("fleet.ingest.stale");
  tel_steps_ = &metrics_.counter("fleet.steps");
  tel_plans_ = &metrics_.counter("fleet.plans");
  tel_changes_ = &metrics_.counter("fleet.plan_changes");
  tel_failures_ = &metrics_.counter("fleet.tenant_failures");
  tel_signal_losses_ = &metrics_.counter("fleet.signal_losses");
  tel_notifications_ = &metrics_.counter("fleet.notifications");
  tel_sub_failures_ = &metrics_.counter("fleet.subscriber_failures");
  tel_cache_hits_ = &metrics_.counter("fleet.plan_cache.hits");
  tel_cache_misses_ = &metrics_.counter("fleet.plan_cache.misses");
  tel_cache_evictions_ = &metrics_.counter("fleet.plan_cache.evictions");
  tel_batched_groups_ = &metrics_.counter("fleet.batched_groups");
  tel_batched_tenants_ = &metrics_.counter("fleet.batched_tenants");
  tel_tenants_ = &metrics_.gauge("fleet.tenants");
  tel_degraded_tenants_ = &metrics_.gauge("fleet.degraded_tenants");
}

FleetServer::~FleetServer() = default;

TenantId FleetServer::add_tenant(const TenantSpec& spec) {
  if (find(spec.application, spec.slo_ms))
    throw std::invalid_argument("fleet: tenant (" + spec.application + ", " +
                                std::to_string(spec.slo_ms) +
                                "ms) already exists");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  TenantId id{slot, slots_[slot].generation};
  slots_[slot].tenant = std::make_unique<Tenant>(id, spec, registry_);
  ++live_tenants_;
  tel_tenants_->set(static_cast<double>(live_tenants_));
  return id;
}

bool FleetServer::remove_tenant(TenantId id) {
  Tenant* t = resolve(id);
  if (t == nullptr) return false;
  Slot& slot = slots_[id.slot];
  slot.tenant.reset();   // ~Tenant detaches its handle from the registry
  ++slot.generation;     // every outstanding copy of `id` goes inert
  free_slots_.push_back(id.slot);
  --live_tenants_;
  tel_tenants_->set(static_cast<double>(live_tenants_));
  return true;
}

Tenant* FleetServer::resolve(TenantId id) const {
  if (id.slot >= slots_.size()) return nullptr;
  const Slot& slot = slots_[id.slot];
  if (slot.generation != id.generation) return nullptr;
  return slot.tenant.get();
}

Tenant* FleetServer::tenant(TenantId id) { return resolve(id); }
const Tenant* FleetServer::tenant(TenantId id) const { return resolve(id); }

std::optional<TenantId> FleetServer::find(const std::string& application,
                                          double slo_ms) const {
  const std::string key = serve::ModelKey{application, slo_ms}.str();
  for (const Slot& slot : slots_)
    if (slot.tenant && slot.tenant->key().str() == key)
      return slot.tenant->id();
  return std::nullopt;
}

bool FleetServer::enable_online_training(TenantId id,
                                         const serve::OnlineTrainerConfig& cfg) {
  Tenant* t = resolve(id);
  if (t == nullptr) return false;
  t->enable_online_training(cfg);
  return true;
}

bool FleetServer::push(TelemetryUpdate update) {
  pushes_.fetch_add(1, std::memory_order_relaxed);
  if (queue_.push(std::move(update))) return true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

SubscriptionToken FleetServer::subscribe(PlanCallback cb,
                                         std::optional<TenantId> filter) {
  return subscribers_.subscribe(std::move(cb), filter);
}

FleetServer::StepStats FleetServer::step() {
  tel_steps_->add();
  // Mirror producer tallies as deltas (coordinator-only instrument writes).
  const std::uint64_t pushes = pushes_.load(std::memory_order_relaxed);
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  tel_pushes_->add(static_cast<double>(pushes - seen_pushes_));
  tel_dropped_->add(static_cast<double>(dropped - seen_dropped_));
  seen_pushes_ = pushes;
  seen_dropped_ = dropped;

  StepStats stats;

  // Phase 1 — drain: consume the ring in FIFO order, coalescing into each
  // tenant's pending slot (newest qps wins, samples append). The fan-out's
  // input is a pure function of push order, independent of thread count.
  TelemetryUpdate u;
  std::vector<Tenant*> pending;
  while (queue_.pop(u)) {
    ++stats.drained;
    Tenant* t = resolve(u.tenant);
    if (t == nullptr) {
      tel_stale_->add();
      continue;
    }
    if (!t->pending_) {
      t->pending_ = true;
      pending.push_back(t);
    }
    if (!u.api_qps.empty()) t->pending_qps_ = std::move(u.api_qps);
    t->pending_now_ = u.now;
    for (auto& s : u.samples) t->pending_samples_.push_back(s);
  }
  // `pending` preserves first-push order; sort into slot order so the
  // ordered commit below is stable regardless of ingest interleavings.
  std::sort(pending.begin(), pending.end(), [](const Tenant* a, const Tenant* b) {
    return a->id().slot < b->id().slot;
  });

  // Phase 2 — fan-out: one pending tenant per pool index. Each worker
  // touches exactly one tenant's private model/solver/metrics, so the
  // computation is race-free and bit-identical at any GRAF_THREADS
  // (§3.7: threads are pure executors; a failure degrades its tenant only).
  // prepare() resolves everything short of a solver run (signal loss,
  // hysteresis, cache hits, degraded fallbacks) and leaves tenants still
  // owing a solve flagged needs_solve_.
  if (!pending.empty()) {
    global_pool().parallel_for(pending.size(),
                               [&](std::size_t i) { pending[i]->prepare(); });
  }

  // Phase 2b — group (coordinator): coalesce owed solves by model content
  // fingerprint + node count + solver config, in slot order, so the group
  // list is a pure function of tenant state — never of thread count. A
  // tenant that matches no group leads a new one; with batching off every
  // tenant is its own group (identical to the PR-6 per-tenant fan-out).
  std::vector<std::vector<Tenant*>> groups;
  for (Tenant* t : pending) {
    if (!t->needs_solve_) continue;
    bool placed = false;
    if (batch_plans_) {
      for (auto& group : groups) {
        Tenant* lead = group.front();
        if (lead->controller_->current_model().node_count() !=
                t->controller_->current_model().node_count() ||
            !core::ConfigurationSolver::descent_equivalent(
                lead->solver_->config(), t->solver_->config()) ||
            lead->model_fingerprint() != t->model_fingerprint())
          continue;
        // Tiered tenants batch only with tiered tenants whose surrogate
        // descent is bit-equivalent: same surrogate weights (fingerprint
        // covers config + scalers + every parameter), same descent knobs on
        // the surrogate tier, and the same trust band so accept/escalate
        // decisions match the solo path exactly.
        const core::PlannerMode mode = t->controller_->planner_mode();
        if (mode != lead->controller_->planner_mode()) continue;
        if (mode == core::PlannerMode::kSurrogateVerified &&
            (!core::ConfigurationSolver::descent_equivalent(
                 lead->tiered_->config().solver, t->tiered_->config().solver) ||
             lead->tiered_->config().trust_band_pct !=
                 t->tiered_->config().trust_band_pct ||
             lead->surrogate_fingerprint() != t->surrogate_fingerprint()))
          continue;
        group.push_back(t);
        placed = true;
        break;
      }
    }
    if (!placed) groups.emplace_back(1, t);
  }

  // Phase 2c — solve fan-out: one group per pool index. Members of a group
  // are touched only by that group's worker, so the §3.7 single-writer
  // discipline holds with batching exactly as it does without.
  if (!groups.empty()) {
    global_pool().parallel_for(groups.size(),
                               [&](std::size_t g) { solve_group(groups[g]); });
    for (const auto& group : groups) {
      if (group.size() < 2) continue;
      tel_batched_groups_->add();
      tel_batched_tenants_->add(static_cast<double>(group.size()));
    }
  }

  // Phase 3 — ordered commit on the coordinator, in slot order: plan-state
  // bookkeeping, trainer ingest (may publish/promote through the registry),
  // fleet counter mirroring, and change-only notification.
  for (Tenant* t : pending) commit(*t, stats);

  std::size_t degraded = 0;
  for (const Slot& slot : slots_)
    if (slot.tenant && slot.tenant->degraded()) ++degraded;
  tel_degraded_tenants_->set(static_cast<double>(degraded));
  return stats;
}

void FleetServer::solve_group(const std::vector<Tenant*>& group) {
  if (group.size() == 1) {
    group.front()->solve_and_finish();
    return;
  }
  if (group.front()->controller_->planner_mode() ==
      core::PlannerMode::kSurrogateVerified) {
    solve_group_surrogate(group);
    return;
  }
  Tenant* lead = group.front();
  const core::SolverConfig& cfg = lead->solver_->config();
  const std::size_t starts = std::max<std::size_t>(1, cfg.multi_starts);
  std::vector<core::BatchItemResult> batch;
  bool ok = true;
  try {
    gnn::BatchedLatencyModel batched{lead->controller_->current_model(), starts};
    std::vector<core::BatchItem> items;
    items.reserve(group.size());
    for (Tenant* t : group)
      items.push_back({t->prep_.scaled, t->prep_.slo_ms,
                       t->controller_->lower_bounds(),
                       t->controller_->upper_bounds()});
    batch = core::ConfigurationSolver::solve_batch(batched, cfg, items);
    ok = batch.size() == group.size();
  } catch (...) {
    ok = false;
  }
  if (!ok) {
    // Batched descent failed as a unit; each member retries alone so one
    // tenant's pathology can't degrade its groupmates.
    for (Tenant* t : group) t->solve_and_finish();
    return;
  }
  // finish_solve never throws (it catches into kFailed), so results are
  // consumed exactly once — no member can double-finish into its cache.
  for (std::size_t i = 0; i < group.size(); ++i) {
    group[i]->solver_->note_external_iterations(batch[i].total_iterations);
    group[i]->finish_solve(std::move(batch[i].result));
  }
}

void FleetServer::solve_group_surrogate(const std::vector<Tenant*>& group) {
  // Row-batched surrogate tier (§3.13 applied to §3.14): every member's
  // multi-start descent rides one stacked tape over the lead's surrogate
  // (fingerprint-equal to each member's own), then each item verifies
  // against its *own* tenant's full model and, on a miss, escalates through
  // its own instrumented solver — so counters, miss windows, and results
  // are bit-identical to the one-tenant-at-a-time path.
  Tenant* lead = group.front();
  std::vector<core::SolverResult> batch;
  bool ok = true;
  try {
    std::vector<core::TieredPlanner::Item> items;
    items.reserve(group.size());
    for (Tenant* t : group)
      items.push_back({t->tiered_.get(), &t->controller_->current_model(),
                       t->solver_.get(), t->prep_.scaled, t->prep_.slo_ms,
                       t->controller_->lower_bounds(),
                       t->controller_->upper_bounds()});
    batch = core::TieredPlanner::solve_items(
        lead->tiered_->active_surrogate(), lead->tiered_->config().solver, items);
    ok = batch.size() == group.size();
  } catch (...) {
    ok = false;
  }
  if (!ok) {
    // Batched surrogate pass failed as a unit; each member retries alone
    // (solve_and_finish routes back through its own tiered planner) so one
    // tenant's pathology can't degrade its groupmates.
    for (Tenant* t : group) t->solve_and_finish();
    return;
  }
  // No note_external_iterations here: solve_items already credits each
  // item's solver with the surrogate descent (and any escalated full solve
  // instruments itself).
  for (std::size_t i = 0; i < group.size(); ++i)
    group[i]->finish_solve(std::move(batch[i]));
}

void FleetServer::commit(Tenant& t, StepStats& stats) {
  switch (t.outcome_) {
    case Tenant::Outcome::kPlanned:
      ++t.plans_;
      t.tel_plans_->add();
      tel_plans_->add();
      t.last_plan_ = std::move(t.computed_);
      t.has_plan_ = true;
      t.degraded_ = t.last_plan_.degraded;
      t.last_solved_qps_ = t.planned_qps_;
      t.slo_dirty_ = false;
      t.signal_lost_ = false;
      ++stats.planned;
      break;
    case Tenant::Outcome::kCoasted:
      ++stats.coasted;
      break;
    case Tenant::Outcome::kSignalLost:
      ++t.signal_losses_;
      t.tel_signal_loss_->add();
      tel_signal_losses_->add();
      t.signal_lost_ = true;
      // Coast on the last plan, flagged degraded; a tenant that never had
      // a plan has nothing to hold (and nothing to notify about).
      if (t.has_plan_) t.degraded_ = true;
      break;
    case Tenant::Outcome::kFailed:
      ++t.failures_;
      t.tel_failures_->add();
      tel_failures_->add();
      t.degraded_ = true;
      ++stats.failures;
      break;
    case Tenant::Outcome::kIdle:
      break;
  }
  t.tel_degraded_->set(t.degraded_ ? 1.0 : 0.0);

  // Trainer ingest runs here — sequentially, in slot order — because a
  // drift-triggered fine-tune publishes and promotes through the shared
  // registry; keeping it off the fan-out keeps registry mutation ordered
  // (and therefore replayable) without any cross-tenant contention.
  if (t.trainer_ != nullptr)
    for (const auto& sample : t.pending_samples_)
      t.trainer_->ingest(sample, t.pending_now_);

  // Mirror per-tenant plan-cache activity into the shared fleet counters as
  // deltas (no copy-the-world: only tenants that did work this step pay).
  const std::uint64_t hits = t.controller_->plan_cache_hits();
  const std::uint64_t misses = t.controller_->plan_cache_misses();
  const std::uint64_t evictions = t.controller_->plan_cache_evictions();
  tel_cache_hits_->add(static_cast<double>(hits - t.seen_cache_hits_));
  tel_cache_misses_->add(static_cast<double>(misses - t.seen_cache_misses_));
  tel_cache_evictions_->add(static_cast<double>(evictions - t.seen_cache_evictions_));
  t.seen_cache_hits_ = hits;
  t.seen_cache_misses_ = misses;
  t.seen_cache_evictions_ = evictions;

  // Change-only notification: subscribers hear from a tenant only when its
  // replica vector or degraded flag actually moved since the last notice.
  if (t.has_plan_) {
    const bool changed = t.seq_ == 0 ||
                         t.last_plan_.instances != t.last_notified_instances_ ||
                         t.degraded_ != t.last_notified_degraded_;
    if (changed) {
      ++t.seq_;
      ++t.plan_changes_;
      t.tel_changes_->add();
      tel_changes_->add();
      PlanUpdate update{t.id_,          t.application(), t.slo_ms_, t.seq_,
                       t.pending_now_, t.last_plan_,    t.degraded_};
      const auto pub = subscribers_.publish(update);
      tel_notifications_->add(static_cast<double>(pub.delivered));
      tel_sub_failures_->add(static_cast<double>(pub.failed));
      t.last_notified_instances_ = t.last_plan_.instances;
      t.last_notified_degraded_ = t.degraded_;
      ++stats.notified;
    }
  }

  t.pending_ = false;
  t.pending_samples_.clear();
  t.outcome_ = Tenant::Outcome::kIdle;
}

telemetry::RegistrySnapshot FleetServer::metrics_snapshot() const {
  telemetry::RegistrySnapshot snap = metrics_.snapshot();
  for (const Slot& slot : slots_)
    if (slot.tenant) snap.merge(slot.tenant->metrics().snapshot());
  return snap;
}

}  // namespace graf::fleet
