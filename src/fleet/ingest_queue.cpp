#include "fleet/ingest_queue.h"

#include <utility>

namespace graf::fleet {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

IngestQueue::IngestQueue(std::size_t capacity)
    : capacity_{round_up_pow2(capacity < 2 ? 2 : capacity)},
      mask_{capacity_ - 1},
      cells_{std::make_unique<Cell[]>(capacity_)} {
  for (std::size_t i = 0; i < capacity_; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool IngestQueue::push(TelemetryUpdate update) {
  std::size_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    std::size_t seq = cell.seq.load(std::memory_order_acquire);
    auto diff = static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
    if (diff == 0) {
      // Our turn: claim the slot, then write + publish.
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        cell.item = std::move(update);
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS refreshed `pos`; retry with the new tail.
    } else if (diff < 0) {
      // Cell still holds last lap's item: the ring is full.
      return false;
    } else {
      // Another producer claimed this slot; chase the tail.
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool IngestQueue::pop(TelemetryUpdate& out) {
  std::size_t pos = head_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  std::size_t seq = cell.seq.load(std::memory_order_acquire);
  auto diff =
      static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1);
  if (diff < 0) return false;  // producer hasn't published this slot yet
  out = std::move(cell.item);
  cell.item = TelemetryUpdate{};  // don't pin producer payloads for a lap
  cell.seq.store(pos + capacity_, std::memory_order_release);
  head_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

std::size_t IngestQueue::size() const {
  std::size_t tail = tail_.load(std::memory_order_relaxed);
  std::size_t head = head_.load(std::memory_order_relaxed);
  return tail >= head ? tail - head : 0;
}

}  // namespace graf::fleet
