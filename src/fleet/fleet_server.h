// FleetServer: one long-running control-plane daemon planning for many
// (application, SLO) tenants concurrently.
//
// Threading model (the GMA_V3 dispatcher shape, DESIGN.md §3.10):
//
//   producers ──push()──► IngestQueue (lock-free MPSC ring)
//                              │ drain, coalesce per tenant   ┐
//                              ▼                              │ step(), on
//                    parallel_for over pending tenants        │ the single
//                              │ per-tenant plan slots        │ coordinator
//                              ▼                              │ thread
//                    ordered commit + trainer ingest          │
//                    + change-only subscriber notify          ┘
//
// push() is safe from any number of threads and never blocks (a full ring
// rejects, counted as fleet.ingest.dropped). Everything else — add/remove
// tenant, step(), snapshots — is coordinator-thread only: the control plane
// is a single-writer design, and all cross-thread traffic funnels through
// the ring or the pool's fork/join.
//
// Determinism (§3.7 discipline): the drain consumes the ring in FIFO order
// and coalesces into per-tenant slots (last qps wins, samples append), so
// the fan-out's input is a pure function of push order. The fan-out gives
// each pool worker exactly one tenant's private state — its own model,
// solver, controller, and MetricsRegistry — so no instrument or tape is
// shared across workers. Commit, trainer ingest, and notification then run
// sequentially in tenant-slot order on the coordinator. Work decomposition
// never depends on the thread count, so a scripted scenario replays
// bit-identically at GRAF_THREADS=1 and 8.
//
// Designed-out bug classes (exemplar post-mortem, ROADMAP):
//   - listener UAF after lock release → SubscriberRegistry weak tokens
//   - dangling pointers into rehashed maps → stable (slot, generation) ids
//   - copy-the-world per tick → step() touches only tenants with pending
//     telemetry; fleet counters mirror per-tenant activity as deltas.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/ingest_queue.h"
#include "fleet/subscriber.h"
#include "fleet/tenant.h"
#include "serve/model_registry.h"
#include "telemetry/metrics.h"

namespace graf::fleet {

struct FleetConfig {
  /// Ingest ring capacity (rounded up to a power of two).
  std::size_t ingest_capacity = 1024;
  /// Checkpoint directory for the shared ModelRegistry ("" = in-memory).
  std::string store_dir;
  /// Coalesce same-model tenants' solves into block-diagonal batched
  /// descents (DESIGN.md §3.13). Bit-identical to per-tenant solving —
  /// `false` keeps the PR-6 one-solve-per-tenant fan-out (the equivalence
  /// tests and the scaling bench compare the two).
  bool batch_plans = true;
};

class FleetServer {
 public:
  explicit FleetServer(FleetConfig cfg = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  // ---- tenant lifecycle (coordinator thread) -------------------------------

  /// Admit a tenant: publishes spec.model as v1 under (application, slo_ms)
  /// and wires the full per-tenant pipeline. Throws std::invalid_argument
  /// on a duplicate (application, SLO) pair or a malformed spec.
  TenantId add_tenant(const TenantSpec& spec);

  /// Evict a tenant; its slot is recycled under a new generation, so every
  /// outstanding copy of `id` goes inert. Returns false for a stale id.
  bool remove_tenant(TenantId id);

  /// Resolve a tenant id (nullptr when stale or removed — never dangling).
  Tenant* tenant(TenantId id);
  const Tenant* tenant(TenantId id) const;

  std::optional<TenantId> find(const std::string& application, double slo_ms) const;
  std::size_t tenant_count() const { return live_tenants_; }

  /// Attach the drift → fine-tune → promote loop to `id`'s tenant; samples
  /// carried by TelemetryUpdate::samples feed it during step(). Returns
  /// false for a stale id.
  bool enable_online_training(TenantId id, const serve::OnlineTrainerConfig& cfg);

  // ---- telemetry ingest (any thread) ---------------------------------------

  /// Enqueue a telemetry push. Never blocks; returns false (and counts
  /// fleet.ingest.dropped) when the ring is full. A stale tenant id is
  /// accepted here and discarded at drain time (fleet.ingest.stale).
  bool push(TelemetryUpdate update);

  // ---- the control cycle (coordinator thread) ------------------------------

  struct StepStats {
    std::size_t drained = 0;   ///< updates consumed from the ring
    std::size_t planned = 0;   ///< tenants that ran a fresh solve
    std::size_t coasted = 0;   ///< tenants held inside the hysteresis band
    std::size_t failures = 0;  ///< tenants whose solve threw (degraded alone)
    std::size_t notified = 0;  ///< tenants whose plan changed (subscribers told)
  };

  /// One cycle: drain + coalesce, fan plan computation over the global
  /// thread pool, then commit/train/notify sequentially in slot order.
  /// With batch_plans on, the fan-out prepares every pending tenant, the
  /// coordinator groups still-owed solves by (model fingerprint, node
  /// count, solver config), and each multi-tenant group descends as one
  /// stacked tape — bit-identical to the per-tenant path (§3.13).
  StepStats step();

  /// Toggle batched planning between steps (tests compare both paths on
  /// one server). Coordinator-thread only.
  void set_batch_plans(bool on) { batch_plans_ = on; }
  bool batch_plans() const { return batch_plans_; }

  // ---- subscriptions -------------------------------------------------------

  /// Receive a PlanUpdate whenever a tenant's plan *changes* (instances or
  /// degraded flag) — not every tick. Callbacks run on the coordinator
  /// thread during step(); drop the token to unsubscribe. `filter` limits
  /// delivery to one tenant.
  SubscriptionToken subscribe(PlanCallback cb,
                              std::optional<TenantId> filter = std::nullopt);

  // ---- shared state --------------------------------------------------------

  serve::ModelRegistry& registry() { return registry_; }
  /// Fleet-level instruments (fleet.ingest.*, fleet.steps, ...).
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  /// Fleet instruments merged with every live tenant's registry, in slot
  /// order — the one-stop export surface.
  telemetry::RegistrySnapshot metrics_snapshot() const;

 private:
  struct Slot {
    std::unique_ptr<Tenant> tenant;     ///< null while free
    std::uint32_t generation = 1;       ///< bumped on every removal
  };

  Tenant* resolve(TenantId id) const;
  void commit(Tenant& t, StepStats& stats);
  /// Solve one fingerprint group: a single tenant solves alone; two or more
  /// descend as one ConfigurationSolver::solve_batch call, falling back to
  /// per-tenant solves if the batched attempt throws. Runs on a pool worker
  /// (one worker per group; members' state is private to that worker).
  void solve_group(const std::vector<Tenant*>& group);
  /// Surrogate-mode groups: one TieredPlanner::solve_items call descends
  /// every member's multi-start on one stacked tape over the lead's
  /// surrogate (fingerprint-equal across the group); verification and any
  /// escalation stay per-tenant. Per-tenant fallback on a thrown batch.
  void solve_group_surrogate(const std::vector<Tenant*>& group);

  // Registry before slots_: ~Tenant detaches its handle from registry_.
  serve::ModelRegistry registry_;
  telemetry::MetricsRegistry metrics_;
  IngestQueue queue_;
  SubscriberRegistry subscribers_;

  std::vector<Slot> slots_;             ///< stable — never rehashes/moves ids
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_tenants_ = 0;

  // Producer-side tallies (the only cross-thread state besides the ring);
  // mirrored into fleet.ingest.* counters at the top of each step.
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t seen_pushes_ = 0;
  std::uint64_t seen_dropped_ = 0;

  // Coordinator-only instruments.
  telemetry::Counter* tel_pushes_ = nullptr;
  telemetry::Counter* tel_dropped_ = nullptr;
  telemetry::Counter* tel_stale_ = nullptr;
  telemetry::Counter* tel_steps_ = nullptr;
  telemetry::Counter* tel_plans_ = nullptr;
  telemetry::Counter* tel_changes_ = nullptr;
  telemetry::Counter* tel_failures_ = nullptr;
  telemetry::Counter* tel_signal_losses_ = nullptr;
  telemetry::Counter* tel_notifications_ = nullptr;
  telemetry::Counter* tel_sub_failures_ = nullptr;
  telemetry::Counter* tel_cache_hits_ = nullptr;
  telemetry::Counter* tel_cache_misses_ = nullptr;
  telemetry::Counter* tel_cache_evictions_ = nullptr;
  telemetry::Counter* tel_batched_groups_ = nullptr;
  telemetry::Counter* tel_batched_tenants_ = nullptr;
  telemetry::Gauge* tel_tenants_ = nullptr;
  telemetry::Gauge* tel_degraded_tenants_ = nullptr;

  bool batch_plans_ = true;
};

}  // namespace graf::fleet
