#include "fleet/tenant.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "gnn/batched_latency_model.h"

namespace graf::fleet {

Tenant::Tenant(TenantId id, const TenantSpec& spec, serve::ModelRegistry& registry)
    : id_{id},
      key_{spec.application, spec.slo_ms},
      registry_{&registry},
      slo_ms_{spec.slo_ms},
      change_threshold_{spec.change_threshold} {
  if (spec.model == nullptr)
    throw std::invalid_argument("fleet: TenantSpec.model is required");
  if (spec.fanout.empty())
    throw std::invalid_argument("fleet: TenantSpec.fanout is required");
  const std::size_t services = spec.model->node_count();
  if (spec.lo.size() != services || spec.hi.size() != services ||
      spec.unit.size() != services)
    throw std::invalid_argument(
        "fleet: lo/hi/unit must match the model's service count");

  // v1: the admission model, promoted and wired to this tenant's handle.
  const std::uint64_t v = registry.publish(key_, *spec.model, spec.meta);
  registry.promote(key_, v);
  registry.attach_handle(key_, &handle_);
  model_ = registry.active(key_);

  analyzer_ = std::make_unique<core::WorkloadAnalyzer>(spec.fanout.size(), services);
  analyzer_->set_fanout(spec.fanout);
  solver_ = std::make_unique<core::ConfigurationSolver>(*model_, spec.solver);
  controller_ = std::make_unique<core::ResourceController>(
      *model_, *solver_, *analyzer_, spec.lo, spec.hi, spec.unit);
  controller_->set_serving_handle(&handle_);
  if (!spec.training_reference.empty())
    controller_->set_training_reference(spec.training_reference);
  if (!spec.max_instances.empty())
    controller_->set_max_instances(spec.max_instances);
  controller_->set_plan_cache_capacity(spec.plan_cache_capacity);
  controller_->set_metrics(&metrics_);

  if (spec.surrogate.enabled) {
    // Admission distillation: sample the operating region — the training
    // reference's per-node maxima when given, else the teacher's trained
    // region (w_scale is 1/max trained workload) — and distill the
    // promoted v1 into this tenant's private surrogate. No serving handle
    // or registry is attached: refreshes stay local, so worker-thread
    // solves never race a registry and the coordinator's grouping sees
    // every generation bump through surrogate_fingerprint().
    std::vector<double> region(services, 0.0);
    if (!spec.training_reference.empty()) {
      for (const auto& s : spec.training_reference)
        for (std::size_t i = 0; i < services; ++i)
          region[i] = std::max(region[i], s.workload[i]);
    } else {
      const double wmax = 1.0 / model_->scalers().w_scale;
      for (double& r : region) r = wmax;
    }
    gnn::SurrogateDistiller::Result distilled = core::TieredPlanner::distill_for_planner(
        *model_, region, spec.lo, spec.hi, spec.slo_ms, spec.surrogate.distill,
        spec.surrogate.planner.solver);
    tiered_ = std::make_unique<core::TieredPlanner>(
        std::make_shared<gnn::SurrogateModel>(std::move(distilled.model)),
        spec.surrogate.planner);
    tiered_->set_metrics(&metrics_);
    controller_->set_tiered_planner(tiered_.get());
  }

  if (spec.forecast.enabled) {
    gate_ = std::make_unique<forecast::ForecastGate>(spec.forecast);
    gate_->set_metrics(&metrics_);
    gate_->set_handle(&forecast_handle_);
  }

  tel_plans_ = &metrics_.counter("fleet.tenant.plans");
  tel_changes_ = &metrics_.counter("fleet.tenant.plan_changes");
  tel_failures_ = &metrics_.counter("fleet.tenant.plan_failures");
  tel_signal_loss_ = &metrics_.counter("fleet.tenant.signal_losses");
  tel_degraded_ = &metrics_.gauge("fleet.tenant.degraded");
}

Tenant::~Tenant() {
  // The registry outlives tenants (FleetServer member order), but this
  // handle does not outlive the registry entry — unhook before dying so a
  // later promote for the same key can't swap a dead handle.
  registry_->detach_handle(key_, &handle_);
}

void Tenant::set_slo(double slo_ms) {
  slo_ms_ = slo_ms;
  slo_dirty_ = true;  // hysteresis must not mask a retargeted objective
}

void Tenant::enable_online_training(const serve::OnlineTrainerConfig& cfg) {
  trainer_ = std::make_unique<serve::OnlineTrainer>(*registry_, handle_, key_, cfg);
  trainer_->set_metrics(&metrics_);
}

void Tenant::compute() {
  prepare();
  if (needs_solve_) solve_and_finish();
}

void Tenant::prepare() {
  needs_solve_ = false;
  if (!pending_) {
    outcome_ = Outcome::kIdle;
    return;
  }
  try {
    double total = 0.0;
    for (Qps q : pending_qps_) total += q;
    if (!(total > 0.0)) {
      // Workload signal vanished (telemetry blackout / all-zero push).
      // Mirror GrafController: hold the last plan instead of solving for a
      // phantom zero workload that would scale everything to the floor.
      outcome_ = Outcome::kSignalLost;
      return;
    }
    // Forecast mode: the vector handed to the hysteresis check, plan()'s
    // cache key, and the committed last_solved_qps_ is the planned-for
    // (post-max) workload, while the forecaster itself keeps observing the
    // raw pending vector (pending_qps_ is left untouched, so a samples-only
    // push can't feed a boosted value back in as an observation).
    // plan_qps() never throws; on forecaster failure it returns the
    // observed vector unchanged.
    planned_qps_ = gate_ != nullptr ? gate_->plan_qps(pending_qps_) : pending_qps_;
    // Hysteresis: coast on the current plan while every API's relative
    // change stays inside the band — unless the SLO moved, the tenant is
    // degraded (recovery should re-solve ASAP), or the shape changed.
    if (has_plan_ && !degraded_ && !slo_dirty_ &&
        planned_qps_.size() == last_solved_qps_.size()) {
      double worst = 0.0;
      for (std::size_t i = 0; i < planned_qps_.size(); ++i) {
        const double base = std::max(last_solved_qps_[i], 1e-9);
        worst = std::max(worst, std::abs(planned_qps_[i] - last_solved_qps_[i]) / base);
      }
      if (worst < change_threshold_) {
        outcome_ = Outcome::kCoasted;
        return;
      }
    }
    prep_ = controller_->begin_plan(planned_qps_, slo_ms_);
    if (prep_.done) {
      // Cache hit or degraded fallback — the plan is already final.
      computed_ = std::move(prep_.plan);
      outcome_ = Outcome::kPlanned;
      return;
    }
    needs_solve_ = true;
  } catch (...) {
    // A throwing tenant degrades alone; the fleet's ordered pass records
    // the failure and its siblings' results stand.
    outcome_ = Outcome::kFailed;
  }
}

void Tenant::solve_and_finish() {
  try {
    finish_solve(controller_->solve_prepared(prep_));
  } catch (...) {
    needs_solve_ = false;
    outcome_ = Outcome::kFailed;
  }
}

void Tenant::finish_solve(core::SolverResult solved) {
  needs_solve_ = false;
  try {
    computed_ = controller_->finish_plan(std::move(prep_), std::move(solved));
    outcome_ = Outcome::kPlanned;
  } catch (...) {
    outcome_ = Outcome::kFailed;
  }
}

std::uint64_t Tenant::surrogate_fingerprint() {
  // Same cache discipline as model_fingerprint(): the tenant's surrogate is
  // local-only, so its generation counter is the one true change signal.
  const std::uint64_t generation = tiered_->surrogate_generation();
  if (!surrogate_fp_valid_ || surrogate_fp_generation_ != generation) {
    surrogate_fingerprint_ =
        gnn::SurrogateModel::fingerprint(tiered_->active_surrogate());
    surrogate_fp_generation_ = generation;
    surrogate_fp_valid_ = true;
  }
  return surrogate_fingerprint_;
}

std::uint64_t Tenant::model_fingerprint() {
  const std::uint64_t generation = controller_->model_generation();
  if (!fingerprint_valid_ || fingerprint_generation_ != generation) {
    fingerprint_ =
        gnn::BatchedLatencyModel::fingerprint(controller_->current_model());
    fingerprint_generation_ = generation;
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

}  // namespace graf::fleet
