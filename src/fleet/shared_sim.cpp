#include "fleet/shared_sim.h"

#include <stdexcept>
#include <utility>

namespace graf::fleet {

namespace {

void rebase_node(sim::CallNode& node, std::size_t base, std::size_t count) {
  if (node.service < 0 || static_cast<std::size_t>(node.service) >= count)
    throw std::invalid_argument{"SharedSim: call tree references service "
                                "outside the tenant's topology"};
  node.service += static_cast<int>(base);
  for (auto& stage : node.stages)
    for (auto& child : stage) rebase_node(child, base, count);
}

}  // namespace

std::size_t SharedSim::add_tenant(const std::string& name,
                                  std::vector<sim::ServiceConfig> services,
                                  std::vector<sim::Api> apis) {
  if (cluster_ != nullptr)
    throw std::logic_error{"SharedSim: add_tenant after build()"};
  if (services.empty() || apis.empty())
    throw std::invalid_argument{"SharedSim: tenant needs services and APIs"};
  for (const auto& t : tenants_)
    if (t.name == name)
      throw std::invalid_argument{"SharedSim: duplicate tenant name"};

  SharedSimTenant t;
  t.name = name;
  t.service_base = services_.size();
  t.service_count = services.size();
  t.api_base = apis_.size();
  t.api_count = apis.size();

  for (auto& s : services) {
    s.name = name + "/" + s.name;
    services_.push_back(std::move(s));
  }
  for (auto& a : apis) {
    rebase_node(a.root, t.service_base, t.service_count);
    a.name = name + "/" + a.name;
    apis_.push_back(std::move(a));
  }
  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

sim::ShardedCluster& SharedSim::build(sim::ShardedClusterConfig cfg) {
  if (cluster_ != nullptr) throw std::logic_error{"SharedSim: build() twice"};
  if (tenants_.empty()) throw std::logic_error{"SharedSim: no tenants"};
  std::vector<std::uint32_t> shard_of;
  if (cfg.shards == 1 && tenants_.size() > 1) {
    // Natural partition: tenants are disjoint subgraphs, so one shard per
    // tenant means zero cross-shard messages — pure parallelism.
    cfg.shards = tenants_.size();
    shard_of.resize(services_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i)
      for (std::size_t s = 0; s < tenants_[i].service_count; ++s)
        shard_of[tenants_[i].service_base + s] = static_cast<std::uint32_t>(i);
  }
  cluster_ = std::make_unique<sim::ShardedCluster>(
      std::move(services_), std::move(apis_), cfg, std::move(shard_of));
  return *cluster_;
}

int SharedSim::global_service(std::size_t tenant, int local) const {
  const SharedSimTenant& t = tenants_.at(tenant);
  if (local < 0 || static_cast<std::size_t>(local) >= t.service_count)
    throw std::out_of_range{"SharedSim: bad local service index"};
  return static_cast<int>(t.service_base) + local;
}

int SharedSim::global_api(std::size_t tenant, int local) const {
  const SharedSimTenant& t = tenants_.at(tenant);
  if (local < 0 || static_cast<std::size_t>(local) >= t.api_count)
    throw std::out_of_range{"SharedSim: bad local api index"};
  return static_cast<int>(t.api_base) + local;
}

std::vector<Qps> SharedSim::api_qps(std::size_t tenant, Seconds window) const {
  const SharedSimTenant& t = tenants_.at(tenant);
  std::vector<Qps> out(t.api_count, 0.0);
  for (std::size_t a = 0; a < t.api_count; ++a)
    out[a] = cluster_->api_qps(static_cast<int>(t.api_base + a), window);
  return out;
}

void SharedSim::apply_total_quota(std::size_t tenant, int local_service,
                                  Millicores total, Millicores max_per_instance) {
  cluster_->apply_total_quota(global_service(tenant, local_service), total,
                              max_per_instance);
}

}  // namespace graf::fleet
