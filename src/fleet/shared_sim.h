// Multi-tenant traffic generation on one sharded simulator.
//
// The fleet server plans for many (application, SLO) tenants at once, but
// until now every tenant that wanted *simulated* telemetry had to run its
// own single-queue sim::Cluster — one event loop per tenant, serial, and an
// order of magnitude short of fleet-scale traffic. SharedSim packs every
// tenant's service graph into one sim::ShardedCluster instead: tenant
// topologies are disjoint subgraphs (no cross-tenant calls), so each tenant
// naturally becomes a group of LPs and the engine's conservative windows
// run all tenants' traffic concurrently — while replay stays bit-identical
// at any shard/thread count, which is what keeps fleet digest tests honest.
//
// Id spaces: tenants register local service/API indices; SharedSim rebases
// them onto the shared cluster (contiguous [service_base, service_base +
// service_count) blocks, likewise for APIs) and prefixes names with
// "<tenant>/" so lookups stay unambiguous. All per-tenant reads and controls
// below take *local* indices and translate.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/sharded_cluster.h"

namespace graf::fleet {

/// Where one tenant's services and APIs landed in the shared id space.
struct SharedSimTenant {
  std::string name;
  std::size_t service_base = 0;
  std::size_t service_count = 0;
  std::size_t api_base = 0;
  std::size_t api_count = 0;
};

class SharedSim {
 public:
  /// Register a tenant's topology (local ids; call-tree service indices are
  /// rebased internally). Coordinator-only, before build(). Returns the
  /// tenant's index.
  std::size_t add_tenant(const std::string& name,
                         std::vector<sim::ServiceConfig> services,
                         std::vector<sim::Api> apis);

  /// Construct the shared cluster over everything registered so far.
  /// cfg.shards defaults to one shard per tenant (a natural partition —
  /// tenants never exchange messages, so cross-shard traffic is zero);
  /// set cfg.shards explicitly to override.
  sim::ShardedCluster& build(sim::ShardedClusterConfig cfg = {});

  bool built() const { return cluster_ != nullptr; }
  sim::ShardedCluster& cluster() { return *cluster_; }
  const sim::ShardedCluster& cluster() const { return *cluster_; }

  std::size_t tenant_count() const { return tenants_.size(); }
  const SharedSimTenant& tenant(std::size_t i) const { return tenants_.at(i); }

  /// Local -> shared id translation.
  int global_service(std::size_t tenant, int local) const;
  int global_api(std::size_t tenant, int local) const;

  /// The tenant's per-API front-end rates over `window` — exactly the shape
  /// TelemetryUpdate::api_qps wants.
  std::vector<Qps> api_qps(std::size_t tenant, Seconds window) const;

  /// Apply one tenant-local service's planned total quota (fleet plan ->
  /// simulator actuation; see ShardedCluster::apply_total_quota).
  void apply_total_quota(std::size_t tenant, int local_service, Millicores total,
                         Millicores max_per_instance);

 private:
  std::vector<SharedSimTenant> tenants_;
  std::vector<sim::ServiceConfig> services_;
  std::vector<sim::Api> apis_;
  std::unique_ptr<sim::ShardedCluster> cluster_;
};

}  // namespace graf::fleet
