#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace graf::telemetry {

namespace {

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = sorted_labels(labels);
  std::string out = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  out += "}";
  return out;
}

const char* metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

const MetricSnapshot* RegistrySnapshot::find(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = series_key(name, labels);
  for (const auto& m : metrics)
    if (m.key() == key) return &m;
  return nullptr;
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& theirs : other.metrics) {
    const std::string key = theirs.key();
    auto it = std::find_if(metrics.begin(), metrics.end(),
                           [&](const MetricSnapshot& m) { return m.key() == key; });
    if (it == metrics.end()) {
      metrics.push_back(theirs);
      continue;
    }
    if (it->type != theirs.type)
      throw std::invalid_argument{"RegistrySnapshot::merge: type mismatch for " + key};
    if (it->type == MetricType::kHistogram) {
      it->histogram->merge(*theirs.histogram);
    } else {
      it->value += theirs.value;
    }
  }
  std::sort(metrics.begin(), metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.key() < b.key();
            });
}

MetricsRegistry::Entry& MetricsRegistry::intern(const std::string& name,
                                                const Labels& labels,
                                                MetricType type) {
  Labels sorted = sorted_labels(labels);
  const std::string key = series_key(name, sorted);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type)
      throw std::invalid_argument{"MetricsRegistry: " + key + " already registered as " +
                                  metric_type_name(it->second.type)};
    return it->second;
  }
  Entry e{name, std::move(sorted), type, nullptr, nullptr, nullptr};
  return entries_.emplace(key, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  Entry& e = intern(name, labels, MetricType::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  Entry& e = intern(name, labels, MetricType::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                         const LogHistogramConfig& cfg) {
  Entry& e = intern(name, labels, MetricType::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<LogHistogram>(cfg);
  return *e.histogram;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  out.metrics.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSnapshot m;
    m.name = e.name;
    m.labels = e.labels;
    m.type = e.type;
    switch (e.type) {
      case MetricType::kCounter: m.value = e.counter->value(); break;
      case MetricType::kGauge: m.value = e.gauge->value(); break;
      case MetricType::kHistogram: m.histogram = e.histogram->snapshot(); break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

}  // namespace graf::telemetry
