// Scrape loop: the reproduction's stand-in for Prometheus' pull model.
//
// Driven by the simulation clock (the paper syncs metrics every 15 s), the
// Scraper periodically snapshots a MetricsRegistry and appends time-series
// points to an in-memory store the Exporter serializes:
//
//   gauge      name{labels}            -> value
//   counter    name{labels}            -> cumulative value
//              name.rate{labels}       -> per-second rate over the interval
//   histogram  name.count{labels}      -> observations this interval
//              name.mean{labels}       -> interval mean
//              name.p50/p95/p99{labels}-> interval percentiles
//
// Histogram series derive from snapshot *deltas* — exactly the Prometheus
// histogram_quantile(rate(bucket[15s])) idiom — so each point describes the
// scrape interval, not all of history. Intervals with no observations emit
// no histogram points (a Prometheus query would return no sample either).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "telemetry/metrics.h"

namespace graf::sim {
class EventQueue;
}

namespace graf::telemetry {

struct SeriesPoint {
  Seconds time = 0.0;
  double value = 0.0;
};

/// Ordered map series-key -> points; keys follow the scheme above.
class TimeSeriesStore {
 public:
  void append(const std::string& key, Seconds t, double value) {
    series_[key].push_back({t, value});
  }
  const std::map<std::string, std::vector<SeriesPoint>>& series() const {
    return series_;
  }
  const std::vector<SeriesPoint>* find(const std::string& key) const;
  bool empty() const { return series_.empty(); }
  std::size_t size() const { return series_.size(); }

 private:
  std::map<std::string, std::vector<SeriesPoint>> series_;
};

struct ScraperConfig {
  Seconds period = 15.0;  ///< the paper's metric sync period
  std::vector<double> histogram_ranks = {50.0, 95.0, 99.0};
};

class Scraper {
 public:
  explicit Scraper(MetricsRegistry& registry, ScraperConfig cfg = {});

  /// Take one scrape at simulated time `now`. Usable standalone (tests,
  /// replicas driven by an external loop) or via attach().
  void scrape(Seconds now);

  /// Self-schedule on the simulation clock: one scrape every period until
  /// (and including) `until`, starting one period from now.
  void attach(sim::EventQueue& events, Seconds until);

  const TimeSeriesStore& store() const { return store_; }
  std::uint64_t scrapes() const { return scrapes_; }
  const ScraperConfig& config() const { return cfg_; }

 private:
  static std::string rank_suffix(double rank);

  MetricsRegistry& registry_;
  ScraperConfig cfg_;
  TimeSeriesStore store_;
  /// Previous snapshot per series key, for counter rates / histogram deltas.
  std::map<std::string, MetricSnapshot> prev_;
  Seconds prev_time_ = 0.0;
  bool have_prev_ = false;
  std::uint64_t scrapes_ = 0;
};

}  // namespace graf::telemetry
