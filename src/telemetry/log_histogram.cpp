#include "telemetry/log_histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graf::telemetry {

namespace {

double bucket_bound(const LogHistogramConfig& cfg, std::size_t i) {
  const auto octave = cfg.min_exponent + static_cast<int>(i / cfg.sub_buckets);
  const auto sub = static_cast<double>(i % cfg.sub_buckets);
  return std::ldexp(1.0 + sub / static_cast<double>(cfg.sub_buckets), octave);
}

/// Shared by LogHistogram and HistogramSnapshot: walk the cumulative counts
/// to the bucket containing the target rank, interpolate linearly within
/// it, and fall back to the exact tracked extrema at the rank edges.
double percentile_from_buckets(const LogHistogramConfig& cfg,
                               const std::vector<std::uint64_t>& counts,
                               std::uint64_t total, double lo_exact,
                               double hi_exact, double rank) {
  if (total == 0)
    throw std::logic_error{"LogHistogram::percentile: empty histogram"};
  if (rank <= 0.0) return lo_exact;
  if (rank >= 100.0) return hi_exact;
  const double target = rank / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (c > 0.0 && cum + c >= target) {
      const double lo = bucket_bound(cfg, i);
      const double hi = bucket_bound(cfg, i + 1);
      const double frac = (target - cum) / c;
      // Clamp into the exact extrema so estimates never exceed what was
      // actually recorded (matters for the clamping first/last buckets).
      return std::clamp(lo + frac * (hi - lo), lo_exact, hi_exact);
    }
    cum += c;
  }
  return hi_exact;
}

void check_mergeable(const LogHistogramConfig& a, const LogHistogramConfig& b) {
  if (!(a == b))
    throw std::invalid_argument{"LogHistogram: config mismatch in merge"};
}

}  // namespace

LogHistogram::LogHistogram(LogHistogramConfig cfg) : cfg_{cfg} {
  if (cfg_.sub_buckets == 0 || cfg_.max_exponent <= cfg_.min_exponent)
    throw std::invalid_argument{"LogHistogram: bad config"};
  counts_.assign(cfg_.bucket_count(), 0);
}

std::size_t LogHistogram::index_of(double x) const {
  int exp = 0;
  const double frac = std::frexp(x, &exp);  // x = frac * 2^exp, frac in [0.5, 1)
  const int octave = exp - 1;               // x in [2^octave, 2^(octave+1))
  if (!(x > 0.0) || octave < cfg_.min_exponent) return 0;
  if (octave >= cfg_.max_exponent) return counts_.size() - 1;
  const auto sub = static_cast<std::size_t>(
      (frac - 0.5) * 2.0 * static_cast<double>(cfg_.sub_buckets));
  return static_cast<std::size_t>(octave - cfg_.min_exponent) * cfg_.sub_buckets +
         std::min(sub, cfg_.sub_buckets - 1);
}

void LogHistogram::record(double x) { record_n(x, 1); }

void LogHistogram::record_n(double x, std::uint64_t n) {
  if (std::isnan(x) || n == 0) return;
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  counts_[index_of(x)] += n;
  total_ += n;
  sum_ += x * static_cast<double>(n);
}

double LogHistogram::percentile(double rank) const {
  return percentile_from_buckets(cfg_, counts_, total_, min_, max_, rank);
}

double LogHistogram::bucket_lo(std::size_t i) const { return bucket_bound(cfg_, i); }

double LogHistogram::bucket_hi(std::size_t i) const { return bucket_bound(cfg_, i + 1); }

HistogramSnapshot LogHistogram::snapshot() const {
  return {cfg_, counts_, total_, sum_, min_, max_};
}

void LogHistogram::merge(const LogHistogram& other) {
  check_mergeable(cfg_, other.cfg_);
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double HistogramSnapshot::mean() const {
  return total > 0 ? sum / static_cast<double>(total) : 0.0;
}

double HistogramSnapshot::percentile(double rank) const {
  return percentile_from_buckets(config, counts, total, min, max, rank);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  check_mergeable(config, other.config);
  if (other.total == 0) return;
  if (total == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
}

HistogramSnapshot HistogramSnapshot::delta_since(const HistogramSnapshot& earlier) const {
  check_mergeable(config, earlier.config);
  HistogramSnapshot out;
  out.config = config;
  out.counts.assign(counts.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < earlier.counts[i])
      throw std::invalid_argument{"HistogramSnapshot::delta_since: not a superset"};
    out.counts[i] = counts[i] - earlier.counts[i];
    out.total += out.counts[i];
  }
  out.sum = sum - earlier.sum;
  if (out.total > 0) {
    // Exact per-interval extrema are not recoverable from cumulative
    // snapshots; bound the cumulative extrema into the populated delta
    // bucket range instead.
    std::size_t first = 0;
    std::size_t last = 0;
    bool seen = false;
    for (std::size_t i = 0; i < out.counts.size(); ++i) {
      if (out.counts[i] > 0) {
        if (!seen) {
          first = i;
          seen = true;
        }
        last = i;
      }
    }
    out.min = std::clamp(min, bucket_bound(config, first),
                         bucket_bound(config, first + 1));
    out.max = std::clamp(max, bucket_bound(config, last),
                         bucket_bound(config, last + 1));
    out.min = std::min(out.min, out.max);
  }
  return out;
}

}  // namespace graf::telemetry
