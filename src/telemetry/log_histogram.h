// Log-bucketed mergeable histogram (HDR-histogram style), the telemetry
// subsystem's workhorse for latency/duration distributions.
//
// Values are bucketed by binary octave [2^o, 2^(o+1)) with `sub_buckets`
// linear sub-buckets per octave, so memory is fixed at construction,
// record() is O(1) (one frexp, no branches on the data), and percentiles
// are recovered from bucket boundaries in O(buckets).
//
// Error bound: every recorded value lands in a bucket whose relative width
// is at most 1/sub_buckets, so percentile() is within 1/sub_buckets of the
// true nearest-rank order statistic (and within 2/sub_buckets of a
// linearly-interpolated exact percentile on densely-sampled data). The
// default 64 sub-buckets bound the error at ~1.6%.
//
// Snapshots are plain bucket-count vectors and merge by addition, which is
// what makes cross-replica aggregation (the Prometheus sum-then-quantile
// idiom) exact: merging per-replica histograms and querying the percentile
// gives the same answer as one histogram over the union of the streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace graf::telemetry {

struct LogHistogramConfig {
  /// Smallest resolvable octave: values below 2^min_exponent (including
  /// zero and negatives) clamp into the first bucket.
  int min_exponent = -14;  ///< 2^-14 ~ 6e-5: microsecond-scale ms values
  /// Values at or above 2^max_exponent clamp into the last bucket.
  int max_exponent = 30;   ///< 2^30 ~ 1e9
  /// Linear sub-buckets per octave; relative error <= 1/sub_buckets.
  std::size_t sub_buckets = 64;

  std::size_t bucket_count() const {
    return static_cast<std::size_t>(max_exponent - min_exponent) * sub_buckets;
  }
  bool operator==(const LogHistogramConfig&) const = default;
};

/// Immutable copy of a histogram's state at one instant. Mergeable and
/// subtractable: Scraper derives per-interval percentiles from snapshot
/// deltas exactly like Prometheus' histogram_quantile(rate(...)).
struct HistogramSnapshot {
  LogHistogramConfig config;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact min over recorded values (0 when empty)
  double max = 0.0;  ///< exact max over recorded values (0 when empty)

  bool empty() const { return total == 0; }
  double mean() const;
  /// Percentile estimate for rank in [0, 100]; throws when empty.
  double percentile(double rank) const;
  /// Sum counts of `other` into this; configs must match.
  void merge(const HistogramSnapshot& other);
  /// Counts recorded since `earlier` was taken (this - earlier). Both must
  /// come from the same histogram; throws on config mismatch or if any
  /// bucket would go negative. min/max of the delta are approximated by the
  /// newer snapshot's exact extrema clamped into the delta's bucket range.
  HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const;
};

class LogHistogram {
 public:
  explicit LogHistogram(LogHistogramConfig cfg = {});

  /// O(1); never throws, never allocates. NaN is ignored.
  void record(double x);
  void record_n(double x, std::uint64_t n);

  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Percentile estimate for rank in [0, 100]; throws when empty.
  /// Accurate to within config().relative error (see file comment).
  double percentile(double rank) const;
  /// Documented accuracy bound of percentile() vs the true nearest-rank
  /// order statistic, as a relative error: 1/sub_buckets.
  double relative_error() const {
    return 1.0 / static_cast<double>(cfg_.sub_buckets);
  }

  HistogramSnapshot snapshot() const;
  /// Add every recorded value of `other` into this; configs must match.
  void merge(const LogHistogram& other);
  void reset();

  const LogHistogramConfig& config() const { return cfg_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Value range [bucket_lo, bucket_hi) covered by bucket i.
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  std::size_t index_of(double x) const;

  LogHistogramConfig cfg_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace graf::telemetry
