#include "telemetry/exporter.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <ostream>

namespace graf::telemetry {

namespace {

/// Shortest round-trip double formatting (%.17g is exact but noisy; %.12g
/// keeps files readable and is far below metric noise).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_series_json(std::ostream& os, const TimeSeriesStore& store) {
  os << "{\n  \"series\": [";
  bool first_series = true;
  for (const auto& [key, points] : store.series()) {
    if (!first_series) os << ",";
    first_series = false;
    os << "\n    {\"key\": \"" << json_escape(key) << "\", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) os << ", ";
      os << "[" << num(points[i].time) << ", " << num(points[i].value) << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

void write_series_csv(std::ostream& os, const TimeSeriesStore& store) {
  os << "key,time,value\n";
  for (const auto& [key, points] : store.series()) {
    // Keys may contain commas inside label braces; quote them.
    for (const SeriesPoint& p : points)
      os << "\"" << key << "\"," << num(p.time) << "," << num(p.value) << "\n";
  }
}

void write_snapshot_json(std::ostream& os, const RegistrySnapshot& snapshot) {
  os << "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(m.name) << "\", \"labels\": {";
    for (std::size_t i = 0; i < m.labels.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(m.labels[i].first) << "\": \""
         << json_escape(m.labels[i].second) << "\"";
    }
    os << "}, \"type\": \"" << metric_type_name(m.type) << "\"";
    if (m.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = *m.histogram;
      os << ", \"count\": " << h.total << ", \"sum\": " << num(h.sum);
      if (h.total > 0) {
        os << ", \"min\": " << num(h.min) << ", \"max\": " << num(h.max)
           << ", \"p50\": " << num(h.percentile(50.0))
           << ", \"p95\": " << num(h.percentile(95.0))
           << ", \"p99\": " << num(h.percentile(99.0));
      }
    } else {
      os << ", \"value\": " << num(m.value);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

template <typename Fn>
bool export_to_file(const std::string& path, Fn&& write) {
  std::ofstream os{path};
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace

bool export_series_json(const std::string& path, const TimeSeriesStore& store) {
  return export_to_file(path, [&](std::ostream& os) { write_series_json(os, store); });
}

bool export_series_csv(const std::string& path, const TimeSeriesStore& store) {
  return export_to_file(path, [&](std::ostream& os) { write_series_csv(os, store); });
}

bool export_snapshot_json(const std::string& path, const RegistrySnapshot& snapshot) {
  return export_to_file(path,
                        [&](std::ostream& os) { write_snapshot_json(os, snapshot); });
}

void BenchExporter::record(const std::string& name, double value,
                           const std::string& unit) {
  record_at(name, value, unit, static_cast<std::int64_t>(std::time(nullptr)));
}

void BenchExporter::record_at(const std::string& name, double value,
                              const std::string& unit, std::int64_t unix_seconds) {
  rows_.push_back({name, value, unit, unix_seconds});
}

void BenchExporter::write_json(std::ostream& os) const {
  os << "{\n  \"results\": [";
  bool first = true;
  for (const Row& r : rows_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(r.name) << "\", \"value\": "
       << num(r.value) << ", \"unit\": \"" << json_escape(r.unit)
       << "\", \"timestamp\": " << r.timestamp << "}";
  }
  os << "\n  ]\n}\n";
}

bool BenchExporter::write_json_file(const std::string& path) const {
  return export_to_file(path, [&](std::ostream& os) { write_json(os); });
}

}  // namespace graf::telemetry
