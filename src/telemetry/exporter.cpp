#include "telemetry/exporter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iterator>
#include <ostream>
#include <string_view>

namespace graf::telemetry {

namespace {

/// Shortest round-trip double formatting (%.17g is exact but noisy; %.12g
/// keeps files readable and is far below metric noise).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_series_json(std::ostream& os, const TimeSeriesStore& store) {
  os << "{\n  \"series\": [";
  bool first_series = true;
  for (const auto& [key, points] : store.series()) {
    if (!first_series) os << ",";
    first_series = false;
    os << "\n    {\"key\": \"" << json_escape(key) << "\", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) os << ", ";
      os << "[" << num(points[i].time) << ", " << num(points[i].value) << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

void write_series_csv(std::ostream& os, const TimeSeriesStore& store) {
  os << "key,time,value\n";
  for (const auto& [key, points] : store.series()) {
    // Keys may contain commas inside label braces; quote them.
    for (const SeriesPoint& p : points)
      os << "\"" << key << "\"," << num(p.time) << "," << num(p.value) << "\n";
  }
}

void write_snapshot_json(std::ostream& os, const RegistrySnapshot& snapshot) {
  os << "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(m.name) << "\", \"labels\": {";
    for (std::size_t i = 0; i < m.labels.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(m.labels[i].first) << "\": \""
         << json_escape(m.labels[i].second) << "\"";
    }
    os << "}, \"type\": \"" << metric_type_name(m.type) << "\"";
    if (m.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = *m.histogram;
      os << ", \"count\": " << h.total << ", \"sum\": " << num(h.sum);
      if (h.total > 0) {
        os << ", \"min\": " << num(h.min) << ", \"max\": " << num(h.max)
           << ", \"p50\": " << num(h.percentile(50.0))
           << ", \"p95\": " << num(h.percentile(95.0))
           << ", \"p99\": " << num(h.percentile(99.0));
      }
    } else {
      os << ", \"value\": " << num(m.value);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

template <typename Fn>
bool export_to_file(const std::string& path, Fn&& write) {
  std::ofstream os{path};
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace

bool export_series_json(const std::string& path, const TimeSeriesStore& store) {
  return export_to_file(path, [&](std::ostream& os) { write_series_json(os, store); });
}

bool export_series_csv(const std::string& path, const TimeSeriesStore& store) {
  return export_to_file(path, [&](std::ostream& os) { write_series_csv(os, store); });
}

bool export_snapshot_json(const std::string& path, const RegistrySnapshot& snapshot) {
  return export_to_file(path,
                        [&](std::ostream& os) { write_snapshot_json(os, snapshot); });
}

void BenchExporter::record(const std::string& name, double value,
                           const std::string& unit) {
  record_at(name, value, unit, static_cast<std::int64_t>(std::time(nullptr)));
}

void BenchExporter::record_at(const std::string& name, double value,
                              const std::string& unit, std::int64_t unix_seconds) {
  rows_.push_back({name, value, unit, unix_seconds});
}

void BenchExporter::write_json(std::ostream& os) const {
  os << "{\n  \"results\": [";
  bool first = true;
  for (const Row& r : rows_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(r.name) << "\", \"value\": "
       << num(r.value) << ", \"unit\": \"" << json_escape(r.unit)
       << "\", \"timestamp\": " << r.timestamp << "}";
  }
  os << "\n  ]\n}\n";
}

bool BenchExporter::write_json_file(const std::string& path) const {
  return export_to_file(path, [&](std::ostream& os) { write_json(os); });
}

namespace {

/// Minimal recursive-descent reader for the flat bench format write_json
/// emits ({"results": [{"name", "value", "unit", "timestamp"}, ...]}).
/// Unknown keys are skipped; it is not a general JSON parser.
struct BenchReader {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool read_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return false;
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only escapes control bytes, so one byte suffices.
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool read_number(double& out) {
    skip_ws();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }

  /// One {"key": scalar, ...} object into a Row; unknown keys skipped.
  bool read_row(BenchExporter::Row& row) {
    if (!consume('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !consume(',')) return false;
      first = false;
      std::string key;
      if (!read_string(key) || !consume(':')) return false;
      if (key == "name" || key == "unit") {
        std::string value;
        if (!read_string(value)) return false;
        (key == "name" ? row.name : row.unit) = std::move(value);
      } else if (peek('"')) {
        std::string skipped;
        if (!read_string(skipped)) return false;
      } else {
        double value = 0.0;
        if (!read_number(value)) return false;
        if (key == "value") row.value = value;
        if (key == "timestamp") row.timestamp = static_cast<std::int64_t>(value);
      }
    }
    return consume('}');
  }

  bool read_file(std::vector<BenchExporter::Row>& rows) {
    if (!consume('{')) return false;
    std::string key;
    if (!read_string(key) || key != "results" || !consume(':') || !consume('['))
      return false;
    bool first = true;
    while (!peek(']')) {
      if (!first && !consume(',')) return false;
      first = false;
      BenchExporter::Row row;
      if (!read_row(row)) return false;
      rows.push_back(std::move(row));
    }
    return consume(']') && consume('}');
  }
};

}  // namespace

namespace {

/// Benchmark identity minus google-benchmark's "/real_time" instance
/// decoration, so a bench that switches between CPU-time and wall-clock
/// reporting still replaces its old row instead of leaving a stale
/// duplicate under the other spelling.
std::string_view bench_base_name(std::string_view name) {
  constexpr std::string_view kRealTime = "/real_time";
  if (name.size() >= kRealTime.size() && name.ends_with(kRealTime))
    name.remove_suffix(kRealTime.size());
  return name;
}

}  // namespace

bool BenchExporter::merge_json_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::string text{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  std::vector<Row> file_rows;
  BenchReader reader{text};
  if (!reader.read_file(file_rows)) return false;
  std::vector<Row> merged;
  merged.reserve(file_rows.size() + rows_.size());
  for (Row& r : file_rows) {
    const std::string_view base = bench_base_name(r.name);
    const bool overridden =
        std::any_of(rows_.begin(), rows_.end(), [&](const Row& mine) {
          return bench_base_name(mine.name) == base;
        });
    if (!overridden) merged.push_back(std::move(r));
  }
  merged.insert(merged.end(), std::make_move_iterator(rows_.begin()),
                std::make_move_iterator(rows_.end()));
  rows_ = std::move(merged);
  return true;
}

}  // namespace graf::telemetry
