// Metrics registry: named counters, gauges, and log-bucket histograms keyed
// by metric name + label set — the reproduction's stand-in for the
// Prometheus/cAdvisor metric surface the paper's control loop reads.
//
// Registration is idempotent: asking for the same (name, labels) pair again
// returns the same instrument, so call sites can intern a pointer once and
// record through it with no lookup on the hot path. References stay stable
// for the registry's lifetime. Snapshots are value types that merge across
// replicas (counters/histograms by sum, gauges by sum — the aggregation a
// Prometheus `sum by (name)` would produce).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/log_histogram.h"

namespace graf::telemetry {

/// Label set as (key, value) pairs; sorted by key when interned so that
/// `{a=1,b=2}` and `{b=2,a=1}` name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name` or `name{k="v",k2="v2"}` (labels sorted).
std::string series_key(const std::string& name, const Labels& labels);

/// Monotonically increasing sum (requests served, drift events, ...).
class Counter {
 public:
  void add(double d = 1.0) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written instantaneous value (queue depth, utilization, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metric_type_name(MetricType t);

struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  ///< counter / gauge value
  std::optional<HistogramSnapshot> histogram;

  std::string key() const { return series_key(name, labels); }
};

/// Point-in-time copy of a whole registry, in deterministic key order.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(const std::string& name,
                             const Labels& labels = {}) const;
  /// Cross-replica aggregation: counters and gauges add, histograms merge.
  /// Metrics present on only one side are copied through.
  void merge(const RegistrySnapshot& other);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get or create. Throws std::invalid_argument when the same series key
  /// was already registered as a different metric type.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `cfg` applies only on first registration; later calls return the
  /// existing histogram regardless of `cfg`.
  LogHistogram& histogram(const std::string& name, const Labels& labels = {},
                          const LogHistogramConfig& cfg = {});

  std::size_t size() const { return entries_.size(); }
  RegistrySnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type;
    // Exactly one is non-null, matching `type`. unique_ptr keeps references
    // stable as the map rehashes/rebalances.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Entry& intern(const std::string& name, const Labels& labels, MetricType type);

  std::map<std::string, Entry> entries_;  ///< key -> entry, sorted for export
};

}  // namespace graf::telemetry
