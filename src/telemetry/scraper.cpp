#include "telemetry/scraper.h"

#include <cmath>

#include "sim/event_queue.h"

namespace graf::telemetry {

const std::vector<SeriesPoint>* TimeSeriesStore::find(const std::string& key) const {
  auto it = series_.find(key);
  return it != series_.end() ? &it->second : nullptr;
}

Scraper::Scraper(MetricsRegistry& registry, ScraperConfig cfg)
    : registry_{registry}, cfg_{cfg} {}

std::string Scraper::rank_suffix(double rank) {
  // 50 -> "p50", 99 -> "p99", 99.9 -> "p99.9".
  const double rounded = std::round(rank);
  if (std::abs(rank - rounded) < 1e-9)
    return "p" + std::to_string(static_cast<int>(rounded));
  std::string s = std::to_string(rank);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return "p" + s;
}

void Scraper::scrape(Seconds now) {
  const RegistrySnapshot snap = registry_.snapshot();
  const double dt = have_prev_ ? now - prev_time_ : 0.0;
  for (const MetricSnapshot& m : snap.metrics) {
    const std::string key = m.key();
    const auto prev_it = prev_.find(key);
    const MetricSnapshot* prev =
        prev_it != prev_.end() ? &prev_it->second : nullptr;
    switch (m.type) {
      case MetricType::kGauge:
        store_.append(key, now, m.value);
        break;
      case MetricType::kCounter: {
        store_.append(key, now, m.value);
        const double base = prev != nullptr ? prev->value : 0.0;
        const double span = prev != nullptr ? dt : now;
        if (span > 0.0)
          store_.append(series_key(m.name + ".rate", m.labels), now,
                        (m.value - base) / span);
        break;
      }
      case MetricType::kHistogram: {
        HistogramSnapshot interval = *m.histogram;
        if (prev != nullptr && prev->histogram.has_value())
          interval = interval.delta_since(*prev->histogram);
        if (interval.total == 0) break;
        store_.append(series_key(m.name + ".count", m.labels), now,
                      static_cast<double>(interval.total));
        store_.append(series_key(m.name + ".mean", m.labels), now,
                      interval.mean());
        for (double rank : cfg_.histogram_ranks)
          store_.append(series_key(m.name + "." + rank_suffix(rank), m.labels),
                        now, interval.percentile(rank));
        break;
      }
    }
    prev_[key] = m;
  }
  prev_time_ = now;
  have_prev_ = true;
  ++scrapes_;
}

void Scraper::attach(sim::EventQueue& events, Seconds until) {
  const Seconds next = events.now() + cfg_.period;
  if (next > until) return;
  events.schedule_at(next, [this, &events, until] {
    scrape(events.now());
    attach(events, until);
  });
}

}  // namespace graf::telemetry
