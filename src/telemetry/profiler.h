// Scoped wall-time profiling spans feeding log-histograms in a registry.
//
// The design goal is near-zero cost when telemetry is detached: every
// instrumented hot path (MPNN forward/backward, solver descent iterations,
// event-queue pops, ResourceController::plan) holds a cached LogHistogram*
// that is nullptr until a registry is attached, and ScopedTimer{nullptr}
// is a no-op that never reads the clock — one predictable branch per scope.
//
// Durations are recorded in microseconds (the `*_us` naming convention),
// using steady_clock wall time: profiling measures the reproduction's own
// compute cost, while the Scraper's time axis is the *simulated* clock.
#pragma once

#include <chrono>
#include <string>

#include "telemetry/metrics.h"

namespace graf::telemetry {

class ScopedTimer {
 public:
  /// Starts timing iff `target` is non-null.
  explicit ScopedTimer(LogHistogram* target) : target_{target} {
    if (target_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit; returns the elapsed microseconds
  /// (0 when disarmed). Idempotent.
  double stop() {
    if (target_ == nullptr) return 0.0;
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    target_->record(us);
    target_ = nullptr;
    return us;
  }

 private:
  LogHistogram* target_;
  std::chrono::steady_clock::time_point start_;
};

/// Convenience site cache for ad-hoc instrumentation: interns
/// `profile.<name>_us` histograms in the bound registry and returns stable
/// pointers (nullptr while unbound, keeping ScopedTimer free).
class Profiler {
 public:
  explicit Profiler(MetricsRegistry* registry = nullptr) : registry_{registry} {}

  void bind(MetricsRegistry* registry) { registry_ = registry; }
  bool enabled() const { return registry_ != nullptr; }

  /// Histogram for span `name`; nullptr when unbound.
  LogHistogram* site(const std::string& name, const Labels& labels = {}) {
    if (registry_ == nullptr) return nullptr;
    return &registry_->histogram("profile." + name + "_us", labels);
  }

 private:
  MetricsRegistry* registry_;
};

}  // namespace graf::telemetry
