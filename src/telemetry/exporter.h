// Serialization of scraped series and registry snapshots to JSON/CSV, plus
// the flat bench-result format (`BENCH_perf.json`) the perf trajectory is
// tracked with.
//
// Formats (no external JSON dependency; writers emit, they do not parse):
//
//   series JSON   {"series": [{"key": ..., "points": [[t, v], ...]}, ...]}
//   series CSV    key,time,value  (one row per point, header included)
//   snapshot JSON {"metrics": [{"name", "labels", "type", ...}, ...]}
//   bench JSON    {"results": [{"name", "value", "unit", "timestamp"}, ...]}
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/scraper.h"

namespace graf::telemetry {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

void write_series_json(std::ostream& os, const TimeSeriesStore& store);
void write_series_csv(std::ostream& os, const TimeSeriesStore& store);
void write_snapshot_json(std::ostream& os, const RegistrySnapshot& snapshot);

/// File helpers; return false (and write nothing else) on open failure.
bool export_series_json(const std::string& path, const TimeSeriesStore& store);
bool export_series_csv(const std::string& path, const TimeSeriesStore& store);
bool export_snapshot_json(const std::string& path, const RegistrySnapshot& snapshot);

/// Accumulates named scalar results (micro-bench timings, derived metrics)
/// and writes the machine-readable BENCH_*.json format: one row per metric,
/// each stamped with value, unit, and a unix timestamp.
class BenchExporter {
 public:
  struct Row {
    std::string name;
    double value = 0.0;
    std::string unit;
    std::int64_t timestamp = 0;  ///< unix seconds
  };

  /// Stamps the row with the current wall-clock time.
  void record(const std::string& name, double value, const std::string& unit);
  void record_at(const std::string& name, double value, const std::string& unit,
                 std::int64_t unix_seconds);

  const std::vector<Row>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

  /// Merge rows from an existing bench JSON file (the format write_json
  /// emits). File rows whose name is already recorded in this exporter are
  /// dropped — fresh in-memory results win — and the survivors are placed
  /// ahead of the in-memory rows, so binaries sharing one BENCH file can
  /// refresh their own rows without clobbering each other's. Names are
  /// compared modulo a trailing "/real_time" segment (google-benchmark's
  /// UseRealTime decoration), so a bench switching between CPU-time and
  /// wall-clock reporting replaces its old row instead of stranding a dead
  /// duplicate under the other spelling. Returns false (exporter unchanged)
  /// when the file is missing or does not parse.
  bool merge_json_file(const std::string& path);

 private:
  std::vector<Row> rows_;
};

}  // namespace graf::telemetry
