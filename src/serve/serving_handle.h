// Hot-swappable handle to the latency model currently in service.
//
// The control plane (ResourceController / GrafController) acquires the
// active model at the start of every allocation decision; the online
// trainer (src/serve/online_trainer.h) swaps a freshly fine-tuned model in
// between decisions. Shared ownership keeps a model alive for the duration
// of any plan() computed against it even if it is demoted mid-flight, so
// swapping never pauses allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "gnn/latency_model.h"

namespace graf::serve {

class ServingHandle {
 public:
  using ModelPtr = std::shared_ptr<gnn::LatencyModel>;

  ServingHandle() = default;
  explicit ServingHandle(ModelPtr initial) : active_{std::move(initial)} {}

  /// The model currently in service (may be null before the first swap).
  ModelPtr acquire() const {
    std::lock_guard lock{mu_};
    return active_;
  }

  /// Atomically replace the active model; returns the previous one.
  ModelPtr swap(ModelPtr next) {
    std::lock_guard lock{mu_};
    active_.swap(next);
    ++swaps_;
    return next;
  }

  bool empty() const {
    std::lock_guard lock{mu_};
    return active_ == nullptr;
  }

  std::uint64_t swap_count() const {
    std::lock_guard lock{mu_};
    return swaps_;
  }

 private:
  mutable std::mutex mu_;
  ModelPtr active_;
  std::uint64_t swaps_ = 0;
};

}  // namespace graf::serve
