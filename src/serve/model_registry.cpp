#include "serve/model_registry.h"

#include <algorithm>
#include <sstream>

namespace graf::serve {

std::string ModelKey::str() const {
  std::ostringstream os;
  os << application << "_slo";
  // Round to a tenth of a millisecond so the key survives text round-trips.
  os << static_cast<long long>(slo_ms * 10.0 + 0.5);
  return os.str();
}

ModelRegistry::ModelRegistry(std::string store_dir) : store_dir_{std::move(store_dir)} {}

std::string ModelRegistry::checkpoint_path(const ModelKey& key,
                                           std::uint64_t version) const {
  if (store_dir_.empty()) return "";
  return store_dir_ + "/" + key.str() + ".v" + std::to_string(version) + ".grafck";
}

std::uint64_t ModelRegistry::publish(const ModelKey& key, gnn::LatencyModel& model,
                                     CheckpointMeta meta) {
  // Deep-copy before taking the lock: cloning a model is the expensive part
  // of publish and needs no registry state.
  auto copy = std::make_shared<gnn::LatencyModel>(model.clone());
  meta.application = key.application;
  meta.slo_ms = key.slo_ms;
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  const std::uint64_t version = e.next_version++;
  const std::string path = checkpoint_path(key, version);
  if (!path.empty()) save_checkpoint_file(path, *copy, meta);
  e.versions.push_back({{version, std::move(meta)}, std::move(copy)});
  return version;
}

std::uint64_t ModelRegistry::restore(const ModelKey& key,
                                     const std::string& checkpoint_path) {
  // File IO stays outside the lock; publish() locks on its own.
  LoadedCheckpoint loaded = load_checkpoint_file(checkpoint_path);
  return publish(key, loaded.model, std::move(loaded.meta));
}

const ModelRegistry::Version* ModelRegistry::find(const Entry& e,
                                                  std::uint64_t version) const {
  for (const Version& v : e.versions)
    if (v.info.version == version) return &v;
  return nullptr;
}

void ModelRegistry::sync_handles(Entry& e) {
  const Version* v = find(e, e.active);
  for (ServingHandle* handle : e.handles)
    handle->swap(v != nullptr ? v->model : nullptr);
}

bool ModelRegistry::promote(const ModelKey& key, std::uint64_t version) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (find(e, version) == nullptr) return false;
  if (e.active == version) return true;
  e.active = version;
  e.promote_history.push_back(version);
  sync_handles(e);
  return true;
}

bool ModelRegistry::rollback(const ModelKey& key) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.promote_history.size() < 2) return false;
  e.promote_history.pop_back();
  e.active = e.promote_history.back();
  sync_handles(e);
  return true;
}

std::shared_ptr<gnn::LatencyModel> ModelRegistry::active(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return nullptr;
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->model : nullptr;
}

std::uint64_t ModelRegistry::active_version(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  return it == entries_.end() ? 0 : it->second.active;
}

CheckpointMeta ModelRegistry::active_meta(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return {};
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->info.meta : CheckpointMeta{};
}

std::vector<VersionInfo> ModelRegistry::versions(const ModelKey& key) const {
  std::vector<VersionInfo> out;
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return out;
  for (const Version& v : it->second.versions) out.push_back(v.info);
  return out;
}

void ModelRegistry::attach_handle(const ModelKey& key, ServingHandle* handle) {
  if (handle == nullptr) return;
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  if (std::find(e.handles.begin(), e.handles.end(), handle) == e.handles.end())
    e.handles.push_back(handle);
  const Version* v = find(e, e.active);
  handle->swap(v != nullptr ? v->model : nullptr);
}

void ModelRegistry::detach_handle(const ModelKey& key, ServingHandle* handle) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return;
  std::erase(it->second.handles, handle);
}

}  // namespace graf::serve
