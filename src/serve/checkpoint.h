// Binary model checkpoint format (".grafck").
//
// A checkpoint is fully self-describing: it carries the MPNN architecture,
// the microservice DAG (names + adjacency), the normalization scalers, all
// weight tensors as raw IEEE-754 doubles, and provenance metadata — enough
// to reconstruct a bit-identical LatencyModel with no other inputs.
//
// Layout (all integers little-or-big per the host; the endianness tag
// rejects cross-endian files instead of byte-swapping):
//
//   magic            8 bytes  "GRAFCKPT"
//   format version   u32      kFormatVersion
//   endianness tag   u32      0x01020304 written natively
//   payload size     u64      bytes between here and the CRC
//   payload          ...      config | graph | scalers | meta | params
//   crc32            u32      CRC-32 (IEEE 802.3) of the payload bytes
//
// Every failure mode (truncation, bit corruption, version or endianness
// mismatch, architecture mismatch) raises CheckpointError with a message
// naming the offending section — never a crash or a silently-wrong model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "gnn/latency_model.h"

namespace graf::serve {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error{"checkpoint: " + what} {}
};

/// Provenance recorded with every checkpoint; the registry keys and the
/// online trainer's drift baseline both come from here.
struct CheckpointMeta {
  std::string application;        ///< topology name, e.g. "online-boutique"
  double slo_ms = 0.0;            ///< SLO the model was trained for
  std::uint64_t train_samples = 0;
  double val_error_pct = 0.0;     ///< validation mean-abs-%-error at save time
  double created_sim_time = 0.0;  ///< simulation clock when trained
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), seed/xorout 0xFFFFFFFF.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0xFFFFFFFFu);

void save_checkpoint(std::ostream& os, gnn::LatencyModel& model,
                     const CheckpointMeta& meta);
void save_checkpoint_file(const std::string& path, gnn::LatencyModel& model,
                          const CheckpointMeta& meta);

struct LoadedCheckpoint {
  gnn::LatencyModel model;
  CheckpointMeta meta;
};

LoadedCheckpoint load_checkpoint(std::istream& is);
LoadedCheckpoint load_checkpoint_file(const std::string& path);

}  // namespace graf::serve
