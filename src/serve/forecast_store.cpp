#include "serve/forecast_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "serve/wire.h"

namespace graf::serve {

namespace {

using wire::Reader;
using wire::Writer;

constexpr char kMagic[8] = {'G', 'R', 'A', 'F', 'F', 'C', 'S', 'T'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Sanity bounds for corrupted length fields (wire.h rationale).
constexpr std::uint64_t kMaxOrder = 1u << 12;
constexpr std::uint64_t kMaxHistory = 1u << 20;

void write_payload(Writer& w, const forecast::ArForecaster& f,
                   const ForecastMeta& meta) {
  // [config]
  const forecast::ArConfig& cfg = f.config();
  w.u64(cfg.order);
  w.u64(cfg.window);
  w.u64(cfg.refit_every);
  w.u64(cfg.iterations);
  w.f64(cfg.lr);
  w.u64(cfg.seed);
  w.u64(cfg.min_history);
  w.f64(cfg.band_z);

  // [state]
  w.f64(f.scale());
  w.f64(f.residual_sigma());
  w.u8(f.fitted() ? 1 : 0);
  w.u64(f.observations());

  // [history]
  const std::vector<double>& h = f.history();
  w.u64(h.size());
  for (double v : h) w.f64(v);

  // [meta]
  w.str(meta.application);
  w.f64(meta.slo_ms);
  w.u64(meta.observations);
  w.f64(meta.created_sim_time);

  // [weights]
  const nn::Tensor& weight = f.weight();
  w.u64(weight.rows());
  for (std::size_t i = 0; i < weight.rows(); ++i) w.f64(weight(i, 0));
  w.f64(f.bias()(0, 0));
}

LoadedForecast read_payload(Reader& r) {
  // [config]
  forecast::ArConfig cfg;
  cfg.order = static_cast<std::size_t>(r.u64());
  cfg.window = static_cast<std::size_t>(r.u64());
  cfg.refit_every = static_cast<std::size_t>(r.u64());
  cfg.iterations = static_cast<std::size_t>(r.u64());
  cfg.lr = r.f64();
  cfg.seed = r.u64();
  cfg.min_history = static_cast<std::size_t>(r.u64());
  cfg.band_z = r.f64();
  if (cfg.order == 0 || cfg.order > kMaxOrder)
    throw CheckpointError{"config: implausible AR order"};
  if (cfg.window > kMaxHistory)
    throw CheckpointError{"config: implausible window"};

  // [state]
  const double scale = r.f64();
  const double sigma = r.f64();
  const bool fitted = r.u8() != 0;
  const std::uint64_t count = r.u64();

  // [history]
  const std::uint64_t hist_len = r.u64();
  if (hist_len > kMaxHistory) throw CheckpointError{"history: implausible length"};
  std::vector<double> history(static_cast<std::size_t>(hist_len));
  for (double& v : history) v = r.f64();

  // [meta]
  ForecastMeta meta;
  meta.application = r.str();
  meta.slo_ms = r.f64();
  meta.observations = r.u64();
  meta.created_sim_time = r.f64();

  // [weights]
  const std::uint64_t order = r.u64();
  if (order != cfg.order) throw CheckpointError{"weights: order mismatch"};
  nn::Tensor weight{static_cast<std::size_t>(order), 1};
  for (std::size_t i = 0; i < weight.rows(); ++i) weight(i, 0) = r.f64();
  nn::Tensor bias{1, 1};
  bias(0, 0) = r.f64();
  if (!r.exhausted()) throw CheckpointError{"trailing bytes after weights"};

  // The constructor may clamp a hand-edited config; restore() then
  // shape-checks the stored weights against the clamped order.
  forecast::ArForecaster model{cfg};
  try {
    model.restore(weight, bias, scale, sigma, fitted, std::move(history),
                  static_cast<std::size_t>(count));
  } catch (const std::exception& e) {
    throw CheckpointError{std::string{"weights: "} + e.what()};
  }
  return {std::move(model), std::move(meta)};
}

}  // namespace

void save_forecast_checkpoint(std::ostream& os, const forecast::ArForecaster& f,
                              const ForecastMeta& meta) {
  Writer payload;
  write_payload(payload, f, meta);
  const std::string& body = payload.buffer();

  Writer header;
  header.bytes(kMagic, sizeof kMagic);
  header.u32(kForecastFormatVersion);
  header.u32(kEndianTag);
  header.u64(body.size());

  os.write(header.buffer().data(),
           static_cast<std::streamsize>(header.buffer().size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  const std::uint32_t crc = crc32(body.data(), body.size());
  os.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (!os) throw CheckpointError{"write failed"};
}

void save_forecast_checkpoint_file(const std::string& path,
                                   const forecast::ArForecaster& f,
                                   const ForecastMeta& meta) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw CheckpointError{"cannot open " + path + " for writing"};
  save_forecast_checkpoint(os, f, meta);
}

LoadedForecast load_forecast_checkpoint(std::istream& is) {
  char magic[sizeof kMagic];
  if (!is.read(magic, sizeof magic)) throw CheckpointError{"truncated header"};
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw CheckpointError{"bad magic (not a .graffc file)"};

  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint64_t payload_size = 0;
  if (!is.read(reinterpret_cast<char*>(&version), sizeof version) ||
      !is.read(reinterpret_cast<char*>(&endian), sizeof endian) ||
      !is.read(reinterpret_cast<char*>(&payload_size), sizeof payload_size))
    throw CheckpointError{"truncated header"};
  if (version != kForecastFormatVersion)
    throw CheckpointError{"unsupported format version " + std::to_string(version)};
  if (endian != kEndianTag)
    throw CheckpointError{"endianness mismatch (file written on a foreign host)"};
  if (payload_size > (std::uint64_t{1} << 30))
    throw CheckpointError{"implausible payload size"};

  std::string body(static_cast<std::size_t>(payload_size), '\0');
  if (!is.read(body.data(), static_cast<std::streamsize>(body.size())))
    throw CheckpointError{"payload truncated"};

  std::uint32_t stored_crc = 0;
  if (!is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc))
    throw CheckpointError{"missing CRC"};
  if (stored_crc != crc32(body.data(), body.size()))
    throw CheckpointError{"CRC mismatch (corrupted file)"};

  Reader r{body.data(), body.size()};
  return read_payload(r);
}

LoadedForecast load_forecast_checkpoint_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw CheckpointError{"cannot open " + path};
  return load_forecast_checkpoint(is);
}

// ---- ForecastRegistry ------------------------------------------------------

ForecastRegistry::ForecastRegistry(std::string store_dir)
    : store_dir_{std::move(store_dir)} {}

std::string ForecastRegistry::checkpoint_path(const ModelKey& key,
                                              std::uint64_t version) const {
  if (store_dir_.empty()) return "";
  return store_dir_ + "/" + key.str() + ".v" + std::to_string(version) + ".graffc";
}

std::uint64_t ForecastRegistry::publish(const ModelKey& key,
                                        const forecast::ArForecaster& f,
                                        ForecastMeta meta) {
  // Deep-copy before taking the lock (model_registry.cpp rationale).
  auto copy = std::make_shared<forecast::ArForecaster>(f);
  meta.application = key.application;
  meta.slo_ms = key.slo_ms;
  meta.observations = f.observations();
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  const std::uint64_t version = e.next_version++;
  const std::string path = checkpoint_path(key, version);
  if (!path.empty()) save_forecast_checkpoint_file(path, *copy, meta);
  e.versions.push_back({version, std::move(meta), std::move(copy)});
  return version;
}

std::uint64_t ForecastRegistry::restore(const ModelKey& key,
                                        const std::string& checkpoint_path) {
  LoadedForecast loaded = load_forecast_checkpoint_file(checkpoint_path);
  return publish(key, loaded.model, std::move(loaded.meta));
}

const ForecastRegistry::Version* ForecastRegistry::find(
    const Entry& e, std::uint64_t version) const {
  for (const Version& v : e.versions)
    if (v.version == version) return &v;
  return nullptr;
}

void ForecastRegistry::sync_handles(Entry& e) {
  const Version* v = find(e, e.active);
  for (ForecastHandle* handle : e.handles)
    handle->swap(v != nullptr ? v->model : nullptr);
}

bool ForecastRegistry::promote(const ModelKey& key, std::uint64_t version) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (find(e, version) == nullptr) return false;
  if (e.active == version) return true;
  e.active = version;
  e.promote_history.push_back(version);
  sync_handles(e);
  return true;
}

bool ForecastRegistry::rollback(const ModelKey& key) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.promote_history.size() < 2) return false;
  e.promote_history.pop_back();
  e.active = e.promote_history.back();
  sync_handles(e);
  return true;
}

std::shared_ptr<forecast::ArForecaster> ForecastRegistry::active(
    const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return nullptr;
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->model : nullptr;
}

std::uint64_t ForecastRegistry::active_version(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  return it == entries_.end() ? 0 : it->second.active;
}

ForecastMeta ForecastRegistry::active_meta(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return {};
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->meta : ForecastMeta{};
}

std::vector<std::uint64_t> ForecastRegistry::versions(const ModelKey& key) const {
  std::vector<std::uint64_t> out;
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return out;
  for (const Version& v : it->second.versions) out.push_back(v.version);
  return out;
}

void ForecastRegistry::attach_handle(const ModelKey& key, ForecastHandle* handle) {
  if (handle == nullptr) return;
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  if (std::find(e.handles.begin(), e.handles.end(), handle) == e.handles.end())
    e.handles.push_back(handle);
  const Version* v = find(e, e.active);
  handle->swap(v != nullptr ? v->model : nullptr);
}

void ForecastRegistry::detach_handle(const ModelKey& key, ForecastHandle* handle) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return;
  auto& handles = it->second.handles;
  handles.erase(std::remove(handles.begin(), handles.end(), handle), handles.end());
}

}  // namespace graf::serve
