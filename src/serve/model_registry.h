// Versioned model store keyed by (application, SLO).
//
// The paper fine-tunes one latency model per SLO target (§5.3) and retrains
// when the workload leaves the trained region; the registry is where those
// models live. Every publish() creates a new immutable version holding a
// deep copy of the model plus its checkpoint metadata; promote() selects
// the version that serves traffic (swapping any attached ServingHandle);
// rollback() restores the previously promoted version. With a store
// directory configured, every published version is also persisted as a
// .grafck checkpoint so a restarted process can restore() it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/checkpoint.h"
#include "serve/serving_handle.h"

namespace graf::serve {

struct ModelKey {
  std::string application;
  double slo_ms = 0.0;

  /// Stable string form, used as map key and checkpoint file stem.
  std::string str() const;
};

struct VersionInfo {
  std::uint64_t version = 0;
  CheckpointMeta meta;
};

class ModelRegistry {
 public:
  /// `store_dir`, when non-empty, must be an existing directory; published
  /// versions are written there as "<key>.v<version>.grafck".
  explicit ModelRegistry(std::string store_dir = "");

  /// Store a new version (deep copy of `model`). Returns its version id
  /// (monotonic per key, starting at 1). Does not change what serves.
  std::uint64_t publish(const ModelKey& key, gnn::LatencyModel& model,
                        CheckpointMeta meta);

  /// Load a .grafck checkpoint and publish it under `key`.
  std::uint64_t restore(const ModelKey& key, const std::string& checkpoint_path);

  /// Make `version` the serving model for `key`; swaps the attached handle.
  /// Returns false if the version does not exist.
  bool promote(const ModelKey& key, std::uint64_t version);

  /// Re-promote the version that was serving before the current one.
  /// Returns false if there is no promotion history to unwind.
  bool rollback(const ModelKey& key);

  /// Currently promoted model (nullptr when nothing is promoted).
  std::shared_ptr<gnn::LatencyModel> active(const ModelKey& key) const;
  /// Currently promoted version id (0 when nothing is promoted).
  std::uint64_t active_version(const ModelKey& key) const;
  /// Metadata of the currently promoted version.
  CheckpointMeta active_meta(const ModelKey& key) const;

  std::vector<VersionInfo> versions(const ModelKey& key) const;

  /// Promotions and rollbacks keep `handle` pointing at the active model.
  void attach_handle(const ModelKey& key, ServingHandle* handle);

  /// Path a version's checkpoint is stored at ("" without a store dir).
  std::string checkpoint_path(const ModelKey& key, std::uint64_t version) const;

 private:
  struct Version {
    VersionInfo info;
    std::shared_ptr<gnn::LatencyModel> model;
  };
  struct Entry {
    std::vector<Version> versions;
    std::uint64_t next_version = 1;
    std::uint64_t active = 0;                 // 0 = none promoted
    std::vector<std::uint64_t> promote_history;  // promoted ids, oldest first
    ServingHandle* handle = nullptr;
  };

  const Version* find(const Entry& e, std::uint64_t version) const;
  void sync_handle(Entry& e);

  std::string store_dir_;
  std::map<std::string, Entry> entries_;
};

}  // namespace graf::serve
