// Versioned model store keyed by (application, SLO).
//
// The paper fine-tunes one latency model per SLO target (§5.3) and retrains
// when the workload leaves the trained region; the registry is where those
// models live. Every publish() creates a new immutable version holding a
// deep copy of the model plus its checkpoint metadata; promote() selects
// the version that serves traffic (swapping any attached ServingHandle);
// rollback() restores the previously promoted version. With a store
// directory configured, every published version is also persisted as a
// .grafck checkpoint so a restarted process can restore() it.
//
// Thread-safe: all public methods may be called concurrently (the fleet
// server makes publish/promote from trainer threads routine). Attached
// ServingHandles are swapped under the registry lock, so a reader that
// acquire()s mid-promote sees either the old or the new model, never a
// torn state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/checkpoint.h"
#include "serve/serving_handle.h"

namespace graf::serve {

struct ModelKey {
  std::string application;
  double slo_ms = 0.0;

  /// Stable string form, used as map key and checkpoint file stem.
  std::string str() const;
};

struct VersionInfo {
  std::uint64_t version = 0;
  CheckpointMeta meta;
};

class ModelRegistry {
 public:
  /// `store_dir`, when non-empty, must be an existing directory; published
  /// versions are written there as "<key>.v<version>.grafck".
  explicit ModelRegistry(std::string store_dir = "");

  /// Store a new version (deep copy of `model`). Returns its version id
  /// (monotonic per key, starting at 1). Does not change what serves.
  std::uint64_t publish(const ModelKey& key, gnn::LatencyModel& model,
                        CheckpointMeta meta);

  /// Load a .grafck checkpoint and publish it under `key`.
  std::uint64_t restore(const ModelKey& key, const std::string& checkpoint_path);

  /// Make `version` the serving model for `key`; swaps the attached handle.
  /// Returns false if the version does not exist.
  bool promote(const ModelKey& key, std::uint64_t version);

  /// Re-promote the version that was serving before the current one.
  /// Returns false if there is no promotion history to unwind.
  bool rollback(const ModelKey& key);

  /// Currently promoted model (nullptr when nothing is promoted).
  std::shared_ptr<gnn::LatencyModel> active(const ModelKey& key) const;
  /// Currently promoted version id (0 when nothing is promoted).
  std::uint64_t active_version(const ModelKey& key) const;
  /// Metadata of the currently promoted version.
  CheckpointMeta active_meta(const ModelKey& key) const;

  std::vector<VersionInfo> versions(const ModelKey& key) const;

  /// Promotions and rollbacks keep `handle` pointing at the active model.
  /// Any number of handles may be attached per key (one per fleet tenant
  /// sharing the model); attaching the same handle twice is a no-op.
  void attach_handle(const ModelKey& key, ServingHandle* handle);

  /// Stop syncing `handle` on promote/rollback. Callers whose handle
  /// outlives them (fleet tenants) must detach before the handle dies.
  void detach_handle(const ModelKey& key, ServingHandle* handle);

  /// Path a version's checkpoint is stored at ("" without a store dir).
  std::string checkpoint_path(const ModelKey& key, std::uint64_t version) const;

 private:
  struct Version {
    VersionInfo info;
    std::shared_ptr<gnn::LatencyModel> model;
  };
  struct Entry {
    std::vector<Version> versions;
    std::uint64_t next_version = 1;
    std::uint64_t active = 0;                 // 0 = none promoted
    std::vector<std::uint64_t> promote_history;  // promoted ids, oldest first
    /// Every attached handle swaps on promote/rollback. A single slot here
    /// once silently dropped the earlier tenant when two shared a key: its
    /// handle never swapped again, so it served a stale model forever and
    /// its plan-cache generation never bumped.
    std::vector<ServingHandle*> handles;
  };

  const Version* find(const Entry& e, std::uint64_t version) const;
  void sync_handles(Entry& e);

  std::string store_dir_;
  std::map<std::string, Entry> entries_;
  /// One coarse lock: publish/promote/rollback and the readers they race
  /// with are all map-and-vector bookkeeping (checkpoint IO aside, nothing
  /// here is hot). ServingHandle has its own mutex, so handle swaps inside
  /// sync_handles() nest safely. Fine-tuning happens *outside* the lock —
  /// the OnlineTrainer only enters the registry to publish the result.
  mutable std::mutex mu_;
};

}  // namespace graf::serve
