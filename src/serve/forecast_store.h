// Serving infrastructure for the learned workload forecaster
// (forecast::ArForecaster): binary checkpoints plus a versioned registry
// with promote/rollback — the forecaster participates in the same
// publish/promote/rollback lifecycle as the latency model (model_registry.h).
//
// Checkpoint format (".graffc") shares the .grafck framing (wire.h):
//
//   magic            8 bytes  "GRAFFCST"
//   format version   u32      kForecastFormatVersion
//   endianness tag   u32      0x01020304 written natively
//   payload size     u64      bytes between here and the CRC
//   payload          ...      config | state | history | meta | weights
//   crc32            u32      CRC-32 (IEEE 802.3) of the payload bytes
//
// The payload carries the retained observation window, so a restored
// forecaster predicts identically to the one that was saved — bit for bit —
// and is ready immediately instead of re-accumulating min_history ticks.
// Every failure mode raises CheckpointError naming the offending section.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "forecast/ar_forecaster.h"
#include "serve/checkpoint.h"
#include "serve/model_registry.h"

namespace graf::serve {

inline constexpr std::uint32_t kForecastFormatVersion = 1;

/// Provenance stored with every forecaster checkpoint.
struct ForecastMeta {
  std::string application;
  double slo_ms = 0.0;
  std::uint64_t observations = 0;  ///< series length consumed at save time
  double created_sim_time = 0.0;
};

void save_forecast_checkpoint(std::ostream& os, const forecast::ArForecaster& f,
                              const ForecastMeta& meta);
void save_forecast_checkpoint_file(const std::string& path,
                                   const forecast::ArForecaster& f,
                                   const ForecastMeta& meta);

struct LoadedForecast {
  forecast::ArForecaster model;
  ForecastMeta meta;
};

LoadedForecast load_forecast_checkpoint(std::istream& is);
LoadedForecast load_forecast_checkpoint_file(const std::string& path);

/// Hot-swappable handle to the forecaster currently in service — the
/// forecast twin of ServingHandle. A ForecastGate with an attached handle
/// acquires at the top of every plan_qps(), so registry promotes/rollbacks
/// land between control ticks without pausing the loop.
class ForecastHandle {
 public:
  using Ptr = std::shared_ptr<forecast::Forecaster>;

  ForecastHandle() = default;
  explicit ForecastHandle(Ptr initial) : active_{std::move(initial)} {}

  Ptr acquire() const {
    std::lock_guard lock{mu_};
    return active_;
  }
  Ptr swap(Ptr next) {
    std::lock_guard lock{mu_};
    active_.swap(next);
    ++swaps_;
    return next;
  }
  bool empty() const {
    std::lock_guard lock{mu_};
    return active_ == nullptr;
  }
  std::uint64_t swap_count() const {
    std::lock_guard lock{mu_};
    return swaps_;
  }

 private:
  mutable std::mutex mu_;
  Ptr active_;
  std::uint64_t swaps_ = 0;
};

/// Versioned forecaster store keyed by (application, SLO), mirroring
/// ModelRegistry's semantics: publish() deep-copies an immutable version,
/// promote() selects what serves (swapping attached ForecastHandles under
/// the lock), rollback() restores the previous promotion, and a store
/// directory persists every version as "<key>.v<version>.graffc".
/// Thread-safe.
class ForecastRegistry {
 public:
  explicit ForecastRegistry(std::string store_dir = "");

  std::uint64_t publish(const ModelKey& key, const forecast::ArForecaster& f,
                        ForecastMeta meta);
  std::uint64_t restore(const ModelKey& key, const std::string& checkpoint_path);
  bool promote(const ModelKey& key, std::uint64_t version);
  bool rollback(const ModelKey& key);

  std::shared_ptr<forecast::ArForecaster> active(const ModelKey& key) const;
  std::uint64_t active_version(const ModelKey& key) const;
  ForecastMeta active_meta(const ModelKey& key) const;
  std::vector<std::uint64_t> versions(const ModelKey& key) const;

  void attach_handle(const ModelKey& key, ForecastHandle* handle);
  void detach_handle(const ModelKey& key, ForecastHandle* handle);

  /// Path a version's checkpoint is stored at ("" without a store dir).
  std::string checkpoint_path(const ModelKey& key, std::uint64_t version) const;

 private:
  struct Version {
    std::uint64_t version = 0;
    ForecastMeta meta;
    std::shared_ptr<forecast::ArForecaster> model;
  };
  struct Entry {
    std::vector<Version> versions;
    std::uint64_t next_version = 1;
    std::uint64_t active = 0;  // 0 = none promoted
    std::vector<std::uint64_t> promote_history;
    std::vector<ForecastHandle*> handles;
  };

  const Version* find(const Entry& e, std::uint64_t version) const;
  void sync_handles(Entry& e);

  std::string store_dir_;
  std::map<std::string, Entry> entries_;
  mutable std::mutex mu_;
};

}  // namespace graf::serve
