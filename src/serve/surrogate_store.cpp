#include "serve/surrogate_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "serve/wire.h"

namespace graf::serve {

namespace {

using wire::Reader;
using wire::Writer;

constexpr char kMagic[8] = {'G', 'R', 'A', 'F', 'S', 'R', 'G', 'T'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Sanity bounds for corrupted length fields (wire.h rationale).
constexpr std::uint64_t kMaxNodes = 1u << 16;
constexpr std::uint64_t kMaxHidden = 1u << 16;
constexpr std::uint64_t kMaxLayers = 1u << 8;
constexpr std::uint64_t kMaxTensors = 1u << 10;
constexpr std::uint64_t kMaxTensorElems = 1u << 26;

void write_payload(Writer& w, gnn::SurrogateModel& model,
                   const SurrogateMeta& meta) {
  // [config]
  const gnn::SurrogateConfig& cfg = model.config();
  w.u64(model.node_count());
  w.u64(cfg.hidden);
  w.u64(cfg.hidden_layers);
  w.f64(cfg.dropout_p);

  // [scalers]
  const gnn::ScalerState s = model.scalers();
  w.f64(s.w_scale);
  w.f64(s.q_scale);
  w.f64(s.q_min_mc);
  w.f64(s.ratio_max);
  w.f64(s.label_ref);

  // [meta]
  w.str(meta.application);
  w.f64(meta.slo_ms);
  w.u64(meta.teacher_fingerprint);
  w.u64(meta.distill_samples);
  w.f64(meta.val_error_pct);
  w.f64(meta.created_sim_time);

  // [weights]
  const std::vector<nn::Tensor> state = model.state_dict();
  w.u64(state.size());
  for (const nn::Tensor& t : state) {
    w.u64(t.rows());
    w.u64(t.cols());
    for (std::size_t i = 0; i < t.size(); ++i) w.f64(t.data()[i]);
  }
}

LoadedSurrogate read_payload(Reader& r) {
  // [config]
  const std::uint64_t node_count = r.u64();
  gnn::SurrogateConfig cfg;
  cfg.hidden = static_cast<std::size_t>(r.u64());
  cfg.hidden_layers = static_cast<std::size_t>(r.u64());
  cfg.dropout_p = r.f64();
  if (node_count == 0 || node_count > kMaxNodes)
    throw CheckpointError{"config: implausible node count"};
  if (cfg.hidden == 0 || cfg.hidden > kMaxHidden)
    throw CheckpointError{"config: implausible hidden width"};
  if (cfg.hidden_layers > kMaxLayers)
    throw CheckpointError{"config: implausible layer count"};

  // [scalers]
  gnn::ScalerState s;
  s.w_scale = r.f64();
  s.q_scale = r.f64();
  s.q_min_mc = r.f64();
  s.ratio_max = r.f64();
  s.label_ref = r.f64();

  // [meta]
  SurrogateMeta meta;
  meta.application = r.str();
  meta.slo_ms = r.f64();
  meta.teacher_fingerprint = r.u64();
  meta.distill_samples = r.u64();
  meta.val_error_pct = r.f64();
  meta.created_sim_time = r.f64();

  // [weights]
  const std::uint64_t tensor_count = r.u64();
  if (tensor_count > kMaxTensors)
    throw CheckpointError{"weights: implausible tensor count"};
  std::vector<nn::Tensor> state;
  state.reserve(static_cast<std::size_t>(tensor_count));
  for (std::uint64_t t = 0; t < tensor_count; ++t) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    if (rows == 0 || cols == 0 || rows * cols > kMaxTensorElems)
      throw CheckpointError{"weights: implausible tensor shape"};
    nn::Tensor tensor{static_cast<std::size_t>(rows), static_cast<std::size_t>(cols)};
    for (std::size_t i = 0; i < tensor.size(); ++i) tensor.data()[i] = r.f64();
    state.push_back(std::move(tensor));
  }
  if (!r.exhausted()) throw CheckpointError{"trailing bytes after weights"};

  // The seed only shapes the discarded initial weights — load_state_dict
  // overwrites every parameter bit.
  gnn::SurrogateModel model{static_cast<std::size_t>(node_count), cfg, 1};
  model.set_scalers(s);
  try {
    model.load_state_dict(state);
  } catch (const std::exception& e) {
    throw CheckpointError{std::string{"weights: "} + e.what()};
  }
  return {std::move(model), std::move(meta)};
}

}  // namespace

void save_surrogate_checkpoint(std::ostream& os, gnn::SurrogateModel& model,
                               const SurrogateMeta& meta) {
  Writer payload;
  write_payload(payload, model, meta);
  const std::string& body = payload.buffer();

  Writer header;
  header.bytes(kMagic, sizeof kMagic);
  header.u32(kSurrogateFormatVersion);
  header.u32(kEndianTag);
  header.u64(body.size());

  os.write(header.buffer().data(),
           static_cast<std::streamsize>(header.buffer().size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  const std::uint32_t crc = crc32(body.data(), body.size());
  os.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (!os) throw CheckpointError{"write failed"};
}

void save_surrogate_checkpoint_file(const std::string& path,
                                    gnn::SurrogateModel& model,
                                    const SurrogateMeta& meta) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw CheckpointError{"cannot open " + path + " for writing"};
  save_surrogate_checkpoint(os, model, meta);
}

LoadedSurrogate load_surrogate_checkpoint(std::istream& is) {
  char magic[sizeof kMagic];
  if (!is.read(magic, sizeof magic)) throw CheckpointError{"truncated header"};
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw CheckpointError{"bad magic (not a .grafsg file)"};

  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint64_t payload_size = 0;
  if (!is.read(reinterpret_cast<char*>(&version), sizeof version) ||
      !is.read(reinterpret_cast<char*>(&endian), sizeof endian) ||
      !is.read(reinterpret_cast<char*>(&payload_size), sizeof payload_size))
    throw CheckpointError{"truncated header"};
  if (version != kSurrogateFormatVersion)
    throw CheckpointError{"unsupported format version " + std::to_string(version)};
  if (endian != kEndianTag)
    throw CheckpointError{"endianness mismatch (file written on a foreign host)"};
  if (payload_size > (std::uint64_t{1} << 30))
    throw CheckpointError{"implausible payload size"};

  std::string body(static_cast<std::size_t>(payload_size), '\0');
  if (!is.read(body.data(), static_cast<std::streamsize>(body.size())))
    throw CheckpointError{"payload truncated"};

  std::uint32_t stored_crc = 0;
  if (!is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc))
    throw CheckpointError{"missing CRC"};
  if (stored_crc != crc32(body.data(), body.size()))
    throw CheckpointError{"CRC mismatch (corrupted file)"};

  Reader r{body.data(), body.size()};
  return read_payload(r);
}

LoadedSurrogate load_surrogate_checkpoint_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw CheckpointError{"cannot open " + path};
  return load_surrogate_checkpoint(is);
}

// ---- SurrogateRegistry -----------------------------------------------------

SurrogateRegistry::SurrogateRegistry(std::string store_dir)
    : store_dir_{std::move(store_dir)} {}

std::string SurrogateRegistry::checkpoint_path(const ModelKey& key,
                                               std::uint64_t version) const {
  if (store_dir_.empty()) return "";
  return store_dir_ + "/" + key.str() + ".v" + std::to_string(version) + ".grafsg";
}

std::uint64_t SurrogateRegistry::publish(const ModelKey& key,
                                         gnn::SurrogateModel& model,
                                         SurrogateMeta meta) {
  // Deep-copy before taking the lock (model_registry.cpp rationale).
  auto copy = std::make_shared<gnn::SurrogateModel>(model.clone());
  meta.application = key.application;
  meta.slo_ms = key.slo_ms;
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  const std::uint64_t version = e.next_version++;
  const std::string path = checkpoint_path(key, version);
  if (!path.empty()) save_surrogate_checkpoint_file(path, *copy, meta);
  e.versions.push_back({version, std::move(meta), std::move(copy)});
  return version;
}

std::uint64_t SurrogateRegistry::restore(const ModelKey& key,
                                         const std::string& checkpoint_path) {
  LoadedSurrogate loaded = load_surrogate_checkpoint_file(checkpoint_path);
  return publish(key, loaded.model, std::move(loaded.meta));
}

const SurrogateRegistry::Version* SurrogateRegistry::find(
    const Entry& e, std::uint64_t version) const {
  for (const Version& v : e.versions)
    if (v.version == version) return &v;
  return nullptr;
}

void SurrogateRegistry::sync_handles(Entry& e) {
  const Version* v = find(e, e.active);
  for (SurrogateHandle* handle : e.handles)
    handle->swap(v != nullptr ? v->model : nullptr);
}

bool SurrogateRegistry::promote(const ModelKey& key, std::uint64_t version) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (find(e, version) == nullptr) return false;
  if (e.active == version) return true;
  e.active = version;
  e.promote_history.push_back(version);
  sync_handles(e);
  return true;
}

bool SurrogateRegistry::rollback(const ModelKey& key) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.promote_history.size() < 2) return false;
  e.promote_history.pop_back();
  e.active = e.promote_history.back();
  sync_handles(e);
  return true;
}

std::shared_ptr<gnn::SurrogateModel> SurrogateRegistry::active(
    const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return nullptr;
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->model : nullptr;
}

std::uint64_t SurrogateRegistry::active_version(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  return it == entries_.end() ? 0 : it->second.active;
}

SurrogateMeta SurrogateRegistry::active_meta(const ModelKey& key) const {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return {};
  const Version* v = find(it->second, it->second.active);
  return v != nullptr ? v->meta : SurrogateMeta{};
}

std::vector<std::uint64_t> SurrogateRegistry::versions(const ModelKey& key) const {
  std::vector<std::uint64_t> out;
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return out;
  for (const Version& v : it->second.versions) out.push_back(v.version);
  return out;
}

void SurrogateRegistry::attach_handle(const ModelKey& key, SurrogateHandle* handle) {
  if (handle == nullptr) return;
  std::lock_guard lock{mu_};
  Entry& e = entries_[key.str()];
  if (std::find(e.handles.begin(), e.handles.end(), handle) == e.handles.end())
    e.handles.push_back(handle);
  const Version* v = find(e, e.active);
  handle->swap(v != nullptr ? v->model : nullptr);
}

void SurrogateRegistry::detach_handle(const ModelKey& key, SurrogateHandle* handle) {
  std::lock_guard lock{mu_};
  auto it = entries_.find(key.str());
  if (it == entries_.end()) return;
  auto& handles = it->second.handles;
  handles.erase(std::remove(handles.begin(), handles.end(), handle), handles.end());
}

}  // namespace graf::serve
