// Drift-triggered online fine-tuning (paper §5.3 retraining story; LSRAM /
// MSARS-style sliding-window updates).
//
// The trainer watches the serving model's live prediction error on every
// streamed sample (the SampleCollector's sink feeds it). When the error
// EWMA climbs clearly above the promoted model's validation error — the
// workload drifted out of the trained region — it fine-tunes a clone of the
// serving model on a sliding window of recent samples, re-validates the
// candidate against the current model on an interleaved holdout, and only
// then publishes + promotes it through the ModelRegistry, which hot-swaps
// the attached ServingHandle between allocation decisions. A candidate that
// regresses on the holdout is discarded (`rejects`); a promoted model whose
// live error then worsens is automatically rolled back to the previous
// version (`rollbacks`).
#pragma once

#include <cstdint>
#include <deque>

#include "serve/model_registry.h"
#include "serve/serving_handle.h"
#include "telemetry/metrics.h"

namespace graf::serve {

struct OnlineTrainerConfig {
  std::size_t window_capacity = 1024;  ///< sliding sample window
  std::size_t min_samples = 128;       ///< window fill before fine-tuning
  /// Every k-th window sample (k = 1/holdout_fraction) is held out of
  /// fine-tuning and used to validate candidate vs. incumbent.
  double holdout_fraction = 0.25;
  double ewma_alpha = 0.08;            ///< live |%error| EWMA smoothing
  /// Drift when EWMA > max(drift_factor * promoted validation error,
  /// drift_floor_pct).
  double drift_factor = 2.5;
  double drift_floor_pct = 15.0;
  std::size_t cooldown = 64;           ///< samples between fine-tune attempts
  /// Promote only when candidate holdout error <= margin * incumbent error.
  double promote_margin = 1.0;
  /// Post-promotion watchdog: over the next `watch_samples` samples, roll
  /// back if the EWMA exceeds regress_factor * its value at promotion AND
  /// the drift floor — live error that would not even register as drift
  /// never triggers a rollback.
  std::size_t watch_samples = 64;
  double regress_factor = 1.5;
  /// Fine-tune budget — a short warm-start run, not a from-scratch train.
  gnn::TrainConfig fine_tune = {.iterations = 1500,
                                .batch_size = 64,
                                .lr = 1e-3,
                                .lr_decay_every = 500,
                                .eval_every = 150,
                                .seed = 9};
};

struct OnlineTrainerStats {
  std::uint64_t samples_seen = 0;
  std::uint64_t drift_events = 0;  ///< EWMA threshold crossings
  std::uint64_t fine_tunes = 0;    ///< background training runs
  std::uint64_t promotions = 0;    ///< candidates that passed holdout validation
  std::uint64_t rejects = 0;       ///< candidates discarded at the holdout gate
  std::uint64_t rollbacks = 0;     ///< promoted models unwound by the watchdog
  double error_ewma_pct = 0.0;     ///< live prediction error EWMA (|%|)
  double baseline_error_pct = 0.0; ///< promoted model's validation error
};

class OnlineTrainer {
 public:
  /// `key` must have a promoted model in `registry`; `handle` should be the
  /// one attached to the registry for that key (it is re-read after swaps).
  OnlineTrainer(ModelRegistry& registry, ServingHandle& handle, ModelKey key,
                OnlineTrainerConfig cfg);

  /// Feed one live observation at simulation time `now`. Returns true when
  /// this sample triggered a model swap (promotion or rollback).
  bool ingest(const gnn::Sample& sample, double now);

  const OnlineTrainerStats& stats() const { return stats_; }
  bool drifted() const { return drifted_; }
  double drift_threshold_pct() const;
  std::size_t window_size() const { return window_.size(); }

  /// Publish serving telemetry: counters `serve.drift_events`,
  /// `serve.fine_tunes`, `serve.promotions`, `serve.rejects`,
  /// `serve.rollbacks`; gauges `serve.error_ewma_pct` (the live drift
  /// score), `serve.baseline_error_pct`, `serve.drift_threshold_pct`; and
  /// the `serve.fine_tune_us` wall-time histogram. nullptr detaches.
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  bool fine_tune_and_maybe_promote(double now);
  void adopt_active_baseline();
  void sync_gauges();

  ModelRegistry& registry_;
  ServingHandle& handle_;
  ModelKey key_;
  OnlineTrainerConfig cfg_;

  std::deque<gnn::Sample> window_;
  OnlineTrainerStats stats_;
  bool drifted_ = false;
  std::size_t since_attempt_ = 0;
  // Post-promotion watchdog state.
  std::size_t watch_left_ = 0;
  double ewma_at_promotion_ = 0.0;
  // Telemetry instruments (nullptr while detached).
  telemetry::Counter* tel_drifts_ = nullptr;
  telemetry::Counter* tel_fine_tunes_ = nullptr;
  telemetry::Counter* tel_promotions_ = nullptr;
  telemetry::Counter* tel_rejects_ = nullptr;
  telemetry::Counter* tel_rollbacks_ = nullptr;
  telemetry::Gauge* tel_ewma_ = nullptr;
  telemetry::Gauge* tel_baseline_ = nullptr;
  telemetry::Gauge* tel_threshold_ = nullptr;
  telemetry::LogHistogram* tel_fine_tune_timer_ = nullptr;
};

}  // namespace graf::serve
