#include "serve/online_trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/profiler.h"

namespace graf::serve {

OnlineTrainer::OnlineTrainer(ModelRegistry& registry, ServingHandle& handle,
                             ModelKey key, OnlineTrainerConfig cfg)
    : registry_{registry}, handle_{handle}, key_{std::move(key)}, cfg_{cfg} {
  if (registry_.active(key_) == nullptr)
    throw std::invalid_argument{"OnlineTrainer: no promoted model for key"};
  if (cfg_.holdout_fraction <= 0.0 || cfg_.holdout_fraction >= 1.0)
    throw std::invalid_argument{"OnlineTrainer: holdout_fraction must be in (0,1)"};
  adopt_active_baseline();
  stats_.error_ewma_pct = stats_.baseline_error_pct;
}

double OnlineTrainer::drift_threshold_pct() const {
  return std::max(cfg_.drift_factor * stats_.baseline_error_pct,
                  cfg_.drift_floor_pct);
}

void OnlineTrainer::adopt_active_baseline() {
  stats_.baseline_error_pct = registry_.active_meta(key_).val_error_pct;
}

void OnlineTrainer::set_metrics(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tel_drifts_ = tel_fine_tunes_ = tel_promotions_ = tel_rejects_ = tel_rollbacks_ =
        nullptr;
    tel_ewma_ = tel_baseline_ = tel_threshold_ = nullptr;
    tel_fine_tune_timer_ = nullptr;
    return;
  }
  tel_drifts_ = &registry->counter("serve.drift_events");
  tel_fine_tunes_ = &registry->counter("serve.fine_tunes");
  tel_promotions_ = &registry->counter("serve.promotions");
  tel_rejects_ = &registry->counter("serve.rejects");
  tel_rollbacks_ = &registry->counter("serve.rollbacks");
  tel_ewma_ = &registry->gauge("serve.error_ewma_pct");
  tel_baseline_ = &registry->gauge("serve.baseline_error_pct");
  tel_threshold_ = &registry->gauge("serve.drift_threshold_pct");
  tel_fine_tune_timer_ = &registry->histogram("serve.fine_tune_us");
  sync_gauges();
}

void OnlineTrainer::sync_gauges() {
  if (tel_ewma_ == nullptr) return;
  tel_ewma_->set(stats_.error_ewma_pct);
  tel_baseline_->set(stats_.baseline_error_pct);
  tel_threshold_->set(drift_threshold_pct());
}

bool OnlineTrainer::ingest(const gnn::Sample& sample, double now) {
  auto model = handle_.acquire();
  if (model == nullptr) throw std::runtime_error{"OnlineTrainer: empty serving handle"};

  const double pred = model->predict(sample.workload, sample.quota);
  const double err_pct =
      std::abs(pred - sample.latency_ms) / std::max(sample.latency_ms, 1e-9) * 100.0;
  stats_.error_ewma_pct += cfg_.ewma_alpha * (err_pct - stats_.error_ewma_pct);
  ++stats_.samples_seen;
  ++since_attempt_;

  window_.push_back(sample);
  while (window_.size() > cfg_.window_capacity) window_.pop_front();

  // Post-promotion watchdog: a candidate that validated well on the holdout
  // but regresses on live traffic is unwound to the previous version.
  if (watch_left_ > 0) {
    --watch_left_;
    // The promotion baseline is the candidate's holdout error, which is
    // optimistic (select_best picks the holdout minimizer), so a healthy
    // model's live error can sit a constant factor above it. Floor the
    // rollback threshold at the drift floor: a model whose live EWMA would
    // not even register as drift is serving acceptably and must not be
    // unwound.
    const double regress_limit =
        std::max(cfg_.regress_factor * std::max(ewma_at_promotion_, 1e-9),
                 cfg_.drift_floor_pct);
    if (stats_.error_ewma_pct > regress_limit) {
      watch_left_ = 0;
      if (registry_.rollback(key_)) {
        ++stats_.rollbacks;
        if (tel_rollbacks_ != nullptr) tel_rollbacks_->add();
        adopt_active_baseline();
        stats_.error_ewma_pct = stats_.baseline_error_pct;
        drifted_ = false;
        since_attempt_ = 0;
        sync_gauges();
        return true;
      }
    }
  }

  if (!drifted_ && stats_.error_ewma_pct > drift_threshold_pct()) {
    drifted_ = true;
    ++stats_.drift_events;
    if (tel_drifts_ != nullptr) tel_drifts_->add();
  }

  sync_gauges();
  if (drifted_ && window_.size() >= cfg_.min_samples &&
      since_attempt_ >= cfg_.cooldown) {
    since_attempt_ = 0;
    return fine_tune_and_maybe_promote(now);
  }
  return false;
}

bool OnlineTrainer::fine_tune_and_maybe_promote(double now) {
  auto active = handle_.acquire();

  // Interleaved split: every k-th sample validates, the rest fine-tune.
  // Both halves span the whole window, so the holdout reflects the same
  // regime mix the candidate trains on.
  const auto k = static_cast<std::size_t>(
      std::max(2.0, std::round(1.0 / cfg_.holdout_fraction)));
  gnn::Dataset train;
  gnn::Dataset holdout;
  std::size_t i = 0;
  for (const gnn::Sample& s : window_) {
    if (i++ % k == 0) holdout.push_back(s);
    else train.push_back(s);
  }
  if (train.empty() || holdout.empty()) return false;

  gnn::LatencyModel candidate = active->clone();
  {
    telemetry::ScopedTimer timer{tel_fine_tune_timer_};
    candidate.fit(train, holdout, cfg_.fine_tune);
  }
  ++stats_.fine_tunes;
  if (tel_fine_tunes_ != nullptr) tel_fine_tunes_->add();

  const double cand_err = candidate.evaluate_accuracy(holdout).mean_abs_pct_error;
  const double incumbent_err = active->evaluate_accuracy(holdout).mean_abs_pct_error;
  if (cand_err > cfg_.promote_margin * incumbent_err) {
    ++stats_.rejects;  // candidate regressed on the holdout: keep serving
    if (tel_rejects_ != nullptr) tel_rejects_->add();
    return false;
  }

  CheckpointMeta meta;
  meta.train_samples = train.size();
  meta.val_error_pct = cand_err;
  meta.created_sim_time = now;
  const std::uint64_t version = registry_.publish(key_, candidate, std::move(meta));
  registry_.promote(key_, version);
  ++stats_.promotions;
  if (tel_promotions_ != nullptr) tel_promotions_->add();

  adopt_active_baseline();
  stats_.error_ewma_pct = stats_.baseline_error_pct;
  ewma_at_promotion_ = std::max(stats_.error_ewma_pct, 1e-9);
  watch_left_ = cfg_.watch_samples;
  drifted_ = false;
  sync_gauges();
  return true;
}

}  // namespace graf::serve
