// Shared byte-level (de)serialization for the .grafck / .graffc checkpoint
// formats: a little append-only Writer and a bounds-checked Reader over one
// contiguous payload. Factored out of checkpoint.cpp when the forecast
// checkpoint (forecast_store.cpp) became the second format sharing the
// framing (magic | version | endian tag | payload size | payload | crc32).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "serve/checkpoint.h"

namespace graf::serve::wire {

// Payload sanity bounds: a corrupted length field must fail fast with a
// diagnostic instead of driving a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxStringLen = 1u << 16;
inline constexpr std::uint64_t kMaxTensorElems = 1u << 28;

/// Appends raw fields to a byte buffer.
class Writer {
 public:
  void bytes(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i32(std::int32_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Reads raw fields from a byte buffer; throws CheckpointError on overrun.
class Reader {
 public:
  Reader(const char* data, std::size_t len) : data_{data}, len_{len} {}

  void bytes(void* out, std::size_t n) {
    if (pos_ + n > len_) throw CheckpointError{"payload truncated"};
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > kMaxStringLen) throw CheckpointError{"implausible string length"};
    std::string s(static_cast<std::size_t>(n), '\0');
    bytes(s.data(), s.size());
    return s;
  }

  bool exhausted() const { return pos_ == len_; }

 private:
  template <typename T>
  T read() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }

  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace graf::serve::wire
