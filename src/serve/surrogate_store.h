// Serving infrastructure for the distilled fast-path surrogate
// (gnn::SurrogateModel): binary checkpoints plus a versioned registry with
// promote/rollback — the surrogate participates in the same
// publish/promote/rollback lifecycle as the latency model and the
// forecaster (model_registry.h / forecast_store.h), and the tiered planner
// (core/tiered_planner.h) bumps its plan-cache generation whenever the
// served instance changes.
//
// Checkpoint format (".grafsg") shares the .grafck framing (wire.h):
//
//   magic            8 bytes  "GRAFSRGT"
//   format version   u32      kSurrogateFormatVersion
//   endianness tag   u32      0x01020304 written natively
//   payload size     u64      bytes between here and the CRC
//   payload          ...      config | scalers | meta | weights
//   crc32            u32      CRC-32 (IEEE 802.3) of the payload bytes
//
// The payload carries the teacher's scaler bits and every weight bit, so a
// restored surrogate predicts — and therefore plans — bit-identically to
// the one that was saved. Every failure mode raises CheckpointError naming
// the offending section.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gnn/surrogate_model.h"
#include "serve/checkpoint.h"
#include "serve/model_registry.h"

namespace graf::serve {

inline constexpr std::uint32_t kSurrogateFormatVersion = 1;

/// Provenance stored with every surrogate checkpoint.
struct SurrogateMeta {
  std::string application;
  double slo_ms = 0.0;
  /// Fingerprint of the teacher the surrogate was distilled from
  /// (gnn::BatchedLatencyModel::fingerprint) — ties a checkpoint to the
  /// exact full-GNN it approximates.
  std::uint64_t teacher_fingerprint = 0;
  std::uint64_t distill_samples = 0;
  double val_error_pct = 0.0;  ///< held-out surrogate-vs-teacher MAPE
  double created_sim_time = 0.0;
};

void save_surrogate_checkpoint(std::ostream& os, gnn::SurrogateModel& model,
                               const SurrogateMeta& meta);
void save_surrogate_checkpoint_file(const std::string& path,
                                    gnn::SurrogateModel& model,
                                    const SurrogateMeta& meta);

struct LoadedSurrogate {
  gnn::SurrogateModel model;
  SurrogateMeta meta;
};

LoadedSurrogate load_surrogate_checkpoint(std::istream& is);
LoadedSurrogate load_surrogate_checkpoint_file(const std::string& path);

/// Hot-swappable handle to the surrogate currently in service — the
/// surrogate twin of ServingHandle/ForecastHandle. A TieredPlanner with an
/// attached handle acquires at the top of every solve, so registry
/// promotes/rollbacks land between control ticks without pausing the loop.
class SurrogateHandle {
 public:
  using Ptr = std::shared_ptr<gnn::SurrogateModel>;

  SurrogateHandle() = default;
  explicit SurrogateHandle(Ptr initial) : active_{std::move(initial)} {}

  Ptr acquire() const {
    std::lock_guard lock{mu_};
    return active_;
  }
  Ptr swap(Ptr next) {
    std::lock_guard lock{mu_};
    active_.swap(next);
    ++swaps_;
    return next;
  }
  bool empty() const {
    std::lock_guard lock{mu_};
    return active_ == nullptr;
  }
  std::uint64_t swap_count() const {
    std::lock_guard lock{mu_};
    return swaps_;
  }

 private:
  mutable std::mutex mu_;
  Ptr active_;
  std::uint64_t swaps_ = 0;
};

/// Versioned surrogate store keyed by (application, SLO), mirroring
/// ModelRegistry's semantics: publish() deep-copies an immutable version,
/// promote() selects what serves (swapping attached SurrogateHandles under
/// the lock), rollback() restores the previous promotion, and a store
/// directory persists every version as "<key>.v<version>.grafsg".
/// Thread-safe.
class SurrogateRegistry {
 public:
  explicit SurrogateRegistry(std::string store_dir = "");

  std::uint64_t publish(const ModelKey& key, gnn::SurrogateModel& model,
                        SurrogateMeta meta);
  std::uint64_t restore(const ModelKey& key, const std::string& checkpoint_path);
  bool promote(const ModelKey& key, std::uint64_t version);
  bool rollback(const ModelKey& key);

  std::shared_ptr<gnn::SurrogateModel> active(const ModelKey& key) const;
  std::uint64_t active_version(const ModelKey& key) const;
  SurrogateMeta active_meta(const ModelKey& key) const;
  std::vector<std::uint64_t> versions(const ModelKey& key) const;

  void attach_handle(const ModelKey& key, SurrogateHandle* handle);
  void detach_handle(const ModelKey& key, SurrogateHandle* handle);

  /// Path a version's checkpoint is stored at ("" without a store dir).
  std::string checkpoint_path(const ModelKey& key, std::uint64_t version) const;

 private:
  struct Version {
    std::uint64_t version = 0;
    SurrogateMeta meta;
    std::shared_ptr<gnn::SurrogateModel> model;
  };
  struct Entry {
    std::vector<Version> versions;
    std::uint64_t next_version = 1;
    std::uint64_t active = 0;  // 0 = none promoted
    std::vector<std::uint64_t> promote_history;
    std::vector<SurrogateHandle*> handles;
  };

  const Version* find(const Entry& e, std::uint64_t version) const;
  void sync_handles(Entry& e);

  std::string store_dir_;
  std::map<std::string, Entry> entries_;
  mutable std::mutex mu_;
};

}  // namespace graf::serve
