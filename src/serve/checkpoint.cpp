#include "serve/checkpoint.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "serve/wire.h"

namespace graf::serve {

namespace {

using wire::Reader;
using wire::Writer;

constexpr char kMagic[8] = {'G', 'R', 'A', 'F', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Payload sanity bounds: a corrupted length field must fail fast with a
// diagnostic instead of driving a multi-gigabyte allocation.
constexpr std::uint64_t kMaxNodes = 1u << 20;
constexpr std::uint64_t kMaxParams = 1u << 20;
constexpr std::uint64_t kMaxTensorElems = wire::kMaxTensorElems;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void write_payload(Writer& w, gnn::LatencyModel& model, const CheckpointMeta& meta) {
  // [config]
  const gnn::MpnnConfig& cfg = model.mpnn_config();
  w.u64(cfg.node_features);
  w.u64(cfg.embed_dim);
  w.u64(cfg.mpnn_hidden);
  w.u64(cfg.readout_hidden);
  w.u64(cfg.message_steps);
  w.f64(cfg.dropout_p);
  w.u8(cfg.use_mpnn ? 1 : 0);

  // [graph]
  const auto& names = model.node_names();
  const auto& parents = model.graph_parents();
  w.u64(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    w.str(names[i]);
    w.u64(parents[i].size());
    for (int p : parents[i]) w.i32(p);
  }

  // [scalers]
  const gnn::ScalerState s = model.scalers();
  w.f64(s.w_scale);
  w.f64(s.q_scale);
  w.f64(s.q_min_mc);
  w.f64(s.ratio_max);
  w.f64(s.label_ref);

  // [meta]
  w.str(meta.application);
  w.f64(meta.slo_ms);
  w.u64(meta.train_samples);
  w.f64(meta.val_error_pct);
  w.f64(meta.created_sim_time);

  // [params]
  const auto state = model.state_dict();
  w.u64(state.size());
  for (const nn::Tensor& t : state) {
    w.u64(t.rows());
    w.u64(t.cols());
    w.bytes(t.data(), t.size() * sizeof(double));
  }
}

LoadedCheckpoint read_payload(Reader& r) {
  // [config]
  gnn::MpnnConfig cfg;
  cfg.node_features = static_cast<std::size_t>(r.u64());
  cfg.embed_dim = static_cast<std::size_t>(r.u64());
  cfg.mpnn_hidden = static_cast<std::size_t>(r.u64());
  cfg.readout_hidden = static_cast<std::size_t>(r.u64());
  cfg.message_steps = static_cast<std::size_t>(r.u64());
  cfg.dropout_p = r.f64();
  cfg.use_mpnn = r.u8() != 0;
  if (cfg.node_features != gnn::LatencyModel::kNodeFeatures)
    throw CheckpointError{"config: unexpected node feature count"};

  // [graph]
  const std::uint64_t node_count = r.u64();
  if (node_count == 0 || node_count > kMaxNodes)
    throw CheckpointError{"graph: implausible node count"};
  gnn::Dag graph;
  std::vector<std::vector<int>> parents(static_cast<std::size_t>(node_count));
  for (std::uint64_t i = 0; i < node_count; ++i) {
    graph.add_node(r.str());
    const std::uint64_t np = r.u64();
    if (np > node_count) throw CheckpointError{"graph: implausible parent count"};
    for (std::uint64_t p = 0; p < np; ++p) {
      const std::int32_t parent = r.i32();
      if (parent < 0 || static_cast<std::uint64_t>(parent) >= node_count)
        throw CheckpointError{"graph: parent index out of range"};
      parents[static_cast<std::size_t>(i)].push_back(parent);
    }
  }
  for (std::size_t child = 0; child < parents.size(); ++child)
    for (int parent : parents[child]) graph.add_edge(parent, static_cast<int>(child));

  // [scalers]
  gnn::ScalerState scalers;
  scalers.w_scale = r.f64();
  scalers.q_scale = r.f64();
  scalers.q_min_mc = r.f64();
  scalers.ratio_max = r.f64();
  scalers.label_ref = r.f64();

  // [meta]
  CheckpointMeta meta;
  meta.application = r.str();
  meta.slo_ms = r.f64();
  meta.train_samples = r.u64();
  meta.val_error_pct = r.f64();
  meta.created_sim_time = r.f64();

  // [params]
  const std::uint64_t param_count = r.u64();
  if (param_count > kMaxParams) throw CheckpointError{"params: implausible count"};
  std::vector<nn::Tensor> state;
  state.reserve(static_cast<std::size_t>(param_count));
  for (std::uint64_t i = 0; i < param_count; ++i) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    if (rows == 0 || cols == 0 || rows * cols > kMaxTensorElems)
      throw CheckpointError{"params: implausible tensor shape"};
    nn::Tensor t{static_cast<std::size_t>(rows), static_cast<std::size_t>(cols)};
    r.bytes(t.data(), t.size() * sizeof(double));
    state.push_back(std::move(t));
  }
  if (!r.exhausted()) throw CheckpointError{"trailing bytes after params"};

  // The weight-initialization seed is irrelevant: every weight is
  // immediately overwritten from the checkpoint state.
  gnn::LatencyModel model{graph, cfg, /*seed=*/1};
  model.set_scalers(scalers);
  try {
    model.load_state_dict(state);
  } catch (const std::runtime_error& e) {
    throw CheckpointError{std::string{"params: "} + e.what()};
  }
  return {std::move(model), std::move(meta)};
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void save_checkpoint(std::ostream& os, gnn::LatencyModel& model,
                     const CheckpointMeta& meta) {
  Writer payload;
  write_payload(payload, model, meta);
  const std::string& body = payload.buffer();

  Writer header;
  header.bytes(kMagic, sizeof kMagic);
  header.u32(kCheckpointFormatVersion);
  header.u32(kEndianTag);
  header.u64(body.size());

  os.write(header.buffer().data(),
           static_cast<std::streamsize>(header.buffer().size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  const std::uint32_t crc = crc32(body.data(), body.size());
  os.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (!os) throw CheckpointError{"write failed"};
}

void save_checkpoint_file(const std::string& path, gnn::LatencyModel& model,
                          const CheckpointMeta& meta) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw CheckpointError{"cannot open " + path + " for writing"};
  save_checkpoint(os, model, meta);
}

LoadedCheckpoint load_checkpoint(std::istream& is) {
  char magic[sizeof kMagic];
  if (!is.read(magic, sizeof magic)) throw CheckpointError{"truncated header"};
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw CheckpointError{"bad magic (not a .grafck file)"};

  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint64_t payload_size = 0;
  if (!is.read(reinterpret_cast<char*>(&version), sizeof version) ||
      !is.read(reinterpret_cast<char*>(&endian), sizeof endian) ||
      !is.read(reinterpret_cast<char*>(&payload_size), sizeof payload_size))
    throw CheckpointError{"truncated header"};
  if (version != kCheckpointFormatVersion)
    throw CheckpointError{"unsupported format version " + std::to_string(version)};
  if (endian != kEndianTag)
    throw CheckpointError{"endianness mismatch (file written on a foreign host)"};
  if (payload_size > (std::uint64_t{1} << 34))
    throw CheckpointError{"implausible payload size"};

  std::string body(static_cast<std::size_t>(payload_size), '\0');
  if (!is.read(body.data(), static_cast<std::streamsize>(body.size())))
    throw CheckpointError{"payload truncated"};

  std::uint32_t stored_crc = 0;
  if (!is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc))
    throw CheckpointError{"missing CRC"};
  const std::uint32_t actual_crc = crc32(body.data(), body.size());
  if (stored_crc != actual_crc) throw CheckpointError{"CRC mismatch (corrupted file)"};

  Reader r{body.data(), body.size()};
  try {
    return read_payload(r);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // e.g. Dag reconstruction rejecting a crafted payload that passed CRC.
    throw CheckpointError{e.what()};
  }
}

LoadedCheckpoint load_checkpoint_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw CheckpointError{"cannot open " + path};
  return load_checkpoint(is);
}

}  // namespace graf::serve
