#include "trace/span.h"

// RequestTrace is a plain record; its behaviour lives inline in span.h.
// This translation unit anchors the header for build hygiene.
