// Sliding time window of (timestamp, value) samples with percentile queries.
//
// Used for per-service latencies (FIRM-like signals), end-to-end tail
// latency measurement, and perceived-workload reporting. Old samples are
// pruned against a horizon on insertion, bounding memory on long runs.
//
// Percentiles are exact (linear interpolation between closest ranks, like
// common/stats.h). The historical implementation copied and sorted the
// window on every query; queries now go through a sorted cache keyed on the
// `since` cutoff, so the per-control-tick pattern — several ranks over the
// same window, e.g. FIRM's p50+p95 — sorts once and the telemetry scrape
// loop's repeated queries are O(1) when no sample arrived in between.
// Timestamps are expected non-decreasing (the event-driven simulator only
// moves forward); out-of-order inserts are still correct, they just drop
// the range queries back to a linear scan.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/units.h"

namespace graf::trace {

class LatencyWindow {
 public:
  /// Keep samples no older than `horizon` seconds behind the latest insert.
  explicit LatencyWindow(Seconds horizon = 120.0);

  void add(Seconds t, double value);

  /// Drop samples with timestamp < t.
  void prune_before(Seconds t);

  /// Percentile over samples in [since, +inf). Throws if empty.
  double percentile_since(Seconds since, double rank) const;

  /// Percentile over the whole retained window.
  double percentile(double rank) const;

  double mean_since(Seconds since) const;
  std::size_t count_since(Seconds since) const;
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear();

 private:
  /// Index of the first sample with timestamp >= t by binary search.
  /// Only valid while `time_ordered_` holds.
  std::size_t first_at_or_after(Seconds t) const;

  Seconds horizon_;
  std::deque<std::pair<Seconds, double>> samples_;
  bool time_ordered_ = true;
  // Sorted-values cache for percentile queries; invalidated by mutation,
  // keyed on the `since` cutoff so multi-rank queries share one sort.
  mutable std::vector<double> cache_;
  mutable Seconds cache_since_ = 0.0;
  mutable bool cache_valid_ = false;
};

}  // namespace graf::trace
