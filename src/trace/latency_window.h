// Sliding time window of (timestamp, value) samples with percentile queries.
//
// Used for per-service latencies (FIRM-like signals), end-to-end tail
// latency measurement, and perceived-workload reporting. Old samples are
// pruned against a horizon on insertion, bounding memory on long runs.
#pragma once

#include <cstddef>
#include <deque>

#include "common/units.h"

namespace graf::trace {

class LatencyWindow {
 public:
  /// Keep samples no older than `horizon` seconds behind the latest insert.
  explicit LatencyWindow(Seconds horizon = 120.0);

  void add(Seconds t, double value);

  /// Drop samples with timestamp < t.
  void prune_before(Seconds t);

  /// Percentile over samples in [since, +inf). Throws if empty.
  double percentile_since(Seconds since, double rank) const;

  /// Percentile over the whole retained window.
  double percentile(double rank) const;

  double mean_since(Seconds since) const;
  std::size_t count_since(Seconds since) const;
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear() { samples_.clear(); }

 private:
  Seconds horizon_;
  std::deque<std::pair<Seconds, double>> samples_;
};

}  // namespace graf::trace
