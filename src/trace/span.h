// Trace records, the simulator's stand-in for Jaeger data (paper §3.2).
//
// A RequestTrace summarizes one front-end request: which API it was, when
// it started/ended, and how many times it visited each microservice (the
// per-API fan-out the workload analyzer consumes in §3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace graf::trace {

struct RequestTrace {
  int api = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
  /// False when any call in the tree was dropped (queue timeout) — the
  /// client saw an error, not a latency.
  bool ok = true;
  /// visits[s] = number of requests service s handled for this front-end
  /// request (0 when a probabilistic branch skipped it).
  std::vector<std::uint32_t> visits;

  double e2e_ms() const { return (end - start) * 1000.0; }
};

}  // namespace graf::trace
