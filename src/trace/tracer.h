// Trace collector (the simulator's Jaeger, paper §3.2).
//
// Keeps a bounded history of completed request traces per API and answers
// the workload analyzer's question: "per front-end request of API a, how
// many requests does microservice i receive?" — reported at a percentile
// rank (the paper uses the 90%-ile of the per-request history, §3.3).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "trace/span.h"

namespace graf::trace {

class Tracer {
 public:
  Tracer(std::size_t api_count, std::size_t service_count,
         std::size_t capacity_per_api = 4096);

  void record(RequestTrace t);

  std::size_t api_count() const { return history_.size(); }
  std::size_t service_count() const { return service_count_; }
  std::size_t history_size(int api) const;

  /// Per-service visit count at `rank` percentile across the retained
  /// traces of `api`. Empty history yields all-zeros.
  std::vector<double> fanout(int api, double rank = 90.0) const;

  /// Total traces recorded (lifetime).
  std::uint64_t recorded() const { return recorded_; }

  void clear();

 private:
  std::size_t service_count_;
  std::size_t capacity_;
  std::vector<std::deque<RequestTrace>> history_;
  std::uint64_t recorded_ = 0;
};

}  // namespace graf::trace
