#include "trace/latency_window.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/stats.h"

namespace graf::trace {

LatencyWindow::LatencyWindow(Seconds horizon) : horizon_{horizon} {}

void LatencyWindow::add(Seconds t, double value) {
  samples_.emplace_back(t, value);
  prune_before(t - horizon_);
}

void LatencyWindow::prune_before(Seconds t) {
  while (!samples_.empty() && samples_.front().first < t) samples_.pop_front();
}

double LatencyWindow::percentile_since(Seconds since, double rank) const {
  std::vector<double> vals;
  vals.reserve(samples_.size());
  for (const auto& [t, v] : samples_)
    if (t >= since) vals.push_back(v);
  if (vals.empty()) throw std::logic_error{"LatencyWindow: no samples in range"};
  return graf::percentile(vals, rank);
}

double LatencyWindow::percentile(double rank) const {
  return percentile_since(-1e300, rank);
}

double LatencyWindow::mean_since(Seconds since) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : samples_) {
    if (t >= since) {
      sum += v;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::size_t LatencyWindow::count_since(Seconds since) const {
  std::size_t n = 0;
  for (const auto& [t, v] : samples_)
    if (t >= since) ++n;
  return n;
}

}  // namespace graf::trace
