#include "trace/latency_window.h"

#include <algorithm>
#include <stdexcept>

#include "common/stats.h"

namespace graf::trace {

LatencyWindow::LatencyWindow(Seconds horizon) : horizon_{horizon} {}

void LatencyWindow::add(Seconds t, double value) {
  if (!samples_.empty() && t < samples_.back().first) time_ordered_ = false;
  samples_.emplace_back(t, value);
  cache_valid_ = false;
  prune_before(t - horizon_);
}

void LatencyWindow::prune_before(Seconds t) {
  while (!samples_.empty() && samples_.front().first < t) {
    samples_.pop_front();
    cache_valid_ = false;
  }
  if (samples_.empty()) time_ordered_ = true;
}

void LatencyWindow::clear() {
  samples_.clear();
  cache_valid_ = false;
  time_ordered_ = true;
}

std::size_t LatencyWindow::first_at_or_after(Seconds t) const {
  if (!samples_.empty() && samples_.front().first >= t) return 0;
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const std::pair<Seconds, double>& s, Seconds v) { return s.first < v; });
  return static_cast<std::size_t>(it - samples_.begin());
}

double LatencyWindow::percentile_since(Seconds since, double rank) const {
  if (!cache_valid_ || cache_since_ != since) {
    cache_.clear();
    cache_.reserve(samples_.size());
    if (time_ordered_) {
      const std::size_t start = first_at_or_after(since);
      for (std::size_t i = start; i < samples_.size(); ++i)
        cache_.push_back(samples_[i].second);
    } else {
      for (const auto& [t, v] : samples_)
        if (t >= since) cache_.push_back(v);
    }
    std::sort(cache_.begin(), cache_.end());
    cache_since_ = since;
    cache_valid_ = true;
  }
  if (cache_.empty()) throw std::logic_error{"LatencyWindow: no samples in range"};
  return graf::percentile_sorted(cache_, rank);
}

double LatencyWindow::percentile(double rank) const {
  return percentile_since(-1e300, rank);
}

double LatencyWindow::mean_since(Seconds since) const {
  double sum = 0.0;
  std::size_t n = 0;
  if (time_ordered_) {
    for (std::size_t i = first_at_or_after(since); i < samples_.size(); ++i) {
      sum += samples_[i].second;
      ++n;
    }
  } else {
    for (const auto& [t, v] : samples_) {
      if (t >= since) {
        sum += v;
        ++n;
      }
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::size_t LatencyWindow::count_since(Seconds since) const {
  if (time_ordered_) return samples_.size() - first_at_or_after(since);
  std::size_t n = 0;
  for (const auto& [t, v] : samples_)
    if (t >= since) ++n;
  return n;
}

}  // namespace graf::trace
