#include "trace/tracer.h"

#include <stdexcept>

#include "common/stats.h"

namespace graf::trace {

Tracer::Tracer(std::size_t api_count, std::size_t service_count,
               std::size_t capacity_per_api)
    : service_count_{service_count}, capacity_{capacity_per_api},
      history_(api_count) {
  if (capacity_per_api == 0) throw std::invalid_argument{"Tracer: zero capacity"};
}

void Tracer::record(RequestTrace t) {
  if (t.api < 0 || static_cast<std::size_t>(t.api) >= history_.size())
    throw std::out_of_range{"Tracer::record: bad api"};
  auto& h = history_[static_cast<std::size_t>(t.api)];
  if (h.size() >= capacity_) h.pop_front();
  h.push_back(std::move(t));
  ++recorded_;
}

std::size_t Tracer::history_size(int api) const {
  return history_.at(static_cast<std::size_t>(api)).size();
}

std::vector<double> Tracer::fanout(int api, double rank) const {
  const auto& h = history_.at(static_cast<std::size_t>(api));
  std::vector<double> out(service_count_, 0.0);
  if (h.empty()) return out;
  std::vector<double> counts(h.size());
  for (std::size_t s = 0; s < service_count_; ++s) {
    for (std::size_t i = 0; i < h.size(); ++i)
      counts[i] = static_cast<double>(h[i].visits[s]);
    out[s] = percentile(counts, rank);
  }
  return out;
}

void Tracer::clear() {
  for (auto& h : history_) h.clear();
}

}  // namespace graf::trace
