// Units used throughout GRAF.
//
// The simulator runs on a double-precision clock measured in seconds.
// CPU resources follow the Kubernetes convention: quotas are expressed in
// millicores (1000 millicores == one core fully busy).
#pragma once

#include <cstdint>

namespace graf {

/// Simulation time, in seconds since cluster start.
using Seconds = double;

/// CPU quota in millicores (Kubernetes convention; 1000 == one core).
using Millicores = double;

/// Queries (front-end requests) per second.
using Qps = double;

constexpr Millicores kMillicoresPerCore = 1000.0;

/// Convert a millicore quota to a core fraction (processor-sharing capacity).
constexpr double cores(Millicores mc) { return mc / kMillicoresPerCore; }

/// Convert cores to millicores.
constexpr Millicores millicores(double c) { return c * kMillicoresPerCore; }

}  // namespace graf
