#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace graf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling: `r % span` alone is biased toward small values
  // whenever span does not divide 2^64 (severely so for spans near the top
  // of the range). Reject draws from the incomplete final copy of [0, span).
  const std::uint64_t rem = (UINT64_MAX % span + 1) % span;  // 2^64 mod span
  std::uint64_t r = next_u64();
  if (rem != 0) {
    const std::uint64_t bound = 0 - rem;  // 2^64 - rem, a multiple of span
    while (r >= bound) r = next_u64();
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0, 1] to keep the log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"exponential: rate must be > 0"};
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::pareto(double scale, double alpha) {
  if (scale <= 0.0 || alpha <= 0.0) throw std::invalid_argument{"pareto: bad parameters"};
  return scale / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"weighted_index: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"weighted_index: no positive weight"};
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Two splitmix64 steps over a golden-ratio combination: enough avalanche
  // that adjacent (base, stream) pairs yield unrelated xoshiro seeds.
  std::uint64_t x = base + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace graf
