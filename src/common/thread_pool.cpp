#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace graf {

ThreadPool::ThreadPool(std::size_t threads)
    : threads_{threads == 0 ? configured_threads() : threads} {
  // The calling thread is worker 0 (parallel_for participates), so a pool
  // of size N spawns N-1 background workers.
  for (std::size_t i = 1; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // size-1 pool: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    // First exception by *index*, so a failing run reports deterministically.
    std::mutex err_mu;
    std::size_t err_index = 0;
    std::exception_ptr error;
    std::promise<void> all_done;
  };
  auto shared = std::make_shared<Shared>();
  const std::function<void(std::size_t)>* f = &fn;

  auto drain = [shared, f, n] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*f)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{shared->err_mu};
        if (!shared->error || i < shared->err_index) {
          shared->error = std::current_exception();
          shared->err_index = i;
        }
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n)
        shared->all_done.set_value();
    }
  };

  // Enough helpers to saturate the pool, but no more than the work items.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) post(drain);
  drain();  // caller participates
  shared->all_done.get_future().wait();
  if (shared->error) std::rethrow_exception(shared->error);
}

std::size_t configured_threads() {
  if (const char* env = std::getenv("GRAF_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& global_pool() {
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_threads(std::size_t threads) {
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace graf
