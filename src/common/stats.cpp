#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graf {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double rank) {
  if (sorted.empty()) throw std::invalid_argument{"percentile: empty input"};
  if (rank <= 0.0) return sorted.front();
  if (rank >= 100.0) return sorted.back();
  const double pos = rank / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percentile(std::span<const double> values, double rank) {
  std::vector<double> copy{values.begin(), values.end()};
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, rank);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ranks) {
  std::vector<double> copy{values.begin(), values.end()};
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ranks.size());
  for (double r : ranks) out.push_back(percentile_sorted(copy, r));
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(buckets)} {
  if (buckets == 0 || !(hi > lo)) throw std::invalid_argument{"Histogram: bad range"};
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::bucket_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::percentile(double rank) const {
  if (total_ == 0) throw std::logic_error{"Histogram::percentile: empty"};
  const double target = rank / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0.0) {
      const double frac = (target - cum) / c;
      return bucket_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

Ewma::Ewma(double alpha) : alpha_{alpha} {
  if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument{"Ewma: alpha in (0,1]"};
}

void Ewma::add(double x) {
  if (empty_) {
    value_ = x;
    empty_ = false;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace graf
