// Console table / CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; Table gives them a uniform, aligned plain-text rendering and
// an optional CSV dump for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace graf {

/// A simple column-aligned text table with a title, header, and rows.
class Table {
 public:
  explicit Table(std::string title);

  Table& header(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  /// Render aligned text (title, separator, header, rows).
  std::string str() const;

  /// Comma-separated form (header + rows), suitable for redirecting to a file.
  std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graf
