// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator and the training stack draw
// from an explicitly-seeded Rng so that every experiment in the benchmark
// harness is reproducible bit-for-bit. The generator is xoshiro256**,
// seeded through splitmix64 (the construction recommended by its authors).
#pragma once

#include <cstdint>
#include <vector>

namespace graf {

/// Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; give each concurrent component its own instance,
/// typically via `fork()` which derives an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bounded Pareto-like heavy tail used for occasional latency outliers.
  /// Returns values >= scale with tail index `alpha`.
  double pareto(double scale, double alpha);

  /// True with probability p.
  bool bernoulli(double p);

  /// Random index weighted by non-negative `weights` (need not sum to 1).
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent generator; deterministic given this rng's state.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Deterministic seed derivation (splitmix64 finalizer over base + stream):
/// hash-combines a base seed with a stream identifier — iteration counter,
/// shard index, sample index — so every parallel unit of work owns an
/// independent random stream that does not depend on the thread count or on
/// how much randomness other units consumed (DESIGN.md §3.7).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace graf
