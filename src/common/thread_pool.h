// Fixed-size thread pool: the parallel execution layer behind data-parallel
// GNN training, sharded sample collection, and multi-start solving.
//
// Design rule: *work decomposition never depends on the thread count*.
// Callers split work into deterministically-seeded shards and only hand the
// shard list to `parallel_for`; threads are pure executors. Combined with
// ordered reductions on the caller's thread, every parallel path in GRAF is
// bit-identical at any GRAF_THREADS setting (DESIGN.md §3.7).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace graf {

class ThreadPool {
 public:
  /// `threads` workers; 0 picks configured_threads(). A pool of size 1 runs
  /// everything inline on the calling thread (no workers are spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; counts the calling thread for size-1 pools).
  std::size_t size() const { return threads_; }

  /// Enqueue a task; the future resolves with its result (or exception).
  ///
  /// WARNING: do not block on the returned future from *inside* a pool
  /// task. Unlike parallel_for (whose caller participates in the work),
  /// future.get() parks the worker without draining the queue; if every
  /// worker blocks this way the queued tasks they wait on can never run
  /// and the pool deadlocks. From within a pool task, use parallel_for
  /// for nested fan-out, or restructure so the join happens off-pool.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Run fn(0), ..., fn(n-1), blocking until all complete. The calling
  /// thread participates, so a size-1 pool degenerates to a plain loop.
  /// Tasks are claimed through one atomic cursor: execution order is
  /// unspecified, which is why callers must keep per-index work independent
  /// and reduce in index order afterwards. Exceptions from `fn` are
  /// rethrown on the calling thread (the first one, by index).
  ///
  /// Reentrancy: safe to call from *inside* a pool task (the fleet fan-out
  /// solving through a multi-start solver does exactly this). The caller-
  /// participates design is the deadlock guard: the inner call's own drain
  /// loop claims every index no helper has taken, so it completes even when
  /// all workers are busy with outer work — helpers are an acceleration,
  /// never a dependency. The wait can only block on indices a worker has
  /// already claimed and is actively executing, and workers executing fn
  /// never block on this call's completion, so no cycle exists. Helper
  /// tasks still queued when the call returns are inert: they bail on the
  /// exhausted cursor without touching `fn`. First-exception-by-index holds
  /// at any nesting depth; an inner rethrow is just an ordinary exception
  /// to the outer level's fn. (Blocking on submit() futures from a pool
  /// task has no such guard — see submit().)
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void post(std::function<void()> task);
  void worker_loop();

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Worker count requested via env GRAF_THREADS (>= 1), defaulting to
/// std::thread::hardware_concurrency().
std::size_t configured_threads();

/// Process-wide pool shared by the training, collection, and solver layers.
/// Sized by configured_threads() on first use.
ThreadPool& global_pool();

/// Resize the global pool (tests and scaling benchmarks; not thread-safe
/// against concurrent global_pool() users). 0 restores configured_threads().
void set_global_threads(std::size_t threads);

}  // namespace graf
