// Statistics primitives: running moments, percentile estimation, histograms.
//
// Percentiles follow the "linear interpolation between closest ranks"
// convention (NumPy's default), which is what the paper's tooling
// (Locust/Vegeta/Jaeger) reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace graf {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of `values` for `rank` in [0, 100]; linear interpolation.
/// Copies and sorts. Requires a non-empty span.
double percentile(std::span<const double> values, double rank);

/// Percentile of an already-sorted ascending sequence (no copy).
double percentile_sorted(std::span<const double> sorted, double rank);

/// Several percentiles in one sort.
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ranks);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp into the
/// first/last bucket. Used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Percentile estimate from bucket boundaries (linear within bucket).
  double percentile(double rank) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially-weighted moving average, used to smooth utilization signals.
class Ewma {
 public:
  explicit Ewma(double alpha);
  void add(double x);
  double value() const { return value_; }
  bool empty() const { return empty_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

}  // namespace graf
