// ForecastGate: the control-plane adapter between a Forecaster and a
// planner.
//
// Every control tick the gate observes the total front-end workload,
// predicts it `horizon_steps` ticks ahead (the horizon covers the
// simulator's ~5.5 s instance-creation delay), and returns the per-API qps
// vector to plan for: observed scaled by max(1, predicted / observed), the
// API mix preserved. Planning for the *returned* vector is what pre-warms
// capacity — and it is also what keeps the ResourceController's plan-cache
// key honest, because the cache quantizes whatever workload plan() is
// handed, i.e. the planned-for (post-max) demand, never the raw observation.
//
// Degradation contract: plan_qps() never throws. A forecaster that is not
// ready, returns non-finite numbers, or explodes past the sanity cap makes
// the gate fall back to the observed vector (plan-alone semantics) and
// count the cause under forecast.* — the control loop cannot be taken down
// by its own crystal ball.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "forecast/ar_forecaster.h"
#include "forecast/forecaster.h"
#include "forecast/holt_winters.h"
#include "telemetry/metrics.h"

namespace graf::serve {
class ForecastHandle;
}

namespace graf::forecast {

struct ForecastGateConfig {
  /// Control ticks of lookahead; with the default 5 s control interval,
  /// 2 ticks (10 s) covers the 5.5 s creation delay with margin.
  std::size_t horizon_steps = 2;
  /// Plan for the band's upper edge (pre-warm against the uncertainty)
  /// instead of the mean.
  bool use_upper_band = true;
  /// Sanity cap on predicted/observed: a forecaster demanding more than
  /// this multiple of the observed load is clamped (and counted).
  double max_boost = 4.0;
};

/// Which forecaster a declarative spec (fleet TenantSpec, examples) builds.
enum class ForecastKind { kHoltWinters, kAutoregressive };

/// Declarative forecast-mode configuration: embeddable in TenantSpec and
/// enough to construct the whole gate.
struct ForecastSpec {
  bool enabled = false;
  ForecastKind kind = ForecastKind::kHoltWinters;
  HoltWintersConfig holt_winters;
  ArConfig ar;
  ForecastGateConfig gate;
};

std::unique_ptr<Forecaster> make_forecaster(const ForecastSpec& spec);

class ForecastGate {
 public:
  ForecastGate(std::shared_ptr<Forecaster> forecaster, ForecastGateConfig cfg);
  /// Build forecaster and gate from the declarative spec (spec.enabled is
  /// the caller's business — the gate itself is always live).
  explicit ForecastGate(const ForecastSpec& spec);

  /// Observe this tick's workload and return the vector to plan for:
  /// observed * max(1, predicted_at_horizon / observed). Falls back to
  /// `observed` (copied unchanged) on any forecaster failure. Never throws.
  std::vector<Qps> plan_qps(const std::vector<Qps>& observed);

  /// Publish forecast.* instruments (counters for predictions / pre-warm
  /// ticks / fallback causes, gauges for the predicted total and the boost
  /// in force). nullptr detaches.
  void set_metrics(telemetry::MetricsRegistry* registry);

  /// Serve the forecaster published through `handle` (hot-swapped by
  /// ForecastRegistry promote/rollback) instead of the constructor one;
  /// checked at the top of every plan_qps(). nullptr detaches.
  void set_handle(serve::ForecastHandle* handle);

  Forecaster& forecaster() { return *forecaster_; }
  const Forecaster& forecaster() const { return *forecaster_; }
  const ForecastGateConfig& config() const { return cfg_; }

  /// Ticks where the forecast raised the planned-for workload.
  std::uint64_t prewarms() const { return prewarms_; }
  /// Ticks answered with the observed vector (not ready / invalid / error).
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t predictions() const { return predictions_; }
  /// The boost applied on the last plan_qps() (1.0 = plan-alone).
  double last_boost() const { return last_boost_; }

 private:
  std::vector<Qps> fallback(const std::vector<Qps>& observed,
                            telemetry::Counter* cause);

  std::shared_ptr<Forecaster> forecaster_;
  ForecastGateConfig cfg_;
  serve::ForecastHandle* handle_ = nullptr;

  std::uint64_t predictions_ = 0;
  std::uint64_t prewarms_ = 0;
  std::uint64_t fallbacks_ = 0;
  double last_boost_ = 1.0;

  telemetry::Counter* tel_predictions_ = nullptr;
  telemetry::Counter* tel_prewarms_ = nullptr;
  telemetry::Counter* tel_not_ready_ = nullptr;
  telemetry::Counter* tel_invalid_ = nullptr;
  telemetry::Counter* tel_capped_ = nullptr;
  telemetry::Counter* tel_errors_ = nullptr;
  telemetry::Counter* tel_swaps_ = nullptr;
  telemetry::Gauge* tel_predicted_ = nullptr;
  telemetry::Gauge* tel_boost_ = nullptr;
};

}  // namespace graf::forecast
