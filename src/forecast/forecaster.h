// Workload forecasting (ROADMAP "forecast-driven proactive planning").
//
// GRAF is proactive *within* a control tick — it plans every service from
// the front-end workload it has already observed — but it still pays the
// ~5.5 s instance-creation delay whenever load moves faster than the loop.
// Graph-PHPA (PAPERS.md) shows the next rung: forecast the workload with a
// learned sequence model and scale for the *predicted* load. Following
// LSRAM's lightweight-allocator thesis, the forecasters here are compact —
// a seasonal Holt-Winters baseline (src/forecast/holt_winters.h) and a
// linear autoregressor trained on the src/nn tape arenas
// (src/forecast/ar_forecaster.h) — not a second GNN.
//
// Determinism contract (DESIGN.md §3.11): a forecaster's predictions are a
// pure function of (config, seed, observed series). Implementations consume
// no global randomness, no wall clock, and no thread pool, so faulted and
// fleet runs that feed identical series replay bit-identically at any
// thread count.
#pragma once

#include <cstddef>
#include <string>

namespace graf::forecast {

/// One per-horizon prediction with an uncertainty band. Workloads are
/// non-negative, so `mean` and `lo` are clamped at zero.
struct Forecast {
  double mean = 0.0;
  double lo = 0.0;  ///< mean - z * sigma_h (z from the forecaster's config)
  double hi = 0.0;  ///< mean + z * sigma_h
  /// False until the forecaster has enough history (or after a numeric
  /// failure): callers must fall back to plan-alone, never extrapolate.
  bool valid = false;
};

/// Interface over the per-tick front-end workload series. observe() is
/// called once per control tick with the tick's total front-end qps;
/// predict(h) extrapolates h ticks past the last observation.
///
/// Implementations must never throw from observe()/predict(): a forecaster
/// that cannot produce a number reports Forecast::valid = false (the
/// ForecastGate then degrades to plan-alone and counts the cause).
/// Non-finite observations are ignored (no state change) for the same
/// reason — one poisoned scrape must not corrupt the whole series.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Append one tick of the uniformly-spaced workload series.
  virtual void observe(double value) = 0;

  /// Prediction `steps` ticks ahead of the last observation (steps >= 1).
  virtual Forecast predict(std::size_t steps) const = 0;

  /// Enough history to predict (predict() before ready() returns invalid).
  virtual bool ready() const = 0;

  /// Forget all history (reuse across scenario replays).
  virtual void reset() = 0;

  /// Observations consumed since construction/reset().
  virtual std::size_t observations() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace graf::forecast
