// Seasonal-decomposition baseline: additive Holt-Winters triple exponential
// smoothing (level + trend + optional seasonal component), the classic
// closed-form forecaster the learned autoregressor must beat. O(1) state
// and O(1) per observation — cheap enough to run inside every control tick
// of every tenant.
//
// Uncertainty bands come from an exponentially-weighted variance of the
// one-step-ahead forecast error, widened by sqrt(h) for an h-step horizon
// (the standard SES band approximation). Entirely deterministic: no
// randomness is consumed at all.
#pragma once

#include <cstddef>
#include <vector>

#include "forecast/forecaster.h"

namespace graf::forecast {

struct HoltWintersConfig {
  double alpha = 0.45;  ///< level smoothing in (0, 1]
  double beta = 0.25;   ///< trend smoothing in [0, 1]
  double gamma = 0.3;   ///< seasonal smoothing in [0, 1]
  /// Season length in ticks; 0 disables the seasonal component (plain
  /// Holt's linear trend). The Azure trace's diurnal period is 24 minutes,
  /// so a per-minute series would use season = 24.
  std::size_t season = 0;
  /// Observations before ready(); raised to season + 2 when seasonal.
  std::size_t min_history = 4;
  /// Band half-width in one-step error standard deviations (1.96 ~ 95%).
  double band_z = 1.96;
  /// EWMA weight for the one-step squared-error variance estimate.
  double err_smoothing = 0.1;
};

class HoltWinters final : public Forecaster {
 public:
  explicit HoltWinters(HoltWintersConfig cfg = {});

  void observe(double value) override;
  Forecast predict(std::size_t steps) const override;
  bool ready() const override;
  void reset() override;
  std::size_t observations() const override { return count_; }
  std::string name() const override { return "holt_winters"; }

  double level() const { return level_; }
  double trend() const { return trend_; }
  /// Current one-step forecast-error standard deviation.
  double sigma() const;

 private:
  HoltWintersConfig cfg_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;  ///< size cfg_.season (empty when 0)
  double err_var_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace graf::forecast
