#include "forecast/holt_winters.h"

#include <algorithm>
#include <cmath>

namespace graf::forecast {

HoltWinters::HoltWinters(HoltWintersConfig cfg) : cfg_{cfg} {
  cfg_.alpha = std::clamp(cfg_.alpha, 1e-6, 1.0);
  cfg_.beta = std::clamp(cfg_.beta, 0.0, 1.0);
  cfg_.gamma = std::clamp(cfg_.gamma, 0.0, 1.0);
  cfg_.err_smoothing = std::clamp(cfg_.err_smoothing, 1e-6, 1.0);
  seasonal_.assign(cfg_.season, 0.0);
}

void HoltWinters::reset() {
  level_ = trend_ = err_var_ = 0.0;
  count_ = 0;
  seasonal_.assign(cfg_.season, 0.0);
}

bool HoltWinters::ready() const {
  std::size_t need = std::max<std::size_t>(cfg_.min_history, 2);
  if (cfg_.season > 0) need = std::max(need, cfg_.season + 2);
  return count_ >= need;
}

double HoltWinters::sigma() const { return std::sqrt(std::max(err_var_, 0.0)); }

void HoltWinters::observe(double value) {
  if (!std::isfinite(value)) return;  // one poisoned scrape must not stick
  const std::size_t season = cfg_.season;
  if (count_ == 0) {
    level_ = value;
    ++count_;
    return;
  }
  if (count_ == 1) trend_ = value - level_;

  const double season_term = season > 0 ? seasonal_[count_ % season] : 0.0;
  // One-step-ahead error against the pre-update prediction feeds the band.
  const double err = value - (level_ + trend_ + season_term);
  err_var_ = (1.0 - cfg_.err_smoothing) * err_var_ + cfg_.err_smoothing * err * err;

  const double new_level =
      cfg_.alpha * (value - season_term) + (1.0 - cfg_.alpha) * (level_ + trend_);
  trend_ = cfg_.beta * (new_level - level_) + (1.0 - cfg_.beta) * trend_;
  if (season > 0)
    seasonal_[count_ % season] =
        cfg_.gamma * (value - new_level) + (1.0 - cfg_.gamma) * season_term;
  level_ = new_level;
  ++count_;
}

Forecast HoltWinters::predict(std::size_t steps) const {
  Forecast out;
  if (!ready() || steps == 0) return out;
  const double h = static_cast<double>(steps);
  double mean = level_ + h * trend_;
  if (cfg_.season > 0)
    mean += seasonal_[(count_ - 1 + steps) % cfg_.season];
  if (!std::isfinite(mean)) return out;
  const double half = cfg_.band_z * sigma() * std::sqrt(h);
  out.mean = std::max(mean, 0.0);
  out.lo = std::max(mean - half, 0.0);
  out.hi = std::max(mean + half, 0.0);
  out.valid = std::isfinite(out.hi);
  return out;
}

}  // namespace graf::forecast
