#include "forecast/ar_forecaster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace graf::forecast {

namespace {

nn::Tensor init_weight(std::size_t order, std::uint64_t seed) {
  // Start at the running-average predictor (all lags weighted equally) plus
  // a seeded jitter: sane forecasts from the very first refit, and distinct
  // seeds stay distinct streams.
  Rng rng{seed};
  nn::Tensor w{order, 1};
  const double base = 1.0 / static_cast<double>(order);
  for (std::size_t i = 0; i < order; ++i)
    w(i, 0) = base + rng.uniform(-0.1, 0.1) * base;
  return w;
}

}  // namespace

ArForecaster::ArForecaster(ArConfig cfg)
    : cfg_{cfg},
      w_{init_weight(std::max<std::size_t>(cfg.order, 1), cfg.seed)},
      b_{nn::Tensor{1, 1}} {
  cfg_.order = std::max<std::size_t>(cfg_.order, 1);
  cfg_.window = std::max(cfg_.window, cfg_.order + 2);
  cfg_.refit_every = std::max<std::size_t>(cfg_.refit_every, 1);
  cfg_.iterations = std::max<std::size_t>(cfg_.iterations, 1);
  cfg_.min_history = std::max(cfg_.min_history, cfg_.order + 4);
  adam_ = std::make_unique<nn::Adam>(std::vector<nn::Param*>{&w_, &b_},
                                     nn::Adam::Config{.lr = cfg_.lr});
  history_.reserve(cfg_.window + cfg_.order);
}

ArForecaster::ArForecaster(const ArForecaster& o)
    : cfg_{o.cfg_},
      w_{o.w_.value},
      b_{o.b_.value},
      history_{o.history_},
      count_{o.count_},
      scale_{o.scale_},
      sigma_{o.sigma_},
      fitted_{o.fitted_},
      refits_{o.refits_} {
  adam_ = std::make_unique<nn::Adam>(std::vector<nn::Param*>{&w_, &b_},
                                     nn::Adam::Config{.lr = cfg_.lr});
}

void ArForecaster::reset() {
  w_.value = init_weight(cfg_.order, cfg_.seed);
  w_.zero_grad();
  b_.value.zero();
  b_.zero_grad();
  adam_ = std::make_unique<nn::Adam>(std::vector<nn::Param*>{&w_, &b_},
                                     nn::Adam::Config{.lr = cfg_.lr});
  history_.clear();
  count_ = 0;
  scale_ = 1.0;
  sigma_ = 0.0;
  fitted_ = false;
  refits_ = 0;
}

void ArForecaster::observe(double value) {
  if (!std::isfinite(value)) return;  // ignore poisoned scrapes
  history_.push_back(value);
  const std::size_t cap = cfg_.window + cfg_.order;
  if (history_.size() > cap)
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(history_.size() - cap));
  ++count_;
  if (count_ >= cfg_.min_history && count_ % cfg_.refit_every == 0) refit();
}

void ArForecaster::refit() {
  const std::size_t p = cfg_.order;
  if (history_.size() < p + 2) return;
  const std::size_t n = history_.size() - p;

  double mean = 0.0;
  for (double v : history_) mean += v;
  mean /= static_cast<double>(history_.size());
  scale_ = std::max(mean, 1e-6);

  x_.resize_zero(n, p);
  y_.resize_zero(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) x_(i, j) = history_[i + j] / scale_;
    y_(i, 0) = history_[i + p] / scale_;
  }

  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    tape_.reset();
    nn::Var x = tape_.constant_ref(x_);
    nn::Var y = tape_.constant_ref(y_);
    nn::Var pred = nn::add_row_broadcast(nn::matmul(x, tape_.param(w_)),
                                         tape_.param(b_));
    nn::Var err = nn::sub(pred, y);
    nn::Var loss = nn::mean_all(nn::mul(err, err));
    tape_.backward(loss);
    adam_->step();
  }

  // A diverged fit (exploding lr on a pathological series) must not poison
  // the control plane: roll the weights back to the average predictor and
  // stay unfitted until the next refit — predict() reports invalid.
  bool finite = true;
  for (std::size_t i = 0; i < p; ++i) finite = finite && std::isfinite(w_.value(i, 0));
  finite = finite && std::isfinite(b_.value(0, 0));
  if (!finite) {
    w_.value = init_weight(p, cfg_.seed);
    b_.value.zero();
    w_.zero_grad();
    b_.zero_grad();
    adam_ = std::make_unique<nn::Adam>(std::vector<nn::Param*>{&w_, &b_},
                                       nn::Adam::Config{.lr = cfg_.lr});
    fitted_ = false;
    return;
  }

  double sq = 0.0;
  std::vector<double> lags(p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) lags[j] = x_(i, j);
    const double resid = (step_normalized(lags) - y_(i, 0)) * scale_;
    sq += resid * resid;
  }
  sigma_ = std::sqrt(sq / static_cast<double>(n));
  fitted_ = true;
  ++refits_;
}

double ArForecaster::step_normalized(const std::vector<double>& lags) const {
  double v = b_.value(0, 0);
  for (std::size_t j = 0; j < cfg_.order; ++j) v += lags[j] * w_.value(j, 0);
  return v;
}

Forecast ArForecaster::predict(std::size_t steps) const {
  Forecast out;
  if (!fitted_ || steps == 0 || history_.size() < cfg_.order) return out;
  std::vector<double> lags(cfg_.order);
  for (std::size_t j = 0; j < cfg_.order; ++j)
    lags[j] = history_[history_.size() - cfg_.order + j] / scale_;
  double v = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    v = std::max(step_normalized(lags), 0.0);  // workloads are non-negative
    std::rotate(lags.begin(), lags.begin() + 1, lags.end());
    lags.back() = v;
  }
  const double mean = v * scale_;
  if (!std::isfinite(mean)) return out;
  const double half = cfg_.band_z * sigma_ * std::sqrt(static_cast<double>(steps));
  out.mean = std::max(mean, 0.0);
  out.lo = std::max(mean - half, 0.0);
  out.hi = std::max(mean + half, 0.0);
  out.valid = std::isfinite(out.hi);
  return out;
}

void ArForecaster::restore(const nn::Tensor& w, const nn::Tensor& b, double scale,
                           double sigma, bool fitted, std::vector<double> history,
                           std::size_t count) {
  if (w.rows() != cfg_.order || w.cols() != 1 || b.rows() != 1 || b.cols() != 1)
    throw std::invalid_argument{"ArForecaster::restore: weight shape mismatch"};
  w_.value = w;
  b_.value = b;
  w_.zero_grad();
  b_.zero_grad();
  adam_ = std::make_unique<nn::Adam>(std::vector<nn::Param*>{&w_, &b_},
                                     nn::Adam::Config{.lr = cfg_.lr});
  scale_ = scale;
  sigma_ = sigma;
  fitted_ = fitted;
  history_ = std::move(history);
  const std::size_t cap = cfg_.window + cfg_.order;
  if (history_.size() > cap)
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(history_.size() - cap));
  count_ = count;
}

}  // namespace graf::forecast
