// Learned forecaster: a linear autoregressor AR(p) trained online on the
// src/nn tensor/autodiff stack.
//
// LSRAM's thesis (PAPERS.md) — lightweight learned allocators beat
// heavyweight per-service models — argues for the smallest model that can
// track the series: here p lag weights plus a bias, fit by Adam on a
// sliding window every `refit_every` observations. Training runs on one
// persistent Tape whose arena is rewound each iteration, so steady-state
// refits touch no heap (DESIGN.md §3.9); inference is a plain dot product,
// no tape at all. Multi-step forecasts are recursive (predictions feed back
// as inputs), with bands from the window's residual RMS widened by sqrt(h).
//
// Deterministic: weight init comes from the config seed, refits happen at
// fixed observation counts with a fixed iteration budget, and nothing here
// touches the thread pool — identical (config, seed, series) triples yield
// bit-identical predictions at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "nn/autodiff.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace graf::forecast {

struct ArConfig {
  std::size_t order = 8;        ///< lag count p
  std::size_t window = 96;      ///< training window, in ticks
  std::size_t refit_every = 8;  ///< refit cadence, in observations
  std::size_t iterations = 200; ///< Adam steps per refit (full-batch)
  /// Conservative on purpose: the full-batch loss on a near-collinear lag
  /// matrix oscillates under aggressive Adam steps; 0.01 converges to
  /// machine precision on smooth ramps within one refit's budget.
  double lr = 0.01;
  std::uint64_t seed = 1;
  /// Observations before the first refit; floored at order + 4.
  std::size_t min_history = 16;
  /// Band half-width in residual standard deviations (1.96 ~ 95%).
  double band_z = 1.96;
};

class ArForecaster final : public Forecaster {
 public:
  explicit ArForecaster(ArConfig cfg = {});
  /// Deep copy (fresh tape/optimizer; weights, history, and scalers carried
  /// over) — what ForecastRegistry::publish stores.
  ArForecaster(const ArForecaster& o);
  ArForecaster& operator=(const ArForecaster&) = delete;

  void observe(double value) override;
  Forecast predict(std::size_t steps) const override;
  bool ready() const override { return fitted_; }
  void reset() override;
  std::size_t observations() const override { return count_; }
  std::string name() const override { return "ar_linear"; }

  // ---- checkpoint surface (src/serve/forecast_store) -----------------------
  const ArConfig& config() const { return cfg_; }
  const nn::Tensor& weight() const { return w_.value; }  ///< order x 1
  const nn::Tensor& bias() const { return b_.value; }    ///< 1 x 1
  double scale() const { return scale_; }
  double residual_sigma() const { return sigma_; }
  bool fitted() const { return fitted_; }
  const std::vector<double>& history() const { return history_; }
  /// Overwrite the learned state (shape-checked; throws std::invalid_argument
  /// on a weight/bias shape mismatch). `history` is truncated to the
  /// retention window; `count` restores the refit phase.
  void restore(const nn::Tensor& w, const nn::Tensor& b, double scale,
               double sigma, bool fitted, std::vector<double> history,
               std::size_t count);

  std::uint64_t refits() const { return refits_; }

 private:
  void refit();
  /// One-step prediction from `lags` (normalized, size order).
  double step_normalized(const std::vector<double>& lags) const;

  ArConfig cfg_;
  nn::Param w_;
  nn::Param b_;
  std::unique_ptr<nn::Adam> adam_;
  nn::Tape tape_;
  nn::Tensor x_;  ///< training design matrix, reused across refits
  nn::Tensor y_;  ///< training targets, reused across refits
  std::vector<double> history_;  ///< last window + order raw values
  std::size_t count_ = 0;
  double scale_ = 1.0;  ///< normalization (window mean) at the last refit
  double sigma_ = 0.0;  ///< residual RMS on the window, raw units
  bool fitted_ = false;
  std::uint64_t refits_ = 0;
};

}  // namespace graf::forecast
