#include "forecast/gate.h"

#include <cmath>
#include <utility>

#include "serve/forecast_store.h"

namespace graf::forecast {

std::unique_ptr<Forecaster> make_forecaster(const ForecastSpec& spec) {
  switch (spec.kind) {
    case ForecastKind::kAutoregressive:
      return std::make_unique<ArForecaster>(spec.ar);
    case ForecastKind::kHoltWinters:
      break;
  }
  return std::make_unique<HoltWinters>(spec.holt_winters);
}

ForecastGate::ForecastGate(std::shared_ptr<Forecaster> forecaster,
                           ForecastGateConfig cfg)
    : forecaster_{std::move(forecaster)}, cfg_{cfg} {
  if (!forecaster_) forecaster_ = std::make_shared<HoltWinters>();
  if (cfg_.horizon_steps == 0) cfg_.horizon_steps = 1;
  if (!(cfg_.max_boost >= 1.0)) cfg_.max_boost = 1.0;
}

ForecastGate::ForecastGate(const ForecastSpec& spec)
    : ForecastGate{std::shared_ptr<Forecaster>{make_forecaster(spec)},
                   spec.gate} {}

void ForecastGate::set_metrics(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tel_predictions_ = tel_prewarms_ = tel_not_ready_ = tel_invalid_ =
        tel_capped_ = tel_errors_ = tel_swaps_ = nullptr;
    tel_predicted_ = tel_boost_ = nullptr;
    return;
  }
  tel_predictions_ = &registry->counter("forecast.predictions_total");
  tel_prewarms_ = &registry->counter("forecast.prewarm_ticks");
  tel_not_ready_ = &registry->counter("forecast.fallbacks_total",
                                      {{"cause", "not_ready"}});
  tel_invalid_ = &registry->counter("forecast.fallbacks_total",
                                    {{"cause", "invalid"}});
  tel_errors_ = &registry->counter("forecast.fallbacks_total",
                                   {{"cause", "error"}});
  tel_capped_ = &registry->counter("forecast.boost_capped_total");
  tel_swaps_ = &registry->counter("forecast.handle_swaps_total");
  tel_predicted_ = &registry->gauge("forecast.predicted_qps");
  tel_boost_ = &registry->gauge("forecast.boost");
}

void ForecastGate::set_handle(serve::ForecastHandle* handle) { handle_ = handle; }

std::vector<Qps> ForecastGate::fallback(const std::vector<Qps>& observed,
                                        telemetry::Counter* cause) {
  ++fallbacks_;
  if (cause != nullptr) cause->add();
  last_boost_ = 1.0;
  if (tel_boost_ != nullptr) tel_boost_->set(1.0);
  return observed;
}

std::vector<Qps> ForecastGate::plan_qps(const std::vector<Qps>& observed) {
  // A promoted/rolled-back forecaster lands here, between control ticks.
  if (handle_ != nullptr) {
    if (auto pinned = handle_->acquire(); pinned && pinned != forecaster_) {
      forecaster_ = std::move(pinned);
      if (tel_swaps_ != nullptr) tel_swaps_->add();
    }
  }

  double total = 0.0;
  for (Qps q : observed) total += q;
  if (!std::isfinite(total) || total <= 0.0) return observed;

  try {
    forecaster_->observe(total);
    if (!forecaster_->ready()) return fallback(observed, tel_not_ready_);

    const Forecast fc = forecaster_->predict(cfg_.horizon_steps);
    const double target = cfg_.use_upper_band ? fc.hi : fc.mean;
    if (!fc.valid || !std::isfinite(target) || target < 0.0)
      return fallback(observed, tel_invalid_);

    ++predictions_;
    if (tel_predictions_ != nullptr) tel_predictions_->add();
    if (tel_predicted_ != nullptr) tel_predicted_->set(target);

    double boost = target / total;
    if (boost > cfg_.max_boost) {
      boost = cfg_.max_boost;
      if (tel_capped_ != nullptr) tel_capped_->add();
    }
    last_boost_ = std::max(boost, 1.0);
    if (tel_boost_ != nullptr) tel_boost_->set(last_boost_);
    if (boost <= 1.0) return observed;  // plan for max(observed, predicted)

    ++prewarms_;
    if (tel_prewarms_ != nullptr) tel_prewarms_->add();
    std::vector<Qps> planned = observed;
    for (Qps& q : planned) q *= boost;  // preserve the API mix
    return planned;
  } catch (...) {
    // Degradation contract: the crystal ball never takes down the loop.
    return fallback(observed, tel_errors_);
  }
}

}  // namespace graf::forecast
