// Fleet-batched latency inference (DESIGN.md §3.13): N tenant graphs
// stacked into one MPNN forward/backward.
//
// Conceptually this evaluates the block-diagonal disjoint union of N copies
// of one application graph. Because every copy shares the same adjacency and
// weights, and message passing never mixes rows of the node-feature
// matrices (DESIGN.md §3.9 row independence), the block-diagonal forward is
// *exactly* a row-batched forward: graph g's rows occupy rows
// [g*K, (g+1)*K) of every per-node feature matrix, the adjacency is never
// materialized, and each blocked GEMM runs once over all N*K rows instead
// of N times over K. Row g*K+k of the output is bit-identical to row k of
// graph g's own predict_var forward — the property the fleet's batched
// planner is proven against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/latency_model.h"
#include "nn/autodiff.h"

namespace graf::gnn {

/// Stacks N same-topology workloads onto one shared LatencyModel so a
/// single tape evaluates all of them. `rows_per_graph` (K) is the number of
/// quota rows each graph contributes — the solver's multi-start count.
class BatchedLatencyModel {
 public:
  /// The model is shared, not copied; it must outlive this object. Graphs
  /// added later must match its node count.
  BatchedLatencyModel(LatencyModel& model, std::size_t rows_per_graph);

  /// Append one graph's per-node workload vector; returns its index.
  /// The workload is copied (spans from callers need not outlive this).
  std::size_t add_graph(std::span<const double> workload_qps);

  std::size_t node_count() const { return model_->node_count(); }
  std::size_t graph_count() const { return workloads_.size(); }
  std::size_t rows_per_graph() const { return rows_per_graph_; }
  /// Total stacked rows: graph_count() * rows_per_graph().
  std::size_t rows() const { return workloads_.size() * rows_per_graph_; }

  LatencyModel& model() { return *model_; }

  /// Differentiable stacked forward: `quota_mc` is rows() x node_count
  /// (graph g's start k at row g*K+k); the returned rows() x 1 Var is
  /// latency in ms per row, bit-identical per row to the per-graph
  /// predict_var path.
  nn::Var predict_var(nn::Tape& tape, nn::Var quota_mc);

  /// Non-batched scoring of one graph's quota through the shared model —
  /// delegates to LatencyModel::predict (the division-form feature path),
  /// which is what the single-start solver reports as predicted_ms.
  double predict(std::size_t graph, std::span<const double> quota_mc);

  /// Content fingerprint (FNV-1a 64) over everything that shapes a forward:
  /// topology, MPNN hyper-parameters, scaler bits, and every weight bit.
  /// Two models with equal fingerprints produce bit-identical predictions,
  /// so the fleet may batch their tenants through either instance. Distinct
  /// objects with equal weights (registry deep copies) fingerprint equal —
  /// pointer identity deliberately plays no part.
  static std::uint64_t fingerprint(LatencyModel& model);

 private:
  LatencyModel* model_;
  std::size_t rows_per_graph_;
  std::vector<std::vector<double>> workloads_;  ///< one vector per graph
  nn::Tensor workload_rows_;  ///< rows() x n, rebuilt lazily after add_graph
  bool rows_dirty_ = false;
};

}  // namespace graf::gnn
