#include "gnn/surrogate_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/optim.h"

namespace graf::gnn {

namespace {

std::vector<std::size_t> mlp_dims(std::size_t node_count, const SurrogateConfig& cfg) {
  if (node_count == 0)
    throw std::invalid_argument{"SurrogateModel: node_count must be > 0"};
  if (cfg.hidden == 0)
    throw std::invalid_argument{"SurrogateModel: hidden width must be > 0"};
  std::vector<std::size_t> dims;
  dims.push_back(node_count * SurrogateModel::kNodeFeatures);
  for (std::size_t l = 0; l < cfg.hidden_layers; ++l) dims.push_back(cfg.hidden);
  dims.push_back(1);
  return dims;
}

// FNV-1a 64 — same constants and mixing as gnn::BatchedLatencyModel's
// teacher fingerprint, so equal-fingerprint ⇒ bit-identical forwards holds
// with the same strength for the surrogate.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

}  // namespace

SurrogateModel::SurrogateModel(std::size_t node_count, const SurrogateConfig& cfg,
                               std::uint64_t seed)
    : node_count_{node_count}, cfg_{cfg}, rng_{seed},
      mlp_{mlp_dims(node_count, cfg), cfg.dropout_p, rng_} {}

SurrogateModel::Batch SurrogateModel::assemble(const Dataset& data,
                                               std::span<const std::size_t> idx) const {
  const std::size_t batch = idx.size();
  Batch b{nn::Tensor{batch, node_count_ * kNodeFeatures}, nn::Tensor{batch, 1}};
  for (std::size_t r = 0; r < batch; ++r) {
    const Sample& s = data[idx[r]];
    if (s.workload.size() != node_count_ || s.quota.size() != node_count_)
      throw std::invalid_argument{"SurrogateModel: sample dimension mismatch"};
    for (std::size_t n = 0; n < node_count_; ++n) {
      if (s.quota[n] <= 0.0)
        throw std::invalid_argument{"SurrogateModel: quota must be > 0"};
      const std::size_t c = n * kNodeFeatures;
      b.features(r, c + 0) = s.workload[n] * s_.w_scale;
      b.features(r, c + 1) = s.quota[n] * s_.q_scale;
      b.features(r, c + 2) = s_.q_min_mc / s.quota[n];
      b.features(r, c + 3) = s.workload[n] / s.quota[n] / s_.ratio_max;
    }
    // Log-space labels: latency spans a hyperbolic dynamic range near
    // saturation that a small ReLU MLP underfits in linear space; log
    // compresses it, and a log-difference is a relative error, so the
    // huber thetas keep their percentage meaning (see fit()).
    b.labels(r, 0) = std::log(std::max(s.latency_ms / s_.label_ref, 1e-9));
  }
  return b;
}

nn::Var SurrogateModel::forward_features(nn::Tape& tape, const Batch& b, Rng& rng,
                                         bool training) {
  // By reference: the Batch outlives every use of the tape, same contract
  // as LatencyModel::forward_features.
  return mlp_.forward(tape, tape.constant_ref(b.features), rng, training);
}

TrainHistory SurrogateModel::fit(const Dataset& train, const Dataset& val,
                                 const TrainConfig& cfg) {
  if (train.empty())
    throw std::invalid_argument{"SurrogateModel::fit: empty training set"};
  // Scalers are deliberately not refitted: the distiller pins the teacher's
  // so both models read identical feature bits (see header).

  Rng rng{cfg.seed};
  nn::Adam opt{mlp_.params(), {.lr = cfg.lr}};

  TrainHistory hist;
  hist.best_val_loss = std::numeric_limits<double>::infinity();
  std::vector<nn::Tensor> best_weights;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::size_t cursor = order.size();  // trigger initial shuffle

  // Data-parallel plan mirrors LatencyModel::fit: shard boundaries, dropout
  // streams, and the shard-ordered gradient reduction depend only on the
  // config — bit-identical at any GRAF_THREADS (DESIGN.md §3.7).
  const std::size_t shard_rows =
      cfg.shard_rows == 0 ? cfg.batch_size : cfg.shard_rows;
  const std::size_t shards = (cfg.batch_size + shard_rows - 1) / shard_rows;
  std::vector<std::unique_ptr<nn::Tape>> tapes;
  for (std::size_t s = 0; s < shards; ++s) {
    tapes.push_back(std::make_unique<nn::Tape>());
    tapes.back()->set_defer_param_grads(true);
  }
  std::vector<double> shard_loss(shards, 0.0);
  ThreadPool& pool = global_pool();

  double running_loss = 0.0;
  std::size_t running_count = 0;

  for (std::size_t it = 1; it <= cfg.iterations; ++it) {
    std::vector<std::size_t> idx;
    idx.reserve(cfg.batch_size);
    while (idx.size() < cfg.batch_size) {
      if (cursor >= order.size()) {
        for (std::size_t i = order.size(); i > 1; --i)
          std::swap(order[i - 1],
                    order[static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
        cursor = 0;
      }
      idx.push_back(order[cursor++]);
    }

    mlp_.zero_grad();
    const std::uint64_t iter_seed = derive_seed(cfg.seed, it);
    pool.parallel_for(shards, [&](std::size_t s) {
      const std::size_t begin = s * shard_rows;
      const std::size_t len = std::min(shard_rows, cfg.batch_size - begin);
      Batch b = assemble(train, {idx.data() + begin, len});
      nn::Tape& tape = *tapes[s];
      tape.reset();
      Rng shard_rng{derive_seed(iter_seed, s)};
      nn::Var pred = forward_features(tape, b, shard_rng, /*training=*/true);
      // pred and labels are log-latencies; their difference approximates the
      // relative error ((pred < label) == under-estimation), so the same
      // asymmetric huber thetas apply as in the teacher's pct loss.
      nn::Var d = nn::sub(pred, tape.constant_ref(b.labels));
      nn::Var loss = nn::mean_all(nn::asym_huber(d, cfg.theta_under, cfg.theta_over));
      const double weight =
          static_cast<double>(len) / static_cast<double>(cfg.batch_size);
      nn::Var contribution = nn::scale(loss, weight);
      tape.backward(contribution);
      shard_loss[s] = tape.value(contribution).item();
    });
    // Ordered reduction — accumulation order is part of the determinism
    // contract, so it must not follow completion order.
    for (auto& tape : tapes) tape->flush_param_grads();
    opt.step();

    double batch_loss = 0.0;
    for (double l : shard_loss) batch_loss += l;
    running_loss += batch_loss;
    ++running_count;

    if (cfg.lr_decay_every > 0 && it % cfg.lr_decay_every == 0)
      opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay_factor);

    if ((cfg.eval_every > 0 && it % cfg.eval_every == 0) || it == cfg.iterations) {
      const double train_loss = running_loss / static_cast<double>(running_count);
      running_loss = 0.0;
      running_count = 0;
      const double val_loss =
          val.empty() ? train_loss
                      : evaluate_loss(val, cfg.theta_under, cfg.theta_over);
      hist.iteration.push_back(it);
      hist.train_loss.push_back(train_loss);
      hist.val_loss.push_back(val_loss);
      if (cfg.select_best && val_loss < hist.best_val_loss) {
        hist.best_val_loss = val_loss;
        best_weights.clear();
        for (nn::Param* p : mlp_.params()) best_weights.push_back(p->value);
      }
    }
  }

  if (cfg.select_best && !best_weights.empty()) {
    auto params = mlp_.params();
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = best_weights[i];
  } else if (!hist.val_loss.empty()) {
    hist.best_val_loss = hist.val_loss.back();
  }
  return hist;
}

double SurrogateModel::predict(std::span<const double> workload_qps,
                               std::span<const double> quota_millicores) {
  if (workload_qps.size() != node_count_ || quota_millicores.size() != node_count_)
    throw std::invalid_argument{"SurrogateModel::predict: dimension mismatch"};
  nn::Tape tape;
  nn::Tensor quota{1, node_count_};
  for (std::size_t n = 0; n < node_count_; ++n) quota(0, n) = quota_millicores[n];
  nn::Var out = predict_var(tape, workload_qps, tape.constant(std::move(quota)));
  return tape.value(out).item();
}

nn::Var SurrogateModel::predict_var(nn::Tape& tape,
                                    std::span<const double> workload_qps,
                                    nn::Var quota_mc) {
  if (workload_qps.size() != node_count_)
    throw std::invalid_argument{"SurrogateModel::predict_var: dimension mismatch"};
  const nn::Tensor& q = tape.value(quota_mc);
  if (q.rows() == 0 || q.cols() != node_count_)
    throw std::invalid_argument{"SurrogateModel::predict_var: quota must be B x n"};
  const std::size_t batch = q.rows();
  std::vector<nn::Var> cols;
  cols.reserve(node_count_ * kNodeFeatures);
  for (std::size_t n = 0; n < node_count_; ++n) {
    nn::Var q_raw = nn::slice_cols(quota_mc, n, 1);
    nn::Var q_inv = nn::reciprocal(q_raw);
    cols.push_back(tape.constant_fill(batch, 1, workload_qps[n] * s_.w_scale));
    cols.push_back(nn::scale(q_raw, s_.q_scale));
    cols.push_back(nn::scale(q_inv, s_.q_min_mc));
    cols.push_back(nn::scale(q_inv, workload_qps[n] / s_.ratio_max));
  }
  nn::Var x = nn::concat_cols(cols);
  nn::Var out = mlp_.forward(tape, x, rng_, /*training=*/false);
  return nn::scale(nn::exp(out), s_.label_ref);
}

nn::Var SurrogateModel::predict_var_rows(nn::Tape& tape,
                                         const nn::Tensor& workload_qps,
                                         nn::Var quota_mc) {
  if (workload_qps.cols() != node_count_)
    throw std::invalid_argument{"SurrogateModel::predict_var_rows: dimension mismatch"};
  const nn::Tensor& q = tape.value(quota_mc);
  if (q.rows() != workload_qps.rows() || q.cols() != node_count_)
    throw std::invalid_argument{
        "SurrogateModel::predict_var_rows: quota must match workload rows x n"};
  const std::size_t batch = q.rows();
  std::vector<nn::Var> cols;
  cols.reserve(node_count_ * kNodeFeatures);
  for (std::size_t n = 0; n < node_count_; ++n) {
    nn::Var q_raw = nn::slice_cols(quota_mc, n, 1);
    nn::Var q_inv = nn::reciprocal(q_raw);
    // Per-row constant columns staged into recycled tape buffers, filled
    // with the exact expressions predict_var evaluates; the row-constant
    // scale() becomes mul() against a per-row column (same product bits).
    nn::Tensor& wbuf = tape.stage(batch, 1);
    for (std::size_t r = 0; r < batch; ++r)
      wbuf(r, 0) = workload_qps(r, n) * s_.w_scale;
    cols.push_back(tape.commit_constant());
    cols.push_back(nn::scale(q_raw, s_.q_scale));
    cols.push_back(nn::scale(q_inv, s_.q_min_mc));
    nn::Tensor& rbuf = tape.stage(batch, 1);
    for (std::size_t r = 0; r < batch; ++r)
      rbuf(r, 0) = workload_qps(r, n) / s_.ratio_max;
    cols.push_back(nn::mul(q_inv, tape.commit_constant()));
  }
  nn::Var x = nn::concat_cols(cols);
  nn::Var out = mlp_.forward(tape, x, rng_, /*training=*/false);
  return nn::scale(nn::exp(out), s_.label_ref);
}

double SurrogateModel::evaluate_loss(const Dataset& data, double theta_under,
                                     double theta_over) {
  if (data.empty())
    throw std::invalid_argument{"SurrogateModel::evaluate_loss: empty dataset"};
  constexpr std::size_t kChunk = 512;
  double total = 0.0;
  nn::Tape tape;
  for (std::size_t start = 0; start < data.size(); start += kChunk) {
    const std::size_t len = std::min(kChunk, data.size() - start);
    std::vector<std::size_t> idx(len);
    std::iota(idx.begin(), idx.end(), start);
    Batch b = assemble(data, idx);
    tape.reset();
    nn::Var pred = forward_features(tape, b, rng_, /*training=*/false);
    nn::Var d = nn::sub(pred, tape.constant_ref(b.labels));
    nn::Var loss = nn::mean_all(nn::asym_huber(d, theta_under, theta_over));
    total += tape.value(loss).item() * static_cast<double>(len);
  }
  return total / static_cast<double>(data.size());
}

AccuracyReport SurrogateModel::evaluate_accuracy(const Dataset& data,
                                                 double region_lo_ms,
                                                 double region_hi_ms) {
  AccuracyReport rep;
  double abs_sum = 0.0;
  double signed_sum = 0.0;
  for (const Sample& s : data) {
    if (s.latency_ms < region_lo_ms || s.latency_ms >= region_hi_ms) continue;
    const double pred = predict(s.workload, s.quota);
    const double pct = (pred - s.latency_ms) / std::max(s.latency_ms, 1e-9) * 100.0;
    abs_sum += std::abs(pct);
    signed_sum += pct;
    ++rep.count;
  }
  if (rep.count > 0) {
    rep.mean_abs_pct_error = abs_sum / static_cast<double>(rep.count);
    rep.mean_pct_error = signed_sum / static_cast<double>(rep.count);
  }
  return rep;
}

std::uint64_t SurrogateModel::fingerprint(SurrogateModel& model) {
  std::uint64_t h = kFnvOffset;
  mix(h, model.node_count_);
  mix(h, model.cfg_.hidden);
  mix(h, model.cfg_.hidden_layers);
  mix_double(h, model.cfg_.dropout_p);
  mix_double(h, model.s_.w_scale);
  mix_double(h, model.s_.q_scale);
  mix_double(h, model.s_.q_min_mc);
  mix_double(h, model.s_.ratio_max);
  mix_double(h, model.s_.label_ref);
  for (const nn::Tensor& t : model.state_dict()) {
    mix(h, t.rows());
    mix(h, t.cols());
    for (std::size_t i = 0; i < t.size(); ++i) mix_double(h, t.data()[i]);
  }
  return h;
}

Dataset SurrogateDistiller::sample_teacher(LatencyModel& teacher,
                                           std::span<const double> workload_hi,
                                           std::span<const Millicores> lo,
                                           std::span<const Millicores> hi,
                                           std::size_t count, std::uint64_t seed,
                                           double workload_floor,
                                           double correlated_fraction,
                                           double low_quota_bias) {
  const std::size_t n = teacher.node_count();
  if (workload_hi.size() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument{"sample_teacher: dimension mismatch"};
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lo[i] > 0.0) || hi[i] < lo[i])
      throw std::invalid_argument{"sample_teacher: need 0 < lo <= hi"};
    if (workload_hi[i] < 0.0)
      throw std::invalid_argument{"sample_teacher: workload_hi must be >= 0"};
  }
  if (workload_floor < 0.0 || workload_floor > 1.0)
    throw std::invalid_argument{"sample_teacher: workload_floor must be in [0, 1]"};
  if (correlated_fraction < 0.0 || correlated_fraction > 1.0)
    throw std::invalid_argument{
        "sample_teacher: correlated_fraction must be in [0, 1]"};
  if (low_quota_bias < 0.0 || low_quota_bias > 1.0)
    throw std::invalid_argument{"sample_teacher: low_quota_bias must be in [0, 1]"};

  // Inputs first: sample i's draws come from its own derived stream, so the
  // set is a pure function of (seed, count) — chunking below never shifts it.
  Dataset data(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng{derive_seed(seed, i)};
    Sample& s = data[i];
    s.workload.resize(n);
    s.quota.resize(n);
    // Correlated-ray samples share one scale t across nodes: frontend-driven
    // load moves every service together, and planner queries live near that
    // ray — independent draws alone never cover it in higher dimensions.
    if (rng.uniform(0.0, 1.0) < correlated_fraction) {
      const double t = rng.uniform(workload_floor, 1.0);
      for (std::size_t k = 0; k < n; ++k) s.workload[k] = t * workload_hi[k];
    } else {
      for (std::size_t k = 0; k < n; ++k)
        s.workload[k] = rng.uniform(workload_floor * workload_hi[k], workload_hi[k]);
    }
    // Log-uniform quota draws concentrate where the latency surface curves
    // hardest — the low-quota saturation cliffs the solver's level set hugs.
    if (rng.uniform(0.0, 1.0) < low_quota_bias) {
      for (std::size_t k = 0; k < n; ++k)
        s.quota[k] = lo[k] * std::exp(rng.uniform(0.0, std::log(hi[k] / lo[k])));
    } else {
      for (std::size_t k = 0; k < n; ++k) s.quota[k] = rng.uniform(lo[k], hi[k]);
    }
  }

  // Teacher labels in fixed-size chunks over private frozen tapes: eval-mode
  // forwards only read the shared weights, and labels land by sample index,
  // so the dataset is bit-identical at any thread count.
  constexpr std::size_t kChunk = 64;
  const std::size_t chunks = count == 0 ? 0 : (count + kChunk - 1) / kChunk;
  global_pool().parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t len = std::min(kChunk, count - begin);
    nn::Tensor workload_rows{len, n};
    nn::Tensor quota{len, n};
    for (std::size_t r = 0; r < len; ++r)
      for (std::size_t k = 0; k < n; ++k) {
        workload_rows(r, k) = data[begin + r].workload[k];
        quota(r, k) = data[begin + r].quota[k];
      }
    nn::Tape tape;
    tape.set_freeze_params(true);
    nn::Var pred =
        teacher.predict_var_rows(tape, workload_rows, tape.constant(std::move(quota)));
    const nn::Tensor& out = tape.value(pred);
    for (std::size_t r = 0; r < len; ++r) data[begin + r].latency_ms = out(r, 0);
  });
  return data;
}

SurrogateDistiller::Result SurrogateDistiller::distill(
    LatencyModel& teacher, std::span<const double> workload_hi,
    std::span<const Millicores> lo, std::span<const Millicores> hi,
    const DistillConfig& cfg) {
  if (cfg.samples < 16)
    throw std::invalid_argument{"distill: need at least 16 samples"};
  if (cfg.val_fraction < 0.0 || cfg.val_fraction >= 1.0)
    throw std::invalid_argument{"distill: val_fraction must be in [0, 1)"};

  Dataset all = sample_teacher(teacher, workload_hi, lo, hi, cfg.samples, cfg.seed,
                               cfg.workload_floor, cfg.correlated_fraction,
                               cfg.low_quota_bias);
  // Samples are i.i.d., so the held-out tail is an unbiased split.
  const std::size_t val_count = std::min(
      all.size() - 1, static_cast<std::size_t>(
                          std::llround(cfg.val_fraction * static_cast<double>(all.size()))));
  Dataset val{all.end() - static_cast<std::ptrdiff_t>(val_count), all.end()};
  all.resize(all.size() - val_count);

  SurrogateModel model{teacher.node_count(), cfg.model, derive_seed(cfg.seed, 1)};
  model.set_scalers(teacher.scalers());

  DistillReport report;
  report.samples = cfg.samples;
  report.history = model.fit(all, val, cfg.train);
  if (!val.empty())
    report.val_mean_abs_pct_error = model.evaluate_accuracy(val).mean_abs_pct_error;
  return {std::move(model), std::move(report)};
}

}  // namespace graf::gnn
