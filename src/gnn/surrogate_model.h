// Distilled fast-path latency surrogate (DESIGN.md §3.14).
//
// A small dense MLP over the *same* per-node workload/config features the
// full MPNN latency model consumes (w·w_scale, q·q_scale, q_min/q,
// (w/q)/ratio_max — flattened to one 4n-wide row), trained by an offline
// distillation pass against teacher predictions sampled around the
// operating region. The surrogate's tape is orders of magnitude smaller
// than the MPNN's, so the configuration solver's multi-start descent runs
// ~20x+ faster through it; the tiered planner (core/tiered_planner.h)
// verifies every surrogate-solved candidate with one full-GNN forward and
// escalates when the two disagree beyond a trust band.
//
// The surrogate reuses the LatencyModel contract wholesale: the scalers are
// *copied from the teacher* (never refitted) so feature bits match the
// teacher's exactly, fit() runs the same shard-deterministic data-parallel
// loop (deferred param grads, shard-ordered reduction — bit-identical at
// any GRAF_THREADS), and predict_var / predict_var_rows expose the same
// differentiable row-batched entry points the solver descends (rows never
// mix; per-row constant columns replicate scale() via mul(), DESIGN.md
// §3.9/§3.13).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "gnn/latency_model.h"
#include "nn/autodiff.h"
#include "nn/layers.h"
#include "telemetry/metrics.h"

namespace graf::gnn {

/// Surrogate architecture: a ReLU MLP {4n, hidden x hidden_layers, 1}
/// predicting log(latency/label_ref); predict_var wraps the readout in
/// exp(), so the reported latency is always positive and the hyperbolic
/// blow-up near saturation is fit in a compressed range.
struct SurrogateConfig {
  std::size_t hidden = 32;
  std::size_t hidden_layers = 2;
  double dropout_p = 0.0;
};

class SurrogateModel {
 public:
  /// Same per-node feature convention as the teacher (LatencyModel).
  static constexpr std::size_t kNodeFeatures = LatencyModel::kNodeFeatures;

  SurrogateModel(std::size_t node_count, const SurrogateConfig& cfg,
                 std::uint64_t seed);

  std::size_t node_count() const { return node_count_; }
  const SurrogateConfig& config() const { return cfg_; }
  std::size_t param_count() { return mlp_.param_count(); }

  /// Train on teacher-labelled samples. Scalers are NOT refitted here — the
  /// distiller injects the teacher's via set_scalers() so the surrogate and
  /// the teacher read bit-identical features at every query point. Same
  /// deterministic data-parallel machinery as LatencyModel::fit (shard
  /// count a pure function of cfg, derive_seed(seed, iter, shard) dropout
  /// streams, shard-ordered gradient reduction).
  TrainHistory fit(const Dataset& train, const Dataset& val, const TrainConfig& cfg);

  /// Eval-mode prediction (ms). Routed through predict_var so the scalar
  /// path reports the exact bits the solver's frozen scoring forward sees.
  double predict(std::span<const double> workload_qps,
                 std::span<const double> quota_millicores);

  /// Differentiable prediction: quota_mc is B x node_count; returns B x 1
  /// latency in ms. Rows never mix (the MLP is row-wise), so a B-row
  /// forward equals B independent 1-row forwards bit for bit — the property
  /// the batched multi-start descent and the fleet stacking rely on.
  nn::Var predict_var(nn::Tape& tape, std::span<const double> workload_qps,
                      nn::Var quota_mc);

  /// predict_var with per-row workloads (R x node_count), mirroring
  /// LatencyModel::predict_var_rows: per-row constant columns built from
  /// the same expressions, row-constant scale() replaced by mul() against a
  /// per-row column (IEEE multiply is commutative, so forward and backward
  /// bits match). This is what lets the fleet stack many tenants'
  /// surrogate descents into one tape (§3.13/§3.14).
  nn::Var predict_var_rows(nn::Tape& tape, const nn::Tensor& workload_qps,
                           nn::Var quota_mc);

  /// Mean training-loss value over a dataset (eval mode).
  double evaluate_loss(const Dataset& data, double theta_under, double theta_over);
  /// Percentage-error accuracy against the dataset labels (for distillation
  /// sets the labels are teacher predictions, so this reads as
  /// surrogate-vs-teacher fidelity).
  AccuracyReport evaluate_accuracy(const Dataset& data, double region_lo_ms = 0.0,
                                   double region_hi_ms = 1e18);

  ScalerState scalers() const { return s_; }
  void set_scalers(const ScalerState& s) { s_ = s; }

  std::vector<nn::Tensor> state_dict() { return mlp_.state_dict(); }
  void load_state_dict(const std::vector<nn::Tensor>& state) {
    mlp_.load_state_dict(state);
  }

  /// Independent deep copy (weights, scalers, rng state) — the online
  /// refresh fine-tunes a clone while `this` keeps serving.
  SurrogateModel clone() const { return *this; }

  /// Content fingerprint (FNV-1a 64) over everything that shapes a forward:
  /// node count, architecture, scaler bits, every weight bit. Equal
  /// fingerprints imply bit-identical predictions, so the fleet may batch
  /// tenants through either instance (pointer identity plays no part).
  static std::uint64_t fingerprint(SurrogateModel& model);

 private:
  struct Batch {
    nn::Tensor features;  // batch x 4n (flattened per-node features)
    nn::Tensor labels;    // batch x 1: log(latency / label_ref)
  };

  Batch assemble(const Dataset& data, std::span<const std::size_t> idx) const;
  nn::Var forward_features(nn::Tape& tape, const Batch& b, Rng& rng, bool training);

  std::size_t node_count_;
  SurrogateConfig cfg_;
  Rng rng_;  // declared before mlp_ so it can seed weight initialization
  nn::Mlp mlp_;
  ScalerState s_{};
};

/// Offline distillation pass configuration.
struct DistillConfig {
  /// Teacher queries sampled around the operating region.
  std::size_t samples = 4096;
  /// Tail fraction of the sample set held out for fidelity validation.
  double val_fraction = 0.125;
  /// Per-node workload draws cover [workload_floor * hi_w, hi_w].
  double workload_floor = 0.0;
  /// Fraction of samples whose per-node workloads share one common scale
  /// t·hi_w (the correlated-load ray) instead of independent draws.
  /// Microservice load is frontend-driven, so planner queries cluster near
  /// that ray — independent draws alone essentially never cover it once the
  /// graph has more than a few nodes.
  double correlated_fraction = 0.5;
  /// Fraction of samples whose quotas are drawn log-uniformly over [lo, hi]
  /// instead of uniformly: latency curvature concentrates near the low-quota
  /// saturation cliffs, and uniform draws leave that region thin.
  double low_quota_bias = 0.5;
  std::uint64_t seed = 20177;
  SurrogateConfig model;
  /// Short, decayed schedule — the surrogate is tiny and the teacher
  /// surface smooth, so a few thousand steps reach low single-digit
  /// percentage fidelity. Thetas are symmetric (unlike the teacher's
  /// SLO-safe under-estimation bias): the tiered planner's trust band is a
  /// symmetric |surrogate - full| check, and the teacher labels already
  /// carry the safety bias, so skewing the surrogate *again* would only
  /// widen disagreement on the over-prediction side.
  TrainConfig train{.iterations = 3000,
                    .batch_size = 128,
                    .lr = 3e-3,
                    .lr_decay_every = 600,
                    .lr_decay_factor = 0.6,
                    .theta_under = 0.1,
                    .theta_over = 0.1,
                    .eval_every = 250,
                    .seed = 11,
                    .select_best = true,
                    .shard_rows = 32};
};

/// Outcome diagnostics of one distillation pass.
struct DistillReport {
  std::size_t samples = 0;
  /// Surrogate-vs-teacher mean |error| percent on the held-out tail.
  double val_mean_abs_pct_error = 0.0;
  TrainHistory history;
};

class SurrogateDistiller {
 public:
  /// Teacher-labelled dataset sampled uniformly over the operating region:
  /// per-node workload in [workload_floor*hi_w, hi_w] (a correlated_fraction
  /// of samples instead share one common scale across nodes — see
  /// DistillConfig::correlated_fraction), quota in [lo, hi].
  /// Sample i's draws come from derive_seed(seed, i) — independent of the
  /// thread count and of sibling samples — and labels are teacher forwards
  /// evaluated in fixed-size chunks over private frozen tapes on the global
  /// pool, written by sample index: the dataset is bit-identical at any
  /// GRAF_THREADS.
  static Dataset sample_teacher(LatencyModel& teacher,
                                std::span<const double> workload_hi,
                                std::span<const Millicores> lo,
                                std::span<const Millicores> hi, std::size_t count,
                                std::uint64_t seed, double workload_floor = 0.0,
                                double correlated_fraction = 0.0,
                                double low_quota_bias = 0.0);

  struct Result {
    SurrogateModel model;
    DistillReport report;
  };

  /// The full offline pass: sample the teacher, copy its scalers into a
  /// fresh surrogate, fit, and report held-out fidelity.
  static Result distill(LatencyModel& teacher, std::span<const double> workload_hi,
                        std::span<const Millicores> lo,
                        std::span<const Millicores> hi, const DistillConfig& cfg);
};

}  // namespace graf::gnn
