#include "gnn/partitioned_model.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optim.h"

namespace graf::gnn {

std::vector<std::vector<int>> partition_dag(const Dag& dag, std::size_t max_size) {
  if (max_size == 0) throw std::invalid_argument{"partition_dag: max_size == 0"};
  const auto order = dag.topological_order();
  std::vector<std::vector<int>> parts;
  for (std::size_t i = 0; i < order.size(); i += max_size) {
    parts.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() +
                           static_cast<std::ptrdiff_t>(std::min(i + max_size,
                                                                order.size())));
  }
  return parts;
}

namespace {

/// Induced subgraph over `nodes` (edges whose ends are both inside).
Dag induced_subgraph(const Dag& dag, const std::vector<int>& nodes) {
  Dag sub;
  for (int n : nodes) sub.add_node(dag.name(n));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int child : dag.children(nodes[i])) {
      const auto it = std::find(nodes.begin(), nodes.end(), child);
      if (it != nodes.end())
        sub.add_edge(static_cast<int>(i),
                     static_cast<int>(it - nodes.begin()));
    }
  }
  return sub;
}

}  // namespace

PartitionedLatencyModel::PartitionedLatencyModel(const Dag& graph,
                                                 const MpnnConfig& cfg,
                                                 std::size_t max_partition_size,
                                                 std::uint64_t seed)
    : node_count_{graph.node_count()}, rng_{seed} {
  if (cfg.node_features != LatencyModel::kNodeFeatures)
    throw std::invalid_argument{
        "PartitionedLatencyModel: node_features must equal kNodeFeatures"};
  node_of_part_ = partition_dag(graph, max_partition_size);
  parts_.reserve(node_of_part_.size());
  for (const auto& nodes : node_of_part_) {
    // The whole point of partitioning is a readout sized to the partition,
    // not to the application: cap its width at the flattened embedding dim.
    MpnnConfig pcfg = cfg;
    pcfg.readout_hidden =
        std::min(cfg.readout_hidden,
                 std::max<std::size_t>(16, nodes.size() * cfg.embed_dim));
    parts_.push_back(
        Part{nodes, MpnnModel{induced_subgraph(graph, nodes), pcfg, rng_}});
  }
}

std::vector<nn::Param*> PartitionedLatencyModel::all_params() {
  std::vector<nn::Param*> out;
  for (auto& p : parts_) p.model.collect_params(out);
  return out;
}

std::size_t PartitionedLatencyModel::param_count() {
  std::size_t n = 0;
  for (nn::Param* p : all_params()) n += p->value.size();
  return n;
}

void PartitionedLatencyModel::fit_scalers(const Dataset& train) {
  double wmax = 1e-9;
  double qmax = 1e-9;
  double qmin = std::numeric_limits<double>::infinity();
  double ratio_max = 1e-9;
  double lsum = 0.0;
  for (const Sample& s : train) {
    if (s.workload.size() != node_count_ || s.quota.size() != node_count_)
      throw std::invalid_argument{"PartitionedLatencyModel: sample dimension"};
    for (double w : s.workload) wmax = std::max(wmax, w);
    for (std::size_t i = 0; i < node_count_; ++i) {
      qmax = std::max(qmax, s.quota[i]);
      qmin = std::min(qmin, s.quota[i]);
      ratio_max = std::max(ratio_max, s.workload[i] / s.quota[i]);
    }
    lsum += s.latency_ms;
  }
  w_scale_ = 1.0 / wmax;
  q_scale_ = 1.0 / qmax;
  q_min_mc_ = qmin;
  ratio_max_ = ratio_max;
  label_ref_ = std::max(lsum / static_cast<double>(train.size()), 1e-9);
}

nn::Tensor PartitionedLatencyModel::features_for(const Dataset& data,
                                                 std::span<const std::size_t> idx,
                                                 int node) const {
  nn::Tensor f{idx.size(), LatencyModel::kNodeFeatures};
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const Sample& s = data[idx[r]];
    const auto n = static_cast<std::size_t>(node);
    f(r, 0) = s.workload[n] * w_scale_;
    f(r, 1) = s.quota[n] * q_scale_;
    f(r, 2) = q_min_mc_ / s.quota[n];
    f(r, 3) = s.workload[n] / s.quota[n] / ratio_max_;
  }
  return f;
}

nn::Var PartitionedLatencyModel::forward(nn::Tape& tape, const Dataset& data,
                                         std::span<const std::size_t> idx, Rng& rng,
                                         bool training) {
  nn::Var total;
  for (auto& part : parts_) {
    std::vector<nn::Var> feats;
    feats.reserve(part.nodes.size());
    for (int node : part.nodes)
      feats.push_back(tape.constant(features_for(data, idx, node)));
    nn::Var out = part.model.forward(tape, feats, rng, training);
    total = total.valid() ? nn::add(total, out) : out;
  }
  return total;
}

TrainHistory PartitionedLatencyModel::fit(const Dataset& train, const Dataset& val,
                                          const TrainConfig& cfg) {
  if (train.empty())
    throw std::invalid_argument{"PartitionedLatencyModel::fit: empty training set"};
  fit_scalers(train);

  Rng rng{cfg.seed};
  nn::Adam opt{all_params(), {.lr = cfg.lr}};
  TrainHistory hist;
  hist.best_val_loss = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::size_t cursor = order.size();

  auto eval_loss = [&](const Dataset& data) {
    constexpr std::size_t kChunk = 512;
    double total = 0.0;
    nn::Tape tape;
    for (std::size_t start = 0; start < data.size(); start += kChunk) {
      const std::size_t len = std::min(kChunk, data.size() - start);
      std::vector<std::size_t> idx(len);
      std::iota(idx.begin(), idx.end(), start);
      nn::Tensor labels{len, 1};
      for (std::size_t r = 0; r < len; ++r)
        labels(r, 0) = data[idx[r]].latency_ms / label_ref_;
      tape.reset();
      nn::Var pred = forward(tape, data, idx, rng_, false);
      nn::Var loss =
          nn::asym_huber_pct_loss(pred, labels, cfg.theta_under, cfg.theta_over);
      total += tape.value(loss).item() * static_cast<double>(len);
    }
    return total / static_cast<double>(data.size());
  };

  nn::Tape tape;
  double running = 0.0;
  std::size_t running_n = 0;
  for (std::size_t it = 1; it <= cfg.iterations; ++it) {
    std::vector<std::size_t> idx;
    idx.reserve(cfg.batch_size);
    while (idx.size() < cfg.batch_size) {
      if (cursor >= order.size()) {
        for (std::size_t i = order.size(); i > 1; --i)
          std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform_int(
                                      0, static_cast<std::int64_t>(i) - 1))]);
        cursor = 0;
      }
      idx.push_back(order[cursor++]);
    }
    nn::Tensor labels{idx.size(), 1};
    for (std::size_t r = 0; r < idx.size(); ++r)
      labels(r, 0) = train[idx[r]].latency_ms / label_ref_;

    tape.reset();
    nn::Var pred = forward(tape, train, idx, rng, true);
    nn::Var loss =
        nn::asym_huber_pct_loss(pred, labels, cfg.theta_under, cfg.theta_over);
    for (nn::Param* p : all_params()) p->zero_grad();
    tape.backward(loss);
    opt.step();
    if (cfg.lr_decay_every > 0 && it % cfg.lr_decay_every == 0)
      opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay_factor);

    running += tape.value(loss).item();
    ++running_n;
    if (it % cfg.eval_every == 0 || it == cfg.iterations) {
      const double train_loss = running / static_cast<double>(running_n);
      running = 0.0;
      running_n = 0;
      const double val_loss = val.empty() ? train_loss : eval_loss(val);
      hist.iteration.push_back(it);
      hist.train_loss.push_back(train_loss);
      hist.val_loss.push_back(val_loss);
      hist.best_val_loss = std::min(hist.best_val_loss, val_loss);
    }
  }
  return hist;
}

double PartitionedLatencyModel::predict(std::span<const double> workload_qps,
                                        std::span<const double> quota_millicores) {
  if (workload_qps.size() != node_count_ || quota_millicores.size() != node_count_)
    throw std::invalid_argument{"PartitionedLatencyModel::predict: dimensions"};
  Dataset one(1);
  one[0].workload.assign(workload_qps.begin(), workload_qps.end());
  one[0].quota.assign(quota_millicores.begin(), quota_millicores.end());
  one[0].latency_ms = 0.0;
  const std::size_t idx[] = {0};
  nn::Tape tape;
  nn::Var out = forward(tape, one, idx, rng_, false);
  return tape.value(out).item() * label_ref_;
}

AccuracyReport PartitionedLatencyModel::evaluate_accuracy(const Dataset& data,
                                                          double region_lo_ms,
                                                          double region_hi_ms) {
  AccuracyReport rep;
  double abs_sum = 0.0;
  double signed_sum = 0.0;
  for (const Sample& s : data) {
    if (s.latency_ms < region_lo_ms || s.latency_ms >= region_hi_ms) continue;
    const double pred = predict(s.workload, s.quota);
    const double pct = (pred - s.latency_ms) / std::max(s.latency_ms, 1e-9) * 100.0;
    abs_sum += std::abs(pct);
    signed_sum += pct;
    ++rep.count;
  }
  if (rep.count > 0) {
    rep.mean_abs_pct_error = abs_sum / static_cast<double>(rep.count);
    rep.mean_pct_error = signed_sum / static_cast<double>(rep.count);
  }
  return rep;
}

}  // namespace graf::gnn
