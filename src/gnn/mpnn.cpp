#include "gnn/mpnn.h"

#include <stdexcept>

namespace graf::gnn {

namespace {

std::vector<std::vector<int>> snapshot_parents(const Dag& g) {
  std::vector<std::vector<int>> out;
  out.reserve(g.node_count());
  for (std::size_t i = 0; i < g.node_count(); ++i)
    out.push_back(g.parents(static_cast<int>(i)));
  return out;
}

}  // namespace

nn::Mlp MpnnModel::make_readout(const Dag& graph, const MpnnConfig& cfg, Rng& rng) {
  const std::size_t per_node = cfg.use_mpnn ? cfg.embed_dim : cfg.node_features;
  const std::size_t in = graph.node_count() * per_node;
  return nn::Mlp{{in, cfg.readout_hidden, cfg.readout_hidden, 1}, cfg.dropout_p, rng};
}

MpnnModel::MpnnModel(const Dag& graph, const MpnnConfig& cfg, Rng& rng)
    : cfg_{cfg}, parents_{snapshot_parents(graph)},
      readout_{make_readout(graph, cfg, rng)} {
  if (graph.node_count() == 0) throw std::invalid_argument{"MpnnModel: empty graph"};
  if (cfg_.use_mpnn) {
    // Dropout is applied only to the FC readout (paper §3.4); the message
    // and update networks train without it.
    std::size_t h_dim = cfg_.node_features;  // dimension of h at each step
    for (std::size_t k = 0; k < cfg_.message_steps; ++k) {
      phi_.emplace_back(
          std::vector<std::size_t>{h_dim, cfg_.mpnn_hidden, cfg_.mpnn_hidden,
                                   cfg_.embed_dim},
          0.0, rng);
      gamma_.emplace_back(
          std::vector<std::size_t>{h_dim + cfg_.embed_dim, cfg_.mpnn_hidden,
                                   cfg_.mpnn_hidden, cfg_.embed_dim},
          0.0, rng);
      h_dim = cfg_.embed_dim;
    }
  }
}

nn::Var MpnnModel::forward(nn::Tape& tape, std::span<const nn::Var> node_features,
                           Rng& rng, bool training) {
  const std::size_t n = parents_.size();
  if (node_features.size() != n)
    throw std::invalid_argument{"MpnnModel::forward: feature count != node count"};
  const std::size_t batch = tape.value(node_features.front()).rows();

  std::vector<nn::Var> h{node_features.begin(), node_features.end()};

  if (cfg_.use_mpnn) {
    for (std::size_t k = 0; k < cfg_.message_steps; ++k) {
      // Messages from every node, computed once per step.
      std::vector<nn::Var> msg;
      msg.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        msg.push_back(phi_[k].forward(tape, h[i], rng, training));

      std::vector<nn::Var> next;
      next.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        nn::Var agg;
        if (parents_[i].empty()) {
          agg = tape.zeros(batch, cfg_.embed_dim);
        } else {
          agg = msg[static_cast<std::size_t>(parents_[i].front())];
          for (std::size_t p = 1; p < parents_[i].size(); ++p)
            agg = nn::add(agg, msg[static_cast<std::size_t>(parents_[i][p])]);
        }
        const nn::Var both[] = {h[i], agg};
        next.push_back(gamma_[k].forward(tape, nn::concat_cols(both), rng, training));
      }
      h = std::move(next);
    }
  }

  nn::Var flat = nn::concat_cols(h);
  return readout_.forward(tape, flat, rng, training);
}

void MpnnModel::collect_params(std::vector<nn::Param*>& out) {
  for (auto& m : phi_) m.collect_params(out);
  for (auto& m : gamma_) m.collect_params(out);
  readout_.collect_params(out);
}

}  // namespace graf::gnn
