// End-to-end tail-latency prediction model (paper §3.4).
//
// Wraps the MPNN + readout network with input/output normalization, the
// asymmetric Hüber percentage-error training loop (Table 1), validation
// based best-model selection, and a differentiable-inputs entry point used
// by the configuration solver (§3.5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gnn/graph.h"
#include "gnn/mpnn.h"
#include "nn/autodiff.h"
#include "telemetry/metrics.h"

namespace graf::gnn {

/// One collected observation: per-node workloads (qps), per-node CPU quotas
/// (millicores), and the measured end-to-end tail latency (milliseconds).
struct Sample {
  std::vector<double> workload;
  std::vector<double> quota;
  double latency_ms = 0.0;
};

using Dataset = std::vector<Sample>;

/// Training hyper-parameters; defaults follow the paper's Table 1. The
/// benchmark harness overrides `iterations` downward so the whole suite
/// runs on one CPU core.
struct TrainConfig {
  std::size_t iterations = 70000;  ///< gradient steps (Table 1 "epochs")
  std::size_t batch_size = 256;
  double lr = 2e-4;
  /// Step learning-rate decay: lr *= lr_decay_factor every lr_decay_every
  /// iterations (disabled when lr_decay_every == 0). The paper's fixed
  /// 2e-4 over 70k iterations is approximated at lower budgets by starting
  /// higher and decaying.
  std::size_t lr_decay_every = 0;
  double lr_decay_factor = 0.5;
  double theta_under = 0.3;  ///< quadratic bound, under-estimation side
  double theta_over = 0.1;   ///< quadratic bound, over-estimation side
  std::size_t eval_every = 250;  ///< history cadence; 0 = final iteration only
  std::uint64_t seed = 1;
  bool select_best = true;  ///< restore best-validation weights after training
  /// Data-parallel sharding: each minibatch is split into ceil(batch_size /
  /// shard_rows) shards executed on the global thread pool, with gradients
  /// reduced into the shared Adam step in shard order. The decomposition —
  /// and therefore the trained weights, bit-for-bit — depends only on this
  /// value, never on the thread count (DESIGN.md §3.7). 0 disables sharding
  /// (one shard, still thread-count independent).
  std::size_t shard_rows = 32;
};

struct TrainHistory {
  std::vector<std::size_t> iteration;
  std::vector<double> train_loss;  ///< running batch loss at each eval point
  std::vector<double> val_loss;
  double best_val_loss = 0.0;
};

/// Accuracy summary used by the paper's Table 2.
struct AccuracyReport {
  double mean_abs_pct_error = 0.0;  ///< mean |pred-actual|/actual, percent
  double mean_pct_error = 0.0;      ///< signed mean; >0 means over-estimation
  std::size_t count = 0;
};

/// Input/output normalization statistics fitted from the training set.
/// Exposed as one value struct so checkpoints (src/serve) can persist and
/// restore them exactly.
struct ScalerState {
  double w_scale = 1.0;
  double q_scale = 1.0;
  double q_min_mc = 1.0;
  double ratio_max = 1.0;
  double label_ref = 1.0;
};

class LatencyModel {
 public:
  /// Features per node: workload, quota, 1/quota, workload/quota — the raw
  /// (workload, quota) node state of the paper plus the two derived
  /// "scaled inputs" that make the latency hyperbola learnable at small
  /// sample budgets (DESIGN.md §3.2).
  static constexpr std::size_t kNodeFeatures = 4;

  /// Requires cfg.node_features == kNodeFeatures.
  LatencyModel(const Dag& graph, const MpnnConfig& cfg, std::uint64_t seed);

  std::size_t node_count() const { return node_count_; }

  /// Trainable parameter count (scalability reporting; grows linearly with
  /// the application size through the readout, §6).
  std::size_t param_count() { return model_.param_count(); }

  /// Train on `train`, monitor `val`. Normalization scalers are (re)fitted
  /// from `train`. Returns loss history for learning-curve reporting.
  TrainHistory fit(const Dataset& train, const Dataset& val, const TrainConfig& cfg);

  /// Predict end-to-end tail latency (ms) in eval mode (dropout off).
  double predict(std::span<const double> workload_qps,
                 std::span<const double> quota_millicores);

  /// Differentiable prediction: `quota_mc` is a B x node_count Var holding
  /// millicore quotas (one row per candidate); the returned B x 1 Var is
  /// latency in ms per row. Gradients flow back to `quota_mc` — this is what
  /// the configuration solver descends. Rows never mix: a B-row forward
  /// equals B independent 1-row forwards, bit for bit (DESIGN.md §3.9),
  /// which is what makes batched multi-start exact.
  nn::Var predict_var(nn::Tape& tape, std::span<const double> workload_qps,
                      nn::Var quota_mc);

  /// predict_var with a *per-row* workload: `workload_qps` is R x node_count
  /// (row r's workload vector) and `quota_mc` an R x node_count Var. Rows
  /// whose workload vectors are equal produce bit-identical outputs to a
  /// predict_var forward over just those rows — the per-node constant
  /// columns are built from the same expressions, the row-constant scale()
  /// becomes an elementwise mul() against a per-row constant column (IEEE
  /// multiplication is commutative, so forward and backward bits match),
  /// and the MPNN never mixes rows (DESIGN.md §3.9). This is what lets the
  /// fleet stack many tenants' descents into one tape (§3.13).
  nn::Var predict_var_rows(nn::Tape& tape, const nn::Tensor& workload_qps,
                           nn::Var quota_mc);

  /// Mean training-loss value of the current weights over a dataset
  /// (eval mode) — used for learning curves and the Fig. 11 ablation.
  double evaluate_loss(const Dataset& data, double theta_under, double theta_over);

  /// Percentage-error accuracy over samples whose actual latency lies in
  /// [region_lo_ms, region_hi_ms) — Table 2's per-region rows.
  AccuracyReport evaluate_accuracy(const Dataset& data, double region_lo_ms = 0.0,
                                   double region_hi_ms = 1e18);

  void save(std::ostream& os);
  void load(std::istream& is);

  double workload_scale() const { return w_scale_; }
  double quota_scale() const { return q_scale_; }
  double label_ref_ms() const { return label_ref_; }

  // --- Model-store hooks (src/serve) ---------------------------------------

  /// Node names captured from the construction DAG (checkpoint metadata).
  const std::vector<std::string>& node_names() const { return node_names_; }
  const MpnnConfig& mpnn_config() const { return model_.config(); }
  /// Adjacency (parents per node) captured from the construction DAG.
  const std::vector<std::vector<int>>& graph_parents() const { return model_.parents(); }
  /// Reconstruct an equivalent Dag from the captured names + adjacency.
  Dag rebuild_graph() const;

  ScalerState scalers() const {
    return {w_scale_, q_scale_, q_min_mc_, ratio_max_, label_ref_};
  }
  void set_scalers(const ScalerState& s);

  /// Copies of all weights / overwrite weights (shape-checked).
  std::vector<nn::Tensor> state_dict() { return model_.state_dict(); }
  void load_state_dict(const std::vector<nn::Tensor>& state) {
    model_.load_state_dict(state);
  }

  /// Independent deep copy (weights, scalers, rng state). The clone can be
  /// fine-tuned in the background while `this` keeps serving. Telemetry
  /// attachment (histogram pointers into an external registry) is shared.
  LatencyModel clone() const { return *this; }

  /// Profile MPNN wall time into `gnn.forward_us` (evaluation / predict
  /// forwards) and `gnn.train_step_us` (one fused data-parallel
  /// forward+backward+reduce training step; recorded from the coordinating
  /// thread so worker shards stay instrument-free and race-free). nullptr
  /// detaches (default, zero overhead).
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  struct Batch {
    std::vector<nn::Tensor> features;  // per node: batch x F
    nn::Tensor labels;                 // batch x 1 (normalized)
  };

  Batch assemble(const Dataset& data, std::span<const std::size_t> idx) const;
  nn::Var forward_batch(nn::Tape& tape, const Batch& b, Rng& rng, bool training);
  /// Timer-free forward over an assembled batch — the worker-thread path;
  /// `model_` parameters are read-only here, so concurrent shard tapes are
  /// safe as long as each tape defers its param gradients.
  nn::Var forward_features(nn::Tape& tape, const Batch& b, Rng& rng,
                           bool training);
  void fit_scalers(const Dataset& train);

  std::size_t node_count_;
  std::vector<std::string> node_names_;
  Rng rng_;  // declared before model_ so it can seed weight initialization
  MpnnModel model_;
  double w_scale_ = 1.0;
  double q_scale_ = 1.0;
  double q_min_mc_ = 1.0;    ///< min training quota; scales the 1/q feature
  double ratio_max_ = 1.0;   ///< max training workload/quota ratio
  double label_ref_ = 1.0;
  telemetry::LogHistogram* forward_timer_ = nullptr;
  telemetry::LogHistogram* train_step_timer_ = nullptr;
};

}  // namespace graf::gnn
