// Directed acyclic graph describing a microservice application's call
// structure. Node i's parents are the microservices that invoke it; message
// passing (paper §3.4) propagates front-end state down these edges.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace graf::gnn {

class Dag {
 public:
  /// Add a node; returns its index. Names must be unique.
  int add_node(std::string name);

  /// Add edge parent -> child (parent invokes child). Rejects duplicates,
  /// self loops, and edges that would create a cycle.
  void add_edge(int parent, int child);

  std::size_t node_count() const { return names_.size(); }
  const std::string& name(int i) const { return names_.at(static_cast<std::size_t>(i)); }

  /// Index of the named node, or -1.
  int index_of(const std::string& name) const;

  const std::vector<int>& parents(int i) const {
    return parents_.at(static_cast<std::size_t>(i));
  }
  const std::vector<int>& children(int i) const {
    return children_.at(static_cast<std::size_t>(i));
  }

  /// Nodes with no parents (the front-end tier).
  std::vector<int> roots() const;

  /// Parents-before-children ordering.
  std::vector<int> topological_order() const;

  std::size_t edge_count() const { return edge_count_; }

 private:
  bool reachable(int from, int to) const;

  std::vector<std::string> names_;
  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
  std::size_t edge_count_ = 0;
};

}  // namespace graf::gnn
