#include "gnn/batched_latency_model.h"

#include <bit>
#include <stdexcept>

namespace graf::gnn {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

BatchedLatencyModel::BatchedLatencyModel(LatencyModel& model,
                                         std::size_t rows_per_graph)
    : model_{&model}, rows_per_graph_{rows_per_graph} {
  if (rows_per_graph_ == 0)
    throw std::invalid_argument{"BatchedLatencyModel: rows_per_graph must be >= 1"};
}

std::size_t BatchedLatencyModel::add_graph(std::span<const double> workload_qps) {
  if (workload_qps.size() != model_->node_count())
    throw std::invalid_argument{"BatchedLatencyModel::add_graph: dimension mismatch"};
  workloads_.emplace_back(workload_qps.begin(), workload_qps.end());
  rows_dirty_ = true;
  return workloads_.size() - 1;
}

nn::Var BatchedLatencyModel::predict_var(nn::Tape& tape, nn::Var quota_mc) {
  if (workloads_.empty())
    throw std::invalid_argument{"BatchedLatencyModel::predict_var: no graphs"};
  const std::size_t n = model_->node_count();
  if (rows_dirty_) {
    workload_rows_ = nn::Tensor{rows(), n};
    for (std::size_t g = 0; g < workloads_.size(); ++g)
      for (std::size_t k = 0; k < rows_per_graph_; ++k)
        for (std::size_t i = 0; i < n; ++i)
          workload_rows_(g * rows_per_graph_ + k, i) = workloads_[g][i];
    rows_dirty_ = false;
  }
  return model_->predict_var_rows(tape, workload_rows_, quota_mc);
}

double BatchedLatencyModel::predict(std::size_t graph,
                                    std::span<const double> quota_mc) {
  if (graph >= workloads_.size())
    throw std::invalid_argument{"BatchedLatencyModel::predict: bad graph index"};
  return model_->predict(workloads_[graph], quota_mc);
}

std::uint64_t BatchedLatencyModel::fingerprint(LatencyModel& model) {
  std::uint64_t h = kFnvOffset;
  mix(h, model.node_count());
  for (const auto& parents : model.graph_parents()) {
    mix(h, parents.size());
    for (int p : parents) mix(h, static_cast<std::uint64_t>(p));
  }
  const MpnnConfig& cfg = model.mpnn_config();
  mix(h, cfg.node_features);
  mix(h, cfg.embed_dim);
  mix(h, cfg.mpnn_hidden);
  mix(h, cfg.readout_hidden);
  mix(h, cfg.message_steps);
  mix_double(h, cfg.dropout_p);
  mix(h, cfg.use_mpnn ? 1 : 0);
  const ScalerState s = model.scalers();
  mix_double(h, s.w_scale);
  mix_double(h, s.q_scale);
  mix_double(h, s.q_min_mc);
  mix_double(h, s.ratio_max);
  mix_double(h, s.label_ref);
  for (const nn::Tensor& t : model.state_dict()) {
    mix(h, t.rows());
    mix(h, t.cols());
    for (std::size_t i = 0; i < t.size(); ++i) mix_double(h, t.data()[i]);
  }
  return h;
}

}  // namespace graf::gnn
