// Message-passing neural network over the microservice DAG (paper §3.4,
// Eq. 3) plus the fully-connected readout that regresses end-to-end tail
// latency from the flattened node embeddings (paper Fig. 9).
//
// Each message-passing step k computes, for every node i,
//   e_i = gamma_k( h_i , sum_{j in parents(i)} phi_k(h_j) )
// where gamma/phi are two-hidden-layer 20-unit ReLU MLPs and h is the raw
// node feature vector at step 1 and the previous embedding afterwards.
// Setting Config::use_mpnn = false yields the paper's Fig. 11 ablation
// ("GRAF w/o MPNN"): the readout consumes the raw node features directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gnn/graph.h"
#include "nn/layers.h"

namespace graf::gnn {

struct MpnnConfig {
  /// Per-node input features. The paper's node state is the
  /// (workload, CPU quota) pair; LatencyModel additionally derives
  /// 1/quota and workload/quota (its "scaled input" stage), so its models
  /// use 4 features per node.
  std::size_t node_features = 4;
  std::size_t embed_dim = 20;       ///< node embedding width
  std::size_t mpnn_hidden = 20;     ///< hidden units in gamma/phi (paper: 20)
  std::size_t readout_hidden = 120; ///< hidden units in readout FC (paper: 120)
  std::size_t message_steps = 2;    ///< paper: two message-passing steps
  double dropout_p = 0.25;          ///< paper Table 1
  bool use_mpnn = true;             ///< false = Fig. 11 ablation
};

class MpnnModel : public nn::Module {
 public:
  /// The DAG is captured by reference to its structure (copied).
  MpnnModel(const Dag& graph, const MpnnConfig& cfg, Rng& rng);

  /// node_features[i] is a (batch x node_features) Var for graph node i.
  /// Returns a (batch x 1) latency prediction (in normalized label units).
  nn::Var forward(nn::Tape& tape, std::span<const nn::Var> node_features,
                  Rng& rng, bool training);

  const MpnnConfig& config() const { return cfg_; }
  std::size_t graph_size() const { return parents_.size(); }
  /// Adjacency snapshot (parents per node) — lets the model store
  /// serialize the graph structure alongside the weights.
  const std::vector<std::vector<int>>& parents() const { return parents_; }

  void collect_params(std::vector<nn::Param*>& out) override;

 private:
  MpnnConfig cfg_;
  std::vector<std::vector<int>> parents_;  // adjacency snapshot
  // Per message step: message net phi_k and update net gamma_k.
  std::vector<nn::Mlp> phi_;
  std::vector<nn::Mlp> gamma_;
  nn::Mlp readout_;

  static nn::Mlp make_readout(const Dag& graph, const MpnnConfig& cfg, Rng& rng);
};

}  // namespace graf::gnn
