#include "gnn/latency_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <memory>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "telemetry/profiler.h"

namespace graf::gnn {

namespace {

std::vector<std::string> snapshot_names(const Dag& graph) {
  std::vector<std::string> names;
  names.reserve(graph.node_count());
  for (std::size_t i = 0; i < graph.node_count(); ++i)
    names.push_back(graph.name(static_cast<int>(i)));
  return names;
}

}  // namespace

LatencyModel::LatencyModel(const Dag& graph, const MpnnConfig& cfg, std::uint64_t seed)
    : node_count_{graph.node_count()}, node_names_{snapshot_names(graph)},
      rng_{seed}, model_{graph, cfg, rng_} {
  if (cfg.node_features != kNodeFeatures)
    throw std::invalid_argument{
        "LatencyModel: MpnnConfig::node_features must equal kNodeFeatures"};
}

Dag LatencyModel::rebuild_graph() const {
  Dag g;
  for (const std::string& name : node_names_) g.add_node(name);
  const auto& parents = model_.parents();
  for (std::size_t child = 0; child < parents.size(); ++child)
    for (int parent : parents[child]) g.add_edge(parent, static_cast<int>(child));
  return g;
}

void LatencyModel::set_scalers(const ScalerState& s) {
  w_scale_ = s.w_scale;
  q_scale_ = s.q_scale;
  q_min_mc_ = s.q_min_mc;
  ratio_max_ = s.ratio_max;
  label_ref_ = s.label_ref;
}

void LatencyModel::fit_scalers(const Dataset& train) {
  double wmax = 1e-9;
  double qmax = 1e-9;
  double qmin = std::numeric_limits<double>::infinity();
  double ratio_max = 1e-9;
  double lsum = 0.0;
  for (const Sample& s : train) {
    if (s.workload.size() != node_count_ || s.quota.size() != node_count_)
      throw std::invalid_argument{"LatencyModel: sample dimension mismatch"};
    for (double w : s.workload) wmax = std::max(wmax, w);
    for (std::size_t i = 0; i < node_count_; ++i) {
      const double q = s.quota[i];
      if (q <= 0.0) throw std::invalid_argument{"LatencyModel: quota must be > 0"};
      qmax = std::max(qmax, q);
      qmin = std::min(qmin, q);
      ratio_max = std::max(ratio_max, s.workload[i] / q);
    }
    lsum += s.latency_ms;
  }
  w_scale_ = 1.0 / wmax;
  q_scale_ = 1.0 / qmax;
  q_min_mc_ = std::min(qmin, 1e12);
  ratio_max_ = ratio_max;
  label_ref_ = train.empty() ? 1.0 : std::max(lsum / static_cast<double>(train.size()), 1e-9);
}

LatencyModel::Batch LatencyModel::assemble(const Dataset& data,
                                           std::span<const std::size_t> idx) const {
  Batch b;
  const std::size_t batch = idx.size();
  b.features.reserve(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n)
    b.features.emplace_back(batch, kNodeFeatures);
  b.labels = nn::Tensor{batch, 1};
  for (std::size_t r = 0; r < batch; ++r) {
    const Sample& s = data[idx[r]];
    for (std::size_t n = 0; n < node_count_; ++n) {
      b.features[n](r, 0) = s.workload[n] * w_scale_;
      b.features[n](r, 1) = s.quota[n] * q_scale_;
      b.features[n](r, 2) = q_min_mc_ / s.quota[n];
      b.features[n](r, 3) = s.workload[n] / s.quota[n] / ratio_max_;
    }
    b.labels(r, 0) = s.latency_ms / label_ref_;
  }
  return b;
}

nn::Var LatencyModel::forward_batch(nn::Tape& tape, const Batch& b, Rng& rng,
                                    bool training) {
  telemetry::ScopedTimer timer{forward_timer_};
  return forward_features(tape, b, rng, training);
}

nn::Var LatencyModel::forward_features(nn::Tape& tape, const Batch& b, Rng& rng,
                                       bool training) {
  std::vector<nn::Var> feats;
  feats.reserve(b.features.size());
  // By reference: the Batch outlives every use of the tape (callers build it
  // before forwarding and read results before rebuilding), so no copies.
  for (const auto& f : b.features) feats.push_back(tape.constant_ref(f));
  return model_.forward(tape, feats, rng, training);
}

void LatencyModel::set_metrics(telemetry::MetricsRegistry* registry) {
  forward_timer_ = registry != nullptr ? &registry->histogram("gnn.forward_us") : nullptr;
  train_step_timer_ =
      registry != nullptr ? &registry->histogram("gnn.train_step_us") : nullptr;
}

TrainHistory LatencyModel::fit(const Dataset& train, const Dataset& val,
                               const TrainConfig& cfg) {
  if (train.empty()) throw std::invalid_argument{"LatencyModel::fit: empty training set"};
  fit_scalers(train);

  Rng rng{cfg.seed};
  nn::Adam opt{model_.params(), {.lr = cfg.lr}};

  TrainHistory hist;
  hist.best_val_loss = std::numeric_limits<double>::infinity();
  std::vector<nn::Tensor> best_weights;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::size_t cursor = order.size();  // trigger initial shuffle

  // Data-parallel plan: shard count is a pure function of the config, never
  // of the thread count, so the shard boundaries, the per-shard dropout
  // streams, and the shard-ordered gradient reduction below are identical
  // whether the pool runs 1 or 64 threads — training is bit-deterministic.
  const std::size_t shard_rows =
      cfg.shard_rows == 0 ? cfg.batch_size : cfg.shard_rows;
  const std::size_t shards = (cfg.batch_size + shard_rows - 1) / shard_rows;
  std::vector<std::unique_ptr<nn::Tape>> tapes;
  for (std::size_t s = 0; s < shards; ++s) {
    tapes.push_back(std::make_unique<nn::Tape>());
    tapes.back()->set_defer_param_grads(true);
  }
  std::vector<double> shard_loss(shards, 0.0);
  ThreadPool& pool = global_pool();

  double running_loss = 0.0;
  std::size_t running_count = 0;

  for (std::size_t it = 1; it <= cfg.iterations; ++it) {
    // Draw the next mini-batch from a reshuffled epoch ordering.
    std::vector<std::size_t> idx;
    idx.reserve(cfg.batch_size);
    while (idx.size() < cfg.batch_size) {
      if (cursor >= order.size()) {
        for (std::size_t i = order.size(); i > 1; --i)
          std::swap(order[i - 1],
                    order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
        cursor = 0;
      }
      idx.push_back(order[cursor++]);
    }

    model_.zero_grad();
    const std::uint64_t iter_seed = derive_seed(cfg.seed, it);
    {
      telemetry::ScopedTimer step_timer{train_step_timer_};
      pool.parallel_for(shards, [&](std::size_t s) {
        const std::size_t begin = s * shard_rows;
        const std::size_t len = std::min(shard_rows, cfg.batch_size - begin);
        Batch b = assemble(train, {idx.data() + begin, len});
        nn::Tape& tape = *tapes[s];
        tape.reset();
        // Dropout stream derived from (seed, iteration, shard): independent
        // of sibling shards and of who executes this one.
        Rng shard_rng{derive_seed(iter_seed, s)};
        nn::Var pred = forward_features(tape, b, shard_rng, /*training=*/true);
        nn::Var loss =
            nn::asym_huber_pct_loss(pred, b.labels, cfg.theta_under, cfg.theta_over);
        // Weight each shard by its share of the batch so the reduced
        // gradient equals the full-batch mean-loss gradient.
        const double weight =
            static_cast<double>(len) / static_cast<double>(cfg.batch_size);
        nn::Var contribution = nn::scale(loss, weight);
        tape.backward(contribution);
        shard_loss[s] = tape.value(contribution).item();
      });
      // Ordered reduction: shard 0's gradients land first, then shard 1's,
      // ... — floating-point accumulation order is part of the determinism
      // contract, so it must not follow completion order.
      for (auto& tape : tapes) tape->flush_param_grads();
      opt.step();
    }

    double batch_loss = 0.0;
    for (double l : shard_loss) batch_loss += l;
    running_loss += batch_loss;
    ++running_count;

    if (cfg.lr_decay_every > 0 && it % cfg.lr_decay_every == 0)
      opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay_factor);

    if ((cfg.eval_every > 0 && it % cfg.eval_every == 0) || it == cfg.iterations) {
      const double train_loss = running_loss / static_cast<double>(running_count);
      running_loss = 0.0;
      running_count = 0;
      const double val_loss =
          val.empty() ? train_loss : evaluate_loss(val, cfg.theta_under, cfg.theta_over);
      hist.iteration.push_back(it);
      hist.train_loss.push_back(train_loss);
      hist.val_loss.push_back(val_loss);
      if (cfg.select_best && val_loss < hist.best_val_loss) {
        hist.best_val_loss = val_loss;
        best_weights.clear();
        for (nn::Param* p : model_.params()) best_weights.push_back(p->value);
      }
    }
  }

  if (cfg.select_best && !best_weights.empty()) {
    auto params = model_.params();
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = best_weights[i];
  } else if (!hist.val_loss.empty()) {
    hist.best_val_loss = hist.val_loss.back();
  }
  return hist;
}

double LatencyModel::predict(std::span<const double> workload_qps,
                             std::span<const double> quota_millicores) {
  if (workload_qps.size() != node_count_ || quota_millicores.size() != node_count_)
    throw std::invalid_argument{"LatencyModel::predict: dimension mismatch"};
  telemetry::ScopedTimer timer{forward_timer_};
  nn::Tape tape;
  std::vector<nn::Var> feats;
  feats.reserve(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    nn::Tensor f{1, kNodeFeatures};
    f(0, 0) = workload_qps[n] * w_scale_;
    f(0, 1) = quota_millicores[n] * q_scale_;
    f(0, 2) = q_min_mc_ / quota_millicores[n];
    f(0, 3) = workload_qps[n] / quota_millicores[n] / ratio_max_;
    feats.push_back(tape.constant(std::move(f)));
  }
  nn::Var out = model_.forward(tape, feats, rng_, /*training=*/false);
  return tape.value(out).item() * label_ref_;
}

nn::Var LatencyModel::predict_var(nn::Tape& tape, std::span<const double> workload_qps,
                                  nn::Var quota_mc) {
  if (workload_qps.size() != node_count_)
    throw std::invalid_argument{"LatencyModel::predict_var: dimension mismatch"};
  const nn::Tensor& q = tape.value(quota_mc);
  if (q.rows() == 0 || q.cols() != node_count_)
    throw std::invalid_argument{"LatencyModel::predict_var: quota must be B x n"};
  const std::size_t batch = q.rows();
  std::vector<nn::Var> feats;
  feats.reserve(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    nn::Var q_raw = nn::slice_cols(quota_mc, n, 1);
    nn::Var q_inv = nn::reciprocal(q_raw);
    nn::Var w = tape.constant_fill(batch, 1, workload_qps[n] * w_scale_);
    nn::Var qn = nn::scale(q_raw, q_scale_);
    nn::Var inv_feat = nn::scale(q_inv, q_min_mc_);
    nn::Var ratio_feat = nn::scale(q_inv, workload_qps[n] / ratio_max_);
    const nn::Var parts[] = {w, qn, inv_feat, ratio_feat};
    feats.push_back(nn::concat_cols(parts));
  }
  nn::Var out = model_.forward(tape, feats, rng_, /*training=*/false);
  return nn::scale(out, label_ref_);
}

nn::Var LatencyModel::predict_var_rows(nn::Tape& tape, const nn::Tensor& workload_qps,
                                       nn::Var quota_mc) {
  if (workload_qps.cols() != node_count_)
    throw std::invalid_argument{"LatencyModel::predict_var_rows: dimension mismatch"};
  const nn::Tensor& q = tape.value(quota_mc);
  if (q.rows() != workload_qps.rows() || q.cols() != node_count_)
    throw std::invalid_argument{
        "LatencyModel::predict_var_rows: quota must match workload rows x n"};
  const std::size_t batch = q.rows();
  std::vector<nn::Var> feats;
  feats.reserve(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    nn::Var q_raw = nn::slice_cols(quota_mc, n, 1);
    nn::Var q_inv = nn::reciprocal(q_raw);
    // Per-row constant columns, staged into recycled tape buffers (no
    // steady-state allocation) and filled with the exact expressions
    // predict_var evaluates, so a row with workload W sees the same bits it
    // would in a uniform-workload forward.
    nn::Tensor& wbuf = tape.stage(batch, 1);
    for (std::size_t r = 0; r < batch; ++r) wbuf(r, 0) = workload_qps(r, n) * w_scale_;
    nn::Var w = tape.commit_constant();
    nn::Var qn = nn::scale(q_raw, q_scale_);
    nn::Var inv_feat = nn::scale(q_inv, q_min_mc_);
    nn::Tensor& rbuf = tape.stage(batch, 1);
    for (std::size_t r = 0; r < batch; ++r)
      rbuf(r, 0) = workload_qps(r, n) / ratio_max_;
    nn::Var ratio_feat = nn::mul(q_inv, tape.commit_constant());
    const nn::Var parts[] = {w, qn, inv_feat, ratio_feat};
    feats.push_back(nn::concat_cols(parts));
  }
  nn::Var out = model_.forward(tape, feats, rng_, /*training=*/false);
  return nn::scale(out, label_ref_);
}

double LatencyModel::evaluate_loss(const Dataset& data, double theta_under,
                                   double theta_over) {
  if (data.empty()) throw std::invalid_argument{"evaluate_loss: empty dataset"};
  constexpr std::size_t kChunk = 512;
  double total = 0.0;
  nn::Tape tape;
  for (std::size_t start = 0; start < data.size(); start += kChunk) {
    const std::size_t len = std::min(kChunk, data.size() - start);
    std::vector<std::size_t> idx(len);
    std::iota(idx.begin(), idx.end(), start);
    Batch b = assemble(data, idx);
    tape.reset();
    nn::Var pred = forward_batch(tape, b, rng_, /*training=*/false);
    nn::Var loss = nn::asym_huber_pct_loss(pred, b.labels, theta_under, theta_over);
    total += tape.value(loss).item() * static_cast<double>(len);
  }
  return total / static_cast<double>(data.size());
}

AccuracyReport LatencyModel::evaluate_accuracy(const Dataset& data, double region_lo_ms,
                                               double region_hi_ms) {
  AccuracyReport rep;
  double abs_sum = 0.0;
  double signed_sum = 0.0;
  for (const Sample& s : data) {
    if (s.latency_ms < region_lo_ms || s.latency_ms >= region_hi_ms) continue;
    const double pred = predict(s.workload, s.quota);
    const double pct = (pred - s.latency_ms) / std::max(s.latency_ms, 1e-9) * 100.0;
    abs_sum += std::abs(pct);
    signed_sum += pct;
    ++rep.count;
  }
  if (rep.count > 0) {
    rep.mean_abs_pct_error = abs_sum / static_cast<double>(rep.count);
    rep.mean_pct_error = signed_sum / static_cast<double>(rep.count);
  }
  return rep;
}

void LatencyModel::save(std::ostream& os) {
  os.precision(17);
  os << w_scale_ << ' ' << q_scale_ << ' ' << q_min_mc_ << ' ' << ratio_max_ << ' '
     << label_ref_ << '\n';
  auto params = model_.params();
  nn::save_params(os, params);
}

void LatencyModel::load(std::istream& is) {
  if (!(is >> w_scale_ >> q_scale_ >> q_min_mc_ >> ratio_max_ >> label_ref_))
    throw std::runtime_error{"LatencyModel::load: bad header"};
  auto params = model_.params();
  nn::load_params(is, params);
}

}  // namespace graf::gnn
