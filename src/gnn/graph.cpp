#include "gnn/graph.h"

#include <algorithm>
#include <stdexcept>

namespace graf::gnn {

int Dag::add_node(std::string name) {
  if (index_of(name) >= 0) throw std::invalid_argument{"Dag: duplicate node " + name};
  names_.push_back(std::move(name));
  parents_.emplace_back();
  children_.emplace_back();
  return static_cast<int>(names_.size()) - 1;
}

bool Dag::reachable(int from, int to) const {
  if (from == to) return true;
  std::vector<int> stack{from};
  std::vector<bool> seen(node_count(), false);
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (seen[static_cast<std::size_t>(n)]) continue;
    seen[static_cast<std::size_t>(n)] = true;
    for (int c : children_[static_cast<std::size_t>(n)]) stack.push_back(c);
  }
  return false;
}

void Dag::add_edge(int parent, int child) {
  const auto n = static_cast<int>(node_count());
  if (parent < 0 || parent >= n || child < 0 || child >= n)
    throw std::out_of_range{"Dag::add_edge: bad node index"};
  if (parent == child) throw std::invalid_argument{"Dag::add_edge: self loop"};
  auto& kids = children_[static_cast<std::size_t>(parent)];
  if (std::find(kids.begin(), kids.end(), child) != kids.end())
    throw std::invalid_argument{"Dag::add_edge: duplicate edge"};
  if (reachable(child, parent))
    throw std::invalid_argument{"Dag::add_edge: would create a cycle"};
  kids.push_back(child);
  parents_[static_cast<std::size_t>(child)].push_back(parent);
  ++edge_count_;
}

int Dag::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  return -1;
}

std::vector<int> Dag::roots() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < node_count(); ++i)
    if (parents_[i].empty()) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Dag::topological_order() const {
  std::vector<std::size_t> indegree(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) indegree[i] = parents_[i].size();
  std::vector<int> frontier = roots();
  std::vector<int> order;
  order.reserve(node_count());
  while (!frontier.empty()) {
    const int n = frontier.back();
    frontier.pop_back();
    order.push_back(n);
    for (int c : children_[static_cast<std::size_t>(n)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  if (order.size() != node_count()) throw std::logic_error{"Dag: cycle detected"};
  return order;
}

}  // namespace graf::gnn
