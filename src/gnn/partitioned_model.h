// Partitioned latency model (paper §6 "Scalability of GRAF").
//
// The monolithic model's readout input grows linearly with the number of
// microservices, which the paper flags as the scalability limit for
// hundred-service applications; it suggests "graph partitioning algorithms
// might reduce the burden ... by partitioning the microservices and
// training separately". This module implements that idea: the DAG is cut
// into topologically-contiguous partitions, each gets its own (small) MPNN
// + readout predicting a latency *contribution*, and the end-to-end tail
// latency is regressed as the sum of contributions. Parameters grow with
// max-partition-size instead of application size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gnn/graph.h"
#include "gnn/latency_model.h"
#include "gnn/mpnn.h"
#include "nn/autodiff.h"

namespace graf::gnn {

/// Cut a DAG into contiguous chunks of at most `max_size` nodes along a
/// topological order (parents land in the same or an earlier partition).
std::vector<std::vector<int>> partition_dag(const Dag& dag, std::size_t max_size);

class PartitionedLatencyModel {
 public:
  /// `cfg.node_features` must equal LatencyModel::kNodeFeatures; dropout
  /// and layer sizes apply to every partition's networks.
  PartitionedLatencyModel(const Dag& graph, const MpnnConfig& cfg,
                          std::size_t max_partition_size, std::uint64_t seed);

  std::size_t node_count() const { return node_count_; }
  std::size_t partition_count() const { return parts_.size(); }
  const std::vector<std::vector<int>>& partitions() const { return node_of_part_; }

  /// Trainable parameter count (the scalability metric).
  std::size_t param_count();

  TrainHistory fit(const Dataset& train, const Dataset& val, const TrainConfig& cfg);

  double predict(std::span<const double> workload_qps,
                 std::span<const double> quota_millicores);

  AccuracyReport evaluate_accuracy(const Dataset& data, double region_lo_ms = 0.0,
                                   double region_hi_ms = 1e18);

 private:
  struct Part {
    std::vector<int> nodes;  // global node ids, partition-local order
    MpnnModel model;
  };

  void fit_scalers(const Dataset& train);
  /// Forward over a batch of samples; returns the summed (batch x 1) output.
  nn::Var forward(nn::Tape& tape, const Dataset& data,
                  std::span<const std::size_t> idx, Rng& rng, bool training);
  nn::Tensor features_for(const Dataset& data, std::span<const std::size_t> idx,
                          int node) const;
  std::vector<nn::Param*> all_params();

  std::size_t node_count_;
  Rng rng_;
  std::vector<Part> parts_;
  std::vector<std::vector<int>> node_of_part_;
  double w_scale_ = 1.0;
  double q_scale_ = 1.0;
  double q_min_mc_ = 1.0;
  double ratio_max_ = 1.0;
  double label_ref_ = 1.0;
};

}  // namespace graf::gnn
