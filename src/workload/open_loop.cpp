#include "workload/open_loop.h"

#include <stdexcept>

#include "sim/sharded_cluster.h"

namespace graf::workload {

OpenLoopGenerator::OpenLoopGenerator(sim::Cluster& cluster, OpenLoopConfig cfg)
    : state_{std::make_shared<State>(State{cluster, std::move(cfg), Rng{0}})} {
  state_->rng = Rng{state_->cfg.seed};
  if (state_->cfg.api_weights.empty()) {
    state_->cfg.api_weights.assign(cluster.api_count(), 0.0);
    state_->cfg.api_weights[0] = 1.0;
  }
  if (state_->cfg.api_weights.size() != cluster.api_count())
    throw std::invalid_argument{"OpenLoopGenerator: weight/API count mismatch"};
}

void OpenLoopGenerator::start(Seconds until) {
  state_->until = until;
  state_->stopped = false;
  arm_next(state_);
}

void OpenLoopGenerator::arm_next(const std::shared_ptr<State>& st) {
  const Seconds now = st->cluster.now();
  if (st->stopped || now >= st->until) return;
  const double rate = st->cfg.rate.at(now);
  if (rate <= 0.0) {
    // Idle poll until the schedule turns back on.
    st->cluster.events().schedule_in(0.1, [st] { arm_next(st); });
    return;
  }
  const Seconds dt = st->cfg.poisson ? st->rng.exponential(rate) : 1.0 / rate;
  st->cluster.events().schedule_in(dt, [st] {
    if (st->stopped || st->cluster.now() > st->until) return;
    const int api = static_cast<int>(st->rng.weighted_index(st->cfg.api_weights));
    st->cluster.submit_request(api, st->cfg.on_complete);
    ++st->generated;
    arm_next(st);
  });
}

std::uint64_t preload_open_loop(sim::ShardedCluster& cluster, OpenLoopConfig cfg,
                                Seconds until) {
  if (cfg.on_complete)
    throw std::invalid_argument{
        "preload_open_loop: on_complete is not supported — callbacks would "
        "run mid-window on a shard thread"};
  if (cfg.api_weights.empty()) {
    cfg.api_weights.assign(cluster.api_count(), 0.0);
    cfg.api_weights[0] = 1.0;
  }
  if (cfg.api_weights.size() != cluster.api_count())
    throw std::invalid_argument{"preload_open_loop: weight/API count mismatch"};
  Rng rng{cfg.seed};
  Seconds t = cluster.now();
  std::uint64_t n = 0;
  for (;;) {
    const double rate = cfg.rate.at(t);
    if (rate <= 0.0) {
      // Idle poll forward until the schedule turns back on (same cadence as
      // the event-driven generator).
      t += 0.1;
      if (t >= until) break;
      continue;
    }
    t += cfg.poisson ? rng.exponential(rate) : 1.0 / rate;
    if (t > until) break;
    const int api = static_cast<int>(rng.weighted_index(cfg.api_weights));
    cluster.schedule_arrival(t, api);
    ++n;
  }
  return n;
}

}  // namespace graf::workload
