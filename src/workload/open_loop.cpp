#include "workload/open_loop.h"

#include <stdexcept>

namespace graf::workload {

OpenLoopGenerator::OpenLoopGenerator(sim::Cluster& cluster, OpenLoopConfig cfg)
    : state_{std::make_shared<State>(State{cluster, std::move(cfg), Rng{0}})} {
  state_->rng = Rng{state_->cfg.seed};
  if (state_->cfg.api_weights.empty()) {
    state_->cfg.api_weights.assign(cluster.api_count(), 0.0);
    state_->cfg.api_weights[0] = 1.0;
  }
  if (state_->cfg.api_weights.size() != cluster.api_count())
    throw std::invalid_argument{"OpenLoopGenerator: weight/API count mismatch"};
}

void OpenLoopGenerator::start(Seconds until) {
  state_->until = until;
  state_->stopped = false;
  arm_next(state_);
}

void OpenLoopGenerator::arm_next(const std::shared_ptr<State>& st) {
  const Seconds now = st->cluster.now();
  if (st->stopped || now >= st->until) return;
  const double rate = st->cfg.rate.at(now);
  if (rate <= 0.0) {
    // Idle poll until the schedule turns back on.
    st->cluster.events().schedule_in(0.1, [st] { arm_next(st); });
    return;
  }
  const Seconds dt = st->cfg.poisson ? st->rng.exponential(rate) : 1.0 / rate;
  st->cluster.events().schedule_in(dt, [st] {
    if (st->stopped || st->cluster.now() > st->until) return;
    const int api = static_cast<int>(st->rng.weighted_index(st->cfg.api_weights));
    st->cluster.submit_request(api, st->cfg.on_complete);
    ++st->generated;
    arm_next(st);
  });
}

}  // namespace graf::workload
