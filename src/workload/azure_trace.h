// Synthetic stand-in for AzurePublicDatasetV2 [56] (function invocations
// per minute). The paper abstracts the dataset to "total invocations per
// minute -> number of Locust threads spawned that minute" (Fig. 20); we
// generate a per-minute series with the dataset's qualitative structure —
// a diurnal baseline, lognormal noise, and occasional bursts — then rescale
// it into the experiment's thread range. Deterministic given the seed; the
// substitution is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/schedule.h"

namespace graf::workload {

struct AzureTraceConfig {
  std::size_t minutes = 32;       ///< Fig. 20 runs ~1900 s
  double diurnal_period_min = 24; ///< sinusoid period, in minutes
  double diurnal_amplitude = 0.35;
  double noise_sigma = 0.18;      ///< lognormal multiplicative noise
  double burst_probability = 0.08;
  double burst_multiplier = 1.8;
  std::uint64_t seed = 2017;
};

/// Per-minute invocation intensity (arbitrary units, mean ~1).
std::vector<double> azure_invocation_series(const AzureTraceConfig& cfg);

/// Rescale a series into [lo, hi] by min-max mapping.
std::vector<double> rescale_series(const std::vector<double>& series, double lo,
                                   double hi);

/// Piecewise-per-minute Schedule of user threads in [min_users, max_users],
/// exactly how the paper feeds the trace to Locust.
Schedule azure_user_schedule(const AzureTraceConfig& cfg, double min_users,
                             double max_users);

}  // namespace graf::workload
