// Closed-loop load generator (the paper's Locust [23]): a population of
// simulated users, each issuing a request, waiting for the response, then
// thinking for a random time of up to `max_think` seconds before the next
// request ("the Locust thread randomly waits for up to 5 seconds", §5.3).
// The user population follows a Schedule, enabling surge (250 -> 500
// threads) and Azure-trace replays (Fig. 20/21).
//
// Generator state lives behind a shared_ptr owned by the scheduled events
// themselves, so a generator object may safely go out of scope while its
// users drain.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/cluster.h"
#include "workload/schedule.h"

namespace graf::workload {

struct ClosedLoopConfig {
  Schedule users = Schedule::constant(100.0);
  /// Weights over the cluster's APIs; empty = topology default of API 0.
  std::vector<double> api_weights;
  Seconds max_think = 5.0;
  /// How often the population is reconciled against the schedule.
  Seconds control_interval = 1.0;
  std::uint64_t seed = 11;
  /// Invoked for every completed (or failed) request.
  sim::Cluster::CompletionFn on_complete;
};

class ClosedLoopGenerator {
 public:
  ClosedLoopGenerator(sim::Cluster& cluster, ClosedLoopConfig cfg);

  /// Begin spawning users; population tracks the schedule until `until`.
  void start(Seconds until);
  void stop();

  int active_users() const { return state_->active; }
  std::uint64_t generated() const { return state_->generated; }

 private:
  struct State {
    sim::Cluster& cluster;
    ClosedLoopConfig cfg;
    Rng rng;
    Seconds until = 0.0;
    bool stopped = true;
    int active = 0;
    int to_kill = 0;
    std::uint64_t generated = 0;
  };

  static void control_tick(const std::shared_ptr<State>& st);
  static void spawn_user(const std::shared_ptr<State>& st);
  static void user_loop(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

}  // namespace graf::workload
