#include "workload/schedule.h"

#include <algorithm>
#include <stdexcept>

namespace graf::workload {

Schedule::Schedule(std::vector<std::pair<Seconds, double>> points)
    : points_{std::move(points)} {
  if (points_.empty()) throw std::invalid_argument{"Schedule: no points"};
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; }))
    throw std::invalid_argument{"Schedule: points must be time-sorted"};
}

Schedule Schedule::constant(double v) { return Schedule{{{0.0, v}}}; }

Schedule Schedule::step(double before, double after, Seconds at) {
  return Schedule{{{0.0, before}, {at, after}}};
}

Schedule Schedule::piecewise(std::vector<std::pair<Seconds, double>> points) {
  return Schedule{std::move(points)};
}

double Schedule::at(Seconds t) const {
  double v = points_.front().second;
  for (const auto& [time, value] : points_) {
    if (time > t) break;
    v = value;
  }
  return v;
}

double Schedule::max_value() const {
  double m = points_.front().second;
  for (const auto& [time, value] : points_) m = std::max(m, value);
  return m;
}

}  // namespace graf::workload
