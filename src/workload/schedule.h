// Time-varying scalar profiles (request rate, user counts).
//
// Surge experiments are step functions (250 -> 500 Locust threads); the
// Azure-trace demo is a per-minute piecewise profile.
#pragma once

#include <vector>

#include "common/units.h"

namespace graf::workload {

class Schedule {
 public:
  /// Constant value for all time.
  static Schedule constant(double v);
  /// `before` until `at`, then `after`.
  static Schedule step(double before, double after, Seconds at);
  /// Piecewise-constant: value of the last point with time <= t; the first
  /// point's value applies before its time. Points must be time-sorted.
  static Schedule piecewise(std::vector<std::pair<Seconds, double>> points);

  double at(Seconds t) const;

  /// Largest value over all pieces (for capacity planning in tests).
  double max_value() const;

 private:
  explicit Schedule(std::vector<std::pair<Seconds, double>> points);
  std::vector<std::pair<Seconds, double>> points_;
};

}  // namespace graf::workload
