#include "workload/azure_trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.h"

namespace graf::workload {

std::vector<double> azure_invocation_series(const AzureTraceConfig& cfg) {
  if (cfg.minutes == 0) throw std::invalid_argument{"azure series: zero length"};
  Rng rng{cfg.seed};
  std::vector<double> out;
  out.reserve(cfg.minutes);
  for (std::size_t m = 0; m < cfg.minutes; ++m) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(m) /
                         cfg.diurnal_period_min;
    double v = 1.0 + cfg.diurnal_amplitude * std::sin(phase);
    v *= rng.lognormal(-0.5 * cfg.noise_sigma * cfg.noise_sigma, cfg.noise_sigma);
    if (rng.bernoulli(cfg.burst_probability)) v *= cfg.burst_multiplier;
    out.push_back(v);
  }
  return out;
}

std::vector<double> rescale_series(const std::vector<double>& series, double lo,
                                   double hi) {
  if (series.empty()) throw std::invalid_argument{"rescale_series: empty"};
  const auto [mn, mx] = std::minmax_element(series.begin(), series.end());
  const double span = *mx - *mn;
  std::vector<double> out;
  out.reserve(series.size());
  for (double v : series) {
    const double unit = span > 0.0 ? (v - *mn) / span : 0.5;
    out.push_back(lo + unit * (hi - lo));
  }
  return out;
}

Schedule azure_user_schedule(const AzureTraceConfig& cfg, double min_users,
                             double max_users) {
  const auto users = rescale_series(azure_invocation_series(cfg), min_users, max_users);
  std::vector<std::pair<Seconds, double>> points;
  points.reserve(users.size());
  for (std::size_t m = 0; m < users.size(); ++m)
    points.emplace_back(60.0 * static_cast<double>(m), users[m]);
  return Schedule::piecewise(std::move(points));
}

}  // namespace graf::workload
