// Open-loop load generator (the paper's Vegeta [13]): requests arrive at a
// target rate regardless of completions — the right model for measuring
// what a fixed external demand does to the system (surge Figures 2/3/7).
//
// Generator state lives behind a shared_ptr owned by the scheduled events
// themselves, so a generator object may safely go out of scope while its
// arrival chain drains (the chain stops at `until` or after stop()).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/cluster.h"
#include "workload/schedule.h"

namespace graf::sim {
class ShardedCluster;
}

namespace graf::workload {

struct OpenLoopConfig {
  Schedule rate = Schedule::constant(100.0);  ///< qps over time
  /// Weights over the cluster's APIs; empty = all weight on API 0.
  std::vector<double> api_weights;
  bool poisson = true;  ///< exponential inter-arrivals; false = fixed pacing
  std::uint64_t seed = 7;
  /// Invoked for every completed (or failed) request.
  sim::Cluster::CompletionFn on_complete;
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(sim::Cluster& cluster, OpenLoopConfig cfg);

  /// Begin injecting arrivals until `until` (simulation time).
  void start(Seconds until);
  void stop() { state_->stopped = true; }

  std::uint64_t generated() const { return state_->generated; }

 private:
  struct State {
    sim::Cluster& cluster;
    OpenLoopConfig cfg;
    Rng rng;
    Seconds until = 0.0;
    bool stopped = true;
    std::uint64_t generated = 0;
  };

  static void arm_next(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

/// Sharded-engine analogue of OpenLoopGenerator: pre-draws the whole arrival
/// schedule (same inter-arrival and API-choice draw order, one Rng{cfg.seed}
/// stream) and injects it via ShardedCluster::schedule_arrival. Arrivals are
/// drawn from cluster.now() up to and including `until`. Returns the number
/// of arrivals scheduled. cfg.on_complete must be empty — per-request
/// callbacks would run mid-window on a shard thread, which the coordinator
/// rule forbids; read the cluster's aggregate counters instead.
std::uint64_t preload_open_loop(sim::ShardedCluster& cluster, OpenLoopConfig cfg,
                                Seconds until);

}  // namespace graf::workload
