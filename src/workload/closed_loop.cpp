#include "workload/closed_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graf::workload {

ClosedLoopGenerator::ClosedLoopGenerator(sim::Cluster& cluster, ClosedLoopConfig cfg)
    : state_{std::make_shared<State>(State{cluster, std::move(cfg), Rng{0}})} {
  state_->rng = Rng{state_->cfg.seed};
  if (state_->cfg.api_weights.empty()) {
    state_->cfg.api_weights.assign(cluster.api_count(), 0.0);
    state_->cfg.api_weights[0] = 1.0;
  }
  if (state_->cfg.api_weights.size() != cluster.api_count())
    throw std::invalid_argument{"ClosedLoopGenerator: weight/API count mismatch"};
}

void ClosedLoopGenerator::start(Seconds until) {
  state_->until = until;
  state_->stopped = false;
  control_tick(state_);
}

void ClosedLoopGenerator::stop() {
  state_->stopped = true;
  state_->to_kill = state_->active;
}

void ClosedLoopGenerator::control_tick(const std::shared_ptr<State>& st) {
  if (st->stopped || st->cluster.now() >= st->until) {
    st->stopped = true;
    st->to_kill = st->active;
    return;
  }
  const int target =
      std::max(0, static_cast<int>(std::lround(st->cfg.users.at(st->cluster.now()))));
  // Live population = active minus those already marked to die.
  const int live = st->active - st->to_kill;
  if (live < target) {
    const int spawn = target - live;
    // Un-mark pending kills first, then spawn the remainder.
    const int unkill = std::min(st->to_kill, spawn);
    st->to_kill -= unkill;
    for (int i = 0; i < spawn - unkill; ++i) spawn_user(st);
  } else if (live > target) {
    st->to_kill += live - target;
  }
  st->cluster.events().schedule_in(st->cfg.control_interval,
                                   [st] { control_tick(st); });
}

void ClosedLoopGenerator::spawn_user(const std::shared_ptr<State>& st) {
  ++st->active;
  // Desynchronize user start times across the first think interval.
  st->cluster.events().schedule_in(st->rng.uniform(0.0, st->cfg.max_think),
                                   [st] { user_loop(st); });
}

void ClosedLoopGenerator::user_loop(const std::shared_ptr<State>& st) {
  if (st->to_kill > 0 || st->stopped || st->cluster.now() >= st->until) {
    if (st->to_kill > 0) --st->to_kill;
    --st->active;
    return;
  }
  const int api = static_cast<int>(st->rng.weighted_index(st->cfg.api_weights));
  ++st->generated;
  st->cluster.submit_request(api, [st](const trace::RequestTrace& t) {
    if (st->cfg.on_complete) st->cfg.on_complete(t);
    const Seconds think = st->rng.uniform(0.0, st->cfg.max_think);
    st->cluster.events().schedule_in(think, [st] { user_loop(st); });
  });
}

}  // namespace graf::workload
