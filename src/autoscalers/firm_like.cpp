#include "autoscalers/firm_like.h"

#include <algorithm>

namespace graf::autoscalers {

FirmLike::FirmLike(FirmLikeConfig cfg) : cfg_{cfg} {}

void FirmLike::attach(sim::Cluster& cluster, Seconds until) {
  cluster_ = &cluster;
  until_ = until;
  last_scale_down_.assign(cluster.service_count(), -1e18);
  cluster.events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

void FirmLike::tick() {
  if (cluster_->now() > until_) return;
  const Seconds since = cluster_->now() - cfg_.latency_window;
  for (std::size_t s = 0; s < cluster_->service_count(); ++s) {
    sim::Service& svc = cluster_->service(static_cast<int>(s));
    auto& win = cluster_->service_latency(static_cast<int>(s));
    if (win.count_since(since) < 20) continue;  // not enough signal
    const double p50 = win.percentile_since(since, 50.0);
    const double p95 = win.percentile_since(since, 95.0);
    if (p50 <= 0.0) continue;
    const double ratio = p95 / p50;
    if (ratio > cfg_.ratio_threshold) {
      const int target = std::min(svc.target_count() + cfg_.scale_step, cfg_.max_replicas);
      if (target != svc.target_count()) svc.scale_to(target);
    } else if (ratio < cfg_.relax_threshold &&
               cluster_->now() - last_scale_down_[s] >= cfg_.scale_down_cooldown) {
      const int target = std::max(svc.target_count() - 1, cfg_.min_replicas);
      if (target != svc.target_count()) {
        svc.scale_to(target);
        last_scale_down_[s] = cluster_->now();
      }
    }
  }
  cluster_->events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

}  // namespace graf::autoscalers
