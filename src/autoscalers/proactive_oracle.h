// The §2.1 "Proactive" arm: when the front-end workload changes, create the
// heuristically-determined number of instances for *every* service in the
// chain at once — the manual experiment that motivates GRAF. The heuristic
// sizes each service from its expected per-request CPU demand:
//   instances_i = ceil( qps_i * demand_i / (unit_quota_i * headroom) ).
// Unlike GRAF it needs the true per-service demands (it is an oracle), and
// it makes no attempt to minimize total CPU against an SLO.
#pragma once

#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"

namespace graf::autoscalers {

struct ProactiveOracleConfig {
  double headroom = 0.6;      ///< target utilization of sized instances
  Seconds sync_period = 5.0;  ///< how often the front-end rate is sampled
  Seconds rate_window = 5.0;
  double change_threshold = 0.15;  ///< relative qps change that triggers
  int max_replicas = 500;
};

class ProactiveOracle : public Autoscaler {
 public:
  /// `per_request_fanout[a][s]` = expected visits of service s per request
  /// of API a; `demand_ms[s]` = per-visit CPU demand (oracle knowledge).
  ProactiveOracle(ProactiveOracleConfig cfg,
                  std::vector<std::vector<double>> per_request_fanout,
                  std::vector<double> demand_ms);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override { return "proactive-oracle"; }

  /// Sizing rule, unit-testable.
  static int size_for(double qps, double demand_ms, double unit_cores,
                      double headroom);

  /// Apply the sizing for a workload vector immediately.
  void apply(sim::Cluster& cluster, const std::vector<double>& api_qps) const;

 private:
  void tick();

  ProactiveOracleConfig cfg_;
  std::vector<std::vector<double>> fanout_;
  std::vector<double> demand_ms_;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  std::vector<double> last_applied_qps_;
};

}  // namespace graf::autoscalers
