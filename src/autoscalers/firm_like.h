// FIRM-like comparator (paper §5.3): "increases the CPU quota of a
// microservice when a ratio between median and 95%-tile latency for the
// microservice exceeds a pre-determined threshold". Purely reactive and
// per-service — it has no view of the chain, so it suffers the cascading
// effect in the surge experiments (Fig. 21/22).
#pragma once

#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"

namespace graf::autoscalers {

struct FirmLikeConfig {
  double ratio_threshold = 4.0;   ///< scale up when p95/p50 exceeds this
  double relax_threshold = 1.6;   ///< scale down when below this
  Seconds sync_period = 10.0;
  Seconds latency_window = 30.0;  ///< per-service latency lookback
  int scale_step = 1;             ///< instances added per trigger
  Seconds scale_down_cooldown = 60.0;
  int min_replicas = 1;
  int max_replicas = 500;
};

class FirmLike : public Autoscaler {
 public:
  explicit FirmLike(FirmLikeConfig cfg);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override { return "firm-like"; }

 private:
  void tick();

  FirmLikeConfig cfg_;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  std::vector<Seconds> last_scale_down_;
};

}  // namespace graf::autoscalers
