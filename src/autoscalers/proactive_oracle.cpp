#include "autoscalers/proactive_oracle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.h"

namespace graf::autoscalers {

ProactiveOracle::ProactiveOracle(ProactiveOracleConfig cfg,
                                 std::vector<std::vector<double>> per_request_fanout,
                                 std::vector<double> demand_ms)
    : cfg_{cfg}, fanout_{std::move(per_request_fanout)}, demand_ms_{std::move(demand_ms)} {
  if (fanout_.empty()) throw std::invalid_argument{"ProactiveOracle: empty fanout"};
  for (const auto& row : fanout_)
    if (row.size() != demand_ms_.size())
      throw std::invalid_argument{"ProactiveOracle: fanout/demand size mismatch"};
}

int ProactiveOracle::size_for(double qps, double demand_ms, double unit_cores,
                              double headroom) {
  const double cores_needed = qps * demand_ms / 1000.0;
  const double per_instance = unit_cores * headroom;
  return std::max(1, static_cast<int>(std::ceil(cores_needed / per_instance)));
}

void ProactiveOracle::apply(sim::Cluster& cluster,
                            const std::vector<double>& api_qps) const {
  for (std::size_t s = 0; s < cluster.service_count(); ++s) {
    double qps = 0.0;
    for (std::size_t a = 0; a < fanout_.size(); ++a) qps += api_qps[a] * fanout_[a][s];
    sim::Service& svc = cluster.service(static_cast<int>(s));
    const int n = std::min(size_for(qps, demand_ms_[s], cores(svc.unit_quota()),
                                    cfg_.headroom),
                           cfg_.max_replicas);
    if (n != svc.target_count()) svc.scale_to(n);
  }
}

void ProactiveOracle::attach(sim::Cluster& cluster, Seconds until) {
  if (fanout_.size() != cluster.api_count() ||
      demand_ms_.size() != cluster.service_count())
    throw std::invalid_argument{"ProactiveOracle: shape mismatch with cluster"};
  cluster_ = &cluster;
  until_ = until;
  last_applied_qps_.assign(cluster.api_count(), 0.0);
  cluster.events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

void ProactiveOracle::tick() {
  if (cluster_->now() > until_) return;
  std::vector<double> qps(cluster_->api_count());
  bool changed = false;
  for (std::size_t a = 0; a < qps.size(); ++a) {
    qps[a] = cluster_->api_qps(static_cast<int>(a), cfg_.rate_window);
    const double prev = last_applied_qps_[a];
    const double denom = std::max(prev, 1e-9);
    if (std::abs(qps[a] - prev) / denom > cfg_.change_threshold) changed = true;
  }
  if (changed) {
    apply(*cluster_, qps);
    last_applied_qps_ = qps;
  }
  cluster_->events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

}  // namespace graf::autoscalers
