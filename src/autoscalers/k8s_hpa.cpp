#include "autoscalers/k8s_hpa.h"

#include <algorithm>
#include <cmath>

namespace graf::autoscalers {

K8sHpa::K8sHpa(K8sHpaConfig cfg) : cfg_{cfg} {}

std::string K8sHpa::name() const {
  return "k8s-hpa(" + std::to_string(static_cast<int>(cfg_.target_utilization * 100)) + "%)";
}

int K8sHpa::desired_replicas(int ready, double utilization, double target,
                             double tolerance) {
  if (ready <= 0) return 1;
  const double ratio = utilization / target;
  if (std::abs(ratio - 1.0) <= tolerance) return ready;  // within tolerance: no-op
  return static_cast<int>(std::ceil(static_cast<double>(ready) * ratio));
}

void K8sHpa::attach(sim::Cluster& cluster, Seconds until) {
  cluster_ = &cluster;
  until_ = until;
  // Invalidate any tick chain scheduled by a previous attach(): a stale
  // lambda still sitting in the old event queue would otherwise keep
  // re-scheduling itself forever, double-stepping the autoscaler (and
  // dereferencing a cluster the caller may have destroyed).
  const std::uint64_t generation = ++generation_;
  ticks_ = 0;
  recommendations_.assign(cluster.service_count(), {});
  cluster.events().schedule_in(cfg_.sync_period, [this, generation] { tick(generation); });
}

void K8sHpa::tick(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer attach()
  if (cluster_->now() > until_) return;
  ++ticks_;
  // Metrics-unavailable guard (telemetry blackout): with no scrape points in
  // the window, utilization_avg would read 0 and desired_replicas would see
  // "idle" — a real HPA skips scaling when the metrics API errors out.
  const Seconds gap_horizon =
      std::max(cfg_.sync_period, 1.5 * cluster_->metrics_interval());
  for (std::size_t s = 0; s < cluster_->service_count(); ++s) {
    sim::Service& svc = cluster_->service(static_cast<int>(s));
    if (cluster_->series_count_since(static_cast<int>(s), gap_horizon) == 0) continue;
    const double u = cluster_->utilization_avg(static_cast<int>(s), cfg_.sync_period);
    int desired = desired_replicas(svc.ready_count(), u, cfg_.target_utilization,
                                   cfg_.tolerance);
    // Scale-up rate policy: at most max(100% growth, +4 pods) per sync.
    const int current = svc.target_count();
    const int up_cap = std::max(
        static_cast<int>(std::ceil(current * cfg_.scale_up_factor_limit)),
        current + cfg_.scale_up_pods_limit);
    desired = std::min(desired, up_cap);
    desired = std::clamp(desired, cfg_.min_replicas, cfg_.max_replicas);

    auto& hist = recommendations_[s];
    hist.emplace_back(cluster_->now(), desired);
    const Seconds cutoff = cluster_->now() - cfg_.stabilization_window;
    while (!hist.empty() && hist.front().first < cutoff) hist.pop_front();

    // Scale-down stabilization: act on the max recommendation in the window.
    int effective = desired;
    for (const auto& [t, rec] : hist) effective = std::max(effective, rec);

    if (effective != svc.target_count()) svc.scale_to(effective);
  }
  cluster_->events().schedule_in(cfg_.sync_period,
                                 [this, generation] { tick(generation); });
}

}  // namespace graf::autoscalers
