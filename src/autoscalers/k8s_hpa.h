// Kubernetes Horizontal Pod Autoscaler (paper's main baseline).
//
// Implements the documented HPA algorithm: every sync period (default
// 15 s), per service,
//   desired = ceil(ready * observed_utilization / target_utilization)
// with the +-10% tolerance band, and a scale-down stabilization window
// (default 5 min) that applies the *maximum* recommendation seen in the
// window — the paper's §5.3 observes exactly this "scale down slowly after
// 5 minutes" behaviour in Fig. 20.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"

namespace graf::autoscalers {

struct K8sHpaConfig {
  double target_utilization = 0.5;     ///< the hand-tuned threshold
  Seconds sync_period = 15.0;
  Seconds stabilization_window = 300.0;///< scale-down damper
  double tolerance = 0.1;              ///< no-op band around ratio 1.0
  int min_replicas = 1;
  int max_replicas = 500;
  /// k8s default scale-up policy: per sync period, grow by at most the
  /// larger of 100% (factor 2) or 4 pods.
  double scale_up_factor_limit = 2.0;
  int scale_up_pods_limit = 4;
};

class K8sHpa : public Autoscaler {
 public:
  explicit K8sHpa(K8sHpaConfig cfg);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override;

  const K8sHpaConfig& config() const { return cfg_; }

  /// Pure HPA arithmetic (unit-testable): desired replicas given the
  /// current ready count and observed average utilization.
  static int desired_replicas(int ready, double utilization, double target,
                              double tolerance);

  /// Sync ticks executed since the last attach() (observability / tests).
  std::uint64_t ticks() const { return ticks_; }

 private:
  void tick(std::uint64_t generation);

  K8sHpaConfig cfg_;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  /// Bumped by every attach(); a scheduled tick from a previous attachment
  /// sees a stale generation and dies instead of running a second tick
  /// chain against the new cluster.
  std::uint64_t generation_ = 0;
  std::uint64_t ticks_ = 0;
  /// Per-service history of (time, recommendation) for stabilization.
  std::vector<std::deque<std::pair<Seconds, int>>> recommendations_;
};

}  // namespace graf::autoscalers
