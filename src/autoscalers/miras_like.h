// MIRAS-like comparator (paper §7 related work): MIRAS [62] "learns a
// policy that behaves to allocate more resources to the microservices with
// longer request queues". We implement that policy's fixed-point directly:
// every sync period, scale up the services with the longest per-instance
// admission queues and scale down long-idle ones. Like FIRM it is reactive
// and per-service, so it cannot avoid the cascading effect; unlike the HPA
// it keys on queue depth rather than CPU utilization.
#pragma once

#include <string>
#include <vector>

#include "autoscalers/autoscaler.h"

namespace graf::autoscalers {

struct MirasLikeConfig {
  Seconds sync_period = 10.0;
  /// Scale up when queued work per ready instance exceeds this.
  double queue_per_instance_up = 2.0;
  /// Scale down when the queue stayed empty and utilization low.
  double utilization_down = 0.25;
  Seconds scale_down_cooldown = 60.0;
  int scale_step = 2;
  int min_replicas = 1;
  int max_replicas = 500;
};

class MirasLike : public Autoscaler {
 public:
  explicit MirasLike(MirasLikeConfig cfg);

  void attach(sim::Cluster& cluster, Seconds until) override;
  std::string name() const override { return "miras-like"; }

 private:
  void tick();

  MirasLikeConfig cfg_;
  sim::Cluster* cluster_ = nullptr;
  Seconds until_ = 0.0;
  std::vector<Seconds> last_scale_down_;
};

}  // namespace graf::autoscalers
