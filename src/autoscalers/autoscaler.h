// Common interface for resource controllers that run against the cluster:
// the Kubernetes HPA, the FIRM-like comparator, the §2.1 proactive oracle,
// and GRAF's own controller (src/core/graf_controller.h).
#pragma once

#include <string>

#include "common/units.h"
#include "sim/cluster.h"

namespace graf::autoscalers {

class Autoscaler {
 public:
  virtual ~Autoscaler() = default;

  /// Begin controlling `cluster` (schedules periodic control ticks) until
  /// simulation time `until`.
  virtual void attach(sim::Cluster& cluster, Seconds until) = 0;

  virtual std::string name() const = 0;
};

}  // namespace graf::autoscalers
