#include "autoscalers/miras_like.h"

#include <algorithm>

namespace graf::autoscalers {

MirasLike::MirasLike(MirasLikeConfig cfg) : cfg_{cfg} {}

void MirasLike::attach(sim::Cluster& cluster, Seconds until) {
  cluster_ = &cluster;
  until_ = until;
  last_scale_down_.assign(cluster.service_count(), -1e18);
  cluster.events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

void MirasLike::tick() {
  if (cluster_->now() > until_) return;
  for (std::size_t s = 0; s < cluster_->service_count(); ++s) {
    sim::Service& svc = cluster_->service(static_cast<int>(s));
    const double per_instance =
        static_cast<double>(svc.queue_length()) /
        std::max(1, svc.ready_count());
    if (per_instance > cfg_.queue_per_instance_up) {
      const int target =
          std::min(svc.target_count() + cfg_.scale_step, cfg_.max_replicas);
      if (target != svc.target_count()) svc.scale_to(target);
    } else if (svc.queue_length() == 0 &&
               // Blackout guard: an empty metrics window means "no data",
               // not "0% utilized" — never scale down on a dark signal.
               cluster_->series_count_since(
                   static_cast<int>(s),
                   std::max(cfg_.sync_period,
                            1.5 * cluster_->metrics_interval())) > 0 &&
               cluster_->utilization_avg(static_cast<int>(s), cfg_.sync_period) <
                   cfg_.utilization_down &&
               cluster_->now() - last_scale_down_[s] >= cfg_.scale_down_cooldown) {
      const int target = std::max(svc.target_count() - 1, cfg_.min_replicas);
      if (target != svc.target_count()) {
        svc.scale_to(target);
        last_scale_down_[s] = cluster_->now();
      }
    }
  }
  cluster_->events().schedule_in(cfg_.sync_period, [this] { tick(); });
}

}  // namespace graf::autoscalers
