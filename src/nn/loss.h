// Loss functions for the latency prediction model (paper §3.4).
//
// The paper combines three "tricks": percentage error (accuracy in the
// low-latency region, where SLOs live), a Hüber shape (robustness to
// extreme 99%-tile samples), and asymmetry (under-estimating latency is
// worse than over-estimating, because an under-estimate hides SLO
// violations). See DESIGN.md §3.2 for the Eq. 4 continuity correction and
// the θ_L/θ_R orientation note.
#pragma once

#include "nn/autodiff.h"
#include "nn/tensor.h"

namespace graf::nn {

/// Mean squared error against a constant target (same shape as pred).
Var mse_loss(Var pred, const Tensor& target);

/// Percentage error (pred - target) / max(target, eps), as a tape op chain.
Var percentage_error(Var pred, const Tensor& target, double eps = 1e-9);

/// The paper's loss (Eq. 4 with the continuous linear branch): mean
/// asymmetric Hüber of the percentage error. `theta_under` bounds the
/// quadratic region on the under-estimation side (pred < target) and sets
/// its linear slope 2*theta_under; `theta_over` likewise for the
/// over-estimation side. Choosing theta_under > theta_over penalizes
/// under-estimation more, yielding the paper's slight systematic
/// over-estimate (Table 2).
Var asym_huber_pct_loss(Var pred, const Tensor& target, double theta_under,
                        double theta_over);

/// Symmetric Hüber on percentage error (theta_under == theta_over).
Var huber_pct_loss(Var pred, const Tensor& target, double theta);

// Scalar (no-tape) helpers for evaluation/reporting.

/// |pred - actual| / actual in percent.
double absolute_percentage_error(double pred, double actual);

/// Pointwise asymmetric Hüber value (continuous Eq. 4) for testing.
double asym_huber_value(double x, double theta_neg, double theta_pos);

}  // namespace graf::nn
