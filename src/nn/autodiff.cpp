#include "nn/autodiff.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace graf::nn {

// Backdoor for the op implementations below: backward hooks are capture-less
// function pointers, so they read their arguments (dependency ids, scalar
// parameters, the dropout mask, ...) from fields on the node itself.
struct OpAccess {
  static Tape::Node& node(Tape& t, int id) { return t.node(id); }
  static Tape::Node& staged(Tape& t) { return *t.nodes_[t.live_]; }
  static const Tensor& val(Tape& t, int id) { return t.node_value(id); }
  static Tensor& scratch(Tape& t) { return t.scratch_; }
};

namespace {

Tape& same_tape(Var a, Var b) {
  if (!a.valid() || !b.valid() || a.tape != b.tape)
    throw std::invalid_argument{"op: operands must live on the same tape"};
  return *a.tape;
}

}  // namespace

// ---- Arena -----------------------------------------------------------------

Tape::Node& Tape::acquire() {
  if (live_ == nodes_.size()) nodes_.push_back(std::make_unique<Node>());
  Node& n = *nodes_[live_];
  n.ref = nullptr;
  n.param = nullptr;
  n.backward = nullptr;
  n.deps.clear();  // keeps capacity
  n.a = -1;
  n.b = -1;
  n.i0 = 0;
  n.i1 = 0;
  n.s0 = 0.0;
  n.s1 = 0.0;
  n.requires_grad = false;
  n.grad_seen = false;
  return n;
}

void Tape::reset() { live_ = 0; }

Tape::Node& Tape::node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }

const Tape::Node& Tape::node(int id) const {
  return *nodes_.at(static_cast<std::size_t>(id));
}

const Tensor& Tape::node_value(int id) const {
  const Node& n = node(id);
  return n.ref != nullptr ? *n.ref : n.value;
}

// ---- Inputs ----------------------------------------------------------------

Var Tape::constant(Tensor value) {
  Node& n = acquire();
  n.value = std::move(value);
  return Var{this, static_cast<int>(live_++)};
}

Var Tape::constant_ref(const Tensor& value) {
  Node& n = acquire();
  n.ref = &value;
  return Var{this, static_cast<int>(live_++)};
}

Var Tape::constant_fill(std::size_t rows, std::size_t cols, double v) {
  Node& n = acquire();
  n.value.resize_zero(rows, cols);
  if (v != 0.0) n.value.fill(v);
  return Var{this, static_cast<int>(live_++)};
}

Var Tape::zeros(std::size_t rows, std::size_t cols) { return constant_fill(rows, cols, 0.0); }

Var Tape::leaf(Tensor value, bool requires_grad) {
  Node& n = acquire();
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  return Var{this, static_cast<int>(live_++)};
}

Var Tape::param(Param& p) {
  if (freeze_params_) return constant_ref(p.value);
  // The leaf's backward flushes the tape-local gradient into the Param
  // (unless the tape defers; then flush_param_grads() does it serially).
  Node& n = acquire();
  n.ref = &p.value;
  n.param = &p;
  n.requires_grad = true;
  n.backward = [](Tape& t, int id) {
    if (t.defer_param_grads_) return;
    auto& self = OpAccess::node(t, id);
    self.param->grad += self.grad;
  };
  return Var{this, static_cast<int>(live_++)};
}

void Tape::flush_param_grads() {
  for (std::size_t i = 0; i < live_; ++i) {
    Node& n = *nodes_[i];
    if (n.param != nullptr && n.grad_seen) n.param->grad += n.grad;
  }
}

// ---- Staged op nodes -------------------------------------------------------

Tensor& Tape::stage(std::size_t rows, std::size_t cols) {
  Node& n = acquire();
  n.value.resize_zero(rows, cols);
  return n.value;
}

Var Tape::commit_staged(BackwardFn backward, bool needs) {
  Node& n = *nodes_[live_];
  n.requires_grad = needs;
  if (needs) n.backward = backward;
  return Var{this, static_cast<int>(live_++)};
}

Var Tape::commit_constant() { return commit_staged(nullptr, false); }

Var Tape::commit1(int a, BackwardFn backward) {
  nodes_[live_]->a = a;
  return commit_staged(backward, requires_grad(a));
}

Var Tape::commit2(int a, int b, BackwardFn backward) {
  Node& n = *nodes_[live_];
  n.a = a;
  n.b = b;
  return commit_staged(backward, requires_grad(a) || requires_grad(b));
}

Var Tape::commit_n(std::span<const int> deps, BackwardFn backward) {
  Node& n = *nodes_[live_];
  n.deps.assign(deps.begin(), deps.end());
  bool needs = false;
  for (int d : deps) needs = needs || requires_grad(d);
  return commit_staged(backward, needs);
}

// ---- Reads and gradient plumbing -------------------------------------------

const Tensor& Tape::value(Var v) const { return node_value(v.id); }

const Tensor& Tape::grad(Var v) {
  Node& n = node(v.id);
  if (!n.grad_seen) {
    const Tensor& val = node_value(v.id);
    n.grad.resize_zero(val.rows(), val.cols());
    n.grad_seen = true;
  }
  return n.grad;
}

bool Tape::requires_grad(int id) const { return node(id).requires_grad; }

void Tape::accumulate(int id, const Tensor& g) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  if (!n.grad_seen) {
    n.grad.copy_from(g);
    n.grad_seen = true;
  } else {
    n.grad += g;
  }
}

void Tape::accumulate_scaled(int id, const Tensor& g, double s) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  if (!n.grad_seen) {
    n.grad.resize_zero(g.rows(), g.cols());
    n.grad_seen = true;
  }
  n.grad.add_scaled(g, s);
}

void Tape::accumulate_product(int id, const Tensor& g, const Tensor& m) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  if (!g.same_shape(m)) throw std::invalid_argument{"accumulate_product: shape mismatch"};
  if (!n.grad_seen) {
    n.grad.resize_zero(g.rows(), g.cols());
    n.grad_seen = true;
  }
  double* out = n.grad.data();
  const double* gp = g.data();
  const double* mp = m.data();
  for (std::size_t i = 0; i < g.size(); ++i) out[i] += gp[i] * mp[i];
}

void Tape::backward(Var out) {
  if (!out.valid() || out.tape != this) throw std::invalid_argument{"backward: foreign var"};
  if (node_value(out.id).size() != 1)
    throw std::invalid_argument{"backward: output must be scalar"};
  Node& root = node(out.id);
  if (root.requires_grad) {
    if (!root.grad_seen) {
      root.grad.resize_zero(1, 1);
      root.grad_seen = true;
    }
    root.grad(0, 0) += 1.0;
  }
  for (int id = out.id; id >= 0; --id) {
    Node& n = *nodes_[static_cast<std::size_t>(id)];
    if (n.requires_grad && n.grad_seen && n.backward != nullptr) n.backward(*this, id);
  }
}

// ---- Ops -------------------------------------------------------------------

Var add(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (!av.same_shape(bv)) throw std::invalid_argument{"add: shape mismatch"};
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = ap[i] + bp[i];
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    t.accumulate(n.a, n.grad);
    t.accumulate(n.b, n.grad);
  });
}

Var add_row_broadcast(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (bv.rows() != 1 || bv.cols() != av.cols())
    throw std::invalid_argument{"add_row_broadcast: bias must be 1 x cols(a)"};
  Tensor& out = t.stage(av.rows(), av.cols());
  for (std::size_t i = 0; i < av.rows(); ++i)
    for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) = av(i, j) + bv(0, j);
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    t.accumulate(n.a, g);
    if (t.requires_grad(n.b)) {
      Tensor& gb = OpAccess::scratch(t);
      gb.resize_zero(1, g.cols());
      for (std::size_t i = 0; i < g.rows(); ++i)
        for (std::size_t j = 0; j < g.cols(); ++j) gb(0, j) += g(i, j);
      t.accumulate(n.b, gb);
    }
  });
}

Var bias_relu(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (bv.rows() != 1 || bv.cols() != av.cols())
    throw std::invalid_argument{"bias_relu: bias must be 1 x cols(a)"};
  Tensor& out = t.stage(av.rows(), av.cols());
  bias_relu_into(out, av, bv);
  // y > 0 iff the pre-activation was > 0, so the output doubles as the mask.
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& y = n.value;
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(g.rows(), g.cols());
    for (std::size_t i = 0; i < g.size(); ++i)
      s.data()[i] = y.data()[i] > 0.0 ? g.data()[i] : 0.0;
    t.accumulate(n.a, s);
    if (t.requires_grad(n.b)) {
      // Column sums of the masked gradient; scratch is free again because
      // accumulate() copied it.
      s.resize_zero(1, g.cols());
      for (std::size_t i = 0; i < g.rows(); ++i)
        for (std::size_t j = 0; j < g.cols(); ++j)
          if (y(i, j) > 0.0) s(0, j) += g(i, j);
      t.accumulate(n.b, s);
    }
  });
}

Var sub(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (!av.same_shape(bv)) throw std::invalid_argument{"sub: shape mismatch"};
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = ap[i] - bp[i];
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    t.accumulate(n.a, n.grad);
    t.accumulate_scaled(n.b, n.grad, -1.0);
  });
}

Var mul(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (!av.same_shape(bv)) throw std::invalid_argument{"mul: shape mismatch"};
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = ap[i] * bp[i];
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    if (t.requires_grad(n.a)) t.accumulate_product(n.a, n.grad, OpAccess::val(t, n.b));
    if (t.requires_grad(n.b)) t.accumulate_product(n.b, n.grad, OpAccess::val(t, n.a));
  });
}

Var matmul(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (av.cols() != bv.rows()) throw std::invalid_argument{"matmul: inner dims differ"};
  Tensor& out = t.stage(av.rows(), bv.cols());
  matmul_into(out, av, bv);
  return t.commit2(a.id, b.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    Tensor& s = OpAccess::scratch(t);
    if (t.requires_grad(n.a)) {
      matmul_nt_into(s, g, OpAccess::val(t, n.b));
      t.accumulate(n.a, s);
    }
    if (t.requires_grad(n.b)) {
      matmul_tn_into(s, OpAccess::val(t, n.a), g);
      t.accumulate(n.b, s);
    }
  });
}

Var scale(Var a, double s) {
  Tape& t = *a.tape;
  const Tensor& av = t.value(a);
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = ap[i] * s;
  OpAccess::staged(t).s0 = s;
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    t.accumulate_scaled(n.a, n.grad, n.s0);
  });
}

Var add_scalar(Var a, double s) {
  Tape& t = *a.tape;
  const Tensor& av = t.value(a);
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = ap[i] + s;
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    t.accumulate(n.a, n.grad);
  });
}

Var relu(Var a) {
  Tape& t = *a.tape;
  const Tensor& av = t.value(a);
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  for (std::size_t i = 0; i < av.size(); ++i) {
    const double v = ap[i];
    out.data()[i] = v > 0.0 ? v : 0.0;
  }
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& in = OpAccess::val(t, n.a);
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(g.rows(), g.cols());
    for (std::size_t i = 0; i < g.size(); ++i)
      s.data()[i] = in.data()[i] > 0.0 ? g.data()[i] : 0.0;
    t.accumulate(n.a, s);
  });
}

Var reciprocal(Var a) {
  Tape& t = *a.tape;
  const Tensor& av = t.value(a);
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = 1.0 / ap[i];
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& y = n.value;  // y = 1/x, dy/dx = -y^2
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(g.rows(), g.cols());
    for (std::size_t i = 0; i < g.size(); ++i)
      s.data()[i] = -g.data()[i] * y.data()[i] * y.data()[i];
    t.accumulate(n.a, s);
  });
}

Var exp(Var a) {
  Tape& t = *a.tape;
  const Tensor& av = t.value(a);
  Tensor& out = t.stage(av.rows(), av.cols());
  const double* ap = av.data();
  for (std::size_t i = 0; i < av.size(); ++i) out.data()[i] = std::exp(ap[i]);
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& y = n.value;  // dy/dx = y
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(g.rows(), g.cols());
    for (std::size_t i = 0; i < g.size(); ++i)
      s.data()[i] = g.data()[i] * y.data()[i];
    t.accumulate(n.a, s);
  });
}

Var dropout(Var a, double p, Rng& rng, bool training) {
  if (!training || p <= 0.0) return a;
  if (p >= 1.0) throw std::invalid_argument{"dropout: p must be < 1"};
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  Tensor& out = t.stage(in.rows(), in.cols());
  auto& mask = OpAccess::staged(t).aux;
  mask.resize_zero(in.rows(), in.cols());
  const double keep_scale = 1.0 / (1.0 - p);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask.data()[i] = rng.bernoulli(p) ? 0.0 : keep_scale;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = in.data()[i] * mask.data()[i];
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    t.accumulate_product(n.a, n.grad, n.aux);
  });
}

Var concat_cols(std::span<const Var> parts) {
  if (parts.empty()) throw std::invalid_argument{"concat_cols: empty"};
  Tape& t = *parts.front().tape;
  const std::size_t rows = t.value(parts.front()).rows();
  std::size_t cols = 0;
  for (Var p : parts) {
    if (p.tape != &t) throw std::invalid_argument{"concat_cols: mixed tapes"};
    if (t.value(p).rows() != rows) throw std::invalid_argument{"concat_cols: row mismatch"};
    cols += t.value(p).cols();
  }
  Tensor& out = t.stage(rows, cols);
  std::size_t off = 0;
  for (Var p : parts) {
    const Tensor& v = t.value(p);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < v.cols(); ++j) out(i, off + j) = v(i, j);
    off += v.cols();
  }
  // Column offsets are recomputed from the dependency shapes on the way back,
  // so no per-node layout vector is needed.
  thread_local std::vector<int> dep_ids;
  dep_ids.clear();
  for (Var p : parts) dep_ids.push_back(p.id);
  return t.commit_n(dep_ids, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    std::size_t off = 0;
    for (int pid : n.deps) {
      const Tensor& v = OpAccess::val(t, pid);
      if (t.requires_grad(pid)) {
        Tensor& s = OpAccess::scratch(t);
        s.resize_zero(v.rows(), v.cols());
        for (std::size_t i = 0; i < v.rows(); ++i)
          for (std::size_t j = 0; j < v.cols(); ++j) s(i, j) = g(i, off + j);
        t.accumulate(pid, s);
      }
      off += v.cols();
    }
  });
}

Var slice_cols(Var a, std::size_t start, std::size_t len) {
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  if (start + len > in.cols()) throw std::invalid_argument{"slice_cols: out of range"};
  Tensor& out = t.stage(in.rows(), len);
  for (std::size_t i = 0; i < in.rows(); ++i)
    for (std::size_t j = 0; j < len; ++j) out(i, j) = in(i, start + j);
  auto& staged = OpAccess::staged(t);
  staged.i0 = start;
  staged.i1 = len;
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& in = OpAccess::val(t, n.a);
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.rows(); ++i)
      for (std::size_t j = 0; j < n.i1; ++j) s(i, n.i0 + j) = g(i, j);
    t.accumulate(n.a, s);
  });
}

Var sum_all(Var a) {
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  Tensor& out = t.stage(1, 1);
  out(0, 0) = in.sum();
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const double g = n.grad(0, 0);
    const Tensor& in = OpAccess::val(t, n.a);
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(in.rows(), in.cols());
    s.fill(g);
    t.accumulate(n.a, s);
  });
}

Var sum_rows(Var a) {
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  Tensor& out = t.stage(in.rows(), 1);
  for (std::size_t i = 0; i < in.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < in.cols(); ++j) acc += in(i, j);
    out(i, 0) = acc;
  }
  return t.commit1(a.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& in = OpAccess::val(t, n.a);
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.rows(); ++i)
      for (std::size_t j = 0; j < in.cols(); ++j) s(i, j) = g(i, 0);
    t.accumulate(n.a, s);
  });
}

Var mean_all(Var a) {
  Tape& t = *a.tape;
  const auto n = static_cast<double>(t.value(a).size());
  return scale(sum_all(a), 1.0 / n);
}

Var asym_huber(Var x, double theta_neg, double theta_pos) {
  if (theta_neg <= 0.0 || theta_pos <= 0.0)
    throw std::invalid_argument{"asym_huber: thetas must be positive"};
  Tape& t = *x.tape;
  const Tensor& in = t.value(x);
  Tensor& out = t.stage(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double v = in.data()[i];
    if (v < -theta_neg) {
      out.data()[i] = theta_neg * (-2.0 * v - theta_neg);
    } else if (v < theta_pos) {
      out.data()[i] = v * v;
    } else {
      out.data()[i] = theta_pos * (2.0 * v - theta_pos);
    }
  }
  auto& staged = OpAccess::staged(t);
  staged.s0 = theta_neg;
  staged.s1 = theta_pos;
  return t.commit1(x.id, [](Tape& t, int id) {
    auto& n = OpAccess::node(t, id);
    const Tensor& g = n.grad;
    const Tensor& in = OpAccess::val(t, n.a);
    Tensor& s = OpAccess::scratch(t);
    s.resize_zero(g.rows(), g.cols());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double v = in.data()[i];
      double d;
      if (v < -n.s0) {
        d = -2.0 * n.s0;
      } else if (v < n.s1) {
        d = 2.0 * v;
      } else {
        d = 2.0 * n.s1;
      }
      s.data()[i] = d * g.data()[i];
    }
    t.accumulate(n.a, s);
  });
}

}  // namespace graf::nn
