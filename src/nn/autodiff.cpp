#include "nn/autodiff.h"

#include <stdexcept>
#include <utility>

namespace graf::nn {
namespace {

Tape& same_tape(Var a, Var b) {
  if (!a.valid() || !b.valid() || a.tape != b.tape)
    throw std::invalid_argument{"op: operands must live on the same tape"};
  return *a.tape;
}

}  // namespace

Var Tape::constant(Tensor value) {
  nodes_.push_back(Node{std::move(value), {}, false, false, nullptr, nullptr});
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::leaf(Tensor value, bool requires_grad) {
  nodes_.push_back(Node{std::move(value), {}, requires_grad, false, nullptr, nullptr});
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::param(Param& p) {
  if (freeze_params_) return constant(p.value);
  // The leaf's backward flushes the tape-local gradient into the Param
  // (unless the tape defers; then flush_param_grads() does it serially).
  Node n{p.value, {}, true, false, &p, nullptr};
  n.backward = [](Tape& t, int id) {
    if (t.defer_param_grads_) return;
    auto& self = t.node(id);
    self.param->grad += self.grad;
  };
  nodes_.push_back(std::move(n));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

void Tape::flush_param_grads() {
  for (auto& n : nodes_)
    if (n.param != nullptr && n.grad_seen) n.param->grad += n.grad;
}

Var Tape::make_node(Tensor value, std::vector<int> deps,
                    std::function<void(Tape&, int)> backward) {
  bool needs = false;
  for (int d : deps) needs = needs || requires_grad(d);
  Node n{std::move(value), {}, needs, false, nullptr, nullptr};
  if (needs) n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Tape::Node& Tape::node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }

const Tape::Node& Tape::node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }

const Tensor& Tape::value(Var v) const { return node(v.id).value; }

const Tensor& Tape::grad(Var v) {
  auto& n = node(v.id);
  if (!n.grad_seen) {
    n.grad = Tensor{n.value.rows(), n.value.cols()};
    n.grad_seen = true;
  }
  return n.grad;
}

bool Tape::requires_grad(int id) const { return node(id).requires_grad; }

void Tape::accumulate(int id, const Tensor& g) {
  auto& n = node(id);
  if (!n.requires_grad) return;
  if (!n.grad_seen) {
    n.grad = g;
    n.grad_seen = true;
  } else {
    n.grad += g;
  }
}

void Tape::backward(Var out) {
  if (!out.valid() || out.tape != this) throw std::invalid_argument{"backward: foreign var"};
  if (node(out.id).value.size() != 1)
    throw std::invalid_argument{"backward: output must be scalar"};
  accumulate(out.id, Tensor::scalar(1.0));
  for (int id = out.id; id >= 0; --id) {
    auto& n = node(id);
    if (n.requires_grad && n.grad_seen && n.backward) n.backward(*this, id);
  }
}

void Tape::reset() { nodes_.clear(); }

// ---- Ops -------------------------------------------------------------------

Var add(Var a, Var b) {
  Tape& t = same_tape(a, b);
  Tensor out = t.value(a) + t.value(b);
  return t.make_node(std::move(out), {a.id, b.id}, [a, b](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    t.accumulate(a.id, g);
    t.accumulate(b.id, g);
  });
}

Var add_row_broadcast(Var a, Var b) {
  Tape& t = same_tape(a, b);
  const Tensor& av = t.value(a);
  const Tensor& bv = t.value(b);
  if (bv.rows() != 1 || bv.cols() != av.cols())
    throw std::invalid_argument{"add_row_broadcast: bias must be 1 x cols(a)"};
  Tensor out = av;
  for (std::size_t i = 0; i < out.rows(); ++i)
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) += bv(0, j);
  return t.make_node(std::move(out), {a.id, b.id}, [a, b](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    t.accumulate(a.id, g);
    if (t.requires_grad(b.id)) {
      Tensor gb{1, g.cols()};
      for (std::size_t i = 0; i < g.rows(); ++i)
        for (std::size_t j = 0; j < g.cols(); ++j) gb(0, j) += g(i, j);
      t.accumulate(b.id, gb);
    }
  });
}

Var sub(Var a, Var b) {
  Tape& t = same_tape(a, b);
  Tensor out = t.value(a) - t.value(b);
  return t.make_node(std::move(out), {a.id, b.id}, [a, b](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    t.accumulate(a.id, g);
    if (t.requires_grad(b.id)) {
      Tensor neg = g;
      neg *= -1.0;
      t.accumulate(b.id, neg);
    }
  });
}

Var mul(Var a, Var b) {
  Tape& t = same_tape(a, b);
  Tensor out = hadamard(t.value(a), t.value(b));
  return t.make_node(std::move(out), {a.id, b.id}, [a, b](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    if (t.requires_grad(a.id)) t.accumulate(a.id, hadamard(g, t.value(b)));
    if (t.requires_grad(b.id)) t.accumulate(b.id, hadamard(g, t.value(a)));
  });
}

Var matmul(Var a, Var b) {
  Tape& t = same_tape(a, b);
  Tensor out = matmul(t.value(a), t.value(b));
  return t.make_node(std::move(out), {a.id, b.id}, [a, b](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    if (t.requires_grad(a.id)) t.accumulate(a.id, matmul_nt(g, t.value(b)));
    if (t.requires_grad(b.id)) t.accumulate(b.id, matmul_tn(t.value(a), g));
  });
}

Var scale(Var a, double s) {
  Tape& t = *a.tape;
  return t.make_node(t.value(a) * s, {a.id}, [a, s](Tape& t, int id) {
    t.accumulate(a.id, t.grad(Var{&t, id}) * s);
  });
}

Var add_scalar(Var a, double s) {
  Tape& t = *a.tape;
  Tensor out = t.value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] += s;
  return t.make_node(std::move(out), {a.id}, [a](Tape& t, int id) {
    t.accumulate(a.id, t.grad(Var{&t, id}));
  });
}

Var relu(Var a) {
  Tape& t = *a.tape;
  Tensor out = t.value(a);
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  return t.make_node(std::move(out), {a.id}, [a](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    const Tensor& in = t.value(a);
    Tensor ga{g.rows(), g.cols()};
    for (std::size_t i = 0; i < g.size(); ++i)
      ga.data()[i] = in.data()[i] > 0.0 ? g.data()[i] : 0.0;
    t.accumulate(a.id, ga);
  });
}

Var reciprocal(Var a) {
  Tape& t = *a.tape;
  Tensor out = t.value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] = 1.0 / out.data()[i];
  return t.make_node(std::move(out), {a.id}, [a](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    const Tensor& y = t.value(Var{&t, id});  // y = 1/x, dy/dx = -y^2
    Tensor ga{g.rows(), g.cols()};
    for (std::size_t i = 0; i < g.size(); ++i)
      ga.data()[i] = -g.data()[i] * y.data()[i] * y.data()[i];
    t.accumulate(a.id, ga);
  });
}

Var dropout(Var a, double p, Rng& rng, bool training) {
  if (!training || p <= 0.0) return a;
  if (p >= 1.0) throw std::invalid_argument{"dropout: p must be < 1"};
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  Tensor mask{in.rows(), in.cols()};
  const double keep_scale = 1.0 / (1.0 - p);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask.data()[i] = rng.bernoulli(p) ? 0.0 : keep_scale;
  Tensor out = hadamard(in, mask);
  return t.make_node(std::move(out), {a.id}, [a, mask](Tape& t, int id) {
    t.accumulate(a.id, hadamard(t.grad(Var{&t, id}), mask));
  });
}

Var concat_cols(std::span<const Var> parts) {
  if (parts.empty()) throw std::invalid_argument{"concat_cols: empty"};
  Tape& t = *parts.front().tape;
  const std::size_t rows = t.value(parts.front()).rows();
  std::size_t cols = 0;
  for (Var p : parts) {
    if (p.tape != &t) throw std::invalid_argument{"concat_cols: mixed tapes"};
    if (t.value(p).rows() != rows) throw std::invalid_argument{"concat_cols: row mismatch"};
    cols += t.value(p).cols();
  }
  Tensor out{rows, cols};
  std::size_t off = 0;
  std::vector<int> deps;
  std::vector<std::pair<int, std::size_t>> layout;  // (node id, column offset)
  for (Var p : parts) {
    const Tensor& v = t.value(p);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < v.cols(); ++j) out(i, off + j) = v(i, j);
    deps.push_back(p.id);
    layout.emplace_back(p.id, off);
    off += v.cols();
  }
  return t.make_node(std::move(out), std::move(deps), [layout](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    for (const auto& [pid, offset] : layout) {
      if (!t.requires_grad(pid)) continue;
      const Tensor& v = t.value(Var{&t, pid});
      Tensor gp{v.rows(), v.cols()};
      for (std::size_t i = 0; i < v.rows(); ++i)
        for (std::size_t j = 0; j < v.cols(); ++j) gp(i, j) = g(i, offset + j);
      t.accumulate(pid, gp);
    }
  });
}

Var slice_cols(Var a, std::size_t start, std::size_t len) {
  Tape& t = *a.tape;
  const Tensor& in = t.value(a);
  if (start + len > in.cols()) throw std::invalid_argument{"slice_cols: out of range"};
  Tensor out{in.rows(), len};
  for (std::size_t i = 0; i < in.rows(); ++i)
    for (std::size_t j = 0; j < len; ++j) out(i, j) = in(i, start + j);
  return t.make_node(std::move(out), {a.id}, [a, start, len](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    const Tensor& in = t.value(a);
    Tensor ga{in.rows(), in.cols()};
    for (std::size_t i = 0; i < in.rows(); ++i)
      for (std::size_t j = 0; j < len; ++j) ga(i, start + j) = g(i, j);
    t.accumulate(a.id, ga);
  });
}

Var sum_all(Var a) {
  Tape& t = *a.tape;
  return t.make_node(Tensor::scalar(t.value(a).sum()), {a.id}, [a](Tape& t, int id) {
    const double g = t.grad(Var{&t, id}).item();
    const Tensor& in = t.value(a);
    t.accumulate(a.id, Tensor::full(in.rows(), in.cols(), g));
  });
}

Var mean_all(Var a) {
  Tape& t = *a.tape;
  const auto n = static_cast<double>(t.value(a).size());
  return scale(sum_all(a), 1.0 / n);
}

Var asym_huber(Var x, double theta_neg, double theta_pos) {
  if (theta_neg <= 0.0 || theta_pos <= 0.0)
    throw std::invalid_argument{"asym_huber: thetas must be positive"};
  Tape& t = *x.tape;
  const Tensor& in = t.value(x);
  Tensor out{in.rows(), in.cols()};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double v = in.data()[i];
    if (v < -theta_neg) {
      out.data()[i] = theta_neg * (-2.0 * v - theta_neg);
    } else if (v < theta_pos) {
      out.data()[i] = v * v;
    } else {
      out.data()[i] = theta_pos * (2.0 * v - theta_pos);
    }
  }
  return t.make_node(std::move(out), {x.id}, [x, theta_neg, theta_pos](Tape& t, int id) {
    const Tensor& g = t.grad(Var{&t, id});
    const Tensor& in = t.value(x);
    Tensor gx{in.rows(), in.cols()};
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double v = in.data()[i];
      double d;
      if (v < -theta_neg) {
        d = -2.0 * theta_neg;
      } else if (v < theta_pos) {
        d = 2.0 * v;
      } else {
        d = 2.0 * theta_pos;
      }
      gx.data()[i] = d * g.data()[i];
    }
    t.accumulate(x.id, gx);
  });
}

}  // namespace graf::nn
