// Reverse-mode automatic differentiation on a tape.
//
// A Tape records every operation of one forward pass; Tape::backward walks
// the recorded nodes in reverse and accumulates gradients. Two kinds of
// differentiable leaves exist:
//   * Param leaves — model weights; their gradients accumulate into the
//     Param object so an optimizer (src/nn/optim.h) can step them, and
//   * plain leaves with requires_grad — used by GRAF's configuration
//     solver (§3.5 of the paper), which differentiates the trained latency
//     model with respect to its *inputs* (the CPU-quota vector).
//
// The tape is rebuilt every forward pass (define-by-run), exactly like the
// PyTorch programs the paper uses — but the node storage is an arena:
// reset() rewinds a cursor instead of destroying nodes, and every node's
// value/gradient/aux tensors keep their heap buffers for the next pass.
// Iterative workloads (the solver descends thousands of iterations with an
// identical graph shape) therefore run with zero steady-state tape
// allocation (DESIGN.md §3.9). Op backwards are plain function pointers
// reading their arguments from per-node slots — no std::function captures,
// no per-node heap.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace graf::nn {

class Tape;

/// Trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value{std::move(v)}, grad{value.rows(), value.cols()} {}
  void zero_grad() { grad.zero(); }
};

/// Handle to a node on a Tape. Cheap to copy; valid until Tape::reset().
struct Var {
  Tape* tape = nullptr;
  int id = -1;

  bool valid() const { return tape != nullptr && id >= 0; }
};

class Tape {
 public:
  /// Op backward hook: reads grad(id) and accumulates into the node's
  /// dependencies. Plain function pointer; per-op state lives on the node.
  using BackwardFn = void (*)(Tape&, int);

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Non-differentiable input (moved into the node).
  Var constant(Tensor value);
  /// Non-differentiable input recorded by reference — no copy. `value`
  /// must outlive every use of this tape up to the next reset().
  Var constant_ref(const Tensor& value);
  /// Non-differentiable rows x cols tensor filled with `v`, built in the
  /// node's recycled buffer (no allocation in steady state).
  Var constant_fill(std::size_t rows, std::size_t cols, double v);
  /// Non-differentiable rows x cols zero tensor (recycled buffer).
  Var zeros(std::size_t rows, std::size_t cols);
  /// Differentiable input; gradient readable via grad() after backward().
  Var leaf(Tensor value, bool requires_grad = true);
  /// Parameter input; gradient accumulates into `p.grad` during backward().
  /// Recorded by reference — `p` must outlive uses of this tape up to the
  /// next reset() (it always does: optimizers step between passes).
  Var param(Param& p);

  // ---- Op-authoring API (staged nodes) ------------------------------------
  //
  // An op stages the output buffer of the node about to be recorded (a
  // recycled, zero-filled rows x cols tensor), fills it, then commits with
  // its dependencies and backward hook. Exactly one node may be staged at a
  // time; every op stages-fills-commits before the next op runs.

  Tensor& stage(std::size_t rows, std::size_t cols);
  /// Commit the staged node as a constant (no gradient).
  Var commit_constant();
  Var commit1(int a, BackwardFn backward);
  Var commit2(int a, int b, BackwardFn backward);
  Var commit_n(std::span<const int> deps, BackwardFn backward);

  const Tensor& value(Var v) const;
  /// Gradient of the last backward() w.r.t. `v`; zero tensor if untouched.
  const Tensor& grad(Var v);

  bool requires_grad(int id) const;

  /// Run reverse pass from a scalar (1x1) node, seeding with d(out)/d(out)=1.
  void backward(Var out);

  /// Accumulate `g` into node `id`'s gradient (used by op backward fns).
  void accumulate(int id, const Tensor& g);
  /// Accumulate `s * g` (no temporary).
  void accumulate_scaled(int id, const Tensor& g, double s);
  /// Accumulate the elementwise product `g ∘ m` (no temporary).
  void accumulate_product(int id, const Tensor& g, const Tensor& m);

  /// Rewind the arena (start the next forward pass). Node slots and their
  /// tensor buffers are kept for reuse.
  void reset();

  std::size_t node_count() const { return live_; }

  // ---- Parallel-execution modes (DESIGN.md §3.7) --------------------------
  //
  // Both modes make a tape safe to run forward/backward on a worker thread
  // while other tapes share the same Param objects: param *values* are only
  // read, and nothing writes into the shared Param::grad until the caller
  // says so.

  /// When deferred, param-leaf gradients stay on the tape (readable through
  /// grad()) instead of flushing into Param::grad during backward();
  /// flush_param_grads() later accumulates them serially. Data-parallel
  /// training defers on every worker tape and flushes in shard order, which
  /// keeps the reduction deterministic at any thread count.
  void set_defer_param_grads(bool defer) { defer_param_grads_ = defer; }
  /// Accumulate every param leaf's tape gradient into its Param::grad, in
  /// tape (recording) order. No-op for leaves backward() never reached.
  void flush_param_grads();

  /// When frozen, param() records the parameter's value as a constant: no
  /// gradient flows to the Param at all. The configuration solver freezes
  /// its tapes — it differentiates w.r.t. inputs only, and K concurrent
  /// descents must not race on the shared model's Param::grad buffers.
  void set_freeze_params(bool freeze) { freeze_params_ = freeze; }

 private:
  friend struct OpAccess;  // op backward internals (autodiff.cpp)

  struct Node {
    Tensor value;             // owned value (unused when ref != nullptr)
    Tensor grad;              // recycled; valid only when grad_seen
    Tensor aux;               // op payload (e.g. dropout mask); recycled
    const Tensor* ref = nullptr;  // external value (constant_ref / param)
    Param* param = nullptr;
    BackwardFn backward = nullptr;
    std::vector<int> deps;    // variable-arity dependencies (concat_cols)
    int a = -1;               // dependency ids for <=2-operand ops
    int b = -1;
    std::size_t i0 = 0;       // integer op args (e.g. slice start/len)
    std::size_t i1 = 0;
    double s0 = 0.0;          // scalar op args
    double s1 = 0.0;
    bool requires_grad = false;
    bool grad_seen = false;
  };

  /// Slot at index live_, recycled or freshly created; fields cleared.
  Node& acquire();
  Node& node(int id);
  const Node& node(int id) const;
  const Tensor& node_value(int id) const;
  Var commit_staged(BackwardFn backward, bool needs);

  // unique_ptr slots: node addresses (and staged-value references) stay
  // stable while the arena vector grows.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t live_ = 0;
  Tensor scratch_;  // shared temp for backward hooks (serial, recycled)
  bool defer_param_grads_ = false;
  bool freeze_params_ = false;
};

// ---- Operations -----------------------------------------------------------
// All ops require operands on the same tape.

/// Elementwise sum; shapes must match.
Var add(Var a, Var b);
/// a (B x C) + bias b (1 x C) broadcast over rows.
Var add_row_broadcast(Var a, Var b);
/// Fused max(0, a + broadcast_rows(b)) — one node instead of the
/// add_row_broadcast + relu pair (the MLP hidden-layer hot path).
Var bias_relu(Var a, Var b);
/// Elementwise difference.
Var sub(Var a, Var b);
/// Elementwise (Hadamard) product.
Var mul(Var a, Var b);
/// Matrix product.
Var matmul(Var a, Var b);
/// Multiply by scalar constant.
Var scale(Var a, double s);
/// Add scalar constant elementwise.
Var add_scalar(Var a, double s);
/// Elementwise max(0, x).
Var relu(Var a);
/// Elementwise 1/x. Caller must keep inputs away from zero (quota features
/// are bounded below by Algorithm 1's lower bounds).
Var reciprocal(Var a);
/// Elementwise e^x; backward reuses the stored forward value (dy/dx = y).
Var exp(Var a);
/// Inverted dropout: zero with prob p and rescale by 1/(1-p). Identity when
/// `training` is false or p == 0.
Var dropout(Var a, double p, Rng& rng, bool training);
/// Horizontal concatenation (equal row counts).
Var concat_cols(std::span<const Var> parts);
/// Columns [start, start+len) of a.
Var slice_cols(Var a, std::size_t start, std::size_t len);
/// Sum of all entries -> 1x1.
Var sum_all(Var a);
/// Per-row sum: (B x C) -> (B x 1). Batched solves use this for the
/// per-start quota term (each row is an independent descent).
Var sum_rows(Var a);
/// Mean of all entries -> 1x1.
Var mean_all(Var a);
/// Elementwise asymmetric Hüber (paper Eq. 4, continuity-corrected):
///   x < -theta_neg      ->  theta_neg * (-2x - theta_neg)
///   -theta_neg..theta_pos -> x^2
///   x >= theta_pos      ->  theta_pos * (2x - theta_pos)
/// theta_neg governs the under-estimation side, theta_pos the over-estimation
/// side (for x = percentage error (pred - actual)/actual).
Var asym_huber(Var x, double theta_neg, double theta_pos);

}  // namespace graf::nn
