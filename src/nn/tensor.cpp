#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace graf::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument{"Tensor: ragged initializer"};
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Tensor Tensor::scalar(double v) {
  Tensor t{1, 1};
  t(0, 0) = v;
  return t;
}

Tensor Tensor::row(const std::vector<double>& values) {
  Tensor t{1, values.size()};
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

double Tensor::item() const {
  if (size() != 1) throw std::logic_error{"Tensor::item: not a scalar"};
  return data_[0];
}

void Tensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor +=: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor -=: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& o, double s) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor::add_scaled: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

double Tensor::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Tensor::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument{"hadamard: shape mismatch"};
  Tensor out{a.rows(), a.cols()};
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor operator*(const Tensor& a, double s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(double s, const Tensor& a) { return a * s; }

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument{"matmul: inner dims differ"};
  Tensor out{a.rows(), b.cols()};
  // i-k-j order: streams over b's rows and out's rows (both row-major).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* orow = out.data() + i * out.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument{"matmul_tn: dims differ"};
  Tensor out{a.cols(), b.cols()};
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + k * a.cols();
    const double* brow = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument{"matmul_nt: dims differ"};
  Tensor out{a.rows(), b.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + j * b.cols();
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      out(i, j) = s;
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  Tensor out{a.cols(), a.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (std::size_t i = 0; i < t.rows(); ++i) {
    os << (i == 0 ? "[" : ", [");
    for (std::size_t j = 0; j < t.cols(); ++j) {
      if (j > 0) os << ", ";
      os << t(i, j);
    }
    os << "]";
  }
  return os << "]";
}

}  // namespace graf::nn
