#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

namespace graf::nn {
namespace {

// ---- Blocked GEMM microkernel (DESIGN.md §3.9) ------------------------------
//
// Register tile: up to kMR rows of A against a kNR-column strip of B
// (8 doubles = one AVX-512 / two AVX2 vectors). kKC bounds the k-panel per
// pass. Each tile *continues* the chain by loading C into its accumulators
// (C is zeroed before the first panel), so even K > kKC keeps every output
// element a single ascending-k accumulation chain.
//
// Determinism: every kernel variant — vectorized full-width tiles, scalar
// edge tiles, packed or unpacked B — computes the exact same per-element
// chain acc = fma(a_ik, b_kj, acc) over ascending k (std::fma and the SIMD
// fmadd lanes are the same correctly-rounded IEEE operation). Nothing in
// the per-element arithmetic depends on M (row count), so batched K-row
// forwards are bitwise equal, row for row, to 1-row forwards, and results
// never depend on the thread count (the kernels are single-threaded).
constexpr std::size_t kMR = 8;
constexpr std::size_t kNR = 8;
constexpr std::size_t kKC = 512;
// Pack B into contiguous kNR-wide panels only when the row count amortizes
// the copy. Packed and unpacked paths execute the same accumulation chain
// (only the addressing differs), so the cutoff cannot change results.
constexpr std::size_t kPackMinRows = 16;

std::vector<double>& pack_buffer() {
  thread_local std::vector<double> buf;
  return buf;
}

// C[0..h)[0..w) += A-rows * B-strip over kb ascending k. `b` points at the
// strip's (k=0, j=0) element with row stride ldb. Generic edge version;
// trip counts are runtime values. Accumulators seed from C so a later
// k-panel resumes the exact fma chain of the earlier ones.
inline void micro_tile(double* c, std::size_t ldc, const double* a,
                       std::size_t lda, const double* b, std::size_t ldb,
                       std::size_t kb, std::size_t h, std::size_t w) {
  double acc[kMR][kNR] = {};
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t u = 0; u < w; ++u) acc[r][u] = c[r * ldc + u];
  for (std::size_t k = 0; k < kb; ++k) {
    const double* brow = b + k * ldb;
    for (std::size_t r = 0; r < h; ++r) {
      const double av = a[r * lda + k];
      for (std::size_t u = 0; u < w; ++u) acc[r][u] = std::fma(av, brow[u], acc[r][u]);
    }
  }
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t u = 0; u < w; ++u) c[r * ldc + u] = acc[r][u];
}

// Full-width (w == kNR) tile over H <= kMR rows, register-resident
// accumulators. The ISA variants below are lane-for-lane the same fma chain
// as the scalar fallback.
#if defined(__AVX512F__)

template <int H>
inline void micro_tile_w8(double* c, std::size_t ldc, const double* a,
                          std::size_t lda, const double* b, std::size_t ldb,
                          std::size_t kb) {
  __m512d acc[H];
  for (int r = 0; r < H; ++r)
    acc[r] = _mm512_loadu_pd(c + static_cast<std::size_t>(r) * ldc);
  for (std::size_t k = 0; k < kb; ++k) {
    const __m512d bv = _mm512_loadu_pd(b + k * ldb);
    for (int r = 0; r < H; ++r)
      acc[r] = _mm512_fmadd_pd(_mm512_set1_pd(a[static_cast<std::size_t>(r) * lda + k]),
                               bv, acc[r]);
  }
  for (int r = 0; r < H; ++r)
    _mm512_storeu_pd(c + static_cast<std::size_t>(r) * ldc, acc[r]);
}

#elif defined(__AVX2__) && defined(__FMA__)

template <int H>
inline void micro_tile_w8(double* c, std::size_t ldc, const double* a,
                          std::size_t lda, const double* b, std::size_t ldb,
                          std::size_t kb) {
  __m256d acc[H][2];
  for (int r = 0; r < H; ++r) {
    const double* crow = c + static_cast<std::size_t>(r) * ldc;
    acc[r][0] = _mm256_loadu_pd(crow);
    acc[r][1] = _mm256_loadu_pd(crow + 4);
  }
  for (std::size_t k = 0; k < kb; ++k) {
    const __m256d b0 = _mm256_loadu_pd(b + k * ldb);
    const __m256d b1 = _mm256_loadu_pd(b + k * ldb + 4);
    for (int r = 0; r < H; ++r) {
      const __m256d av = _mm256_set1_pd(a[static_cast<std::size_t>(r) * lda + k]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < H; ++r) {
    double* crow = c + static_cast<std::size_t>(r) * ldc;
    _mm256_storeu_pd(crow, acc[r][0]);
    _mm256_storeu_pd(crow + 4, acc[r][1]);
  }
}

#else

template <int H>
inline void micro_tile_w8(double* c, std::size_t ldc, const double* a,
                          std::size_t lda, const double* b, std::size_t ldb,
                          std::size_t kb) {
  double acc[H][kNR];
  for (int r = 0; r < H; ++r)
    for (std::size_t u = 0; u < kNR; ++u)
      acc[r][u] = c[static_cast<std::size_t>(r) * ldc + u];
  for (std::size_t k = 0; k < kb; ++k) {
    const double* brow = b + k * ldb;
    for (int r = 0; r < H; ++r) {
      const double av = a[static_cast<std::size_t>(r) * lda + k];
      for (std::size_t u = 0; u < kNR; ++u)
        acc[r][u] = std::fma(av, brow[u], acc[r][u]);
    }
  }
  for (int r = 0; r < H; ++r)
    for (std::size_t u = 0; u < kNR; ++u)
      c[static_cast<std::size_t>(r) * ldc + u] = acc[r][u];
}

#endif

// Dispatch the row remainder to a compile-time tile height.
inline void micro_tile_w8_h(double* c, std::size_t ldc, const double* a,
                            std::size_t lda, const double* b, std::size_t ldb,
                            std::size_t kb, std::size_t h) {
  switch (h) {
    case 8: micro_tile_w8<8>(c, ldc, a, lda, b, ldb, kb); break;
    case 7: micro_tile_w8<7>(c, ldc, a, lda, b, ldb, kb); break;
    case 6: micro_tile_w8<6>(c, ldc, a, lda, b, ldb, kb); break;
    case 5: micro_tile_w8<5>(c, ldc, a, lda, b, ldb, kb); break;
    case 4: micro_tile_w8<4>(c, ldc, a, lda, b, ldb, kb); break;
    case 3: micro_tile_w8<3>(c, ldc, a, lda, b, ldb, kb); break;
    case 2: micro_tile_w8<2>(c, ldc, a, lda, b, ldb, kb); break;
    default: micro_tile_w8<1>(c, ldc, a, lda, b, ldb, kb); break;
  }
}

// Dot-product tile for C = A * B^T: C[r][u] += dot(A-row r, B-row u). One
// scalar-fma implementation for every tile, so the chain per element is
// identical regardless of tile shape or batch size.
inline void micro_tile_nt(double* c, std::size_t ldc, const double* a,
                          std::size_t lda, const double* b, std::size_t ldb,
                          std::size_t kb, std::size_t h, std::size_t w) {
  double acc[kMR][kNR] = {};
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t u = 0; u < w; ++u) acc[r][u] = c[r * ldc + u];
  for (std::size_t k = 0; k < kb; ++k) {
    for (std::size_t r = 0; r < h; ++r) {
      const double av = a[r * lda + k];
      for (std::size_t u = 0; u < w; ++u)
        acc[r][u] = std::fma(av, b[u * ldb + k], acc[r][u]);
    }
  }
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t u = 0; u < w; ++u) c[r * ldc + u] = acc[r][u];
}

}  // namespace

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument{"Tensor: ragged initializer"};
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Tensor Tensor::scalar(double v) {
  Tensor t{1, 1};
  t(0, 0) = v;
  return t;
}

Tensor Tensor::row(const std::vector<double>& values) {
  Tensor t{1, values.size()};
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

double Tensor::item() const {
  if (size() != 1) throw std::logic_error{"Tensor::item: not a scalar"};
  return data_[0];
}

void Tensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::resize_zero(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Tensor::copy_from(const Tensor& o) {
  rows_ = o.rows_;
  cols_ = o.cols_;
  data_.assign(o.data_.begin(), o.data_.end());
}

Tensor& Tensor::operator+=(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor +=: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor -=: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& o, double s) {
  if (!same_shape(o)) throw std::invalid_argument{"Tensor::add_scaled: shape mismatch"};
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

double Tensor::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Tensor::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator+(Tensor&& a, const Tensor& b) {
  a += b;
  return std::move(a);
}

Tensor operator+(const Tensor& a, Tensor&& b) {
  b += a;
  return std::move(b);
}

Tensor operator+(Tensor&& a, Tensor&& b) {
  a += b;
  return std::move(a);
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator-(Tensor&& a, const Tensor& b) {
  a -= b;
  return std::move(a);
}

Tensor operator-(const Tensor& a, Tensor&& b) {
  if (!a.same_shape(b)) throw std::invalid_argument{"Tensor -: shape mismatch"};
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = a.data()[i] - b.data()[i];
  return std::move(b);
}

Tensor operator-(Tensor&& a, Tensor&& b) {
  a -= b;
  return std::move(a);
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument{"hadamard: shape mismatch"};
  Tensor out{a.rows(), a.cols()};
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor operator*(const Tensor& a, double s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(Tensor&& a, double s) {
  a *= s;
  return std::move(a);
}

Tensor operator*(double s, const Tensor& a) { return a * s; }

Tensor operator*(double s, Tensor&& a) {
  a *= s;
  return std::move(a);
}

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument{"matmul: inner dims differ"};
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();
  out.resize_zero(M, N);
  const double* A = a.data();
  const double* B = b.data();
  double* C = out.data();
  const bool pack = M >= kPackMinRows && K * N >= 4 * kNR * kNR;
  for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
    const std::size_t kb = std::min(kKC, K - k0);
    const double* bpanel = B + k0 * N;
    const double* packed = nullptr;
    if (pack) {
      auto& buf = pack_buffer();
      const std::size_t strips = (N + kNR - 1) / kNR;
      buf.assign(strips * kb * kNR, 0.0);
      for (std::size_t s = 0; s < strips; ++s) {
        const std::size_t j0 = s * kNR;
        const std::size_t w = std::min(kNR, N - j0);
        double* dst = buf.data() + s * kb * kNR;
        for (std::size_t k = 0; k < kb; ++k)
          for (std::size_t u = 0; u < w; ++u) dst[k * kNR + u] = bpanel[k * N + j0 + u];
      }
      packed = buf.data();
    }
    for (std::size_t j0 = 0; j0 < N; j0 += kNR) {
      const std::size_t w = std::min(kNR, N - j0);
      const double* bptr = pack ? packed + (j0 / kNR) * kb * kNR : bpanel + j0;
      const std::size_t ldb = pack ? kNR : N;
      for (std::size_t i0 = 0; i0 < M; i0 += kMR) {
        const std::size_t h = std::min(kMR, M - i0);
        double* cptr = C + i0 * N + j0;
        const double* aptr = A + i0 * K + k0;
        if (w == kNR)
          micro_tile_w8_h(cptr, N, aptr, K, bptr, ldb, kb, h);
        else
          micro_tile(cptr, N, aptr, K, bptr, ldb, kb, h, w);
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument{"matmul_tn: dims differ"};
  const std::size_t K = a.rows();
  const std::size_t M = a.cols();
  const std::size_t N = b.cols();
  out.resize_zero(M, N);
  // k-outer streaming over both inputs' rows; out stays cache-resident
  // (weight-gradient shapes are small). Per element the k chain ascends.
  // The zero skip is hot here: `a` is usually a ReLU/dropout-masked
  // activation, so whole lanes vanish.
  for (std::size_t k = 0; k < K; ++k) {
    const double* arow = a.data() + k * M;
    const double* brow = b.data() + k * N;
    for (std::size_t i = 0; i < M; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out.data() + i * N;
      for (std::size_t j = 0; j < N; ++j) orow[j] += aki * brow[j];
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn_into(out, a, b);
  return out;
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument{"matmul_nt: dims differ"};
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();
  out.resize_zero(M, N);
  const double* A = a.data();
  const double* B = b.data();
  double* C = out.data();
  for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
    const std::size_t kb = std::min(kKC, K - k0);
    for (std::size_t j0 = 0; j0 < N; j0 += kNR) {
      const std::size_t w = std::min(kNR, N - j0);
      const double* bptr = B + j0 * K + k0;
      for (std::size_t i0 = 0; i0 < M; i0 += kMR) {
        const std::size_t h = std::min(kMR, M - i0);
        double* cptr = C + i0 * N + j0;
        const double* aptr = A + i0 * K + k0;
        micro_tile_nt(cptr, N, aptr, K, bptr, K, kb, h, w);
      }
    }
  }
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt_into(out, a, b);
  return out;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument{"matmul: inner dims differ"};
  Tensor out{a.rows(), b.cols()};
  // i-k-j order: streams over b's rows and out's rows (both row-major).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* orow = out.data() + i * out.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

void bias_relu_into(Tensor& out, const Tensor& a, const Tensor& bias) {
  if (bias.rows() != 1 || bias.cols() != a.cols())
    throw std::invalid_argument{"bias_relu: bias must be 1 x cols(a)"};
  out.resize_zero(a.rows(), a.cols());
  const std::size_t cols = a.cols();
  const double* bp = bias.data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ap = a.data() + i * cols;
    double* op = out.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = ap[j] + bp[j];
      op[j] = v > 0.0 ? v : 0.0;
    }
  }
}

Tensor transpose(const Tensor& a) {
  Tensor out{a.cols(), a.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (std::size_t i = 0; i < t.rows(); ++i) {
    os << (i == 0 ? "[" : ", [");
    for (std::size_t j = 0; j < t.cols(); ++j) {
      if (j > 0) os << ", ";
      os << t(i, j);
    }
    os << "]";
  }
  return os << "]";
}

}  // namespace graf::nn
