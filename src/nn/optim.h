// Optimizers. The paper trains its latency prediction model and runs its
// configuration solver with ADAM [Kingma & Ba 2014]; plain SGD is provided
// for tests and comparisons.
#pragma once

#include <vector>

#include "nn/autodiff.h"
#include "nn/tensor.h"

namespace graf::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update from accumulated gradients, then clear them.
  virtual void step() = 0;
  void zero_grad();

 protected:
  explicit Optimizer(std::vector<Param*> params) : params_{std::move(params)} {}
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr);
  void step() override;

 private:
  double lr_;
};

class Adam : public Optimizer {
 public:
  struct Config {
    double lr = 2e-4;  // paper Table 1 default
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
  };

  explicit Adam(std::vector<Param*> params);
  Adam(std::vector<Param*> params, Config cfg);
  void step() override;

  double learning_rate() const { return cfg_.lr; }
  void set_learning_rate(double lr) { cfg_.lr = lr; }

 private:
  Config cfg_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  long long t_ = 0;
};

}  // namespace graf::nn
