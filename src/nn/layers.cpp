#include "nn/layers.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace graf::nn {
namespace {

Tensor kaiming_uniform(std::size_t in, std::size_t out, Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in));
  Tensor w{in, out};
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-limit, limit);
  return w;
}

}  // namespace

std::vector<Tensor> Module::state_dict() {
  std::vector<Tensor> out;
  for (Param* p : params()) out.push_back(p->value);
  return out;
}

void Module::load_state_dict(const std::vector<Tensor>& state) {
  auto ps = params();
  if (state.size() != ps.size())
    throw std::runtime_error{"load_state_dict: parameter count mismatch"};
  for (std::size_t i = 0; i < ps.size(); ++i)
    if (!state[i].same_shape(ps[i]->value))
      throw std::runtime_error{"load_state_dict: shape mismatch"};
  for (std::size_t i = 0; i < ps.size(); ++i) ps[i]->value = state[i];
}

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_{in}, out_{out}, w_{kaiming_uniform(in, out, rng)}, b_{Tensor{1, out}} {}

Var Linear::forward(Tape& tape, Var x) {
  Var w = tape.param(w_);
  Var b = tape.param(b_);
  return add_row_broadcast(matmul(x, w), b);
}

Var Linear::forward_relu(Tape& tape, Var x) {
  Var w = tape.param(w_);
  Var b = tape.param(b_);
  return bias_relu(matmul(x, w), b);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

Mlp::Mlp(std::vector<std::size_t> dims, double dropout_p, Rng& rng)
    : dims_{std::move(dims)}, dropout_p_{dropout_p} {
  if (dims_.size() < 2) throw std::invalid_argument{"Mlp: need at least in/out dims"};
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i)
    layers_.emplace_back(dims_[i], dims_[i + 1], rng);
}

Var Mlp::forward(Tape& tape, Var x, Rng& rng, bool training) {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    if (last) {
      h = layers_[i].forward(tape, h);
    } else {
      h = layers_[i].forward_relu(tape, h);
      h = dropout(h, dropout_p_, rng, training);
    }
  }
  return h;
}

void Mlp::collect_params(std::vector<Param*>& out) {
  for (auto& l : layers_) l.collect_params(out);
}

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  os << params.size() << '\n';
  os.precision(17);
  for (const Param* p : params) {
    os << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      if (i > 0) os << ' ';
      os << p->value.data()[i];
    }
    os << '\n';
  }
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  std::size_t count = 0;
  if (!(is >> count) || count != params.size())
    throw std::runtime_error{"load_params: parameter count mismatch"};
  for (Param* p : params) {
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(is >> rows >> cols) || rows != p->value.rows() || cols != p->value.cols())
      throw std::runtime_error{"load_params: shape mismatch"};
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      if (!(is >> p->value.data()[i])) throw std::runtime_error{"load_params: truncated"};
    }
  }
}

}  // namespace graf::nn
