// Dense 2-D tensor (row-major, double precision).
//
// This is the numeric core under the autodiff tape (src/nn/autodiff.h).
// Everything GRAF trains is small (tens of units per layer), so a simple
// cache-friendly scalar implementation is more than fast enough and keeps
// the code auditable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace graf::nn {

class Tensor {
 public:
  Tensor() = default;
  /// rows x cols, zero-initialized.
  Tensor(std::size_t rows, std::size_t cols);
  /// rows x cols filled with `fill`.
  Tensor(std::size_t rows, std::size_t cols, double fill);
  /// From nested initializer list; all rows must have equal length.
  Tensor(std::initializer_list<std::initializer_list<double>> rows);

  static Tensor zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  static Tensor full(std::size_t rows, std::size_t cols, double v) { return {rows, cols, v}; }
  /// 1x1 scalar tensor.
  static Tensor scalar(double v);
  /// 1xN row vector from values.
  static Tensor row(const std::vector<double>& values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Value of a 1x1 tensor. Throws otherwise.
  double item() const;

  void fill(double v);
  void zero() { fill(0.0); }

  // In-place arithmetic (shape-checked).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(double s);

  /// Accumulate `s * o` into this tensor (axpy).
  void add_scaled(const Tensor& o, double s);

  double sum() const;
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Out-of-place arithmetic.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, double s);
Tensor operator*(double s, const Tensor& a);

/// Matrix product a(r x k) * b(k x c).
Tensor matmul(const Tensor& a, const Tensor& b);
/// a^T * b  without materializing the transpose.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// a * b^T without materializing the transpose.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace graf::nn
