// Dense 2-D tensor (row-major, double precision).
//
// This is the numeric core under the autodiff tape (src/nn/autodiff.h).
// The GEMM entry points run a cache-blocked, register-tiled microkernel
// (DESIGN.md §3.9). The blocking is fixed at compile time and every output
// element is one ascending-k accumulation chain, so results are independent
// of the thread count *and* of how many rows share a call — a K-row batched
// product equals K independent 1-row products, bit for bit. `matmul_naive`
// keeps the original triple loop as the property-test reference.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <utility>
#include <vector>

namespace graf::nn {

class Tensor {
 public:
  Tensor() = default;
  /// rows x cols, zero-initialized.
  Tensor(std::size_t rows, std::size_t cols);
  /// rows x cols filled with `fill`.
  Tensor(std::size_t rows, std::size_t cols, double fill);
  /// From nested initializer list; all rows must have equal length.
  Tensor(std::initializer_list<std::initializer_list<double>> rows);

  static Tensor zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  static Tensor full(std::size_t rows, std::size_t cols, double v) { return {rows, cols, v}; }
  /// 1x1 scalar tensor.
  static Tensor scalar(double v);
  /// 1xN row vector from values.
  static Tensor row(const std::vector<double>& values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Value of a 1x1 tensor. Throws otherwise.
  double item() const;

  void fill(double v);
  void zero() { fill(0.0); }

  /// Reshape to rows x cols, zero-filled. Reuses the existing allocation
  /// when capacity suffices — the tape arena calls this every iteration to
  /// recycle node buffers without touching the heap.
  void resize_zero(std::size_t rows, std::size_t cols);
  /// Become an elementwise copy of `o`, reusing the existing allocation
  /// when capacity suffices.
  void copy_from(const Tensor& o);

  // In-place arithmetic (shape-checked).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(double s);

  /// Accumulate `s * o` into this tensor (axpy).
  void add_scaled(const Tensor& o, double s);

  double sum() const;
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Out-of-place arithmetic. The rvalue overloads steal the temporary's
// buffer, so expression chains like `a + b + c + d` allocate once instead
// of once per operator (regression-tested by pointer identity in
// tests/tensor_test.cpp).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator+(Tensor&& a, const Tensor& b);
Tensor operator+(const Tensor& a, Tensor&& b);
Tensor operator+(Tensor&& a, Tensor&& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator-(Tensor&& a, const Tensor& b);
Tensor operator-(const Tensor& a, Tensor&& b);
Tensor operator-(Tensor&& a, Tensor&& b);
/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, double s);
Tensor operator*(Tensor&& a, double s);
Tensor operator*(double s, const Tensor& a);
Tensor operator*(double s, Tensor&& a);

/// Matrix product a(r x k) * b(k x c).
Tensor matmul(const Tensor& a, const Tensor& b);
/// a^T * b  without materializing the transpose.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// a * b^T without materializing the transpose.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Destination-reuse forms of the products above: `out` is reshaped with
// resize_zero (recycling its buffer) and overwritten with the result. These
// are what the autodiff ops call so a steady-state tape touches no heap.
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b);

/// Reference triple-loop product (the pre-blocking implementation); kept as
/// the ground truth for the blocked-kernel property tests and benchmarks.
Tensor matmul_naive(const Tensor& a, const Tensor& b);

/// Fused bias + ReLU: out = max(0, a + broadcast_rows(bias)), with bias
/// 1 x cols(a). One pass instead of the add_row_broadcast + relu pair.
void bias_relu_into(Tensor& out, const Tensor& a, const Tensor& bias);

Tensor transpose(const Tensor& a);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace graf::nn
