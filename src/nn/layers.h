// Neural-network building blocks: Linear layers and multi-layer perceptrons.
//
// Matches the model family of the paper's §4: ReLU MLPs with optional
// dropout on hidden layers. Modules expose their parameters for the
// optimizer and for (de)serialization.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/autodiff.h"

namespace graf::nn {

/// Base for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Append pointers to this module's parameters (stable for module lifetime).
  virtual void collect_params(std::vector<Param*>& out) = 0;

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

  std::size_t param_count() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->value.size();
    return n;
  }

  /// Copies of all parameter tensors, in collect_params order. Together
  /// with load_state_dict this is the serialization / cloning hook used by
  /// the model store (src/serve).
  std::vector<Tensor> state_dict();

  /// Overwrite parameters from `state` (collect_params order). Throws on
  /// count or shape mismatch; parameters are untouched on failure.
  void load_state_dict(const std::vector<Tensor>& state);
};

/// Fully-connected layer: y = x W + b, Kaiming-uniform initialized.
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Var forward(Tape& tape, Var x);
  /// Fused y = max(0, x W + b) — one tape node for the bias+ReLU pair
  /// (hidden-layer hot path; see nn::bias_relu).
  Var forward_relu(Tape& tape, Var x);

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  void collect_params(std::vector<Param*>& out) override;

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param w_;
  Param b_;
};

/// MLP: Linear -> ReLU [-> Dropout] repeated, with a linear final layer.
///
/// `dims` lists {in, hidden..., out}; e.g. {4, 20, 20, 20} builds the
/// paper's two-hidden-layer 20-unit message/update networks.
class Mlp : public Module {
 public:
  Mlp(std::vector<std::size_t> dims, double dropout_p, Rng& rng);

  /// Forward pass. `training` enables dropout (inverted-dropout scaling).
  Var forward(Tape& tape, Var x, Rng& rng, bool training);

  std::size_t in_features() const { return dims_.front(); }
  std::size_t out_features() const { return dims_.back(); }

  void collect_params(std::vector<Param*>& out) override;

 private:
  std::vector<std::size_t> dims_;
  double dropout_p_;
  std::vector<Linear> layers_;
};

/// Serialize parameter values (shape-checked on load).
void save_params(std::ostream& os, const std::vector<Param*>& params);
void load_params(std::istream& is, const std::vector<Param*>& params);

}  // namespace graf::nn
