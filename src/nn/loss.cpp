#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graf::nn {

Var mse_loss(Var pred, const Tensor& target) {
  Tape& t = *pred.tape;
  if (!t.value(pred).same_shape(target))
    throw std::invalid_argument{"mse_loss: shape mismatch"};
  Var tgt = t.constant(target);
  Var d = sub(pred, tgt);
  return mean_all(mul(d, d));
}

Var percentage_error(Var pred, const Tensor& target, double eps) {
  Tape& t = *pred.tape;
  if (!t.value(pred).same_shape(target))
    throw std::invalid_argument{"percentage_error: shape mismatch"};
  Tensor inv{target.rows(), target.cols()};
  for (std::size_t i = 0; i < target.size(); ++i)
    inv.data()[i] = 1.0 / std::max(target.data()[i], eps);
  Var diff = sub(pred, t.constant(target));
  return mul(diff, t.constant(inv));
}

Var asym_huber_pct_loss(Var pred, const Tensor& target, double theta_under,
                        double theta_over) {
  // x = (pred - target)/target; under-estimation is x < 0, so theta_under
  // is the negative-side theta.
  Var x = percentage_error(pred, target);
  return mean_all(asym_huber(x, theta_under, theta_over));
}

Var huber_pct_loss(Var pred, const Tensor& target, double theta) {
  return asym_huber_pct_loss(pred, target, theta, theta);
}

double absolute_percentage_error(double pred, double actual) {
  if (actual == 0.0) return 0.0;
  return std::abs(pred - actual) / std::abs(actual) * 100.0;
}

double asym_huber_value(double x, double theta_neg, double theta_pos) {
  if (x < -theta_neg) return theta_neg * (-2.0 * x - theta_neg);
  if (x < theta_pos) return x * x;
  return theta_pos * (2.0 * x - theta_pos);
}

}  // namespace graf::nn
