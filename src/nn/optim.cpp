#include "nn/optim.h"

#include <cmath>

namespace graf::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Param*> params, double lr) : Optimizer{std::move(params)}, lr_{lr} {}

void Sgd::step() {
  for (Param* p : params_) {
    p->value.add_scaled(p->grad, -lr_);
    p->zero_grad();
  }
}

Adam::Adam(std::vector<Param*> params) : Adam{std::move(params), Config{}} {}

Adam::Adam(std::vector<Param*> params, Config cfg)
    : Optimizer{std::move(params)}, cfg_{cfg} {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      const double g = p.grad.data()[k];
      m.data()[k] = cfg_.beta1 * m.data()[k] + (1.0 - cfg_.beta1) * g;
      v.data()[k] = cfg_.beta2 * v.data()[k] + (1.0 - cfg_.beta2) * g * g;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      p.value.data()[k] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
    p.zero_grad();
  }
}

}  // namespace graf::nn
