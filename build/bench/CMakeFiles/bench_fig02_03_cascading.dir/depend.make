# Empty dependencies file for bench_fig02_03_cascading.
# This may be replaced when dependencies are built.
