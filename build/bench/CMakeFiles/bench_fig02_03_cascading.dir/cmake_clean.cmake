file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_03_cascading.dir/bench_fig02_03_cascading.cpp.o"
  "CMakeFiles/bench_fig02_03_cascading.dir/bench_fig02_03_cascading.cpp.o.d"
  "bench_fig02_03_cascading"
  "bench_fig02_03_cascading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_03_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
