file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_22_traffic_surge.dir/bench_fig21_22_traffic_surge.cpp.o"
  "CMakeFiles/bench_fig21_22_traffic_surge.dir/bench_fig21_22_traffic_surge.cpp.o.d"
  "bench_fig21_22_traffic_surge"
  "bench_fig21_22_traffic_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_22_traffic_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
