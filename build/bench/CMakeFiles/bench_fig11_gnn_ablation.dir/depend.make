# Empty dependencies file for bench_fig11_gnn_ablation.
# This may be replaced when dependencies are built.
