file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_16_resource_saving.dir/bench_fig14_16_resource_saving.cpp.o"
  "CMakeFiles/bench_fig14_16_resource_saving.dir/bench_fig14_16_resource_saving.cpp.o.d"
  "bench_fig14_16_resource_saving"
  "bench_fig14_16_resource_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_16_resource_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
