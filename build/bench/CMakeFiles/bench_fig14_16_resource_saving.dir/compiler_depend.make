# Empty compiler generated dependencies file for bench_fig14_16_resource_saving.
# This may be replaced when dependencies are built.
