# Empty compiler generated dependencies file for bench_fig18_scaling_workload.
# This may be replaced when dependencies are built.
