# Empty compiler generated dependencies file for bench_fig19_table3_cost_benefit.
# This may be replaced when dependencies are built.
