file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_table3_cost_benefit.dir/bench_fig19_table3_cost_benefit.cpp.o"
  "CMakeFiles/bench_fig19_table3_cost_benefit.dir/bench_fig19_table3_cost_benefit.cpp.o.d"
  "bench_fig19_table3_cost_benefit"
  "bench_fig19_table3_cost_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_table3_cost_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
