# Empty dependencies file for bench_fig13_search_space.
# This may be replaced when dependencies are built.
