# Empty compiler generated dependencies file for bench_ablation_integer_refinement.
# This may be replaced when dependencies are built.
