# Empty compiler generated dependencies file for bench_fig07_workload_perception.
# This may be replaced when dependencies are built.
