file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_workload_perception.dir/bench_fig07_workload_perception.cpp.o"
  "CMakeFiles/bench_fig07_workload_perception.dir/bench_fig07_workload_perception.cpp.o.d"
  "bench_fig07_workload_perception"
  "bench_fig07_workload_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_workload_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
