# Empty dependencies file for bench_ablation_loss_asymmetry.
# This may be replaced when dependencies are built.
