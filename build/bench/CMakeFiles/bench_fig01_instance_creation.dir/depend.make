# Empty dependencies file for bench_fig01_instance_creation.
# This may be replaced when dependencies are built.
