# Empty compiler generated dependencies file for bench_fig17_slo_targeting.
# This may be replaced when dependencies are built.
