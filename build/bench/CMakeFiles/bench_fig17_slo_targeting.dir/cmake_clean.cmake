file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_slo_targeting.dir/bench_fig17_slo_targeting.cpp.o"
  "CMakeFiles/bench_fig17_slo_targeting.dir/bench_fig17_slo_targeting.cpp.o.d"
  "bench_fig17_slo_targeting"
  "bench_fig17_slo_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_slo_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
