# Empty dependencies file for bench_fig20_azure_trace.
# This may be replaced when dependencies are built.
