file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_azure_trace.dir/bench_fig20_azure_trace.cpp.o"
  "CMakeFiles/bench_fig20_azure_trace.dir/bench_fig20_azure_trace.cpp.o.d"
  "bench_fig20_azure_trace"
  "bench_fig20_azure_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_azure_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
