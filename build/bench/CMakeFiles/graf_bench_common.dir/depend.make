# Empty dependencies file for graf_bench_common.
# This may be replaced when dependencies are built.
