file(REMOVE_RECURSE
  "CMakeFiles/graf_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/graf_bench_common.dir/bench_common.cpp.o.d"
  "libgraf_bench_common.a"
  "libgraf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
