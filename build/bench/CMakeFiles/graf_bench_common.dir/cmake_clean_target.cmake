file(REMOVE_RECURSE
  "libgraf_bench_common.a"
)
