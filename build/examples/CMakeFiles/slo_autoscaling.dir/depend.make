# Empty dependencies file for slo_autoscaling.
# This may be replaced when dependencies are built.
