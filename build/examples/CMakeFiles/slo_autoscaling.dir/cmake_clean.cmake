file(REMOVE_RECURSE
  "CMakeFiles/slo_autoscaling.dir/slo_autoscaling.cpp.o"
  "CMakeFiles/slo_autoscaling.dir/slo_autoscaling.cpp.o.d"
  "slo_autoscaling"
  "slo_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
