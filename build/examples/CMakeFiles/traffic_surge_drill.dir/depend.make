# Empty dependencies file for traffic_surge_drill.
# This may be replaced when dependencies are built.
