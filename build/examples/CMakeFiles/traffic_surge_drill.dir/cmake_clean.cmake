file(REMOVE_RECURSE
  "CMakeFiles/traffic_surge_drill.dir/traffic_surge_drill.cpp.o"
  "CMakeFiles/traffic_surge_drill.dir/traffic_surge_drill.cpp.o.d"
  "traffic_surge_drill"
  "traffic_surge_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_surge_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
