# Empty dependencies file for graf_integration_tests.
# This may be replaced when dependencies are built.
