file(REMOVE_RECURSE
  "CMakeFiles/graf_integration_tests.dir/integration_test.cpp.o"
  "CMakeFiles/graf_integration_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/graf_integration_tests.dir/solver_property_test.cpp.o"
  "CMakeFiles/graf_integration_tests.dir/solver_property_test.cpp.o.d"
  "graf_integration_tests"
  "graf_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graf_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
