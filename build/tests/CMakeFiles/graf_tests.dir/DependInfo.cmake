
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/graf_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/autodiff_test.cpp" "tests/CMakeFiles/graf_tests.dir/autodiff_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/autodiff_test.cpp.o.d"
  "/root/repo/tests/autoscalers_test.cpp" "tests/CMakeFiles/graf_tests.dir/autoscalers_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/autoscalers_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/graf_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/graf_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/deployment_test.cpp" "tests/CMakeFiles/graf_tests.dir/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/deployment_test.cpp.o.d"
  "/root/repo/tests/event_queue_test.cpp" "tests/CMakeFiles/graf_tests.dir/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/graf_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/graf_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/instance_test.cpp" "tests/CMakeFiles/graf_tests.dir/instance_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/instance_test.cpp.o.d"
  "/root/repo/tests/latency_model_test.cpp" "tests/CMakeFiles/graf_tests.dir/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/latency_model_test.cpp.o.d"
  "/root/repo/tests/layers_optim_test.cpp" "tests/CMakeFiles/graf_tests.dir/layers_optim_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/layers_optim_test.cpp.o.d"
  "/root/repo/tests/loss_test.cpp" "tests/CMakeFiles/graf_tests.dir/loss_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/loss_test.cpp.o.d"
  "/root/repo/tests/mpnn_test.cpp" "tests/CMakeFiles/graf_tests.dir/mpnn_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/mpnn_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/graf_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/graf_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/service_test.cpp" "tests/CMakeFiles/graf_tests.dir/service_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/service_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/graf_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/graf_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/graf_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/timeout_test.cpp" "tests/CMakeFiles/graf_tests.dir/timeout_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/timeout_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/graf_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/graf_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/graf_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
