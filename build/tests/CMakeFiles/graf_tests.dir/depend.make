# Empty dependencies file for graf_tests.
# This may be replaced when dependencies are built.
