# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graf_tests[1]_include.cmake")
add_test(integration "/root/repo/build/tests/graf_integration_tests")
set_tests_properties(integration PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
