
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/catalog.cpp" "src/CMakeFiles/graf.dir/apps/catalog.cpp.o" "gcc" "src/CMakeFiles/graf.dir/apps/catalog.cpp.o.d"
  "/root/repo/src/apps/topology.cpp" "src/CMakeFiles/graf.dir/apps/topology.cpp.o" "gcc" "src/CMakeFiles/graf.dir/apps/topology.cpp.o.d"
  "/root/repo/src/autoscalers/firm_like.cpp" "src/CMakeFiles/graf.dir/autoscalers/firm_like.cpp.o" "gcc" "src/CMakeFiles/graf.dir/autoscalers/firm_like.cpp.o.d"
  "/root/repo/src/autoscalers/k8s_hpa.cpp" "src/CMakeFiles/graf.dir/autoscalers/k8s_hpa.cpp.o" "gcc" "src/CMakeFiles/graf.dir/autoscalers/k8s_hpa.cpp.o.d"
  "/root/repo/src/autoscalers/miras_like.cpp" "src/CMakeFiles/graf.dir/autoscalers/miras_like.cpp.o" "gcc" "src/CMakeFiles/graf.dir/autoscalers/miras_like.cpp.o.d"
  "/root/repo/src/autoscalers/proactive_oracle.cpp" "src/CMakeFiles/graf.dir/autoscalers/proactive_oracle.cpp.o" "gcc" "src/CMakeFiles/graf.dir/autoscalers/proactive_oracle.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/graf.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/graf.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/graf.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/graf.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/graf.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/graf.dir/common/table.cpp.o.d"
  "/root/repo/src/core/configuration_solver.cpp" "src/CMakeFiles/graf.dir/core/configuration_solver.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/configuration_solver.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/graf.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/graf_controller.cpp" "src/CMakeFiles/graf.dir/core/graf_controller.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/graf_controller.cpp.o.d"
  "/root/repo/src/core/integer_refiner.cpp" "src/CMakeFiles/graf.dir/core/integer_refiner.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/integer_refiner.cpp.o.d"
  "/root/repo/src/core/latency_predictor.cpp" "src/CMakeFiles/graf.dir/core/latency_predictor.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/latency_predictor.cpp.o.d"
  "/root/repo/src/core/resource_controller.cpp" "src/CMakeFiles/graf.dir/core/resource_controller.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/resource_controller.cpp.o.d"
  "/root/repo/src/core/sample_collector.cpp" "src/CMakeFiles/graf.dir/core/sample_collector.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/sample_collector.cpp.o.d"
  "/root/repo/src/core/state_collector.cpp" "src/CMakeFiles/graf.dir/core/state_collector.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/state_collector.cpp.o.d"
  "/root/repo/src/core/workload_analyzer.cpp" "src/CMakeFiles/graf.dir/core/workload_analyzer.cpp.o" "gcc" "src/CMakeFiles/graf.dir/core/workload_analyzer.cpp.o.d"
  "/root/repo/src/gnn/graph.cpp" "src/CMakeFiles/graf.dir/gnn/graph.cpp.o" "gcc" "src/CMakeFiles/graf.dir/gnn/graph.cpp.o.d"
  "/root/repo/src/gnn/latency_model.cpp" "src/CMakeFiles/graf.dir/gnn/latency_model.cpp.o" "gcc" "src/CMakeFiles/graf.dir/gnn/latency_model.cpp.o.d"
  "/root/repo/src/gnn/mpnn.cpp" "src/CMakeFiles/graf.dir/gnn/mpnn.cpp.o" "gcc" "src/CMakeFiles/graf.dir/gnn/mpnn.cpp.o.d"
  "/root/repo/src/gnn/partitioned_model.cpp" "src/CMakeFiles/graf.dir/gnn/partitioned_model.cpp.o" "gcc" "src/CMakeFiles/graf.dir/gnn/partitioned_model.cpp.o.d"
  "/root/repo/src/nn/autodiff.cpp" "src/CMakeFiles/graf.dir/nn/autodiff.cpp.o" "gcc" "src/CMakeFiles/graf.dir/nn/autodiff.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/graf.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/graf.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/graf.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/graf.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/graf.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/graf.dir/nn/optim.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/graf.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/graf.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/graf.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/graf.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/deployment.cpp" "src/CMakeFiles/graf.dir/sim/deployment.cpp.o" "gcc" "src/CMakeFiles/graf.dir/sim/deployment.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/graf.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/graf.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/instance.cpp" "src/CMakeFiles/graf.dir/sim/instance.cpp.o" "gcc" "src/CMakeFiles/graf.dir/sim/instance.cpp.o.d"
  "/root/repo/src/sim/service.cpp" "src/CMakeFiles/graf.dir/sim/service.cpp.o" "gcc" "src/CMakeFiles/graf.dir/sim/service.cpp.o.d"
  "/root/repo/src/trace/latency_window.cpp" "src/CMakeFiles/graf.dir/trace/latency_window.cpp.o" "gcc" "src/CMakeFiles/graf.dir/trace/latency_window.cpp.o.d"
  "/root/repo/src/trace/span.cpp" "src/CMakeFiles/graf.dir/trace/span.cpp.o" "gcc" "src/CMakeFiles/graf.dir/trace/span.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/graf.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/graf.dir/trace/tracer.cpp.o.d"
  "/root/repo/src/workload/azure_trace.cpp" "src/CMakeFiles/graf.dir/workload/azure_trace.cpp.o" "gcc" "src/CMakeFiles/graf.dir/workload/azure_trace.cpp.o.d"
  "/root/repo/src/workload/closed_loop.cpp" "src/CMakeFiles/graf.dir/workload/closed_loop.cpp.o" "gcc" "src/CMakeFiles/graf.dir/workload/closed_loop.cpp.o.d"
  "/root/repo/src/workload/open_loop.cpp" "src/CMakeFiles/graf.dir/workload/open_loop.cpp.o" "gcc" "src/CMakeFiles/graf.dir/workload/open_loop.cpp.o.d"
  "/root/repo/src/workload/schedule.cpp" "src/CMakeFiles/graf.dir/workload/schedule.cpp.o" "gcc" "src/CMakeFiles/graf.dir/workload/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
