file(REMOVE_RECURSE
  "libgraf.a"
)
