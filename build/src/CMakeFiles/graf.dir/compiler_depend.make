# Empty compiler generated dependencies file for graf.
# This may be replaced when dependencies are built.
