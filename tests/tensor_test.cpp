#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/rng.h"

namespace graf::nn {
namespace {

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t{r, c};
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0, 1.0);
  return t;
}

TEST(Tensor, ZeroInitialized) {
  Tensor t{2, 3};
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(i, j), 0.0);
}

TEST(Tensor, InitializerList) {
  Tensor t{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 3.0);
}

TEST(Tensor, RaggedInitializerThrows) {
  EXPECT_THROW((Tensor{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Tensor, ScalarAndItem) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.5).item(), 3.5);
  Tensor t{2, 2};
  EXPECT_THROW(t.item(), std::logic_error);
}

TEST(Tensor, RowVector) {
  Tensor r = Tensor::row({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_DOUBLE_EQ(r(0, 2), 3.0);
}

TEST(Tensor, AddSub) {
  Tensor a{{1.0, 2.0}};
  Tensor b{{10.0, 20.0}};
  Tensor c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 11.0);
  Tensor d = b - a;
  EXPECT_DOUBLE_EQ(d(0, 1), 18.0);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a{1, 2};
  Tensor b{2, 1};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(hadamard(a, b), std::invalid_argument);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a{{1.0, -2.0}};
  Tensor b = 3.0 * a;
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(b(0, 1), -6.0);
}

TEST(Tensor, Hadamard) {
  Tensor a{{2.0, 3.0}};
  Tensor b{{4.0, 5.0}};
  Tensor c = hadamard(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 15.0);
}

TEST(Tensor, AddScaled) {
  Tensor a{{1.0, 1.0}};
  Tensor b{{2.0, 4.0}};
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(Tensor, MatmulKnownResult) {
  Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  Tensor b{{5.0, 6.0}, {7.0, 8.0}};
  Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Tensor, MatmulIdentity) {
  Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  Tensor id{{1.0, 0.0}, {0.0, 1.0}};
  Tensor c = matmul(a, id);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
}

TEST(Tensor, MatmulDimensionCheck) {
  Tensor a{2, 3};
  Tensor b{2, 3};
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Tensor, TransposedProductsMatchExplicit) {
  Tensor a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};  // 2x3
  Tensor b{{1.0, 0.5}, {2.0, 1.5}};            // 2x2
  Tensor tn = matmul_tn(a, b);                 // a^T b: 3x2
  Tensor explicit_tn = matmul(transpose(a), b);
  ASSERT_TRUE(tn.same_shape(explicit_tn));
  for (std::size_t i = 0; i < tn.size(); ++i)
    EXPECT_DOUBLE_EQ(tn.data()[i], explicit_tn.data()[i]);

  Tensor c{{1.0, 2.0, 3.0}};  // 1x3
  Tensor nt = matmul_nt(a, c);  // a c^T: 2x1
  Tensor explicit_nt = matmul(a, transpose(c));
  ASSERT_TRUE(nt.same_shape(explicit_nt));
  for (std::size_t i = 0; i < nt.size(); ++i)
    EXPECT_DOUBLE_EQ(nt.data()[i], explicit_nt.data()[i]);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor a{{1.0, -5.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

// ---- Blocked-kernel properties (PR-5) ---------------------------------------

// The cache-blocked kernel must agree with the reference triple loop on
// shapes that exercise every remainder path: odd dims, single rows/cols,
// dims straddling the MR/NR/KC block boundaries. Both kernels chain
// fma(a_ik, b_kj, acc) in ascending k, so the results are bitwise equal —
// asserted at 1e-12 relative to stay honest about intent even if a future
// kernel reassociates (bit-exactness itself is covered below).
TEST(Tensor, BlockedMatmulMatchesNaiveOnAwkwardShapes) {
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 7, 13},   {3, 129, 65}, {17, 96, 120}, {5, 5, 5},
                {33, 31, 29}, {64, 1, 64},  {1, 1, 1},     {8, 513, 8},
                {16, 512, 16}, {2, 1023, 3}};
  Rng rng{101};
  for (const auto& s : shapes) {
    const Tensor a = random_tensor(s.m, s.k, rng);
    const Tensor b = random_tensor(s.k, s.n, rng);
    const Tensor fast = matmul(a, b);
    const Tensor ref = matmul_naive(a, b);
    ASSERT_TRUE(fast.same_shape(ref));
    double max_rel = 0.0;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      const double denom = std::max(1.0, std::abs(ref.data()[i]));
      max_rel = std::max(max_rel,
                         std::abs(fast.data()[i] - ref.data()[i]) / denom);
      EXPECT_EQ(fast.data()[i], ref.data()[i])
          << s.m << "x" << s.k << "x" << s.n << " entry " << i;
    }
    EXPECT_LE(max_rel, 1e-12);
  }
}

// Batched solver exactness hinges on this: row r of a K-row product must be
// bitwise identical to the 1-row product of row r alone. The kernel never
// mixes rows, so stacking starts into one matrix changes nothing.
TEST(Tensor, BatchedRowsMatchSingleRowBitwise) {
  Rng rng{103};
  const std::size_t K = 6, k = 37, n = 11;
  const Tensor b = random_tensor(k, n, rng);
  const Tensor batch = random_tensor(K, k, rng);
  const Tensor full = matmul(batch, b);
  for (std::size_t r = 0; r < K; ++r) {
    Tensor row{1, k};
    for (std::size_t j = 0; j < k; ++j) row(0, j) = batch(r, j);
    const Tensor single = matmul(row, b);
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(full(r, j), single(0, j)) << "row " << r << " col " << j;
  }
}

TEST(Tensor, TransposedVariantsMatchNaiveComposition) {
  Rng rng{107};
  const Tensor a = random_tensor(9, 21, rng);
  const Tensor b = random_tensor(9, 5, rng);
  const Tensor tn = matmul_tn(a, b);
  const Tensor ref_tn = matmul_naive(transpose(a), b);
  ASSERT_TRUE(tn.same_shape(ref_tn));
  for (std::size_t i = 0; i < tn.size(); ++i)
    EXPECT_EQ(tn.data()[i], ref_tn.data()[i]);

  const Tensor c = random_tensor(7, 21, rng);
  const Tensor nt = matmul_nt(a, c);
  const Tensor ref_nt = matmul_naive(a, transpose(c));
  ASSERT_TRUE(nt.same_shape(ref_nt));
  for (std::size_t i = 0; i < nt.size(); ++i)
    EXPECT_EQ(nt.data()[i], ref_nt.data()[i]);
}

TEST(Tensor, BiasReluFusionMatchesComposition) {
  Rng rng{109};
  const Tensor a = random_tensor(13, 19, rng);
  const Tensor bias = random_tensor(1, 19, rng);
  Tensor fused;
  bias_relu_into(fused, a, bias);
  ASSERT_EQ(fused.rows(), 13u);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double want = std::max(0.0, a(i, j) + bias(0, j));
      EXPECT_EQ(fused(i, j), want);
    }
}

// The rvalue arithmetic overloads must recycle the dying operand's buffer
// instead of allocating a fresh one — pointer identity is the contract the
// tape's hot loop relies on.
TEST(Tensor, RvalueArithmeticReusesBuffer) {
  Tensor a{{1.0, 2.0}};
  Tensor b{{3.0, 4.0}};
  Tensor c{{5.0, 6.0}};
  Tensor t = a + b;
  const double* buf = t.data();
  Tensor u = std::move(t) + c;
  EXPECT_EQ(u.data(), buf);
  EXPECT_DOUBLE_EQ(u(0, 0), 9.0);
  Tensor v = std::move(u) - b;
  EXPECT_EQ(v.data(), buf);
  EXPECT_DOUBLE_EQ(v(0, 1), 8.0);
  Tensor w = std::move(v) * 2.0;
  EXPECT_EQ(w.data(), buf);
  EXPECT_DOUBLE_EQ(w(0, 0), 12.0);
}

// matmul_into with a correctly-sized destination must keep the buffer.
TEST(Tensor, MatmulIntoRecyclesDestination) {
  Rng rng{113};
  const Tensor a = random_tensor(4, 6, rng);
  const Tensor b = random_tensor(6, 3, rng);
  Tensor out;
  matmul_into(out, a, b);
  const double* buf = out.data();
  matmul_into(out, a, b);
  EXPECT_EQ(out.data(), buf);
  const Tensor ref = matmul_naive(a, b);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out.data()[i], ref.data()[i]);
}

}  // namespace
}  // namespace graf::nn
