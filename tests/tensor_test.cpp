#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace graf::nn {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t{2, 3};
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(i, j), 0.0);
}

TEST(Tensor, InitializerList) {
  Tensor t{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 3.0);
}

TEST(Tensor, RaggedInitializerThrows) {
  EXPECT_THROW((Tensor{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Tensor, ScalarAndItem) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.5).item(), 3.5);
  Tensor t{2, 2};
  EXPECT_THROW(t.item(), std::logic_error);
}

TEST(Tensor, RowVector) {
  Tensor r = Tensor::row({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_DOUBLE_EQ(r(0, 2), 3.0);
}

TEST(Tensor, AddSub) {
  Tensor a{{1.0, 2.0}};
  Tensor b{{10.0, 20.0}};
  Tensor c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 11.0);
  Tensor d = b - a;
  EXPECT_DOUBLE_EQ(d(0, 1), 18.0);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a{1, 2};
  Tensor b{2, 1};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(hadamard(a, b), std::invalid_argument);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a{{1.0, -2.0}};
  Tensor b = 3.0 * a;
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(b(0, 1), -6.0);
}

TEST(Tensor, Hadamard) {
  Tensor a{{2.0, 3.0}};
  Tensor b{{4.0, 5.0}};
  Tensor c = hadamard(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 15.0);
}

TEST(Tensor, AddScaled) {
  Tensor a{{1.0, 1.0}};
  Tensor b{{2.0, 4.0}};
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(Tensor, MatmulKnownResult) {
  Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  Tensor b{{5.0, 6.0}, {7.0, 8.0}};
  Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Tensor, MatmulIdentity) {
  Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  Tensor id{{1.0, 0.0}, {0.0, 1.0}};
  Tensor c = matmul(a, id);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
}

TEST(Tensor, MatmulDimensionCheck) {
  Tensor a{2, 3};
  Tensor b{2, 3};
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Tensor, TransposedProductsMatchExplicit) {
  Tensor a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};  // 2x3
  Tensor b{{1.0, 0.5}, {2.0, 1.5}};            // 2x2
  Tensor tn = matmul_tn(a, b);                 // a^T b: 3x2
  Tensor explicit_tn = matmul(transpose(a), b);
  ASSERT_TRUE(tn.same_shape(explicit_tn));
  for (std::size_t i = 0; i < tn.size(); ++i)
    EXPECT_DOUBLE_EQ(tn.data()[i], explicit_tn.data()[i]);

  Tensor c{{1.0, 2.0, 3.0}};  // 1x3
  Tensor nt = matmul_nt(a, c);  // a c^T: 2x1
  Tensor explicit_nt = matmul(a, transpose(c));
  ASSERT_TRUE(nt.same_shape(explicit_nt));
  for (std::size_t i = 0; i < nt.size(); ++i)
    EXPECT_DOUBLE_EQ(nt.data()[i], explicit_nt.data()[i]);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor a{{1.0, -5.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

}  // namespace
}  // namespace graf::nn
