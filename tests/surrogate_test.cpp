// Distilled fast-path surrogate planning (DESIGN.md §3.14): the
// SurrogateModel/SurrogateDistiller pair, the .grafsg checkpoint + registry
// lifecycle, the two-tier TieredPlanner (fast-path accept, trust-band
// escalation bit-identical to the full solve, miss-window refresh), the
// ResourceController plan-cache key audit (planner mode + surrogate
// generation), the <5% escalation-rate bar on all four paper topologies,
// and the §3.7/§3.13 determinism contracts: distillation and tiered solves
// replay bit-identically at GRAF_THREADS=1 and 8, and fleet-batched
// surrogate groups match the per-tenant path bit for bit.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/resource_controller.h"
#include "core/tiered_planner.h"
#include "core/workload_analyzer.h"
#include "fleet/fleet_server.h"
#include "gnn/latency_model.h"
#include "gnn/surrogate_model.h"
#include "serve/checkpoint.h"
#include "serve/surrogate_store.h"

namespace graf {
namespace {

// --- shared tiny trained teacher (one expensive train for the suite) --------

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("front");
  d.add_node("back");
  d.add_edge(0, 1);
  return d;
}

double truth_ms(const std::vector<double>& w, const std::vector<double>& q,
                const std::vector<double>& demand) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

const std::vector<double> kDemand{20.0, 40.0};
const std::vector<double> kRegion{100.0, 100.0};
const std::vector<Millicores> kLo{200.0, 200.0};
const std::vector<Millicores> kHi{2000.0, 2000.0};

gnn::Dataset demand_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota, kDemand) * rng.lognormal(0.0, 0.03);
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& trained_model() {
  static gnn::LatencyModel m = [] {
    gnn::MpnnConfig cfg{.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
                        .readout_hidden = 24, .message_steps = 2,
                        .dropout_p = 0.05, .use_mpnn = true};
    gnn::LatencyModel lm{chain2(), cfg, 7};
    gnn::TrainConfig tcfg{.iterations = 900, .batch_size = 64, .lr = 3e-3,
                          .eval_every = 100, .seed = 3};
    lm.fit(demand_dataset(1200, 1), demand_dataset(200, 2), tcfg);
    return lm;
  }();
  return m;
}

/// Shortened distillation schedule: plenty for low single-digit fidelity on
/// the 2-node teacher, cheap enough to run several times in one suite.
gnn::DistillConfig tiny_distill() {
  gnn::DistillConfig cfg;
  cfg.samples = 2048;
  cfg.model.hidden = 64;
  cfg.train.iterations = 4000;
  cfg.workload_floor = 0.2;  // stay on the teacher's trained region
  return cfg;
}

gnn::SurrogateDistiller::Result& distilled() {
  static gnn::SurrogateDistiller::Result r = gnn::SurrogateDistiller::distill(
      trained_model(), kRegion, kLo, kHi, tiny_distill());
  return r;
}

std::uint64_t mix(std::uint64_t h, double v) {
  h ^= std::bit_cast<std::uint64_t>(v);
  h *= 1099511628211ULL;
  return h;
}

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) { set_global_threads(n); }
  ~ThreadGuard() { set_global_threads(0); }
};

// --- distillation -----------------------------------------------------------

TEST(SurrogateDistill, HeldOutFidelityIsLowSingleDigits) {
  const gnn::SurrogateDistiller::Result& r = distilled();
  EXPECT_EQ(r.report.samples, 2048u);
  EXPECT_LT(r.report.val_mean_abs_pct_error, 5.0)
      << "surrogate-vs-teacher held-out MAPE";
  EXPECT_FALSE(r.report.history.iteration.empty());
}

TEST(SurrogateDistill, DeterministicSamplesAndWeights) {
  gnn::Dataset a = gnn::SurrogateDistiller::sample_teacher(
      trained_model(), kRegion, kLo, kHi, 128, 99);
  gnn::Dataset b = gnn::SurrogateDistiller::sample_teacher(
      trained_model(), kRegion, kLo, kHi, 128, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].quota, b[i].quota);
    EXPECT_EQ(a[i].latency_ms, b[i].latency_ms) << "teacher label i=" << i;
  }

  gnn::SurrogateDistiller::Result again = gnn::SurrogateDistiller::distill(
      trained_model(), kRegion, kLo, kHi, tiny_distill());
  EXPECT_EQ(gnn::SurrogateModel::fingerprint(again.model),
            gnn::SurrogateModel::fingerprint(distilled().model))
      << "same teacher + config must distill bit-identical weights";
}

TEST(SurrogateModel, ScalarPredictMatchesRowBatchedForwardBitwise) {
  gnn::SurrogateModel& model = distilled().model;
  const std::vector<std::vector<double>> ws{{40.0, 60.0}, {60.0, 60.0}, {85.0, 30.0}};
  const std::vector<std::vector<double>> qs{{500.0, 700.0}, {900.0, 1100.0},
                                            {1500.0, 300.0}};
  nn::Tensor wrows{3, 2};
  nn::Tensor qrows{3, 2};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t i = 0; i < 2; ++i) {
      wrows(r, i) = ws[r][i];
      qrows(r, i) = qs[r][i];
    }
  nn::Tape tape;
  tape.set_freeze_params(true);
  nn::Var pred = model.predict_var_rows(tape, wrows, tape.constant(std::move(qrows)));
  const nn::Tensor& vals = tape.value(pred);
  tape.set_freeze_params(false);
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_EQ(vals(r, 0), model.predict(ws[r], qs[r]))
        << "row " << r << ": stacked rows must equal the scalar path bitwise";
}

// --- checkpoints + registry -------------------------------------------------

TEST(SurrogateStore, CheckpointRoundTripsBitwise) {
  gnn::SurrogateModel& model = distilled().model;
  serve::SurrogateMeta meta;
  meta.application = "boutique";
  meta.slo_ms = 200.0;
  meta.teacher_fingerprint = 0xfeedbeef;
  meta.distill_samples = 1024;
  meta.val_error_pct = distilled().report.val_mean_abs_pct_error;
  meta.created_sim_time = 12.5;

  std::stringstream ss;
  serve::save_surrogate_checkpoint(ss, model, meta);
  serve::LoadedSurrogate loaded = serve::load_surrogate_checkpoint(ss);
  EXPECT_EQ(gnn::SurrogateModel::fingerprint(loaded.model),
            gnn::SurrogateModel::fingerprint(model));
  EXPECT_EQ(loaded.meta.application, "boutique");
  EXPECT_EQ(loaded.meta.teacher_fingerprint, 0xfeedbeefu);
  EXPECT_EQ(loaded.meta.distill_samples, 1024u);
  EXPECT_EQ(loaded.meta.created_sim_time, 12.5);

  const std::vector<double> w{55.0, 55.0};
  const std::vector<double> q{800.0, 1200.0};
  EXPECT_EQ(loaded.model.predict(w, q), model.predict(w, q))
      << "a restored surrogate must plan bit-identically";
}

TEST(SurrogateStore, CorruptPayloadRaisesCheckpointError) {
  std::stringstream ss;
  serve::save_surrogate_checkpoint(ss, distilled().model, {});
  std::string bytes = ss.str();
  ASSERT_GT(bytes.size(), 64u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);  // inside the payload
  std::stringstream corrupt{bytes};
  EXPECT_THROW(serve::load_surrogate_checkpoint(corrupt), serve::CheckpointError);

  std::stringstream truncated{bytes.substr(0, 32)};
  EXPECT_THROW(serve::load_surrogate_checkpoint(truncated), serve::CheckpointError);
}

TEST(SurrogateStore, RegistryPromoteAndRollbackBumpPlannerGeneration) {
  serve::SurrogateRegistry registry;
  const serve::ModelKey key{"boutique", 200.0};
  serve::SurrogateMeta meta;
  const std::uint64_t v1 = registry.publish(key, distilled().model, meta);
  ASSERT_TRUE(registry.promote(key, v1));
  serve::SurrogateHandle handle;
  registry.attach_handle(key, &handle);

  auto served = std::make_shared<gnn::SurrogateModel>(distilled().model.clone());
  core::TieredPlanner planner{served, {}};
  planner.set_handle(&handle);
  const std::uint64_t g1 = planner.surrogate_generation();
  EXPECT_EQ(planner.surrogate_generation(), g1) << "no swap, no bump";
  EXPECT_EQ(gnn::SurrogateModel::fingerprint(planner.active_surrogate()),
            gnn::SurrogateModel::fingerprint(distilled().model));

  gnn::SurrogateModel v2_model = distilled().model.clone();
  const std::uint64_t v2 = registry.publish(key, v2_model, meta);
  ASSERT_TRUE(registry.promote(key, v2));
  const std::uint64_t g2 = planner.surrogate_generation();
  EXPECT_GT(g2, g1) << "promote must bump the plan-cache generation";
  EXPECT_EQ(registry.active_version(key), v2);

  ASSERT_TRUE(registry.rollback(key));
  EXPECT_GT(planner.surrogate_generation(), g2) << "rollback bumps again";
  EXPECT_EQ(registry.active_version(key), v1);
  registry.detach_handle(key, &handle);
}

// --- the two-tier planner ---------------------------------------------------

core::TieredPlannerConfig planner_config(double trust_band_pct,
                                         const core::SolverConfig& solver) {
  core::TieredPlannerConfig cfg;
  cfg.solver = solver;
  cfg.trust_band_pct = trust_band_pct;
  return cfg;
}

TEST(TieredPlanner, FastPathAcceptReportsFullModelPrediction) {
  core::SolverConfig scfg;
  scfg.max_iterations = 400;
  core::ConfigurationSolver full{trained_model(), scfg};
  core::TieredPlanner planner{
      std::make_shared<gnn::SurrogateModel>(distilled().model.clone()),
      planner_config(25.0, scfg)};
  telemetry::MetricsRegistry metrics;
  planner.set_metrics(&metrics);
  full.set_metrics(&metrics);

  const std::vector<double> w{60.0, 60.0};
  const core::SolverResult res = planner.solve(trained_model(), full, w, 1000.0,
                                               kLo, kHi);
  ASSERT_EQ(planner.fast_hits(), 1u) << "in-band candidate must be accepted";
  EXPECT_EQ(planner.escalations(), 0u);
  EXPECT_EQ(res.predicted_ms, trained_model().predict(w, res.quota))
      << "accepted plans must report the full model's prediction (truth "
         "flows downstream)";
  EXPECT_GT(res.iterations, 0u);
  EXPECT_EQ(metrics.counter("core.surrogate.fast_hits").value(), 1.0);
  EXPECT_EQ(metrics.gauge("core.surrogate.trust_band_pct").value(), 25.0);
  EXPECT_GT(metrics.counter("core.solver_iterations_total").value(), 0.0)
      << "the surrogate descent must be credited to the solver's ledger";
}

TEST(TieredPlanner, ForcedEscalationMatchesFullModeBitwise) {
  core::SolverConfig scfg;
  scfg.max_iterations = 400;
  core::ConfigurationSolver full{trained_model(), scfg};
  // A vanishing trust band rejects every candidate: the tiered result must
  // be the full solver's, bit for bit.
  core::TieredPlanner planner{
      std::make_shared<gnn::SurrogateModel>(distilled().model.clone()),
      planner_config(1e-9, scfg)};

  const std::vector<double> w{55.0, 55.0};
  const core::SolverResult res = planner.solve(trained_model(), full, w, 1000.0,
                                               kLo, kHi);
  ASSERT_EQ(planner.escalations(), 1u);
  EXPECT_EQ(planner.fast_hits(), 0u);
  EXPECT_EQ(planner.miss_window_size(), 2u)
      << "both the rejected candidate and the full solution feed the window";
  EXPECT_EQ(planner.distill_samples(), 2u);

  core::ConfigurationSolver reference{trained_model(), scfg};
  const core::SolverResult expect = reference.solve(w, 1000.0, kLo, kHi);
  ASSERT_EQ(res.quota.size(), expect.quota.size());
  for (std::size_t i = 0; i < res.quota.size(); ++i)
    EXPECT_EQ(res.quota[i], expect.quota[i]) << "i=" << i;
  EXPECT_EQ(res.predicted_ms, expect.predicted_ms);
  EXPECT_EQ(res.loss, expect.loss);
  EXPECT_EQ(res.iterations, expect.iterations);
  EXPECT_EQ(res.converged, expect.converged);
}

TEST(TieredPlanner, MissWindowRefreshAdoptsOnlyAnImprovedSurrogate) {
  core::SolverConfig scfg;
  scfg.max_iterations = 300;
  core::ConfigurationSolver full{trained_model(), scfg};
  core::TieredPlannerConfig pcfg = planner_config(1e-9, scfg);
  pcfg.refresh_min_samples = 1;
  core::TieredPlanner planner{
      std::make_shared<gnn::SurrogateModel>(distilled().model.clone()), pcfg};

  for (double w : {35.0, 50.0, 65.0, 80.0})
    planner.solve(trained_model(), full, std::vector<double>{w, w}, 1000.0,
                  kLo, kHi);
  ASSERT_EQ(planner.escalations(), 4u);
  ASSERT_EQ(planner.miss_window_size(), 8u);

  const std::uint64_t gen = planner.surrogate_generation();
  const bool adopted = planner.refresh_now();
  if (adopted) {
    EXPECT_EQ(planner.refreshes(), 1u);
    EXPECT_GT(planner.surrogate_generation(), gen)
        << "an adopted refresh must invalidate cached plans via the generation";
  } else {
    EXPECT_EQ(planner.refreshes(), 0u);
    EXPECT_EQ(planner.surrogate_generation(), gen)
        << "a rejected candidate must leave the serving surrogate untouched";
  }
}

// --- satellite: plan-cache key audit (mode + surrogate generation) ----------

TEST(PlanCacheSurrogate, ModeAndGenerationNeverServeAStaleEntry) {
  core::SolverConfig scfg;
  scfg.max_iterations = 200;
  core::WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  core::ConfigurationSolver solver{trained_model(), scfg};
  core::ResourceController controller{trained_model(), solver, analyzer,
                                      kLo, kHi, {500.0, 500.0}};

  const std::vector<Qps> observed{60.0};
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_misses(), 1u);
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), 1u) << "full-mode repeat hits";

  // Same workload, same SLO — but the planner mode changed. The cached
  // full-mode entry must never answer a surrogate-mode query (mirror of
  // PlanCacheForecast.BoostedDemandNeverServedFromObservedEntry).
  auto served = std::make_shared<gnn::SurrogateModel>(distilled().model.clone());
  serve::SurrogateHandle handle{served};
  core::TieredPlanner planner{served, planner_config(50.0, scfg)};
  planner.set_handle(&handle);
  controller.set_tiered_planner(&planner);
  EXPECT_EQ(controller.planner_mode(), core::PlannerMode::kSurrogateVerified);

  std::uint64_t hits = controller.plan_cache_hits();
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), hits)
      << "mode switch must miss the full-mode entry";
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), hits + 1)
      << "same mode + generation hits its own entry";

  // A hot-swapped surrogate bumps the generation: cached surrogate-mode
  // plans from the old weights must not survive the swap.
  handle.swap(std::make_shared<gnn::SurrogateModel>(distilled().model.clone()));
  hits = controller.plan_cache_hits();
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), hits)
      << "generation bump must miss the previous surrogate entry";

  // Reverting to full mode finds the original full-mode entry — the keys
  // diverge, nothing was thrown away.
  controller.set_tiered_planner(nullptr);
  EXPECT_EQ(controller.planner_mode(), core::PlannerMode::kFull);
  hits = controller.plan_cache_hits();
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), hits + 1)
      << "full-mode entry still serves after the round trip";
}

// --- escalation rate across the four paper applications ---------------------

TEST(SurrogateTopologies, EscalationRateStaysUnderFivePercentOnAllFourApps) {
  for (const apps::Topology& topo : apps::all_applications()) {
    const std::size_t n = topo.service_count();
    std::vector<double> demand(n);
    for (std::size_t i = 0; i < n; ++i) demand[i] = topo.services[i].demand_mean_ms;
    const std::vector<double> region(n, 100.0);
    const std::vector<Millicores> lo(n, 200.0);
    const std::vector<Millicores> hi(n, 2000.0);

    gnn::LatencyModel teacher{apps::make_dag(topo),
                              {.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
                               .readout_hidden = 24, .message_steps = 2,
                               .dropout_p = 0.05, .use_mpnn = true},
                              7};
    Rng rng{41};
    gnn::Dataset data;
    for (int s = 0; s < 1500; ++s) {
      gnn::Sample sample;
      const double w = rng.uniform(20.0, 100.0);
      sample.workload.assign(n, w);
      sample.quota.resize(n);
      // Quota draws span the solver's full [lo, hi]: a teacher trained on a
      // narrower range extrapolates wildly exactly where the descent probes.
      for (double& q : sample.quota) q = rng.uniform(200.0, 2000.0);
      sample.latency_ms = truth_ms(sample.workload, sample.quota, demand);
      data.push_back(std::move(sample));
    }
    teacher.fit(data, {}, {.iterations = 1200, .batch_size = 64, .lr = 3e-3,
                           .lr_decay_every = 400, .eval_every = 200, .seed = 3});

    // Generous-but-real SLO: 1.5x the analytic latency of the fully
    // provisioned system at the top of the solve workload range.
    const double slo_ms =
        1.5 * truth_ms(std::vector<double>(n, 90.0), hi, demand);

    core::SolverConfig scfg;
    scfg.max_iterations = 400;

    // Solver-in-the-loop distillation at the production SLO/solver config:
    // the rollout rounds are what pins fidelity down on the thin level set
    // the fast path actually lands on (plain uniform distillation leaves
    // the larger topologies at 2-5x this escalation rate).
    core::SolverDistillConfig dcfg;
    dcfg.base.samples = 1024 * n;
    dcfg.base.model.hidden = 96;
    dcfg.base.train.iterations = 5000;
    dcfg.base.workload_floor = 0.2;
    dcfg.rounds = 4;
    dcfg.queries_per_round = 768;
    dcfg.refine.iterations = 2500;
    gnn::SurrogateDistiller::Result distill = core::TieredPlanner::distill_for_planner(
        teacher, region, lo, hi, slo_ms, dcfg, scfg);

    core::ConfigurationSolver full{teacher, scfg};
    core::TieredPlanner planner{
        std::make_shared<gnn::SurrogateModel>(std::move(distill.model)),
        planner_config(10.0, scfg)};

    constexpr std::size_t kSolves = 50;
    Rng wdraw{17};
    for (std::size_t s = 0; s < kSolves; ++s) {
      const std::vector<double> w(n, wdraw.uniform(30.0, 90.0));
      planner.solve(teacher, full, w, slo_ms, lo, hi);
    }
    EXPECT_EQ(planner.fast_hits() + planner.escalations(), kSolves);
    EXPECT_LT(static_cast<double>(planner.escalations()) * 100.0,
              5.0 * static_cast<double>(kSolves))
        << topo.name << ": escalation rate must stay under 5% "
        << "(fidelity " << distill.report.val_mean_abs_pct_error << "%)";
  }
}

// --- determinism: GRAF_THREADS and fleet batching ---------------------------

TEST(SurrogateThreads, DistillAndTieredSolvesBitIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    ThreadGuard guard{threads};
    core::SolverConfig scfg;
    scfg.max_iterations = 300;
    scfg.multi_starts = 3;
    // Solver-in-the-loop distillation so the rollout rounds (stacked
    // descent + teacher labeling + fold-in fine-tune) are under the same
    // bit-identity contract as the plain pass.
    core::SolverDistillConfig dcfg;
    dcfg.base = tiny_distill();
    dcfg.base.train.iterations = 1500;
    dcfg.rounds = 1;
    dcfg.queries_per_round = 24;
    dcfg.refine.iterations = 300;
    gnn::SurrogateDistiller::Result r = core::TieredPlanner::distill_for_planner(
        trained_model(), kRegion, kLo, kHi, 1000.0, dcfg, scfg);
    std::uint64_t digest = gnn::SurrogateModel::fingerprint(r.model);
    core::ConfigurationSolver full{trained_model(), scfg};
    core::TieredPlanner planner{
        std::make_shared<gnn::SurrogateModel>(std::move(r.model)),
        planner_config(10.0, scfg)};
    for (double w : {40.0, 60.0, 80.0}) {
      const core::SolverResult res = planner.solve(
          trained_model(), full, std::vector<double>{w, w}, 1000.0, kLo, kHi);
      for (double q : res.quota) digest = mix(digest, q);
      digest = mix(digest, res.predicted_ms);
      digest = mix(digest, static_cast<double>(res.iterations));
    }
    digest = mix(digest, static_cast<double>(planner.fast_hits()));
    digest = mix(digest, static_cast<double>(planner.escalations()));
    return digest;
  };
  EXPECT_EQ(run(1), run(8))
      << "distillation + tiered planning must replay bit-identically";
}

fleet::TenantSpec surrogate_spec(const std::string& app, double slo_ms) {
  fleet::TenantSpec spec;
  spec.application = app;
  spec.slo_ms = slo_ms;
  spec.model = &trained_model();
  spec.meta = {.train_samples = 1200, .val_error_pct = 10.0,
               .created_sim_time = 0.0};
  spec.lo = {200.0, 200.0};
  spec.hi = {2000.0, 2000.0};
  spec.unit = {500.0, 500.0};
  spec.fanout = {{1.0, 1.0}};
  spec.solver.max_iterations = 200;
  spec.surrogate.enabled = true;
  spec.surrogate.distill.base.samples = 512;
  spec.surrogate.distill.base.train.iterations = 600;
  spec.surrogate.distill.rounds = 1;
  spec.surrogate.distill.queries_per_round = 16;
  spec.surrogate.distill.refine.iterations = 200;
  spec.surrogate.planner.solver = spec.solver;
  return spec;
}

TEST(FleetSurrogate, BatchedGroupsMatchPerTenantSolvesBitwise) {
  auto run = [](bool batched) {
    fleet::FleetServer server{{.batch_plans = batched}};
    std::vector<fleet::TenantId> ids;
    for (int t = 0; t < 3; ++t)
      ids.push_back(server.add_tenant(
          surrogate_spec("app-" + std::to_string(t), 1000.0)));
    for (int t = 0; t < 3; ++t)
      server.push({.tenant = ids[static_cast<std::size_t>(t)], .now = 1.0,
                   .api_qps = {55.0 + 5.0 * t}});
    const fleet::FleetServer::StepStats stats = server.step();
    EXPECT_EQ(stats.planned, 3u);
    std::uint64_t digest = 1469598103934665603ULL;
    for (fleet::TenantId id : ids) {
      const fleet::Tenant* t = server.tenant(id);
      for (double q : t->last_plan().quota) digest = mix(digest, q);
      digest = mix(digest, t->last_plan().predicted_ms);
      for (int inst : t->last_plan().instances)
        digest = mix(digest, static_cast<double>(inst));
      const core::TieredPlanner* planner =
          server.tenant(id)->tiered_planner();
      digest = mix(digest, static_cast<double>(planner->fast_hits()));
      digest = mix(digest, static_cast<double>(planner->escalations()));
    }
    if (batched) {
      EXPECT_GE(server.metrics().counter("fleet.batched_groups").value(), 1.0)
          << "fingerprint-equal surrogate tenants must share a batch";
    }
    return digest;
  };
  EXPECT_EQ(run(false), run(true))
      << "stacked surrogate groups must be bit-identical to solo solves";
}

}  // namespace
}  // namespace graf
