// Application catalog: topology integrity plus the parameterized property
// suite the whole system relies on — per-service latency is monotone
// decreasing in CPU quota for every application (paper §2.2 / §3.5).
#include "apps/catalog.h"

#include <gtest/gtest.h>

#include "core/workload_analyzer.h"
#include "gnn/graph.h"
#include "workload/open_loop.h"

namespace graf::apps {
namespace {

TEST(Catalog, FourApplications) {
  const auto apps = all_applications();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "online-boutique");
  EXPECT_EQ(apps[1].name, "social-network");
  EXPECT_EQ(apps[2].name, "robot-shop");
  EXPECT_EQ(apps[3].name, "bookinfo");
}

TEST(Catalog, PaperServiceCounts) {
  EXPECT_EQ(online_boutique().service_count(), 6u);   // MS1..MS6 (Fig. 15)
  EXPECT_EQ(social_network().service_count(), 10u);   // MS1..MS10 (Fig. 16)
  EXPECT_EQ(bookinfo().service_count(), 4u);
}

TEST(Catalog, ServiceIndexLookup) {
  const auto topo = online_boutique();
  EXPECT_EQ(topo.service_index("recommendation"), 4);
  EXPECT_EQ(topo.service_index("nope"), -1);
}

TEST(Catalog, OnlineBoutiqueHasThreeApis) {
  const auto topo = online_boutique();
  EXPECT_EQ(topo.apis.size(), 3u);
  EXPECT_EQ(topo.api_weights.size(), 3u);
}

TEST(Catalog, BookinfoParallelBranches) {
  // ProductPage -> {Details || Reviews -> Ratings} (§2.2): one stage with
  // two parallel calls, one of which chains to ratings.
  const auto topo = bookinfo();
  const auto& root = topo.apis[0].root;
  ASSERT_EQ(root.stages.size(), 1u);
  EXPECT_EQ(root.stages[0].size(), 2u);
}

struct AppCase {
  std::string name;
};

class AllAppsTest : public ::testing::TestWithParam<int> {
 protected:
  Topology topo() const { return all_applications()[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(AllAppsTest, DagMatchesServices) {
  const auto t = topo();
  const auto dag = make_dag(t);
  EXPECT_EQ(dag.node_count(), t.service_count());
  EXPECT_GT(dag.edge_count(), 0u);
  // The front-end is a root of the DAG.
  const auto roots = dag.roots();
  EXPECT_NE(std::find(roots.begin(), roots.end(), t.frontend), roots.end());
  // Topological order exists (acyclic by construction).
  EXPECT_EQ(dag.topological_order().size(), t.service_count());
}

TEST_P(AllAppsTest, ExpectedFanoutSane) {
  const auto t = topo();
  const auto fanout = core::expected_fanout(t);
  ASSERT_EQ(fanout.size(), t.apis.size());
  for (const auto& row : fanout) {
    // Every API touches the front-end exactly once...
    EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(t.frontend)], 1.0);
    // ...and at least one downstream service.
    double downstream = 0.0;
    for (std::size_t s = 0; s < row.size(); ++s)
      if (static_cast<int>(s) != t.frontend) downstream += row[s];
    EXPECT_GT(downstream, 0.0);
  }
}

TEST_P(AllAppsTest, ClusterServesRequests) {
  const auto t = topo();
  sim::Cluster cluster = make_cluster(t, {.seed = 3});
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(20.0);
  g.api_weights = t.api_weights;
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(10.0);
  cluster.run_until(10.0);
  EXPECT_GT(cluster.completed(), 100u);
  EXPECT_EQ(cluster.failed(), 0u);
}

TEST_P(AllAppsTest, LatencyMonotoneDecreasingInQuota) {
  // Property: sweeping every service's quota jointly upward never increases
  // the end-to-end p95 (modulo simulation noise -> generous tolerance).
  const auto t = topo();
  double prev = 1e300;
  for (double quota : {400.0, 800.0, 1600.0}) {
    sim::Cluster cluster = make_cluster(t, {.seed = 7});
    for (int s = 0; s < static_cast<int>(cluster.service_count()); ++s)
      cluster.apply_total_quota(s, quota, 1000.0);
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(25.0);
    g.api_weights = t.api_weights;
    g.seed = 9;
    workload::OpenLoopGenerator gen{cluster, g};
    gen.start(20.0);
    cluster.run_until(20.0);
    const double p95 = cluster.e2e_latency_all().percentile_since(5.0, 95.0);
    EXPECT_LT(p95, prev * 1.10) << t.name << " at quota " << quota;
    prev = p95;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllAppsTest, ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) {
                           return all_applications()[static_cast<std::size_t>(
                                                         info.param)]
                               .name == "online-boutique"
                                      ? std::string{"OnlineBoutique"}
                                  : info.param == 1 ? std::string{"SocialNetwork"}
                                  : info.param == 2 ? std::string{"RobotShop"}
                                                    : std::string{"Bookinfo"};
                         });

}  // namespace
}  // namespace graf::apps
