#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace graf {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng{3};
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 700; ++i) {
    const double x = rng.normal(-1.0, 0.5);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyEitherSide) {
  RunningStats filled;
  for (double v : {1.0, 2.0, 3.0}) filled.add(v);
  RunningStats empty;

  RunningStats a = filled;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b = empty;
  b.merge(filled);  // adopts other's moments
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, OutOfRangeRanksClampToExtremes) {
  std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 140.0), 30.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50.0), std::invalid_argument);
}

TEST(Percentile, BatchMatchesIndividual) {
  Rng rng{5};
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform(0.0, 100.0));
  std::vector<double> ranks{50.0, 90.0, 95.0, 99.0};
  const auto batch = percentiles(v, ranks);
  for (std::size_t i = 0; i < ranks.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ranks[i]));
}

TEST(Percentile, P99TracksTailOracle) {
  Rng rng{7};
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.exponential(1.0));
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(percentile(v, 99.0), sorted[static_cast<std::size_t>(0.99 * 9999)], 0.05);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1.0);  // clamps into first bucket
  h.add(0.5);
  h.add(3.0);
  h.add(9.9);
  h.add(25.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(Histogram, BucketBounds) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(Histogram, PercentileApproximatesExact) {
  Histogram h{0.0, 100.0, 1000};
  Rng rng{9};
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    v.push_back(x);
    h.add(x);
  }
  EXPECT_NEAR(h.percentile(95.0), percentile(v, 95.0), 0.5);
}

TEST(Histogram, EmptyPercentileThrows) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_THROW(h.percentile(50.0), std::logic_error);
}

TEST(Histogram, SingleSamplePercentileStaysInBucket) {
  Histogram h{0.0, 10.0, 5};
  h.add(3.0);  // bucket [2, 4)
  for (double rank : {0.0, 50.0, 100.0}) {
    const double p = h.percentile(rank);
    EXPECT_GE(p, 2.0);
    EXPECT_LE(p, 4.0);
  }
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{0.0, 0.0, 5}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e{0.3};
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e{0.1};
  EXPECT_TRUE(e.empty());
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.5}, std::invalid_argument);
}

TEST(Ewma, AlphaOneTracksLastSample) {
  Ewma e{1.0};  // boundary alpha is accepted and degenerates to "latest"
  e.add(3.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

}  // namespace
}  // namespace graf
