#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace graf::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInPastClampsToNow) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_all();
  bool ran = false;
  q.schedule_at(1.0, [&] { ran = true; });  // in the past
  q.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(3.0, [&] { ++count; });
  q.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) q.schedule_in(1.0, chain);
  };
  q.schedule_in(1.0, chain);
  q.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, ScheduleInNegativeClamped) {
  EventQueue q;
  bool ran = false;
  q.schedule_in(-5.0, [&] { ran = true; });
  q.step();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, ProcessedCounter) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(static_cast<double>(i), [] {});
  q.run_all();
  EXPECT_EQ(q.processed(), 7u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
}

// Stress the 4-ary heap (PR-5): random times with heavy duplication, mixed
// with pops, must still come out in nondecreasing time order with FIFO ties
// — every sift path (root replacement, partial child groups, tail nodes)
// gets exercised well past the reserved capacity.
TEST(EventQueue, RandomizedStressKeepsHeapOrder) {
  EventQueue q;
  Rng rng{12345};
  struct Seen {
    double time;
    int seq;
  };
  std::vector<Seen> seen;
  int seq = 0;
  // Interleave bursts of schedules with bursts of pops.
  for (int round = 0; round < 40; ++round) {
    const int pushes = 1 + static_cast<int>(rng.uniform(0.0, 200.0));
    for (int i = 0; i < pushes; ++i) {
      // Quantized times force many exact ties.
      const double when =
          q.now() + std::floor(rng.uniform(0.0, 32.0)) * 0.125;
      const int id = seq++;
      q.schedule_at(when, [&, id] { seen.push_back({q.now(), id}); });
    }
    const int pops = static_cast<int>(rng.uniform(0.0, 150.0));
    for (int i = 0; i < pops && q.step(); ++i) {
    }
  }
  q.run_all();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(seq));
  for (std::size_t i = 1; i < seen.size(); ++i) {
    ASSERT_LE(seen[i - 1].time, seen[i].time) << "event " << i;
    if (seen[i - 1].time == seen[i].time) {
      ASSERT_LT(seen[i - 1].seq, seen[i].seq) << "tie at event " << i;
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.processed(), static_cast<std::uint64_t>(seq));
}

// --- keyed ordering / origin-context mode (sharded engine, ISSUE 8) ----------

// The 4-ary heap itself is not stable — stability comes from the (time, key)
// comparison. This pins the contract the sharded merge depends on: explicit
// keys fully determine tie order, independent of insertion order.
TEST(EventQueue, KeyedTiesBreakByKeyNotInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  // Insert in reverse key order; pops must follow keys, not insertion.
  for (int i = 4; i >= 0; --i) {
    q.schedule_keyed(1.0, static_cast<std::uint64_t>(i), 0,
                     [&, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, OriginContextMintsPerLpKeysAndTracksOwner) {
  EventQueue q;
  std::uint64_t counters[3] = {0, 0, 0};
  q.set_lp_counters(counters);

  std::vector<std::uint32_t> observed;
  // LP 1 schedules first, then LP 0, both at the same time. Key order is
  // (origin LP, per-LP counter), so LP 0's event must run first even though
  // it was inserted second — insertion order no longer matters.
  q.set_current_lp(1);
  q.schedule_at(2.0, [&] { observed.push_back(q.current_lp()); });
  q.set_current_lp(0);
  q.schedule_at(2.0, [&] { observed.push_back(q.current_lp()); });
  EXPECT_EQ(counters[0], 1u);
  EXPECT_EQ(counters[1], 1u);

  q.run_all();
  // step() switches the context to each event's owner before running it.
  EXPECT_EQ(observed, (std::vector<std::uint32_t>{0, 1}));

  EXPECT_EQ(EventQueue::make_key(3, 7),
            (std::uint64_t{3} << EventQueue::kLpShift) | 7u);
}

TEST(EventQueue, RunUntilBeforeIsHalfOpen) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(2.0, [&] { ++ran; });  // exactly at the boundary
  q.run_until_before(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);  // clock still advances to the window end
  EXPECT_EQ(q.pending(), 1u);
  q.run_until_before(2.5);
  EXPECT_EQ(ran, 2);  // picked up by the next window
}

}  // namespace
}  // namespace graf::sim
