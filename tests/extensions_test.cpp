// Tests for the §6/§7 extensions: integer instance refinement, the
// partitioned (scalable) latency model, and the MIRAS-like baseline.
#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "autoscalers/miras_like.h"
#include "core/integer_refiner.h"
#include "gnn/partitioned_model.h"
#include "workload/open_loop.h"

namespace graf {
namespace {

// ---- Shared synthetic model (same ground truth as core_test's) --------------

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  return d;
}

gnn::Dataset hyperbola_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 80.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms =
        40.0 * 1000.0 / s.quota[0] + 80.0 * 1000.0 / s.quota[1] + 0.8 * w;
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& refiner_model() {
  static gnn::LatencyModel model = [] {
    gnn::MpnnConfig cfg;
    cfg.embed_dim = 8;
    cfg.mpnn_hidden = 8;
    cfg.readout_hidden = 24;
    cfg.dropout_p = 0.0;
    gnn::LatencyModel m{chain2(), cfg, 13};
    gnn::TrainConfig tc;
    tc.iterations = 2000;
    tc.batch_size = 64;
    tc.lr = 2e-3;
    tc.lr_decay_every = 700;
    tc.eval_every = 250;
    m.fit(hyperbola_dataset(2000, 17), {}, tc);
    return m;
  }();
  return model;
}

// ---- IntegerRefiner ----------------------------------------------------------

TEST(IntegerRefiner, RemovesSlackInstances) {
  core::IntegerRefiner refiner{refiner_model()};
  std::vector<double> w{40.0, 40.0};
  // Deliberately padded plan: 4 + 4 one-core instances where ~2 + 3 meet
  // a loose SLO.
  std::vector<int> instances{4, 4};
  std::vector<Millicores> unit{500.0, 500.0};
  std::vector<Millicores> lo{300.0, 300.0};
  const auto plan = refiner.refine(w, 300.0, instances, unit, lo);
  EXPECT_GT(plan.removed, 0u);
  EXPECT_LE(plan.instances[0], 4);
  EXPECT_LE(plan.instances[1], 4);
  EXPECT_DOUBLE_EQ(plan.saved_mc,
                   500.0 * static_cast<double>(plan.removed));
  // Still predicted feasible.
  EXPECT_LE(plan.predicted_ms, 300.0);
}

TEST(IntegerRefiner, RespectsLowerBoundsAndMinOne) {
  core::IntegerRefiner refiner{refiner_model()};
  std::vector<double> w{40.0, 40.0};
  std::vector<int> instances{1, 2};
  std::vector<Millicores> unit{1000.0, 1000.0};
  std::vector<Millicores> lo{900.0, 1800.0};  // second service can't shrink
  const auto plan = refiner.refine(w, 1e6, instances, unit, lo);
  EXPECT_EQ(plan.instances[0], 1);  // never below one instance
  EXPECT_EQ(plan.instances[1], 2);  // lower bound blocks removal
}

TEST(IntegerRefiner, TightSloBlocksRemoval) {
  core::IntegerRefiner refiner{refiner_model()};
  std::vector<double> w{70.0, 70.0};
  std::vector<int> instances{2, 2};
  std::vector<Millicores> unit{500.0, 500.0};
  std::vector<Millicores> lo{300.0, 300.0};
  // SLO below what even the full plan achieves: nothing may be removed.
  const std::vector<double> full_quota{1000.0, 1000.0};
  const auto full = refiner_model().predict(w, full_quota);
  const auto plan = refiner.refine(w, full * 0.5, instances, unit, lo);
  EXPECT_EQ(plan.removed, 0u);
}

TEST(IntegerRefiner, ValidatesDimensions) {
  core::IntegerRefiner refiner{refiner_model()};
  std::vector<double> w{40.0};
  std::vector<int> instances{2, 2};
  std::vector<Millicores> unit{500.0, 500.0};
  std::vector<Millicores> lo{300.0, 300.0};
  EXPECT_THROW(refiner.refine(w, 100.0, instances, unit, lo),
               std::invalid_argument);
}

// ---- partition_dag -----------------------------------------------------------

TEST(PartitionDag, CoversAllNodesOnce) {
  const auto dag = apps::make_dag(apps::social_network());
  const auto parts = gnn::partition_dag(dag, 4);
  std::vector<bool> seen(dag.node_count(), false);
  for (const auto& p : parts) {
    EXPECT_LE(p.size(), 4u);
    for (int n : p) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(n)]);
      seen[static_cast<std::size_t>(n)] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(PartitionDag, SinglePartitionWhenLarge) {
  const auto dag = apps::make_dag(apps::bookinfo());
  EXPECT_EQ(gnn::partition_dag(dag, 100).size(), 1u);
  EXPECT_THROW(gnn::partition_dag(dag, 0), std::invalid_argument);
}

// ---- PartitionedLatencyModel --------------------------------------------------

TEST(PartitionedModel, ReadoutParamsShrinkPerPartition) {
  // For the 10-service Social Network, three-node partitions cut each
  // readout's input from 10*20 to <=3*20 embeddings. The MPNN stage is
  // replicated per partition, so total parameters grow there — the win is
  // the readout, which §6 identifies as the scalability bottleneck.
  const auto dag = apps::make_dag(apps::social_network());
  gnn::MpnnConfig cfg;
  gnn::LatencyModel mono{dag, cfg, 3};
  gnn::PartitionedLatencyModel part{dag, cfg, 3, 3};
  EXPECT_GE(part.partition_count(), 3u);
  // Per-partition readouts are sized to the partition (<= 3 * 20 = 60
  // units), so the total stays comparable to the monolithic model even
  // though the MPNN nets are replicated per partition — and it no longer
  // grows when services are added to new partitions.
  EXPECT_LT(part.param_count(), static_cast<std::size_t>(
                                    static_cast<double>(mono.param_count()) * 1.3));
}

TEST(PartitionedModel, TrainsOnSyntheticChain) {
  gnn::MpnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.mpnn_hidden = 8;
  cfg.readout_hidden = 16;
  cfg.dropout_p = 0.0;
  gnn::PartitionedLatencyModel model{chain2(), cfg, 1, 7};
  EXPECT_EQ(model.partition_count(), 2u);
  gnn::TrainConfig tc;
  tc.iterations = 1500;
  tc.batch_size = 64;
  tc.lr = 2e-3;
  tc.lr_decay_every = 500;
  tc.eval_every = 250;
  auto hist = model.fit(hyperbola_dataset(1500, 31), hyperbola_dataset(200, 32), tc);
  EXPECT_LT(hist.best_val_loss, hist.val_loss.front());
  const auto acc = model.evaluate_accuracy(hyperbola_dataset(200, 33));
  EXPECT_LT(acc.mean_abs_pct_error, 25.0);
}

TEST(PartitionedModel, PredictionMonotoneInQuota) {
  gnn::MpnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.mpnn_hidden = 8;
  cfg.readout_hidden = 16;
  cfg.dropout_p = 0.0;
  gnn::PartitionedLatencyModel model{chain2(), cfg, 1, 9};
  gnn::TrainConfig tc;
  tc.iterations = 1200;
  tc.batch_size = 64;
  tc.lr = 2e-3;
  tc.eval_every = 300;
  model.fit(hyperbola_dataset(1200, 41), {}, tc);
  std::vector<double> w{50.0, 50.0};
  std::vector<double> q_small{400.0, 400.0};
  std::vector<double> q_big{1600.0, 1600.0};
  EXPECT_GT(model.predict(w, q_small), model.predict(w, q_big));
}

// ---- MirasLike ---------------------------------------------------------------

TEST(MirasLike, ScalesUpWhenQueuesGrow) {
  auto topo = apps::online_boutique();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 51});
  autoscalers::MirasLike miras{{.sync_period = 5.0}};
  miras.attach(c, 200.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(250.0);
  g.api_weights = {1.0, 0.0, 0.0};
  workload::OpenLoopGenerator gen{c, g};
  gen.start(200.0);
  c.run_until(200.0);
  EXPECT_GT(c.total_ready_instances(), 14);
}

TEST(MirasLike, ScalesDownWhenIdle) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 53});
  for (int s = 0; s < 4; ++s) c.service(s).force_scale(6);
  autoscalers::MirasLike miras{{.sync_period = 5.0, .scale_down_cooldown = 20.0}};
  miras.attach(c, 600.0);
  c.run_until(600.0);  // no load at all
  EXPECT_LT(c.total_ready_instances(), 24);
}

}  // namespace
}  // namespace graf
