#include "sim/service.h"

#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace graf::sim {
namespace {

struct ServiceFixture : ::testing::Test {
  EventQueue q;
  Deployment dep{q, {.base = 5.5, .per_extra = 2.67}};

  Service make(ServiceConfig cfg) { return Service{0, std::move(cfg), q, dep}; }
};

TEST_F(ServiceFixture, BootstrapCreatesReadyInstances) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 3});
  EXPECT_EQ(s.ready_count(), 3);
  EXPECT_EQ(s.creating_count(), 0);
  EXPECT_DOUBLE_EQ(s.total_quota(), 1500.0);
}

TEST_F(ServiceFixture, SubmitCompletesWithLatency) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1});
  double latency = -1.0;
  s.submit(20.0, [&](double ms) { latency = ms; });  // 20 core-ms at 1 core
  q.run_all();
  EXPECT_NEAR(latency, 20.0, 1e-6);
  EXPECT_EQ(s.completions(), 1u);
}

TEST_F(ServiceFixture, LeastLoadedBalancing) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 2,
                    .max_concurrency = 4});
  // Two long jobs should land on different instances and finish at the
  // same time (no sharing).
  double a = -1.0;
  double b = -1.0;
  s.submit(50.0, [&](double ms) { a = ms; });
  s.submit(50.0, [&](double ms) { b = ms; });
  q.run_all();
  EXPECT_NEAR(a, 50.0, 1e-6);
  EXPECT_NEAR(b, 50.0, 1e-6);
}

TEST_F(ServiceFixture, QueueWhenConcurrencyExhausted) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1,
                    .max_concurrency = 1});
  double first = -1.0;
  double second = -1.0;
  s.submit(30.0, [&](double ms) { first = ms; });
  s.submit(30.0, [&](double ms) { second = ms; });
  EXPECT_EQ(s.queue_length(), 1u);
  q.run_all();
  EXPECT_NEAR(first, 30.0, 1e-6);
  EXPECT_NEAR(second, 60.0, 1e-6);  // waited 30 ms in queue
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST_F(ServiceFixture, ScaleUpPaysStartupDelay) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.scale_to(3);
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.creating_count(), 2);
  q.run_until(5.5 + 2.67 + 0.01);
  EXPECT_EQ(s.ready_count(), 3);
  EXPECT_EQ(s.creating_count(), 0);
}

TEST_F(ServiceFixture, ScaleDownRetiresIdleImmediately) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 4});
  s.scale_to(2);
  EXPECT_EQ(s.ready_count(), 2);
  EXPECT_EQ(s.retiring_count(), 0);
}

TEST_F(ServiceFixture, ScaleDownDrainsBusyInstances) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 2,
                    .max_concurrency = 4});
  bool done = false;
  s.submit(100.0, [&](double) { done = true; });
  s.submit(100.0, [&](double) {});
  s.scale_to(1);
  // One instance retired; since both are busy the retired one drains.
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.retiring_count(), 1);
  q.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.retiring_count(), 0);  // reaped after drain
}

TEST_F(ServiceFixture, ScaleDownCancelsPendingCreationsFirst) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.scale_to(5);
  EXPECT_EQ(s.creating_count(), 4);
  s.scale_to(2);
  EXPECT_EQ(s.creating_count(), 1);
  EXPECT_EQ(s.ready_count(), 1);
}

TEST_F(ServiceFixture, ForceScaleIsImmediate) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.force_scale(4);
  EXPECT_EQ(s.ready_count(), 4);
  EXPECT_EQ(s.creating_count(), 0);
  s.force_scale(2);
  EXPECT_EQ(s.ready_count(), 2);
}

TEST_F(ServiceFixture, TargetNeverBelowOne) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 2});
  s.scale_to(0);
  EXPECT_GE(s.ready_count(), 1);
}

TEST_F(ServiceFixture, MaxInstancesRespected) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1,
                    .max_instances = 3});
  s.scale_to(10);
  EXPECT_LE(s.ready_count() + s.creating_count(), 3);
}

TEST_F(ServiceFixture, SetUnitQuotaAffectsServiceSpeed) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.set_unit_quota(1000.0);
  double latency = -1.0;
  s.submit(20.0, [&](double ms) { latency = ms; });
  q.run_all();
  EXPECT_NEAR(latency, 20.0, 1e-6);
}

TEST_F(ServiceFixture, AbortAllDropsWork) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1,
                    .max_concurrency = 1});
  bool fired = false;
  s.submit(100.0, [&](double) { fired = true; });
  s.submit(100.0, [&](double) { fired = true; });
  s.abort_all();
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST_F(ServiceFixture, CpuUsageDrain) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1});
  s.submit(40.0, [](double) {});
  q.run_all();
  EXPECT_NEAR(s.drain_cpu_core_seconds(), 0.04, 1e-9);
}

TEST_F(ServiceFixture, QueuedWorkDispatchedWhenInstanceBecomesReady) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1,
                    .max_concurrency = 1});
  double second = -1.0;
  s.submit(10000.0, [](double) {});         // occupies the only worker 10s
  s.submit(10.0, [&](double ms) { second = ms; });
  s.scale_to(2);                            // new instance ready at ~5.5s
  q.run_all();
  // The queued job should run on the new instance once it arrives, well
  // before the first job's 1s + queue path would allow.
  EXPECT_GT(second, 0.0);
  EXPECT_NEAR(second, 5500.0 + 10.0, 50.0);
}

TEST_F(ServiceFixture, RejectsBadConfig) {
  EXPECT_THROW(make({.name = "svc", .unit_quota = 0.0}), std::invalid_argument);
  EXPECT_THROW(make({.name = "svc", .max_concurrency = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace graf::sim
