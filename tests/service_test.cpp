#include "sim/service.h"

#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace graf::sim {
namespace {

struct ServiceFixture : ::testing::Test {
  EventQueue q;
  Deployment dep{q, {.base = 5.5, .per_extra = 2.67}};

  Service make(ServiceConfig cfg) { return Service{0, std::move(cfg), q, dep}; }
};

TEST_F(ServiceFixture, BootstrapCreatesReadyInstances) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 3});
  EXPECT_EQ(s.ready_count(), 3);
  EXPECT_EQ(s.creating_count(), 0);
  EXPECT_DOUBLE_EQ(s.total_quota(), 1500.0);
}

TEST_F(ServiceFixture, SubmitCompletesWithLatency) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1});
  double latency = -1.0;
  s.submit(20.0, [&](double ms) { latency = ms; });  // 20 core-ms at 1 core
  q.run_all();
  EXPECT_NEAR(latency, 20.0, 1e-6);
  EXPECT_EQ(s.completions(), 1u);
}

TEST_F(ServiceFixture, LeastLoadedBalancing) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 2,
                    .max_concurrency = 4});
  // Two long jobs should land on different instances and finish at the
  // same time (no sharing).
  double a = -1.0;
  double b = -1.0;
  s.submit(50.0, [&](double ms) { a = ms; });
  s.submit(50.0, [&](double ms) { b = ms; });
  q.run_all();
  EXPECT_NEAR(a, 50.0, 1e-6);
  EXPECT_NEAR(b, 50.0, 1e-6);
}

TEST_F(ServiceFixture, QueueWhenConcurrencyExhausted) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1,
                    .max_concurrency = 1});
  double first = -1.0;
  double second = -1.0;
  s.submit(30.0, [&](double ms) { first = ms; });
  s.submit(30.0, [&](double ms) { second = ms; });
  EXPECT_EQ(s.queue_length(), 1u);
  q.run_all();
  EXPECT_NEAR(first, 30.0, 1e-6);
  EXPECT_NEAR(second, 60.0, 1e-6);  // waited 30 ms in queue
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST_F(ServiceFixture, ScaleUpPaysStartupDelay) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.scale_to(3);
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.creating_count(), 2);
  q.run_until(5.5 + 2.67 + 0.01);
  EXPECT_EQ(s.ready_count(), 3);
  EXPECT_EQ(s.creating_count(), 0);
}

TEST_F(ServiceFixture, ScaleDownRetiresIdleImmediately) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 4});
  s.scale_to(2);
  EXPECT_EQ(s.ready_count(), 2);
  EXPECT_EQ(s.retiring_count(), 0);
}

TEST_F(ServiceFixture, ScaleDownDrainsBusyInstances) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 2,
                    .max_concurrency = 4});
  bool done = false;
  s.submit(100.0, [&](double) { done = true; });
  s.submit(100.0, [&](double) {});
  s.scale_to(1);
  // One instance retired; since both are busy the retired one drains.
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.retiring_count(), 1);
  q.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.retiring_count(), 0);  // reaped after drain
}

TEST_F(ServiceFixture, ScaleDownCancelsPendingCreationsFirst) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.scale_to(5);
  EXPECT_EQ(s.creating_count(), 4);
  s.scale_to(2);
  EXPECT_EQ(s.creating_count(), 1);
  EXPECT_EQ(s.ready_count(), 1);
}

TEST_F(ServiceFixture, ForceScaleIsImmediate) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.force_scale(4);
  EXPECT_EQ(s.ready_count(), 4);
  EXPECT_EQ(s.creating_count(), 0);
  s.force_scale(2);
  EXPECT_EQ(s.ready_count(), 2);
}

TEST_F(ServiceFixture, TargetNeverBelowOne) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 2});
  s.scale_to(0);
  EXPECT_GE(s.ready_count(), 1);
}

TEST_F(ServiceFixture, MaxInstancesRespected) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1,
                    .max_instances = 3});
  s.scale_to(10);
  EXPECT_LE(s.ready_count() + s.creating_count(), 3);
}

TEST_F(ServiceFixture, SetUnitQuotaAffectsServiceSpeed) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1});
  s.set_unit_quota(1000.0);
  double latency = -1.0;
  s.submit(20.0, [&](double ms) { latency = ms; });
  q.run_all();
  EXPECT_NEAR(latency, 20.0, 1e-6);
}

TEST_F(ServiceFixture, AbortAllDropsWork) {
  Service s = make({.name = "svc", .unit_quota = 500, .initial_instances = 1,
                    .max_concurrency = 1});
  bool fired = false;
  s.submit(100.0, [&](double) { fired = true; });
  s.submit(100.0, [&](double) { fired = true; });
  s.abort_all();
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.active_jobs(), 0u);
}

TEST_F(ServiceFixture, CpuUsageDrain) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1});
  s.submit(40.0, [](double) {});
  q.run_all();
  EXPECT_NEAR(s.drain_cpu_core_seconds(), 0.04, 1e-9);
}

TEST_F(ServiceFixture, QueuedWorkDispatchedWhenInstanceBecomesReady) {
  Service s = make({.name = "svc", .unit_quota = 1000, .initial_instances = 1,
                    .max_concurrency = 1});
  double second = -1.0;
  s.submit(10000.0, [](double) {});         // occupies the only worker 10s
  s.submit(10.0, [&](double ms) { second = ms; });
  s.scale_to(2);                            // new instance ready at ~5.5s
  q.run_all();
  // The queued job should run on the new instance once it arrives, well
  // before the first job's 1s + queue path would allow.
  EXPECT_GT(second, 0.0);
  EXPECT_NEAR(second, 5500.0 + 10.0, 50.0);
}

TEST_F(ServiceFixture, RejectsBadConfig) {
  EXPECT_THROW(make({.name = "svc", .unit_quota = 0.0}), std::invalid_argument);
  EXPECT_THROW(make({.name = "svc", .max_concurrency = 0}), std::invalid_argument);
}

// Regression: creation tickets can complete out of FIFO order across the
// Deployment's per-node pipelines. The ready callback used to erase
// creations_.begin() unconditionally, so a later scale-down cancelled an
// already-fired ticket while the still-live one survived — over-scaling
// past target_count().
TEST_F(ServiceFixture, OutOfOrderTicketCompletionDoesNotOverScale) {
  Deployment two_nodes{q, {.base = 5.5, .per_extra = 2.67, .nodes = 2}};
  // Pre-occupy node 0 so the service's two creations land on different
  // pipelines with inverted completion order.
  two_nodes.request_creation([] {});  // node 0, ready at 5.5
  Service s{0, {.name = "svc", .unit_quota = 500, .initial_instances = 1}, q,
            two_nodes};
  q.run_until(4.0);
  // T1 -> idle node 1: ready at 4 + 5.5 = 9.5.
  // T2 -> busy node 0: ready at 5.5 + 2.67 = 8.17 — T2 fires FIRST.
  s.scale_to(3);
  ASSERT_EQ(s.creating_count(), 2);
  q.run_until(8.5);  // T2 has fired, T1 is still in flight
  ASSERT_EQ(s.ready_count(), 2);
  ASSERT_EQ(s.creating_count(), 1);
  // Scale down by one: must cancel the *live* ticket (T1), not the id of
  // the already-completed T2.
  s.scale_to(2);
  q.run_all();
  EXPECT_EQ(s.ready_count(), 2);
  EXPECT_EQ(s.creating_count(), 0);
  EXPECT_EQ(s.target_count(), 2);
}

// Failed creations (fault-injected registry outage) retry with bounded
// exponential backoff and eventually converge once the outage clears.
TEST_F(ServiceFixture, CreationFailureRetriesWithBackoffThenSucceeds) {
  Service s = make({.name = "svc",
                    .unit_quota = 500,
                    .initial_instances = 1,
                    .creation_max_retries = 3,
                    .creation_retry_backoff = 1.0});
  dep.set_creation_fault({.fail = true, .fail_after = 2.0});
  s.scale_to(2);
  // Attempt 0 fails at t=2; retry waits 1 s (backoff * 2^0) and re-requests
  // at t=3 — after the outage below has cleared, so it succeeds.
  q.run_until(2.5);
  EXPECT_EQ(s.creation_failures(), 1u);
  EXPECT_EQ(s.ready_count(), 1);
  dep.clear_creation_fault();
  q.run_all();
  EXPECT_EQ(s.ready_count(), 2);
  EXPECT_EQ(s.creation_retries(), 1u);
  EXPECT_EQ(s.target_count(), 2);
}

TEST_F(ServiceFixture, CreationFailureGivesUpAfterMaxRetries) {
  Service s = make({.name = "svc",
                    .unit_quota = 500,
                    .initial_instances = 1,
                    .creation_max_retries = 2,
                    .creation_retry_backoff = 1.0});
  dep.set_creation_fault({.fail = true, .fail_after = 2.0});
  s.scale_to(2);
  q.run_all();
  // Attempts 0, 1, 2 all fail; retries stop after creation_max_retries.
  EXPECT_EQ(s.creation_failures(), 3u);
  EXPECT_EQ(s.creation_retries(), 2u);
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.creating_count(), 0);
}

TEST_F(ServiceFixture, RetryAbandonedWhenScaledDownDuringBackoff) {
  Service s = make({.name = "svc",
                    .unit_quota = 500,
                    .initial_instances = 1,
                    .creation_max_retries = 3,
                    .creation_retry_backoff = 5.0});
  dep.set_creation_fault({.fail = true, .fail_after = 1.0});
  s.scale_to(2);
  q.run_until(2.0);  // attempt 0 failed; retry scheduled for t=6
  EXPECT_EQ(s.creation_failures(), 1u);
  s.scale_to(1);  // operator changed their mind during the backoff
  q.run_all();
  EXPECT_EQ(s.creation_retries(), 0u);
  EXPECT_EQ(s.ready_count(), 1);
  EXPECT_EQ(s.creating_count(), 0);
}

}  // namespace
}  // namespace graf::sim
