#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"

namespace graf {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t{"demo"};
  t.header({"a", "bb"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t{"align"};
  t.header({"x", "y"});
  t.row({"12345", "1"});
  const std::string s = t.str();
  // Header "y" starts after width of "12345" + 2 pad -> same column as "1".
  std::istringstream is{s};
  std::string title;
  std::getline(is, title);
  std::string header;
  std::getline(is, header);
  std::string sep;
  std::getline(is, sep);
  std::string row;
  std::getline(is, row);
  EXPECT_EQ(header.find('y'), row.find('1', 1));
}

TEST(Table, CsvOutput) {
  Table t{"csv"};
  t.header({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(5.0, 0), "5");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Units, MillicoreConversions) {
  EXPECT_DOUBLE_EQ(cores(500.0), 0.5);
  EXPECT_DOUBLE_EQ(millicores(2.0), 2000.0);
  EXPECT_DOUBLE_EQ(cores(millicores(1.25)), 1.25);
}

}  // namespace
}  // namespace graf
