// Request-timeout semantics: per-hop queue timeouts, end-to-end deadlines,
// and their effect on cluster accounting — the mechanism that keeps surge
// experiments bounded (DESIGN.md deviation #4).
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/deployment.h"
#include "sim/service.h"

namespace graf::sim {
namespace {

TEST(QueueTimeout, DropCallbackFires) {
  EventQueue q;
  Deployment dep{q, {.nodes = 1}};
  Service svc{0, {.name = "s", .unit_quota = 1000, .initial_instances = 1,
                  .max_concurrency = 1, .queue_timeout = 1.0},
              q, dep};
  bool done = false;
  bool dropped = false;
  svc.submit(5000.0, [&](double) { done = true; });  // 5 s of work blocks
  svc.submit(10.0, [&](double) { done = true; }, [&] { dropped = true; });
  q.run_all();
  // The queued job waited 5 s > 1 s timeout: dropped when the worker freed.
  EXPECT_TRUE(dropped);
  EXPECT_EQ(svc.drops(), 1u);
}

TEST(QueueTimeout, FastQueueNotDropped) {
  EventQueue q;
  Deployment dep{q, {.nodes = 1}};
  Service svc{0, {.name = "s", .unit_quota = 1000, .initial_instances = 1,
                  .max_concurrency = 1, .queue_timeout = 1.0},
              q, dep};
  int done = 0;
  svc.submit(100.0, [&](double) { ++done; });
  svc.submit(100.0, [&](double) { ++done; }, [] { FAIL() << "dropped"; });
  q.run_all();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(svc.drops(), 0u);
}

TEST(Deadline, AbsoluteDeadlineDropsBeforeQueueTimeout) {
  EventQueue q;
  Deployment dep{q, {.nodes = 1}};
  Service svc{0, {.name = "s", .unit_quota = 1000, .initial_instances = 1,
                  .max_concurrency = 1, .queue_timeout = 100.0},
              q, dep};
  bool dropped = false;
  svc.submit(3000.0, [](double) {});  // blocks 3 s
  svc.submit(10.0, [](double) { FAIL() << "completed"; }, [&] { dropped = true; },
             /*deadline=*/1.0);
  q.run_all();
  EXPECT_TRUE(dropped);
}

Cluster slow_cluster(Seconds request_timeout) {
  std::vector<ServiceConfig> svcs{
      {.name = "a", .unit_quota = 1000, .initial_instances = 1,
       .max_concurrency = 1, .demand_mean_ms = 2000.0, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0};
  ClusterConfig cfg;
  cfg.request_timeout = request_timeout;
  return Cluster{svcs, {Api{"slow", root}}, cfg};
}

TEST(Deadline, RequestFailsWhenQueuedPastClientTimeout) {
  Cluster c = slow_cluster(3.0);
  // Three 2-second jobs on a single worker: the third waits 4 s > 3 s.
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 3; ++i) {
    c.submit_request(0, [&](const trace::RequestTrace& t) {
      if (t.ok) {
        ++ok;
      } else {
        ++failed;
      }
    });
  }
  c.run_for(30.0);
  EXPECT_EQ(ok + failed, 3);
  EXPECT_GE(failed, 1);
  EXPECT_EQ(c.failed(), static_cast<std::uint64_t>(failed));
}

TEST(Deadline, LateCompletionCountsAsFailure) {
  // The job *runs* (no queueing) but takes 2 s against a 1 s client
  // timeout: the client has gone, so the trace is not ok and the latency
  // is not recorded.
  Cluster c = slow_cluster(1.0);
  bool ok = true;
  c.submit_request(0, [&](const trace::RequestTrace& t) { ok = t.ok; });
  c.run_for(10.0);
  EXPECT_FALSE(ok);
  EXPECT_EQ(c.completed(), 0u);
  EXPECT_EQ(c.failed(), 1u);
  EXPECT_TRUE(c.e2e_latency_all().empty());
}

TEST(Deadline, FailurePropagatesThroughChain) {
  // Parent -> child; the child's queue drops -> whole request fails.
  std::vector<ServiceConfig> svcs{
      {.name = "parent", .unit_quota = 1000, .initial_instances = 2,
       .max_concurrency = 4, .demand_mean_ms = 1.0, .demand_sigma = 0.0},
      {.name = "child", .unit_quota = 1000, .initial_instances = 1,
       .max_concurrency = 1, .demand_mean_ms = 2000.0, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0, .stages = {{CallNode{.service = 1}}}};
  ClusterConfig cfg;
  cfg.request_timeout = 3.0;
  Cluster c{svcs, {Api{"chain", root}}, cfg};
  int failed = 0;
  for (int i = 0; i < 3; ++i) {
    c.submit_request(0, [&](const trace::RequestTrace& t) {
      if (!t.ok) ++failed;
    });
  }
  c.run_for(30.0);
  EXPECT_GE(failed, 1);
  EXPECT_EQ(c.inflight(), 0u);
}

}  // namespace
}  // namespace graf::sim
