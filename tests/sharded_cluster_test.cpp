// Sharded simulator determinism suite (ISSUE 8, DESIGN.md §3.12).
//
// Two contracts are pinned here:
//   1. The legacy single-queue Cluster is byte-for-byte unchanged by the
//      EventQueue keyed-ordering refactor (a golden digest captured on the
//      pre-refactor build).
//   2. The sharded engine replays bit-identically at any (shard count,
//      thread count) combination, under faults, including split runs and
//      adversarial explicit partitions.
#include "sim/sharded_cluster.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "common/thread_pool.h"
#include "fleet/shared_sim.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "workload/open_loop.h"

namespace graf {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) { set_global_threads(n); }
  ~ThreadGuard() { set_global_threads(0); }
};

void hex(std::ostringstream& os, double v) {
  os << '|' << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

// --- contract 1: the legacy Cluster is untouched ------------------------------

// Golden digest of a faulted online_boutique run, captured on the build
// *before* EventQueue grew keyed ordering. Every event pop, RNG draw and
// float accumulation feeds this string; any reordering breaks it.
TEST(LegacyCluster, FaultedRunMatchesPreShardingGoldenDigest) {
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 5});
  sim::FaultInjector inj{cluster};
  inj.crash_instance(20.0, 1, 0x9e3779b97f4a7c15ULL, sim::CrashMode::kRequeue);
  inj.crash_instance(45.0, 3, 0xdeadbeefcafef00dULL, sim::CrashMode::kAbort);
  inj.throttle_cpu(30.0, 25.0, 2, 0.45);
  inj.degrade_creations(50.0, 20.0, true, 8.0, 0.0);
  inj.blackout_telemetry(70.0, 15.0);
  inj.arm();
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(200.0);
  g.api_weights = topo.api_weights;
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(120.0);
  cluster.run_until(120.0);

  std::ostringstream d;
  d << cluster.submitted() << ':' << cluster.completed() << ':'
    << cluster.failed() << ':' << cluster.events().processed();
  for (std::size_t s = 0; s < cluster.service_count(); ++s) {
    const sim::Service& svc = cluster.service(static_cast<int>(s));
    d << '|' << svc.arrivals() << ',' << svc.completions() << ',' << svc.drops()
      << ',' << svc.crashes() << ',' << svc.creations_started();
  }
  hex(d, cluster.e2e_latency_all().percentile_since(0.0, 99.0));
  hex(d, cluster.e2e_latency_all().percentile_since(0.0, 50.0));
  for (std::size_t a = 0; a < cluster.api_count(); ++a)
    hex(d, cluster.e2e_latency(static_cast<int>(a)).percentile_since(0.0, 99.0));

  EXPECT_EQ(d.str(),
            "24182:22070:0:184254"
            "|24182,24182,0,0,0|24182,24182,0,1,1|11600,11599,0,0,0"
            "|30498,30498,0,1,1|17077,14966,0,0,0|8650,8649,0,0,0"
            "|40cc76ba2d1b2ace|40aeaabc7bbfb2f8"
            "|40cca6343b11ffaf|40cc6f688b882768|406a304e60ee1cc5");
}

// --- contract 2: sharded replay is grouping- and thread-invariant ---------------

// Full-state digest of a faulted online_boutique run on the sharded engine:
// aggregate counters, per-service ground truth, per-API tail latencies (bit
// patterns), quota, and trace counts.
std::string sharded_digest(std::size_t shards, std::size_t threads,
                           std::vector<std::uint32_t> shard_of = {},
                           bool split_run = false) {
  ThreadGuard guard{threads};
  apps::Topology topo = apps::online_boutique();
  sim::ShardedClusterConfig cfg;
  cfg.seed = 5;
  cfg.shards = shards;
  sim::ShardedCluster c{topo.services, topo.apis, cfg, std::move(shard_of)};

  sim::FaultScheduleConfig fcfg;
  fcfg.seed = 97;
  fcfg.from = 10.0;
  fcfg.until = 110.0;
  fcfg.crash_per_min = 1.2;
  fcfg.creation_outage_per_min = 0.5;
  fcfg.throttle_per_min = 1.0;
  fcfg.blackout_per_min = 0.6;
  c.inject(sim::FaultInjector::generate(fcfg, c.service_count()));

  workload::OpenLoopConfig w;
  w.rate = workload::Schedule::constant(200.0);
  w.api_weights = topo.api_weights;
  w.seed = 7;
  workload::preload_open_loop(c, w, 120.0);
  if (split_run) {
    // Window boundaries are an implementation detail: pausing at arbitrary
    // points must not change anything.
    c.run_until(13.37);
    c.run_until(61.0);
    c.run_for(60.0);
  } else {
    c.run_until(121.0);
  }

  std::ostringstream os;
  os << c.submitted() << ':' << c.completed() << ':' << c.failed() << ':'
     << c.events_processed() << ':' << c.traces_recorded();
  for (std::size_t s = 0; s < c.service_count(); ++s) {
    const sim::Service& svc = c.service(static_cast<int>(s));
    os << '|' << svc.arrivals() << ',' << svc.completions() << ',' << svc.drops()
       << ',' << svc.crashes() << ',' << c.series(static_cast<int>(s)).size();
  }
  for (std::size_t a = 0; a < c.api_count(); ++a) {
    auto& e2e = c.e2e_latency(static_cast<int>(a));
    hex(os, e2e.empty() ? -1.0 : e2e.percentile(99.0));
  }
  hex(os, c.total_quota());
  return os.str();
}

TEST(ShardedCluster, BitIdenticalAtAnyShardAndThreadCount) {
  const std::string base = sharded_digest(1, 1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(sharded_digest(2, 1), base);
  EXPECT_EQ(sharded_digest(8, 1), base);
  EXPECT_EQ(sharded_digest(1, 8), base);
  EXPECT_EQ(sharded_digest(2, 8), base);
  EXPECT_EQ(sharded_digest(8, 8), base);
  EXPECT_EQ(sharded_digest(3, 4), base);
}

TEST(ShardedCluster, ExplicitAdversarialPartitionMatchesBalanced) {
  // Scatter services across shards in an order deliberately unlike the
  // balanced contiguous default (and leave shard 1 nearly empty).
  const std::string base = sharded_digest(1, 1);
  EXPECT_EQ(sharded_digest(4, 8, {3, 0, 2, 0, 1, 3}), base);
  EXPECT_EQ(sharded_digest(2, 8, {1, 1, 1, 1, 1, 0}), base);
}

TEST(ShardedCluster, SplitRunMatchesSingleRun) {
  EXPECT_EQ(sharded_digest(8, 8, {}, /*split_run=*/true), sharded_digest(1, 1));
}

// Shard-boundary RPC-edge property: a two-service chain with deterministic
// demand (sigma = 0) completes in exactly work1 + work2 + 2 * rpc_latency
// (call hop + reply hop), and the cross-shard run reproduces the
// single-shard latency to the bit.
TEST(ShardedCluster, CrossShardEdgeLatencyEqualsSingleShardToTheBit) {
  auto build = [](std::size_t shards) {
    std::vector<sim::ServiceConfig> svcs(2);
    svcs[0] = {.name = "front", .unit_quota = 1000.0, .demand_mean_ms = 12.0,
               .demand_sigma = 0.0};
    svcs[1] = {.name = "back", .unit_quota = 1000.0, .demand_mean_ms = 7.0,
               .demand_sigma = 0.0};
    sim::Api api{.name = "get", .root = sim::make_chain({0, 1})};
    sim::ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.rpc_latency = 0.002;
    return sim::ShardedCluster{svcs, {api}, cfg};
  };

  double latencies[2];
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    sim::ShardedCluster c = build(shards);
    if (shards == 2) {
      ASSERT_NE(c.shard_of(0), c.shard_of(1));
    }
    c.schedule_arrival(1.0, 0);
    c.run_until(5.0);
    ASSERT_EQ(c.completed(), 1u);
    latencies[shards - 1] = c.e2e_latency(0).percentile(50.0);
  }
  // Exact float equality is the point: the cross-shard hop must cost
  // rpc_latency and nothing else.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(latencies[0]),
            std::bit_cast<std::uint64_t>(latencies[1]));
  // ms; 2 hops of 2ms (small slack: absolute event times accumulate in
  // floating point — the bit-equality above is the exacting check).
  EXPECT_NEAR(latencies[0], 12.0 + 7.0 + 2 * 2.0, 1e-9);
}

TEST(ShardedCluster, RejectsZeroRpcLatencyAndBadPartition) {
  apps::Topology topo = apps::online_boutique();
  sim::ShardedClusterConfig cfg;
  cfg.rpc_latency = 0.0;
  EXPECT_THROW((sim::ShardedCluster{topo.services, topo.apis, cfg}),
               std::invalid_argument);
  cfg.rpc_latency = 0.002;
  cfg.shards = 2;
  EXPECT_THROW((sim::ShardedCluster{topo.services, topo.apis, cfg, {0, 1, 2, 0, 0, 0}}),
               std::invalid_argument);  // shard id out of range
  EXPECT_THROW((sim::ShardedCluster{topo.services, topo.apis, cfg, {0, 1}}),
               std::invalid_argument);  // partition size mismatch
}

TEST(ShardedCluster, PreloadOpenLoopRejectsCompletionCallback) {
  apps::Topology topo = apps::online_boutique();
  sim::ShardedCluster c{topo.services, topo.apis, {}};
  workload::OpenLoopConfig w;
  w.on_complete = [](const trace::RequestTrace&) {};
  EXPECT_THROW(workload::preload_open_loop(c, w, 10.0), std::invalid_argument);
}

// --- fleet: tenants sharing one sharded cluster ----------------------------------

std::string shared_sim_digest(std::size_t threads) {
  ThreadGuard guard{threads};
  fleet::SharedSim sim;
  apps::Topology ob = apps::online_boutique();
  apps::Topology bi = apps::bookinfo();
  const std::size_t t0 = sim.add_tenant("shop", ob.services, ob.apis);
  const std::size_t t1 = sim.add_tenant("books", bi.services, bi.apis);

  sim::ShardedClusterConfig cfg;
  cfg.seed = 11;
  sim::ShardedCluster& c = sim.build(cfg);
  // One shard per tenant: disjoint subgraphs, zero cross-shard traffic.
  EXPECT_EQ(c.shard_count(), 2u);
  EXPECT_EQ(c.shard_of(sim.global_service(t0, 0)), 0u);
  EXPECT_EQ(c.shard_of(sim.global_service(t1, 0)), 1u);

  workload::OpenLoopConfig w0;
  w0.rate = workload::Schedule::constant(120.0);
  w0.seed = 7;
  w0.api_weights.assign(c.api_count(), 0.0);
  for (std::size_t a = 0; a < ob.apis.size(); ++a)
    w0.api_weights[sim.tenant(t0).api_base + a] = ob.api_weights[a];
  workload::preload_open_loop(c, w0, 60.0);

  workload::OpenLoopConfig w1;
  w1.rate = workload::Schedule::constant(80.0);
  w1.seed = 13;
  w1.api_weights.assign(c.api_count(), 0.0);
  for (std::size_t a = 0; a < bi.apis.size(); ++a)
    w1.api_weights[sim.tenant(t1).api_base + a] = bi.api_weights[a];
  workload::preload_open_loop(c, w1, 60.0);

  c.run_until(30.0);
  // Mid-run actuation through the tenant view (fleet plan -> simulator).
  sim.apply_total_quota(t0, 1, 4000.0, 500.0);
  sim.apply_total_quota(t1, 0, 3000.0, 500.0);
  c.run_until(61.0);

  std::ostringstream os;
  os << c.submitted() << ':' << c.completed() << ':' << c.failed();
  for (std::size_t t : {t0, t1}) {
    os << '#';
    for (Qps q : sim.api_qps(t, 30.0)) hex(os, q);
  }
  hex(os, c.total_quota());
  return os.str();
}

TEST(SharedSim, TwoTenantsOneShardedClusterBitIdenticalAcrossThreads) {
  const std::string at1 = shared_sim_digest(1);
  const std::string at8 = shared_sim_digest(8);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at8);
}

TEST(SharedSim, RebasesIdsAndPrefixesNames) {
  fleet::SharedSim sim;
  apps::Topology ob = apps::online_boutique();
  apps::Topology bi = apps::bookinfo();
  sim.add_tenant("shop", ob.services, ob.apis);
  sim.add_tenant("books", bi.services, bi.apis);
  EXPECT_THROW(sim.add_tenant("shop", ob.services, ob.apis),
               std::invalid_argument);
  sim::ShardedCluster& c = sim.build({});
  EXPECT_EQ(c.service_count(), ob.services.size() + bi.services.size());
  EXPECT_EQ(c.api_count(), ob.apis.size() + bi.apis.size());
  EXPECT_EQ(c.service(sim.global_service(1, 0)).name(),
            "books/" + bi.services[0].name);
  EXPECT_EQ(c.api(sim.global_api(0, 0)).name, "shop/" + ob.apis[0].name);
  // The rebased call tree must stay inside the tenant's block.
  const sim::Api& rebased = c.api(sim.global_api(1, 0));
  EXPECT_GE(rebased.root.service, static_cast<int>(ob.services.size()));
  EXPECT_THROW(sim.add_tenant("late", ob.services, ob.apis), std::logic_error);
}

}  // namespace
}  // namespace graf
