// ThreadPool unit behaviour plus the DESIGN.md §3.7 determinism contract:
// data-parallel training, sharded sample collection, and multi-start
// solving must be *bit-identical* at any thread count, because work
// decomposition and random streams are pure functions of configuration —
// threads are only executors.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/catalog.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "nn/tensor.h"
#include "telemetry/metrics.h"

namespace graf {
namespace {

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.parallel_for(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitDeliversResultThroughFuture) {
  ThreadPool pool{2};
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionByIndex) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i == 7 || i == 63)
        throw std::runtime_error{"boom " + std::to_string(i)};
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

// ---- Reentrancy: parallel_for inside a pool task ---------------------------
//
// The fleet server fans plan computation over the pool, and a tenant's
// multi-start solver fans out again from inside that task. The caller-
// participates design makes the nesting deadlock-free: the inner call's own
// drain loop claims every index no helper has taken, so it completes even
// when every worker is busy with outer work. These tests pin that contract.

TEST(ThreadPool, NestedParallelForCompletesWithAllWorkersBusy) {
  for (const std::size_t size : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool{size};
    // More outer tasks than workers, so some inner calls necessarily run
    // while every worker is occupied by outer work.
    constexpr std::size_t kOuter = 8, kInner = 16;
    std::vector<std::atomic<int>> sums(kOuter);
    pool.parallel_for(kOuter, [&](std::size_t i) {
      pool.parallel_for(kInner, [&, i](std::size_t j) {
        sums[i].fetch_add(static_cast<int>(j + 1));
      });
    });
    for (const auto& s : sums)
      EXPECT_EQ(s.load(), kInner * (kInner + 1) / 2)
          << "pool size " << size;
  }
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptionByIndex) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(6, [&](std::size_t i) {
      pool.parallel_for(8, [&, i](std::size_t j) {
        // Only outer index 2 faults; its first-by-index inner failure (j=3)
        // must surface through both levels.
        if (i == 2 && (j == 3 || j == 5))
          throw std::runtime_error{"inner " + std::to_string(j)};
      });
    });
    FAIL() << "expected nested rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner 3");
  }
}

TEST(ThreadPool, ConcurrentParallelForFromSubmittedTasks) {
  // Two pool tasks run independent parallel_fors on the same pool at once;
  // each has its own shared state, so they interleave without crosstalk.
  // (Blocking on these futures is safe here: the joining thread is the
  // main thread, not a pool worker — see the submit() warning.)
  ThreadPool pool{4};
  constexpr std::size_t n = 256;
  auto count = [&pool] {
    std::atomic<std::size_t> hits{0};
    pool.parallel_for(n, [&](std::size_t) { hits.fetch_add(1); });
    return hits.load();
  };
  auto f1 = pool.submit(count);
  auto f2 = pool.submit(count);
  EXPECT_EQ(f1.get(), n);
  EXPECT_EQ(f2.get(), n);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnv) {
  ::setenv("GRAF_THREADS", "3", 1);
  EXPECT_EQ(configured_threads(), 3u);
  ::setenv("GRAF_THREADS", "0", 1);  // nonsense values fall back to >= 1
  EXPECT_GE(configured_threads(), 1u);
  ::unsetenv("GRAF_THREADS");
  EXPECT_GE(configured_threads(), 1u);
}

// ---- §3.7 determinism contract ---------------------------------------------

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  return d;
}

gnn::Dataset toy_dataset(int n) {
  Rng rng{57};
  gnn::Dataset data;
  for (int i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 80.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms =
        40.0 * 1000.0 / s.quota[0] + 80.0 * 1000.0 / s.quota[1] + 0.8 * w;
    data.push_back(std::move(s));
  }
  return data;
}

/// Train a fresh model at the given thread count and return a probe-grid of
/// predictions (equal predictions on the grid <=> equal parameters for all
/// practical purposes, and the comparison is exact, not approximate).
std::vector<double> train_and_probe(std::size_t threads) {
  set_global_threads(threads);
  gnn::MpnnConfig mcfg;
  mcfg.embed_dim = 8;
  mcfg.mpnn_hidden = 8;
  mcfg.readout_hidden = 16;
  mcfg.dropout_p = 0.1;  // exercises the per-(seed, iter, shard) rng streams
  gnn::LatencyModel model{chain2(), mcfg, 29};
  gnn::TrainConfig tc;
  tc.iterations = 120;
  tc.batch_size = 64;
  tc.shard_rows = 16;  // several shards per step even at this batch size
  tc.lr = 2e-3;
  tc.eval_every = 1000;
  tc.seed = 7;
  model.fit(toy_dataset(400), {}, tc);
  std::vector<double> probes;
  for (double w : {25.0, 50.0, 75.0})
    for (double q : {400.0, 900.0, 1700.0}) {
      std::vector<double> workload{w, w};
      std::vector<double> quota{q, 2100.0 - q};
      probes.push_back(model.predict(workload, quota));
    }
  set_global_threads(0);
  return probes;
}

TEST(ParallelDeterminism, TrainingIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> p1 = train_and_probe(1);
  const std::vector<double> p2 = train_and_probe(2);
  const std::vector<double> p8 = train_and_probe(8);
  ASSERT_EQ(p1.size(), p2.size());
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]) << "probe " << i;
    EXPECT_EQ(p1[i], p8[i]) << "probe " << i;
  }
}

std::pair<gnn::Dataset, Seconds> collect_at(std::size_t threads) {
  set_global_threads(threads);
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 31});
  core::WorkloadAnalyzer analyzer{c.api_count(), c.service_count()};
  core::SampleCollectorConfig cfg;
  cfg.window = 2.0;
  cfg.warmup = 0.5;
  cfg.flush = 0.5;
  cfg.seed = 9;
  core::SampleCollector collector{c, analyzer, cfg};
  core::SearchSpace space;
  space.lo.assign(4, 500.0);
  space.hi.assign(4, 2000.0);
  std::vector<Qps> base{40.0};
  telemetry::RegistrySnapshot telem;
  gnn::Dataset ds = collector.collect_sharded(
      12, space, base, 0.6, 1.0, apps::make_cluster_factory(topo, {.seed = 31}),
      &telem);
  set_global_threads(0);
  return {std::move(ds), collector.simulated_seconds()};
}

TEST(ParallelDeterminism, ShardedCollectionIsBitIdenticalAcrossThreadCounts) {
  const auto [d1, s1] = collect_at(1);
  const auto [d2, s2] = collect_at(2);
  const auto [d8, s8] = collect_at(8);
  ASSERT_FALSE(d1.empty());
  ASSERT_EQ(d1.size(), d2.size());
  ASSERT_EQ(d1.size(), d8.size());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].latency_ms, d2[i].latency_ms) << "sample " << i;
    EXPECT_EQ(d1[i].latency_ms, d8[i].latency_ms) << "sample " << i;
    EXPECT_EQ(d1[i].workload, d2[i].workload) << "sample " << i;
    EXPECT_EQ(d1[i].quota, d8[i].quota) << "sample " << i;
  }
}

/// One deterministically trained model shared by the solver tests.
gnn::LatencyModel& parallel_solver_model() {
  static gnn::LatencyModel model = [] {
    set_global_threads(1);
    gnn::MpnnConfig mcfg;
    mcfg.embed_dim = 8;
    mcfg.mpnn_hidden = 8;
    mcfg.readout_hidden = 24;
    mcfg.dropout_p = 0.0;
    gnn::LatencyModel m{chain2(), mcfg, 13};
    gnn::TrainConfig tc;
    tc.iterations = 800;
    tc.batch_size = 64;
    tc.lr = 2e-3;
    tc.eval_every = 1000;
    m.fit(toy_dataset(1200), {}, tc);
    set_global_threads(0);
    return m;
  }();
  return model;
}

core::SolverResult solve_at(std::size_t threads, std::size_t starts,
                            bool batched = true) {
  set_global_threads(threads);
  core::SolverConfig scfg;
  scfg.multi_starts = starts;
  scfg.batched_multi_start = batched;
  core::ConfigurationSolver solver{parallel_solver_model(), scfg};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> lo{300.0, 300.0};
  std::vector<double> hi{2000.0, 2000.0};
  const core::SolverResult res = solver.solve(w, 180.0, lo, hi);
  set_global_threads(0);
  return res;
}

TEST(ParallelDeterminism, MultiStartSolveIsBitIdenticalAcrossThreadCounts) {
  // Both descent paths: the PR-5 batched K-row tape (thread count can't
  // matter — one tape) and the PR-3 per-start fan-out (threads are only
  // executors). Either way 1 == 2 == 8 threads, bit for bit.
  for (bool batched : {true, false}) {
    const auto r1 = solve_at(1, 6, batched);
    const auto r2 = solve_at(2, 6, batched);
    const auto r8 = solve_at(8, 6, batched);
    ASSERT_EQ(r1.quota.size(), 2u);
    for (std::size_t i = 0; i < r1.quota.size(); ++i) {
      EXPECT_EQ(r1.quota[i], r2.quota[i]) << "batched=" << batched << " " << i;
      EXPECT_EQ(r1.quota[i], r8.quota[i]) << "batched=" << batched << " " << i;
    }
    EXPECT_EQ(r1.predicted_ms, r2.predicted_ms) << "batched=" << batched;
    EXPECT_EQ(r1.predicted_ms, r8.predicted_ms) << "batched=" << batched;
    EXPECT_EQ(r1.loss, r2.loss) << "batched=" << batched;
    EXPECT_EQ(r1.loss, r8.loss) << "batched=" << batched;
  }
}

TEST(ParallelDeterminism, BatchedAndConcurrentSolvesAgreeAtAnyThreadCount) {
  // The two paths are bit-identical to *each other*, so mixing thread
  // counts and paths still lands on the same answer.
  const auto batched1 = solve_at(1, 6, true);
  const auto fanout8 = solve_at(8, 6, false);
  ASSERT_EQ(batched1.quota.size(), fanout8.quota.size());
  for (std::size_t i = 0; i < batched1.quota.size(); ++i)
    EXPECT_EQ(batched1.quota[i], fanout8.quota[i]) << "service " << i;
  EXPECT_EQ(batched1.loss, fanout8.loss);
  EXPECT_EQ(batched1.predicted_ms, fanout8.predicted_ms);
  EXPECT_EQ(batched1.iterations, fanout8.iterations);
}

TEST(ParallelDeterminism, BlockedKernelsIgnoreThreadCount) {
  // The PR-5 GEMM kernels are single-tape serial code; the global pool
  // setting must not leak into them (guards against a future "parallel
  // matmul" accidentally breaking the §3.7 contract).
  Rng rng{67};
  nn::Tensor a{23, 37};
  nn::Tensor b{37, 17};
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform(-1, 1);
  set_global_threads(1);
  const nn::Tensor c1 = nn::matmul(a, b);
  set_global_threads(8);
  const nn::Tensor c8 = nn::matmul(a, b);
  set_global_threads(0);
  for (std::size_t i = 0; i < c1.size(); ++i)
    EXPECT_EQ(c1.data()[i], c8.data()[i]);
}

TEST(ParallelDeterminism, MultiStartNeverLosesToSingleStart) {
  // Extra starts may only improve (or tie) the feasible objective.
  const auto single = solve_at(4, 1);
  const auto multi = solve_at(4, 6);
  const double single_total = single.quota[0] + single.quota[1];
  const double multi_total = multi.quota[0] + multi.quota[1];
  if (single.predicted_ms <= 180.0 && multi.predicted_ms <= 180.0) {
    EXPECT_LE(multi_total, single_total * 1.05);
  }
}

}  // namespace
}  // namespace graf
