#include "gnn/mpnn.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace graf::gnn {
namespace {

Dag chain3() {
  Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_node("c");
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  return d;
}

MpnnConfig small_cfg(bool use_mpnn = true) {
  return {.node_features = 2, .embed_dim = 6, .mpnn_hidden = 6,
          .readout_hidden = 12, .message_steps = 2, .dropout_p = 0.0,
          .use_mpnn = use_mpnn};
}

std::vector<nn::Var> features(nn::Tape& t, std::size_t nodes, std::size_t batch,
                              double fill = 0.5) {
  std::vector<nn::Var> f;
  for (std::size_t i = 0; i < nodes; ++i)
    f.push_back(t.constant(nn::Tensor::full(batch, 2, fill)));
  return f;
}

TEST(Mpnn, OutputShapeIsBatchByOne) {
  Dag d = chain3();
  Rng rng{1};
  MpnnModel m{d, small_cfg(), rng};
  nn::Tape t;
  auto f = features(t, 3, 7);
  const nn::Tensor& y = t.value(m.forward(t, f, rng, false));
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(Mpnn, AblationOmitsMessagePassingParams) {
  Dag d = chain3();
  Rng r1{1};
  MpnnModel with{d, small_cfg(true), r1};
  Rng r2{1};
  MpnnModel without{d, small_cfg(false), r2};
  EXPECT_GT(with.param_count(), without.param_count());
}

TEST(Mpnn, FeatureCountValidated) {
  Dag d = chain3();
  Rng rng{2};
  MpnnModel m{d, small_cfg(), rng};
  nn::Tape t;
  auto f = features(t, 2, 4);  // wrong: 2 features for 3 nodes
  EXPECT_THROW(m.forward(t, f, rng, false), std::invalid_argument);
}

TEST(Mpnn, RootFeatureInfluencesOutputThroughMessages) {
  // With two message steps on a 3-chain, perturbing the root's feature must
  // change the prediction (information reaches the readout both directly
  // and through descendants' embeddings).
  Dag d = chain3();
  Rng rng{3};
  MpnnModel m{d, small_cfg(), rng};

  auto eval = [&](double root_val) {
    nn::Tape t;
    std::vector<nn::Var> f;
    f.push_back(t.constant(nn::Tensor::full(1, 2, root_val)));
    f.push_back(t.constant(nn::Tensor::full(1, 2, 0.5)));
    f.push_back(t.constant(nn::Tensor::full(1, 2, 0.5)));
    return t.value(m.forward(t, f, rng, false)).item();
  };
  EXPECT_NE(eval(0.1), eval(0.9));
}

TEST(Mpnn, LeafPerturbationDoesNotChangeAncestorEmbedding) {
  // Messages flow parent -> child only; the readout still sees every node,
  // so compare two graphs where only a *sink* feature differs: outputs
  // differ (readout), but an MPNN-only probe of the root's path shouldn't.
  // Here we simply assert the forward pass is deterministic in eval mode.
  Dag d = chain3();
  Rng rng{4};
  MpnnModel m{d, small_cfg(), rng};
  nn::Tape t1;
  auto f1 = features(t1, 3, 2);
  const double a = t1.value(m.forward(t1, f1, rng, false))(0, 0);
  nn::Tape t2;
  auto f2 = features(t2, 3, 2);
  const double b = t2.value(m.forward(t2, f2, rng, false))(0, 0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Mpnn, GradientsFlowToInputFeatures) {
  Dag d = chain3();
  Rng rng{5};
  MpnnModel m{d, small_cfg(), rng};
  nn::Tape t;
  std::vector<nn::Var> f;
  f.push_back(t.leaf(nn::Tensor::full(1, 2, 0.4)));
  f.push_back(t.leaf(nn::Tensor::full(1, 2, 0.5)));
  f.push_back(t.leaf(nn::Tensor::full(1, 2, 0.6)));
  nn::Var out = m.forward(t, f, rng, false);
  t.backward(out);
  // At least the direct readout path guarantees nonzero gradient for
  // generic random weights.
  double total = 0.0;
  for (const auto& v : f) total += t.grad(v).max_abs();
  EXPECT_GT(total, 0.0);
}

TEST(Mpnn, FanInAggregatesBothParents) {
  // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. Perturbing either middle
  // node's features changes the output.
  Dag d;
  for (int i = 0; i < 4; ++i) d.add_node("n" + std::to_string(i));
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  Rng rng{6};
  MpnnModel m{d, small_cfg(), rng};
  auto eval = [&](double v1, double v2) {
    nn::Tape t;
    std::vector<nn::Var> f;
    f.push_back(t.constant(nn::Tensor::full(1, 2, 0.5)));
    f.push_back(t.constant(nn::Tensor::full(1, 2, v1)));
    f.push_back(t.constant(nn::Tensor::full(1, 2, v2)));
    f.push_back(t.constant(nn::Tensor::full(1, 2, 0.5)));
    return t.value(m.forward(t, f, rng, false)).item();
  };
  EXPECT_NE(eval(0.2, 0.5), eval(0.8, 0.5));
  EXPECT_NE(eval(0.5, 0.2), eval(0.5, 0.8));
}

TEST(Mpnn, EmptyGraphRejected) {
  Dag d;
  Rng rng{7};
  EXPECT_THROW((MpnnModel{d, small_cfg(), rng}), std::invalid_argument);
}

}  // namespace
}  // namespace graf::gnn
