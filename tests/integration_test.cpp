// End-to-end integration: the full GRAF pipeline (Algorithm 1 -> sample
// collection -> GNN training -> gradient-descent solving -> deployment)
// against a live simulated cluster, plus the closed control loop reacting
// to workload change. Uses a small Bookinfo stack so the whole suite stays
// in tens of seconds.
#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/latency_predictor.h"
#include "core/resource_controller.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"
#include "telemetry/metrics.h"
#include "workload/closed_loop.h"
#include "workload/open_loop.h"

namespace graf {
namespace {

constexpr double kSlo = 130.0;

/// One trained Bookinfo stack for the whole file.
struct MiniStack {
  apps::Topology topo = apps::bookinfo();
  core::SearchSpace space;
  std::vector<std::vector<double>> fanout;
  gnn::Dataset dataset;
  std::unique_ptr<core::LatencyPredictor> predictor;
  std::vector<Qps> base{45.0};
};

MiniStack& mini_stack() {
  static MiniStack stack = [] {
    MiniStack st;
    sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 101});
    core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
    core::SampleCollectorConfig scfg;
    scfg.window = 6.0;
    scfg.warmup = 1.5;
    scfg.flush = 1.0;
    scfg.probe_window = 3.0;
    core::SampleCollector collector{cluster, analyzer, scfg};
    st.space = collector.reduce_search_space(st.base, kSlo);
    st.dataset = collector.collect(1200, st.space, st.base, 0.5, 1.1);
    st.fanout = analyzer.fanout();
    st.predictor = std::make_unique<core::LatencyPredictor>(
        apps::make_dag(st.topo), gnn::MpnnConfig{}, 103);
    gnn::TrainConfig tcfg;
    tcfg.iterations = 3000;
    tcfg.batch_size = 128;
    tcfg.lr = 1e-3;
    tcfg.lr_decay_every = 800;
    tcfg.eval_every = 300;
    st.predictor->train(st.dataset, tcfg);
    return st;
  }();
  return stack;
}

TEST(Integration, SearchSpaceIsReduced) {
  auto& st = mini_stack();
  core::SampleCollectorConfig scfg;
  const double ratio = st.space.volume_ratio(scfg.quota_floor, scfg.quota_hi);
  EXPECT_LT(ratio, 1.0);
  for (std::size_t s = 0; s < st.space.lo.size(); ++s)
    EXPECT_LT(st.space.lo[s], st.space.hi[s]);
}

TEST(Integration, DatasetLabelsSpanTheSloRegion) {
  auto& st = mini_stack();
  ASSERT_GE(st.dataset.size(), 1000u);
  double below = 0.0;
  double above = 0.0;
  for (const auto& s : st.dataset) (s.latency_ms <= kSlo ? below : above) += 1.0;
  // Both sides of the SLO boundary are represented.
  EXPECT_GT(below, 50.0);
  EXPECT_GT(above, 50.0);
}

TEST(Integration, ModelAccuracyIsUsable) {
  auto& st = mini_stack();
  const auto acc = st.predictor->model().evaluate_accuracy(st.predictor->test_set());
  EXPECT_LT(acc.mean_abs_pct_error, 35.0);  // paper reports 21-32%
}

TEST(Integration, SolveDeployMeasureMeetsRelaxedSlo) {
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  const auto workload = analyzer.distribute(st.base);
  const auto res = solver.solve(workload, kSlo, st.space.lo, st.space.hi);

  sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 107});
  for (std::size_t s = 0; s < res.quota.size(); ++s)
    cluster.apply_total_quota(static_cast<int>(s), res.quota[s], 1000.0);
  core::SampleCollector measurer{cluster, analyzer, {}};
  const double measured = measurer.measure_tail(st.base, 15.0, 99.0);
  // Prediction-error tolerance: the measured tail stays within 1.6x of the
  // SLO (the paper's Fig. 17 scatter hugs the target similarly).
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(measured, kSlo * 1.6);
}

TEST(Integration, TighterSloDeploysMoreCpu) {
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  const auto workload = analyzer.distribute(st.base);
  const auto tight = solver.solve(workload, kSlo * 0.85, st.space.lo, st.space.hi);
  const auto loose = solver.solve(workload, kSlo * 1.8, st.space.lo, st.space.hi);
  double tight_total = 0.0;
  double loose_total = 0.0;
  for (double q : tight.quota) tight_total += q;
  for (double q : loose.quota) loose_total += q;
  EXPECT_GT(tight_total, loose_total);
}

TEST(Integration, GrafControllerReactsToWorkloadChange) {
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  std::vector<Millicores> units(st.topo.service_count(), 1000.0);
  core::ResourceController rc{st.predictor->model(), solver, analyzer,
                              st.space.lo, st.space.hi, units};
  rc.set_training_reference(st.dataset);
  core::GrafController graf{rc, {.slo_ms = kSlo, .control_interval = 5.0}};

  sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 109});
  graf.attach(cluster, 400.0);

  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(20.0, 45.0, 120.0);
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(400.0);

  cluster.run_until(110.0);
  const int before = cluster.total_target_instances();
  EXPECT_GT(graf.solves(), 0u);
  cluster.run_until(200.0);
  const int after = cluster.total_target_instances();
  // More traffic -> the controller planned (weakly) more instances.
  EXPECT_GE(after, before);
  // And the SLO holds in steady state after the change.
  const double p99 = cluster.e2e_latency_all().percentile_since(160.0, 99.0);
  EXPECT_LT(p99, kSlo * 1.6);
}

TEST(Integration, GrafScalesBackDownAfterLoadDrop) {
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  std::vector<Millicores> units(st.topo.service_count(), 1000.0);
  core::ResourceController rc{st.predictor->model(), solver, analyzer,
                              st.space.lo, st.space.hi, units};
  rc.set_training_reference(st.dataset);
  core::GrafController graf{rc, {.slo_ms = kSlo, .control_interval = 5.0}};

  sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 111});
  graf.attach(cluster, 500.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::piecewise({{0.0, 45.0}, {200.0, 15.0}});
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(500.0);

  cluster.run_until(190.0);
  const int high = cluster.total_target_instances();
  cluster.run_until(400.0);
  const int low = cluster.total_target_instances();
  // GRAF follows the workload down without a 5-minute stabilization lag
  // (paper Fig. 20's contrast with the HPA).
  EXPECT_LE(low, high);
}

TEST(Integration, GrafReattachKillsStaleTickChain) {
  // Regression: re-attaching the controller used to leave the previous
  // attachment's tick chain alive in the event queue, doubling the control
  // cadence (and double-solving) forever after.
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  std::vector<Millicores> units(st.topo.service_count(), 1000.0);
  core::ResourceController rc{st.predictor->model(), solver, analyzer,
                              st.space.lo, st.space.hi, units};
  core::GrafController graf{rc, {.slo_ms = kSlo, .control_interval = 5.0}};

  sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 113});
  graf.attach(cluster, 1000.0);
  cluster.run_until(18.0);  // first chain ticks at 5, 10, 15
  EXPECT_EQ(graf.ticks(), 3u);
  graf.attach(cluster, 1000.0);  // re-attach to the same cluster
  cluster.run_until(44.0);       // exactly one live chain afterwards
  EXPECT_EQ(graf.ticks(), 5u);
}

TEST(Integration, GrafFirstTickPublishesIntervalP99NotCumulativeHistory) {
  // Regression: the first tick after attach() used to publish the cluster's
  // *cumulative* e2e p99 — history from before the controller existed —
  // instead of the p99 of its own first control interval.
  auto& st = mini_stack();
  core::ConfigurationSolver solver{st.predictor->model()};
  core::WorkloadAnalyzer analyzer{1, st.topo.service_count()};
  analyzer.set_fanout(st.fanout);
  std::vector<Millicores> units(st.topo.service_count(), 1000.0);
  core::ResourceController rc{st.predictor->model(), solver, analyzer,
                              st.space.lo, st.space.hi, units};
  rc.set_training_reference(st.dataset);
  core::GrafController graf{rc, {.slo_ms = kSlo, .control_interval = 5.0}};

  telemetry::MetricsRegistry registry;
  sim::Cluster cluster = apps::make_cluster(st.topo, {.seed = 115});
  cluster.set_metrics(&registry);

  // Phase 1 (pre-attach): starved quotas build a slow cumulative history.
  for (int s = 0; s < static_cast<int>(st.topo.service_count()); ++s)
    cluster.apply_total_quota(s, 300.0, 1000.0);
  workload::OpenLoopConfig g1;
  g1.rate = workload::Schedule::constant(45.0);
  workload::OpenLoopGenerator gen1{cluster, g1};
  gen1.start(60.0);
  cluster.run_until(60.0);
  const double cumulative_p99 =
      cluster.e2e_histogram()->snapshot().percentile(99.0);
  ASSERT_GT(cumulative_p99, kSlo);  // the history really is slow

  // Phase 2: drain the backlog, give generous quotas, attach, run ONE tick.
  cluster.hard_reset_load();
  for (int s = 0; s < static_cast<int>(st.topo.service_count()); ++s)
    cluster.apply_total_quota(s, 2500.0, 1000.0);
  graf.set_metrics(&registry);
  graf.attach(cluster, 1000.0);
  workload::OpenLoopConfig g2;
  g2.rate = workload::Schedule::constant(45.0);
  workload::OpenLoopGenerator gen2{cluster, g2};
  gen2.start(1000.0);
  cluster.run_until(66.0);
  ASSERT_EQ(graf.ticks(), 1u);

  const double published = registry.gauge("core.measured_p99_ms").value();
  ASSERT_GT(published, 0.0);
  // Only the post-attach interval may be reflected, not the starved past.
  EXPECT_LT(published, cumulative_p99 * 0.5);
}

}  // namespace
}  // namespace graf
