// Binary checkpoint format (src/serve/checkpoint.h): save -> load must
// reconstruct a model whose predictions are bit-identical to the original,
// and every corruption mode (truncation, flipped bits, wrong magic/version/
// endianness) must fail with a diagnostic CheckpointError — never a crash
// or a silently-wrong model.
#include "serve/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gnn/latency_model.h"

namespace graf::serve {
namespace {

gnn::Dag chain(std::size_t n) {
  gnn::Dag d;
  for (std::size_t i = 0; i < n; ++i) d.add_node("svc" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i)
    d.add_edge(static_cast<int>(i), static_cast<int>(i + 1));
  return d;
}

gnn::Dag diamond() {
  gnn::Dag d;
  d.add_node("front");
  d.add_node("left");
  d.add_node("right");
  d.add_node("back");
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

gnn::Dataset random_dataset(std::size_t nodes, std::size_t count, std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    gnn::Sample s;
    for (std::size_t n = 0; n < nodes; ++n) {
      s.workload.push_back(rng.uniform(5.0, 120.0));
      s.quota.push_back(rng.uniform(200.0, 2500.0));
    }
    s.latency_ms = rng.uniform(20.0, 800.0);
    out.push_back(std::move(s));
  }
  return out;
}

/// A small trained model with non-trivial scalers and weights.
gnn::LatencyModel make_model(const gnn::Dag& dag, std::uint64_t seed,
                             bool use_mpnn = true) {
  gnn::MpnnConfig cfg{.node_features = 4, .embed_dim = 6, .mpnn_hidden = 6,
                      .readout_hidden = 12, .message_steps = 2, .dropout_p = 0.1,
                      .use_mpnn = use_mpnn};
  gnn::LatencyModel m{dag, cfg, seed};
  gnn::TrainConfig tcfg{.iterations = 60, .batch_size = 32, .lr = 2e-3,
                        .eval_every = 30, .seed = seed};
  m.fit(random_dataset(dag.node_count(), 128, seed + 1),
        random_dataset(dag.node_count(), 32, seed + 2), tcfg);
  return m;
}

CheckpointMeta meta_for(double sim_time) {
  return {.application = "test-app", .slo_ms = 150.0, .train_samples = 128,
          .val_error_pct = 7.5, .created_sim_time = sim_time};
}

std::string serialized(gnn::LatencyModel& m, const CheckpointMeta& meta) {
  std::ostringstream os{std::ios::binary};
  save_checkpoint(os, m, meta);
  return os.str();
}

LoadedCheckpoint parse(const std::string& bytes) {
  std::istringstream is{bytes, std::ios::binary};
  return load_checkpoint(is);
}

/// Bit-identical comparison of two doubles (EXPECT_EQ accepts -0.0 == 0.0;
/// the format stores raw IEEE-754 bytes, so we can demand full identity).
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

// --- Round-trip exactness ---------------------------------------------------

TEST(CheckpointRoundTrip, PredictionsBitIdenticalOnRandomModels) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gnn::Dag dag = (seed % 2 == 0) ? diamond() : chain(3 + seed % 3);
    gnn::LatencyModel original = make_model(dag, seed, /*use_mpnn=*/seed != 3);
    LoadedCheckpoint loaded = parse(serialized(original, meta_for(42.0)));

    Rng rng{seed * 977};
    for (int probe = 0; probe < 25; ++probe) {
      std::vector<double> w;
      std::vector<double> q;
      for (std::size_t n = 0; n < dag.node_count(); ++n) {
        w.push_back(rng.uniform(1.0, 200.0));
        q.push_back(rng.uniform(100.0, 3000.0));
      }
      const double a = original.predict(w, q);
      const double b = loaded.model.predict(w, q);
      EXPECT_TRUE(same_bits(a, b))
          << "seed " << seed << " probe " << probe << ": " << a << " vs " << b;
    }
  }
}

TEST(CheckpointRoundTrip, PreservesScalersGraphAndMeta) {
  gnn::LatencyModel original = make_model(diamond(), 11);
  LoadedCheckpoint loaded = parse(serialized(original, meta_for(123.5)));

  const gnn::ScalerState a = original.scalers();
  const gnn::ScalerState b = loaded.model.scalers();
  EXPECT_TRUE(same_bits(a.w_scale, b.w_scale));
  EXPECT_TRUE(same_bits(a.q_scale, b.q_scale));
  EXPECT_TRUE(same_bits(a.q_min_mc, b.q_min_mc));
  EXPECT_TRUE(same_bits(a.ratio_max, b.ratio_max));
  EXPECT_TRUE(same_bits(a.label_ref, b.label_ref));

  EXPECT_EQ(original.node_names(), loaded.model.node_names());
  EXPECT_EQ(original.graph_parents(), loaded.model.graph_parents());
  EXPECT_EQ(original.mpnn_config().embed_dim, loaded.model.mpnn_config().embed_dim);

  EXPECT_EQ(loaded.meta.application, "test-app");
  EXPECT_EQ(loaded.meta.slo_ms, 150.0);
  EXPECT_EQ(loaded.meta.train_samples, 128u);
  EXPECT_EQ(loaded.meta.val_error_pct, 7.5);
  EXPECT_EQ(loaded.meta.created_sim_time, 123.5);
}

TEST(CheckpointRoundTrip, SecondGenerationCopyIsStillIdentical) {
  // save -> load -> save must produce byte-identical files (no drift).
  gnn::LatencyModel original = make_model(chain(3), 5);
  const std::string first = serialized(original, meta_for(1.0));
  LoadedCheckpoint loaded = parse(first);
  const std::string second = serialized(loaded.model, meta_for(1.0));
  EXPECT_EQ(first, second);
}

TEST(CheckpointRoundTrip, FileRoundTrip) {
  gnn::LatencyModel original = make_model(chain(4), 21);
  const std::string path = ::testing::TempDir() + "/graf_roundtrip.grafck";
  save_checkpoint_file(path, original, meta_for(9.0));
  LoadedCheckpoint loaded = load_checkpoint_file(path);
  std::vector<double> w(4, 50.0);
  std::vector<double> q(4, 900.0);
  EXPECT_TRUE(same_bits(original.predict(w, q), loaded.model.predict(w, q)));
  std::remove(path.c_str());
}

TEST(CheckpointRoundTrip, LoadedModelRemainsTrainable) {
  gnn::LatencyModel original = make_model(chain(3), 8);
  LoadedCheckpoint loaded = parse(serialized(original, meta_for(0.0)));
  gnn::TrainConfig tcfg{.iterations = 30, .batch_size = 16, .lr = 1e-3,
                        .eval_every = 30, .seed = 4};
  EXPECT_NO_THROW(loaded.model.fit(random_dataset(3, 64, 77), {}, tcfg));
}

// --- Corruption and mismatch ------------------------------------------------

struct CorruptionFixture : ::testing::Test {
  static const std::string& bytes() {
    static const std::string b = [] {
      gnn::LatencyModel m = make_model(chain(3), 13);
      const CheckpointMeta meta = meta_for(7.0);
      return serialized(m, meta);
    }();
    return b;
  }
};

TEST_F(CorruptionFixture, TruncatedFileFailsCleanly) {
  // Cut at several depths: inside the header, inside the payload, and just
  // before the CRC.
  const std::size_t cuts[] = {0, 4, 11, 20, bytes().size() / 2, bytes().size() - 3};
  for (std::size_t cut : cuts) {
    EXPECT_THROW(parse(bytes().substr(0, cut)), CheckpointError) << "cut " << cut;
  }
}

TEST_F(CorruptionFixture, FlippedPayloadByteFailsCrc) {
  // Flip one byte at several payload offsets; the CRC must catch each.
  const std::size_t header = 8 + 4 + 4 + 8;
  for (std::size_t off : {header, header + 33, bytes().size() - 5}) {
    std::string corrupt = bytes();
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x40);
    try {
      parse(corrupt);
      FAIL() << "offset " << off << " accepted";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string{e.what()}.find("CRC"), std::string::npos) << e.what();
    }
  }
}

TEST_F(CorruptionFixture, BadMagicRejected) {
  std::string corrupt = bytes();
  corrupt[0] = 'X';
  try {
    parse(corrupt);
    FAIL() << "bad magic accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string{e.what()}.find("magic"), std::string::npos);
  }
}

TEST_F(CorruptionFixture, WrongFormatVersionRejected) {
  std::string corrupt = bytes();
  const std::uint32_t bogus = kCheckpointFormatVersion + 7;
  std::memcpy(corrupt.data() + 8, &bogus, sizeof bogus);
  try {
    parse(corrupt);
    FAIL() << "wrong version accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string{e.what()}.find("version"), std::string::npos);
  }
}

TEST_F(CorruptionFixture, ForeignEndiannessRejected) {
  std::string corrupt = bytes();
  // Byte-swap the endianness tag in place: reads as a foreign-endian file.
  std::swap(corrupt[12], corrupt[15]);
  std::swap(corrupt[13], corrupt[14]);
  try {
    parse(corrupt);
    FAIL() << "foreign endianness accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string{e.what()}.find("endian"), std::string::npos);
  }
}

TEST_F(CorruptionFixture, MissingFileFailsCleanly) {
  EXPECT_THROW(load_checkpoint_file("/nonexistent/nope.grafck"), CheckpointError);
}

TEST(CheckpointCrc, MatchesKnownVector) {
  // IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
}

}  // namespace
}  // namespace graf::serve
