// Gradient checks: every op's analytic gradient is compared against central
// finite differences on random inputs.
#include "nn/autodiff.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>

#include "common/rng.h"
#include "nn/loss.h"

/// Heap allocations since program start, counted by the global operator-new
/// overrides at the bottom of this file. Constant-initialized, so it is
/// valid even for allocations made before main().
extern std::atomic<std::uint64_t> g_alloc_count;

namespace graf::nn {
namespace {

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Tensor t{r, c};
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-scale, scale);
  return t;
}

/// Check d(scalar f)/d(x) against finite differences at every entry of x.
void gradcheck(const Tensor& x0,
               const std::function<Var(Tape&, Var)>& f, double tol = 1e-6,
               double eps = 1e-6) {
  Tape tape;
  Var x = tape.leaf(x0);
  Var y = f(tape, x);
  tape.backward(y);
  const Tensor analytic = tape.grad(x);

  for (std::size_t i = 0; i < x0.size(); ++i) {
    Tensor xp = x0;
    Tensor xm = x0;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    Tape tp;
    const double fp = tp.value(f(tp, tp.leaf(xp, false))).item();
    Tape tm;
    const double fm = tm.value(f(tm, tm.leaf(xm, false))).item();
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i << " of " << x0.rows() << "x" << x0.cols();
  }
}

TEST(Autodiff, SumAllGradientIsOnes) {
  Rng rng{1};
  gradcheck(random_tensor(3, 4, rng),
            [](Tape&, Var x) { return sum_all(x); });
}

TEST(Autodiff, MeanAllGradient) {
  Rng rng{2};
  gradcheck(random_tensor(2, 5, rng),
            [](Tape&, Var x) { return mean_all(x); });
}

TEST(Autodiff, ScaleAndAddScalarGradient) {
  Rng rng{3};
  gradcheck(random_tensor(2, 3, rng), [](Tape&, Var x) {
    return sum_all(add_scalar(scale(x, 2.5), -1.0));
  });
}

TEST(Autodiff, AddGradientFlowsToBoth) {
  Rng rng{4};
  const Tensor b0 = random_tensor(2, 2, rng);
  gradcheck(random_tensor(2, 2, rng), [&](Tape& t, Var x) {
    Var b = t.leaf(b0, false);
    return sum_all(mul(add(x, b), add(x, b)));
  });
}

TEST(Autodiff, SubGradient) {
  Rng rng{5};
  const Tensor b0 = random_tensor(3, 2, rng);
  gradcheck(random_tensor(3, 2, rng), [&](Tape& t, Var x) {
    Var b = t.constant(b0);
    Var d = sub(x, b);
    return sum_all(mul(d, d));
  });
}

TEST(Autodiff, MulGradient) {
  Rng rng{6};
  const Tensor b0 = random_tensor(2, 3, rng);
  gradcheck(random_tensor(2, 3, rng), [&](Tape& t, Var x) {
    return sum_all(mul(x, t.constant(b0)));
  });
}

TEST(Autodiff, MatmulGradientLeft) {
  Rng rng{7};
  const Tensor w = random_tensor(4, 3, rng);
  gradcheck(random_tensor(2, 4, rng), [&](Tape& t, Var x) {
    Var y = matmul(x, t.constant(w));
    return sum_all(mul(y, y));
  });
}

TEST(Autodiff, MatmulGradientRight) {
  Rng rng{8};
  const Tensor a = random_tensor(3, 4, rng);
  gradcheck(random_tensor(4, 2, rng), [&](Tape& t, Var x) {
    Var y = matmul(t.constant(a), x);
    return sum_all(mul(y, y));
  });
}

TEST(Autodiff, ReluGradient) {
  Rng rng{9};
  // Avoid kink exactly at 0 by shifting values away from it.
  Tensor x0 = random_tensor(3, 3, rng);
  for (std::size_t i = 0; i < x0.size(); ++i)
    if (std::abs(x0.data()[i]) < 0.05) x0.data()[i] += 0.1;
  gradcheck(x0, [](Tape&, Var x) { return sum_all(relu(x)); });
}

TEST(Autodiff, ReluForwardClampsNegative) {
  Tape t;
  Var x = t.constant(Tensor{{-1.0, 0.0, 2.0}});
  const Tensor& y = t.value(relu(x));
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 2.0);
}

TEST(Autodiff, AddRowBroadcastGradient) {
  Rng rng{10};
  const Tensor a = random_tensor(4, 3, rng);
  gradcheck(random_tensor(1, 3, rng), [&](Tape& t, Var bias) {
    Var y = add_row_broadcast(t.constant(a), bias);
    return sum_all(mul(y, y));
  });
}

TEST(Autodiff, ConcatColsGradient) {
  Rng rng{11};
  const Tensor b0 = random_tensor(2, 3, rng);
  gradcheck(random_tensor(2, 2, rng), [&](Tape& t, Var x) {
    const Var parts[] = {x, t.constant(b0), x};
    Var y = concat_cols(parts);
    return sum_all(mul(y, y));
  });
}

TEST(Autodiff, SliceColsGradient) {
  Rng rng{12};
  gradcheck(random_tensor(3, 5, rng), [](Tape&, Var x) {
    Var y = slice_cols(x, 1, 3);
    return sum_all(mul(y, y));
  });
}

TEST(Autodiff, SliceOutOfRangeThrows) {
  Tape t;
  Var x = t.constant(Tensor{2, 4});
  EXPECT_THROW(slice_cols(x, 2, 3), std::invalid_argument);
}

TEST(Autodiff, AsymHuberGradient) {
  Rng rng{13};
  // Sample clear of the two kinks at -0.3 and 0.1.
  Tensor x0{1, 6};
  x0(0, 0) = -0.8;
  x0(0, 1) = -0.31;
  x0(0, 2) = -0.05;
  x0(0, 3) = 0.05;
  x0(0, 4) = 0.2;
  x0(0, 5) = 0.9;
  gradcheck(x0, [](Tape&, Var x) { return sum_all(asym_huber(x, 0.3, 0.1)); });
}

TEST(Autodiff, DropoutEvalIsIdentity) {
  Rng rng{14};
  Tape t;
  Tensor x0 = random_tensor(2, 4, rng);
  Var x = t.constant(x0);
  Var y = dropout(x, 0.5, rng, /*training=*/false);
  EXPECT_EQ(y.id, x.id);  // literally the same node
}

TEST(Autodiff, DropoutTrainPreservesMeanRoughly) {
  Rng rng{15};
  Tape t;
  Tensor x0{100, 100, 1.0};
  Var x = t.constant(x0);
  Var y = dropout(x, 0.25, rng, /*training=*/true);
  const double mean = t.value(y).sum() / 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout keeps the expectation
}

TEST(Autodiff, DropoutGradientUsesSameMask) {
  Rng rng{16};
  Tape t;
  Tensor x0{1, 8, 2.0};
  Var x = t.leaf(x0);
  Var y = dropout(x, 0.5, rng, /*training=*/true);
  t.backward(sum_all(y));
  const Tensor& g = t.grad(x);
  const Tensor& yv = t.value(y);
  for (std::size_t i = 0; i < 8; ++i) {
    if (yv.data()[i] == 0.0) {
      EXPECT_DOUBLE_EQ(g.data()[i], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(g.data()[i], 2.0);  // 1/(1-0.5)
    }
  }
}

TEST(Autodiff, ParamAccumulatesGradient) {
  Param p{Tensor{{1.0, 2.0}}};
  Tape t;
  Var v = t.param(p);
  t.backward(sum_all(mul(v, v)));  // d/dp sum(p^2) = 2p
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p.grad(0, 1), 4.0);
  // A second pass accumulates on top.
  Tape t2;
  Var v2 = t2.param(p);
  t2.backward(sum_all(v2));
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 3.0);
}

TEST(Autodiff, ReusedVariableAccumulates) {
  // f(x) = sum(x) + sum(x) => grad = 2.
  Tape t;
  Var x = t.leaf(Tensor{{5.0}});
  Var y = add(sum_all(x), sum_all(x));
  t.backward(y);
  EXPECT_DOUBLE_EQ(t.grad(x)(0, 0), 2.0);
}

TEST(Autodiff, BackwardRequiresScalar) {
  Tape t;
  Var x = t.leaf(Tensor{2, 2});
  EXPECT_THROW(t.backward(x), std::invalid_argument);
}

TEST(Autodiff, MixedTapesRejected) {
  Tape t1;
  Tape t2;
  Var a = t1.leaf(Tensor{1, 1});
  Var b = t2.leaf(Tensor{1, 1});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(Autodiff, ConstantsReceiveNoGradient) {
  Tape t;
  Var c = t.constant(Tensor{{3.0}});
  Var x = t.leaf(Tensor{{2.0}});
  Var y = sum_all(mul(x, c));
  t.backward(y);
  EXPECT_DOUBLE_EQ(t.grad(x)(0, 0), 3.0);
  EXPECT_FALSE(t.requires_grad(c.id));
}

TEST(Autodiff, DeepChainGradient) {
  // y = ((x * 2 + 1) * 2 + 1) ... 10 times; dy/dx = 2^10.
  Tape t;
  Var x = t.leaf(Tensor{{1.0}});
  Var h = x;
  for (int i = 0; i < 10; ++i) h = add_scalar(scale(h, 2.0), 1.0);
  t.backward(sum_all(h));
  EXPECT_DOUBLE_EQ(t.grad(x)(0, 0), 1024.0);
}

TEST(Loss, MseLossValueAndGradient) {
  Tape t;
  Var pred = t.leaf(Tensor{{3.0, 5.0}});
  Tensor target{{1.0, 5.0}};
  Var l = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(t.value(l).item(), 2.0);  // ((2)^2 + 0)/2
  t.backward(l);
  EXPECT_DOUBLE_EQ(t.grad(pred)(0, 0), 2.0);  // 2*(3-1)/2
  EXPECT_DOUBLE_EQ(t.grad(pred)(0, 1), 0.0);
}

TEST(Loss, PercentageErrorValues) {
  Tape t;
  Var pred = t.leaf(Tensor{{110.0, 90.0}});
  Tensor target{{100.0, 100.0}};
  const Tensor& x = t.value(percentage_error(pred, target));
  EXPECT_NEAR(x(0, 0), 0.1, 1e-12);
  EXPECT_NEAR(x(0, 1), -0.1, 1e-12);
}

// ---- Arena steady state (PR-5) ----------------------------------------------
//
// Once a graph shape has been seen, rebuilding the same graph after reset()
// must recycle every node, value buffer, gradient buffer, and backward
// scratch — the solver's descent loop runs thousands of tape passes per
// plan and may not touch the allocator in steady state. The graph below
// exercises the ops that dominate that loop: param, constant_ref,
// matmul, fused bias_relu, concat_cols, slice_cols, relu, scale,
// add_scalar, add, and sum_all, plus a full backward into a Param.
TEST(Autodiff, SteadyStateTapeRunsAllocationFree) {
  Rng rng{77};
  const Tensor w1 = random_tensor(6, 16, rng, 0.3);
  const Tensor b1 = random_tensor(1, 16, rng, 0.1);
  const Tensor w2 = random_tensor(17, 1, rng, 0.3);
  Param p{random_tensor(4, 6, rng)};
  Tape tape;

  auto run = [&] {
    tape.reset();
    Var x = tape.param(p);
    Var h = bias_relu(matmul(x, tape.constant_ref(w1)), tape.constant_ref(b1));
    const Var parts[] = {h, slice_cols(x, 0, 1)};
    Var y = matmul(concat_cols(parts), tape.constant_ref(w2));
    Var loss = sum_all(add(scale(y, 0.25), relu(add_scalar(y, -0.5))));
    p.zero_grad();
    tape.backward(loss);
    return tape.value(loss).item();
  };

  const double warm = run();  // allocates every buffer once
  run();                      // settles amortized capacities (dep lists etc.)

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const double steady = run();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u);
  EXPECT_DOUBLE_EQ(steady, warm);  // recycled buffers change nothing
}

}  // namespace
}  // namespace graf::nn

// ---- Global allocation counting ---------------------------------------------
//
// Every operator-new variant funnels through malloc and bumps the counter;
// every delete variant frees with free. Overriding the full set keeps
// new/delete pairs consistent (also under ASan, which then sees plain
// malloc/free on both sides). glibc's aligned_alloc accepts free().
std::atomic<std::uint64_t> g_alloc_count{0};

namespace {
void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n > 0 ? n : 1);
}
void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded > 0 ? rounded : align);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

// GCC's heuristic pairs the replaced new/delete against the originals and
// flags free() here; with the full variant set replaced, malloc/free is the
// single real allocator underneath, so the pairing is consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
