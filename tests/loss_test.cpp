// Properties of the paper's Eq. 4 loss: piecewise values, continuity at
// both kinks, asymmetry orientation, and the training-level consequence
// (systematic over-estimation when theta_under > theta_over).
#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace graf::nn {
namespace {

constexpr double kThetaUnder = 0.3;
constexpr double kThetaOver = 0.1;

TEST(AsymHuber, QuadraticInsideBounds) {
  EXPECT_DOUBLE_EQ(asym_huber_value(0.05, kThetaUnder, kThetaOver), 0.0025);
  EXPECT_DOUBLE_EQ(asym_huber_value(-0.2, kThetaUnder, kThetaOver), 0.04);
  EXPECT_DOUBLE_EQ(asym_huber_value(0.0, kThetaUnder, kThetaOver), 0.0);
}

TEST(AsymHuber, LinearOutsideBounds) {
  // Right side: theta*(2x - theta).
  EXPECT_DOUBLE_EQ(asym_huber_value(0.5, kThetaUnder, kThetaOver),
                   kThetaOver * (2.0 * 0.5 - kThetaOver));
  // Left side: theta*(-2x - theta).
  EXPECT_DOUBLE_EQ(asym_huber_value(-0.5, kThetaUnder, kThetaOver),
                   kThetaUnder * (1.0 - kThetaUnder));
}

TEST(AsymHuber, ContinuousAtBothKinks) {
  const double eps = 1e-9;
  EXPECT_NEAR(asym_huber_value(kThetaOver - eps, kThetaUnder, kThetaOver),
              asym_huber_value(kThetaOver + eps, kThetaUnder, kThetaOver), 1e-8);
  EXPECT_NEAR(asym_huber_value(-kThetaUnder - eps, kThetaUnder, kThetaOver),
              asym_huber_value(-kThetaUnder + eps, kThetaUnder, kThetaOver), 1e-8);
}

TEST(AsymHuber, PenalizesUnderestimationMore) {
  // With theta_under > theta_over the *under*-estimation branch stays
  // quadratic longer and has the steeper linear slope, so for equal |x|
  // beyond both kinks the under-estimate costs more.
  for (double mag : {0.35, 0.5, 1.0, 3.0}) {
    EXPECT_GT(asym_huber_value(-mag, kThetaUnder, kThetaOver),
              asym_huber_value(mag, kThetaUnder, kThetaOver))
        << "at |x| = " << mag;
  }
}

TEST(AsymHuber, SymmetricWhenThetasEqual) {
  for (double mag : {0.05, 0.2, 0.8}) {
    EXPECT_DOUBLE_EQ(asym_huber_value(-mag, 0.15, 0.15),
                     asym_huber_value(mag, 0.15, 0.15));
  }
}

TEST(AsymHuber, MonotoneAwayFromZero) {
  double prev = 0.0;
  for (double x = 0.0; x < 2.0; x += 0.01) {
    const double v = asym_huber_value(x, kThetaUnder, kThetaOver);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
  prev = 0.0;
  for (double x = 0.0; x > -2.0; x -= 0.01) {
    const double v = asym_huber_value(x, kThetaUnder, kThetaOver);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(AsymHuber, RejectsNonPositiveThetas) {
  Tape t;
  Var x = t.leaf(Tensor{{0.1}});
  EXPECT_THROW(asym_huber(x, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(asym_huber(x, 0.1, -0.2), std::invalid_argument);
}

TEST(AsymHuberLoss, TapeValueMatchesScalarHelper) {
  Tape t;
  Var pred = t.leaf(Tensor{{120.0, 60.0, 100.0}});
  Tensor target{{100.0, 100.0, 100.0}};
  Var loss = asym_huber_pct_loss(pred, target, kThetaUnder, kThetaOver);
  const double expected = (asym_huber_value(0.2, kThetaUnder, kThetaOver) +
                           asym_huber_value(-0.4, kThetaUnder, kThetaOver) +
                           asym_huber_value(0.0, kThetaUnder, kThetaOver)) /
                          3.0;
  EXPECT_NEAR(t.value(loss).item(), expected, 1e-12);
}

TEST(AsymHuberLoss, GradientPushesPredictionsUp) {
  // Start exactly on target: a small symmetric wiggle should prefer upward
  // movement, i.e. minimizing a one-parameter model over symmetric noise
  // settles above the mean. Check the gradient asymmetry directly:
  Tape t;
  Var under = t.leaf(Tensor{{60.0}});
  Tensor target{{100.0}};
  Var lu = asym_huber_pct_loss(under, target, kThetaUnder, kThetaOver);
  t.backward(lu);
  const double grad_under = t.grad(under)(0, 0);

  Tape t2;
  Var over = t2.leaf(Tensor{{140.0}});
  Var lo = asym_huber_pct_loss(over, target, kThetaUnder, kThetaOver);
  t2.backward(lo);
  const double grad_over = t2.grad(over)(0, 0);

  EXPECT_LT(grad_under, 0.0);  // pull up
  EXPECT_GT(grad_over, 0.0);   // pull down
  EXPECT_GT(std::abs(grad_under), std::abs(grad_over));  // asymmetric pull
}

TEST(HuberPctLoss, EqualsAsymWithEqualThetas) {
  Tape t;
  Var pred = t.leaf(Tensor{{120.0, 60.0}});
  Tensor target{{100.0, 100.0}};
  Var a = huber_pct_loss(pred, target, 0.2);
  Var b = asym_huber_pct_loss(pred, target, 0.2, 0.2);
  EXPECT_DOUBLE_EQ(t.value(a).item(), t.value(b).item());
}

TEST(AbsolutePercentageError, Basics) {
  EXPECT_DOUBLE_EQ(absolute_percentage_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(absolute_percentage_error(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(absolute_percentage_error(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace graf::nn
