#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/cluster.h"

namespace graf::sim {
namespace {

/// One-service cluster with deterministic demand (ms of CPU per request).
Cluster make_one(double demand_ms = 100.0) {
  std::vector<ServiceConfig> svcs{
      {.name = "s", .unit_quota = 1000, .initial_instances = 1,
       .max_concurrency = 4, .demand_mean_ms = demand_ms, .demand_sigma = 0.0},
  };
  return Cluster{svcs, {Api{"one", CallNode{.service = 0}}}, {}};
}

TEST(FaultSchedule, GenerateIsPureAndDeterministic) {
  FaultScheduleConfig cfg;
  cfg.seed = 123;
  cfg.until = 300.0;
  cfg.crash_per_min = 2.0;
  cfg.creation_outage_per_min = 1.0;
  cfg.throttle_per_min = 1.5;
  cfg.blackout_per_min = 0.5;
  const auto a = FaultInjector::generate(cfg, 4);
  const auto b = FaultInjector::generate(cfg, 4);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].service, b[i].service);
    EXPECT_EQ(a[i].pick, b[i].pick);
    EXPECT_DOUBLE_EQ(a[i].factor, b[i].factor);
    EXPECT_EQ(a[i].crash_mode, b[i].crash_mode);
  }
  // Schedule invariants: sorted, in-window, valid targets and factors.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
    EXPECT_GE(a[i].at, cfg.from);
    EXPECT_LT(a[i].at, cfg.until);
    if (a[i].kind == FaultEvent::Kind::kInstanceCrash ||
        a[i].kind == FaultEvent::Kind::kCpuThrottle) {
      EXPECT_GE(a[i].service, 0);
      EXPECT_LT(a[i].service, 4);
    }
    if (a[i].kind == FaultEvent::Kind::kCpuThrottle) {
      EXPECT_GE(a[i].factor, cfg.throttle_factor_lo);
      EXPECT_LE(a[i].factor, cfg.throttle_factor_hi);
    }
  }
  // A different seed must not replay the same arrival times.
  cfg.seed = 124;
  const auto c = FaultInjector::generate(cfg, 4);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].at != c[i].at || a[i].kind != c[i].kind;
  EXPECT_TRUE(differs);
}

// Re-partitioning regression (ISSUE 8): when tenants join a shared sharded
// cluster, service_count grows. The service pick rejection-samples — it
// consumes a variable number of raw draws depending on the range — so it
// must never share a stream with anything else. Changing service_count may
// retarget events, but times, picks, modes, factors and durations are
// pinned by (seed, class, event index), bit for bit.
TEST(FaultSchedule, ServiceCountChangeOnlyRetargetsEvents) {
  FaultScheduleConfig cfg;
  cfg.seed = 123;
  cfg.until = 600.0;
  cfg.crash_per_min = 2.0;
  cfg.creation_outage_per_min = 0.7;
  cfg.throttle_per_min = 1.5;
  cfg.blackout_per_min = 0.9;
  const auto a = FaultInjector::generate(cfg, 6);
  const auto b = FaultInjector::generate(cfg, 12);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  bool any_new_target = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].at),
              std::bit_cast<std::uint64_t>(b[i].at));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].duration),
              std::bit_cast<std::uint64_t>(b[i].duration));
    EXPECT_EQ(a[i].pick, b[i].pick);
    EXPECT_EQ(a[i].crash_mode, b[i].crash_mode);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].factor),
              std::bit_cast<std::uint64_t>(b[i].factor));
    if (a[i].kind == FaultEvent::Kind::kInstanceCrash ||
        a[i].kind == FaultEvent::Kind::kCpuThrottle) {
      EXPECT_LT(a[i].service, 6);
      EXPECT_LT(b[i].service, 12);
      any_new_target = any_new_target || b[i].service >= 6;
    } else {
      EXPECT_EQ(a[i].service, b[i].service);
    }
  }
  // The doubled range must actually be used (statistically certain here);
  // otherwise the "only retargets" claim is vacuous.
  EXPECT_TRUE(any_new_target);
}

TEST(FaultSchedule, PerClassStreamsAreIndependent) {
  // Adding a second fault class must not perturb the first class's arrivals
  // (each class draws from its own derive_seed stream).
  FaultScheduleConfig only_crash;
  only_crash.crash_per_min = 2.0;
  FaultScheduleConfig both = only_crash;
  both.blackout_per_min = 1.0;
  auto crashes_of = [](const std::vector<FaultEvent>& evs) {
    std::vector<double> at;
    for (const auto& e : evs)
      if (e.kind == FaultEvent::Kind::kInstanceCrash) at.push_back(e.at);
    return at;
  };
  EXPECT_EQ(crashes_of(FaultInjector::generate(only_crash, 2)),
            crashes_of(FaultInjector::generate(both, 2)));
}

TEST(FaultInjectorTest, CrashAbortFailsInflightAndSelfHeals) {
  Cluster c = make_one(1000.0);  // 1 s of CPU per request
  FaultInjector inj{c};
  inj.crash_instance(0.5, 0, 7, CrashMode::kAbort);
  inj.arm();
  bool ok = true;
  c.submit_request(0, [&](const trace::RequestTrace& t) { ok = t.ok; });
  c.run_for(20.0);
  EXPECT_FALSE(ok);
  EXPECT_EQ(c.failed(), 1u);
  EXPECT_EQ(c.completed(), 0u);
  EXPECT_EQ(c.inflight(), 0u);  // nothing leaked
  EXPECT_EQ(c.service(0).crashes(), 1u);
  EXPECT_EQ(c.service(0).aborted_jobs(), 1u);
  // ReplicaSet self-heal: the replacement pod came up on its own.
  EXPECT_EQ(c.service(0).ready_count(), 1);
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultInjectorTest, CrashRequeueReplaysWorkOnReplacement) {
  Cluster c = make_one(1000.0);
  FaultInjector inj{c};
  inj.crash_instance(0.5, 0, 0, CrashMode::kRequeue);
  inj.arm();
  double e2e = -1.0;
  std::uint64_t completions = 0;
  c.submit_request(0, [&](const trace::RequestTrace& t) {
    ++completions;
    e2e = t.e2e_ms();
  });
  c.run_for(20.0);
  // The job keeps its remaining 0.5 s of work and resumes on the replacement
  // pod once it is ready (crash at 0.5 + 5.5 s creation + 0.5 s remaining),
  // and exactly one completion is recorded — no double-count through requeue.
  EXPECT_EQ(completions, 1u);
  EXPECT_EQ(c.completed(), 1u);
  EXPECT_EQ(c.failed(), 0u);
  EXPECT_EQ(c.service(0).requeued_jobs(), 1u);
  EXPECT_NEAR(e2e, 500.0 + 5500.0 + 500.0, 50.0);
}

TEST(FaultInjectorTest, ThrottleWindowStretchesExecution) {
  Cluster c = make_one();
  FaultInjector inj{c};
  inj.throttle_cpu(0.0, 10.0, 0, 0.5);
  inj.arm();
  double latency = -1.0;
  c.service(0).submit(100.0, [&](double ms) { latency = ms; });
  c.run_for(1.0);
  EXPECT_NEAR(latency, 200.0, 1e-6);  // 100 core-ms at half a core
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 0.5);
  c.run_for(10.0);  // window expired
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 1.0);
}

TEST(FaultInjectorTest, OverlappingThrottlesCompose) {
  Cluster c = make_one();
  FaultInjector inj{c};
  inj.throttle_cpu(1.0, 10.0, 0, 0.5);   // [1, 11)
  inj.throttle_cpu(5.0, 10.0, 0, 0.5);   // [5, 15)
  inj.arm();
  c.run_until(2.0);
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 0.5);
  c.run_until(6.0);
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 0.25);  // factors multiply
  c.run_until(12.0);
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 0.5);
  c.run_until(16.0);
  EXPECT_DOUBLE_EQ(c.service(0).cpu_throttle(), 1.0);  // bit-exact restore
}

TEST(FaultInjectorTest, CreationOutageFailsPullsUntilWindowEnds) {
  Cluster c = make_one();
  FaultInjector inj{c};
  inj.degrade_creations(1.0, 5.0, /*fail=*/true, /*fail_after=*/1.0,
                        /*extra_delay=*/0.0);
  inj.arm();
  c.events().schedule_at(1.5, [&c] { c.service(0).scale_to(2); });
  c.run_for(30.0);
  // Attempt 0 (t=1.5) and retry 1 (t=3.5) fail inside the window; retry 2
  // (t=6.5, backoff 2 s) lands after it clears and succeeds.
  EXPECT_EQ(c.service(0).creation_failures(), 2u);
  EXPECT_EQ(c.service(0).creation_retries(), 2u);
  EXPECT_EQ(c.service(0).ready_count(), 2);
  EXPECT_EQ(c.deployment().failures(), 2u);
}

TEST(FaultInjectorTest, BlackoutWindowTogglesClusterFlag) {
  Cluster c = make_one();
  FaultInjector inj{c};
  inj.blackout_telemetry(2.0, 3.0);
  inj.blackout_telemetry(4.0, 3.0);  // overlapping: clears at 7, not 5
  inj.arm();
  c.run_until(1.0);
  EXPECT_FALSE(c.telemetry_blackout());
  c.run_until(3.0);
  EXPECT_TRUE(c.telemetry_blackout());
  c.run_until(6.0);
  EXPECT_TRUE(c.telemetry_blackout());  // second window still active
  c.run_until(8.0);
  EXPECT_FALSE(c.telemetry_blackout());
}

TEST(FaultInjectorTest, ArmIsSingleShotAndDropsPastEvents) {
  Cluster c = make_one();
  c.run_for(10.0);
  FaultInjector inj{c};
  inj.crash_instance(5.0, 0, 0, CrashMode::kAbort);   // already in the past
  inj.crash_instance(12.0, 0, 0, CrashMode::kAbort);  // still ahead
  inj.arm();
  EXPECT_THROW(inj.arm(), std::logic_error);
  c.run_for(10.0);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(c.service(0).crashes(), 1u);
}

// Whole-run determinism: identical seeds and schedules must reproduce the
// exact same trajectory — counters and latency percentiles bit-identical.
TEST(FaultInjectorTest, FaultedRunReplaysBitIdentically) {
  struct Outcome {
    std::uint64_t completed, failed, crashes, requeued, fired;
    double p99;
  };
  auto run = [] {
    Cluster c = make_one(50.0);
    FaultScheduleConfig cfg;
    cfg.seed = 8;  // this seed's crash stream is non-empty over the window
    cfg.until = 60.0;
    cfg.crash_per_min = 3.0;
    cfg.throttle_per_min = 2.0;
    cfg.blackout_per_min = 1.0;
    cfg.creation_outage_per_min = 1.0;
    FaultInjector inj{c};
    inj.add(FaultInjector::generate(cfg, 1));
    inj.arm();
    for (int i = 0; i < 300; ++i)
      c.events().schedule_at(i * 0.2, [&c] { c.submit_request(0); });
    c.run_until(90.0);
    // Conservation: every submitted request is accounted for.
    EXPECT_EQ(c.submitted(),
              c.completed() + c.failed() + c.inflight());
    return Outcome{c.completed(), c.failed(), c.service(0).crashes(),
                   c.service(0).requeued_jobs(), inj.fired(),
                   c.e2e_latency_all().percentile(99.0)};
  };
  const Outcome a = run();
  const Outcome b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_GT(a.crashes, 0u);  // the schedule actually did something
}

}  // namespace
}  // namespace graf::sim
