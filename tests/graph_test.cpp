#include "gnn/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace graf::gnn {
namespace {

TEST(Dag, AddNodesAndLookup) {
  Dag d;
  EXPECT_EQ(d.add_node("a"), 0);
  EXPECT_EQ(d.add_node("b"), 1);
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_EQ(d.index_of("b"), 1);
  EXPECT_EQ(d.index_of("zzz"), -1);
  EXPECT_EQ(d.name(0), "a");
}

TEST(Dag, DuplicateNameRejected) {
  Dag d;
  d.add_node("a");
  EXPECT_THROW(d.add_node("a"), std::invalid_argument);
}

TEST(Dag, EdgesTrackParentsAndChildren) {
  Dag d;
  d.add_node("p");
  d.add_node("c1");
  d.add_node("c2");
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  EXPECT_EQ(d.children(0).size(), 2u);
  EXPECT_EQ(d.parents(1).size(), 1u);
  EXPECT_EQ(d.parents(1)[0], 0);
  EXPECT_EQ(d.edge_count(), 2u);
}

TEST(Dag, SelfLoopRejected) {
  Dag d;
  d.add_node("a");
  EXPECT_THROW(d.add_edge(0, 0), std::invalid_argument);
}

TEST(Dag, DuplicateEdgeRejected) {
  Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  EXPECT_THROW(d.add_edge(0, 1), std::invalid_argument);
}

TEST(Dag, CycleRejected) {
  Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_node("c");
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_THROW(d.add_edge(2, 0), std::invalid_argument);
}

TEST(Dag, BadIndexRejected) {
  Dag d;
  d.add_node("a");
  EXPECT_THROW(d.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(d.add_edge(-1, 0), std::out_of_range);
}

TEST(Dag, RootsAreParentless) {
  Dag d;
  d.add_node("r1");
  d.add_node("r2");
  d.add_node("c");
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  const auto roots = d.roots();
  EXPECT_EQ(roots, (std::vector<int>{0, 1}));
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag d;
  for (int i = 0; i < 6; ++i) d.add_node("n" + std::to_string(i));
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  d.add_edge(3, 4);
  d.add_edge(3, 5);
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 6u);
  auto pos = [&](int n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(3), pos(4));
  EXPECT_LT(pos(3), pos(5));
}

}  // namespace
}  // namespace graf::gnn
